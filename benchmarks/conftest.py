"""Shared helpers for the benchmark suite.

Every benchmark regenerates one paper artifact (table or figure),
prints the reproduced rows/series, and asserts the qualitative shape
the paper reports.  ``pytest benchmarks/ --benchmark-only`` runs them
all; each uses a single measured round since the simulations are
deterministic.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


def show(result) -> None:
    """Print a reproduced artifact beneath the benchmark output."""
    print()
    print(result.render())
