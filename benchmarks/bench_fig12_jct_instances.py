"""Bench: Fig. 12 — average JCT by prefill instance (§7.2).

The two headline claims: HACK's gain over the *baseline* peaks on V100
(lowest bandwidth: paper 70.9%), while its gain over the quantization
comparators bottoms out there (no INT8 tensor cores: paper 37.4%).
"""

from conftest import run_once, show

from repro.experiments import fig9_12_jct

SCALE = 0.7
GPUS = ("A10G", "V100", "T4", "L4", "A100")


def test_fig12_jct_by_instance(benchmark):
    result = run_once(benchmark, fig9_12_jct.run_fig12, scale=SCALE)
    show(result)

    vs_base = {g: result.reduction(g, "hack", "baseline") for g in GPUS}
    vs_cg = {g: result.reduction(g, "hack", "cachegen") for g in GPUS}

    # HACK beats everything everywhere.
    for gpu in GPUS:
        assert vs_base[gpu] > 0.3, gpu
        assert vs_cg[gpu] > 0, gpu
        assert result.reduction(gpu, "hack", "kvquant") >= vs_cg[gpu] - 0.02

    # V100: biggest gain vs baseline (bandwidth), smallest vs CacheGen
    # (no INT8 acceleration).
    assert vs_base["V100"] == max(vs_base.values())
    assert vs_cg["V100"] == min(vs_cg.values())

    # V100's baseline gain in the paper's region (70.9% ± ~12 points).
    assert 0.55 <= vs_base["V100"] <= 0.85
