"""Bench: Fig. 14 — scalability with the prefill:decode ratio p (§7.6).

Paper: from p=1 to p=8 the baseline's average JCT grows by 127% while
CacheGen/KVQuant/HACK grow only 31–43% — compression removes the KV
transfer/memory pressure that otherwise swamps the shared decode
replica.
"""

from conftest import run_once, show

from repro.experiments import fig14_scalability

SCALE = 0.6


def test_fig14_scalability(benchmark):
    result = run_once(benchmark, fig14_scalability.run, scale=SCALE)
    show(result)

    growth = {m: result.growth(m)
              for m in ("baseline", "cachegen", "kvquant", "hack")}

    # The baseline deteriorates much faster than every quantized method.
    assert growth["baseline"] > 0.35
    for method in ("cachegen", "kvquant", "hack"):
        assert growth[method] < 0.6 * growth["baseline"], method

    # HACK stays essentially flat.
    assert growth["hack"] < 0.25

    # JCT ordering holds at every p.
    for p, res in result.results.items():
        assert res["hack"].avg_jct() < res["cachegen"].avg_jct() \
            < res["baseline"].avg_jct(), p
