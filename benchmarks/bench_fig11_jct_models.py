"""Bench: Fig. 11 — average JCT by model (§7.2).

Paper: HACK reduces JCT vs the baseline by 54.6/57.2/58.7/61.6/53.3%
for M/P/Y/L/F-arXiv, the F-arXiv gain smallest because Falcon's 2K
window caps the sequence length.
"""

from conftest import run_once, show

from repro.experiments import fig9_12_jct

SCALE = 0.5


def test_fig11_jct_by_model(benchmark):
    result = run_once(benchmark, fig9_12_jct.run_fig11, scale=SCALE)
    show(result)

    vs_base = {label: result.reduction(label, "hack", "baseline")
               for label in result.results}

    # HACK wins for every model, against every comparator.
    for label in result.results:
        assert vs_base[label] > 0, label
        assert result.reduction(label, "hack", "cachegen") > 0, label
        assert result.reduction(label, "hack", "kvquant") > 0, label

    # F-arXiv (2K-capped) shows the smallest improvement.
    assert vs_base["F-arXiv"] == min(vs_base.values())

    # The big long-context models sit in the paper's region.
    assert 0.35 <= vs_base["L"] <= 0.75
