"""Bench: design-choice ablations beyond the paper's own (DESIGN.md §4).

Three choices the paper fixes without sweeping, checked here:

* stochastic vs nearest rounding for the 2-bit KV codes;
* 8-bit vs 2-bit quantization of Q (the paper argues Q can afford
  8 bits since it is discarded after use);
* the Eq. 4 evaluation granularity — blocked (Fig. 6b) vs unblocked
  evaluation must agree numerically.
"""

import numpy as np
from conftest import run_once

from repro.accuracy.kv_distributions import synthetic_attention_inputs
from repro.core import (
    HackConfig,
    attention_hack,
    attention_reference,
    homomorphic_matmul,
    homomorphic_matmul_blocked,
    make_rng,
    quantize,
)


def _mean_error(config: HackConfig, trials=6, n_tokens=192, d=128):
    errs = []
    for seed in range(trials):
        rng = make_rng(300 + seed)
        q, k, v = synthetic_attention_inputs(n_tokens, d, rng, l_q=16)
        ref = attention_reference(q, k, v, causal=False)
        out = attention_hack(q, k, v, config, rng=make_rng(seed),
                             causal=False)
        errs.append(np.linalg.norm(out - ref) / np.linalg.norm(ref))
    return float(np.mean(errs))


def test_q_bits_ablation(benchmark):
    """8-bit Q (the paper's choice) must beat 2-bit Q on accuracy."""
    def run():
        return {
            "q8": _mean_error(HackConfig(q_bits=8)),
            "q2": _mean_error(HackConfig(q_bits=2)),
        }

    result = run_once(benchmark, run)
    print(f"\nQ-bits ablation: {result}")
    assert result["q8"] < result["q2"]


def test_rounding_ablation(benchmark):
    """Both roundings land in the same error regime; the paper prefers
    stochastic for its unbiasedness (errors cancel in expectation)."""
    def run():
        return {
            "stochastic": _mean_error(HackConfig(rounding="stochastic")),
            "nearest": _mean_error(HackConfig(rounding="nearest")),
        }

    result = run_once(benchmark, run)
    print(f"\nRounding ablation: {result}")
    assert 0 < result["stochastic"] < 1.0
    assert 0 < result["nearest"] < 1.0
    assert result["stochastic"] < 2.5 * result["nearest"]


def test_int4_kernel_projection(benchmark):
    """§8 future work: an INT4 kernel should shave further JCT off HACK
    (bounded — compute is only part of the iteration)."""
    from repro.experiments.common import run_methods

    def run():
        res = run_methods(("hack", "hack_int4"), dataset="cocktail",
                          scale=0.3)
        return {m: r.avg_jct() for m, r in res.items()}

    jcts = run_once(benchmark, run)
    print(f"\nINT4 projection: {jcts}")
    assert jcts["hack_int4"] < jcts["hack"]
    assert jcts["hack_int4"] > 0.8 * jcts["hack"]  # a trim, not a rewrite


def test_eviction_composition(benchmark):
    """§9 future work: eviction composes with 2-bit quantization —
    compound compression at bounded extra error."""
    from repro.core import EvictingKVCache, Fp16KVCache, HackKVCache

    d, n = 64, 256
    rng = make_rng(10)
    q_in, k, v = synthetic_attention_inputs(n, d, rng, l_q=1)
    q_vec = q_in[0]

    def run():
        exact = Fp16KVCache(d)
        exact.append_bulk(k, v)
        ref = exact.attention(q_vec)

        cache = EvictingKVCache(
            HackKVCache(d, partition_size=32, rng=make_rng(0)),
            budget=n // 2, protected_recent=8,
        )
        cache.append_bulk(k, v)
        cache.attention(q_vec)  # builds the heavy-hitter profile
        out = cache.attention(q_vec)
        rel = float(np.linalg.norm(out - ref) / np.linalg.norm(ref))
        ratio = cache.live_kv_nbytes() / exact.kv_nbytes()
        return rel, ratio

    rel, ratio = run_once(benchmark, run)
    print(f"\neviction+2bit: bytes ratio {ratio:.3f}, attn error {rel:.3f}")
    assert ratio < 0.12   # compound: ~8x quantization x 2x eviction
    assert rel < 0.8


def test_blocked_evaluation_equivalence(benchmark):
    """Fig. 6(b) blocked Eq. 4 equals the unblocked evaluation."""
    rng = make_rng(0)
    a = rng.normal(size=(16, 128))
    b = rng.normal(size=(128, 16))

    def run():
        qa = quantize(a, 8, axis=1, partition_size=32, rounding="nearest")
        qb = quantize(b, 2, axis=0, partition_size=32, rounding="nearest")
        full = homomorphic_matmul(qa, qb)
        blocks_a = [
            quantize(a[:, lo:hi], 8, axis=1, partition_size=32,
                     rounding="nearest")
            for lo, hi in ((0, 64), (64, 128))
        ]
        blocks_b = [
            quantize(b[lo:hi, :], 2, axis=0, partition_size=32,
                     rounding="nearest")
            for lo, hi in ((0, 64), (64, 128))
        ]
        blocked = homomorphic_matmul_blocked(blocks_a, blocks_b)
        return float(np.abs(full - blocked).max())

    max_diff = run_once(benchmark, run)
    print(f"\nBlocked-vs-unblocked max diff: {max_diff:.2e}")
    assert max_diff < 1e-9
