"""Bench: Fig. 13 — the SE and RQE ablations (§7.4).

Paper: HACK/SE costs +13.8–15.3% JCT on short-sequence datasets and
+22.1–25.9% on long ones (recomputing Σb' scales with context);
HACK/RQE costs +17.8–21.7% on short datasets but only +0.09–1.2% on
long ones (the last V block is a shrinking fraction of the work).
"""

from conftest import run_once, show

from repro.experiments import fig13_ablation

SCALE = 0.5


def test_fig13_ablation(benchmark):
    result = run_once(benchmark, fig13_ablation.run_fig13, scale=SCALE)
    show(result)

    # Both ablations hurt on every dataset.
    for dataset in ("imdb", "arxiv", "cocktail", "humaneval"):
        assert result.overhead(dataset, "hack_nose") > 0, dataset
        assert result.overhead(dataset, "hack_norqe") >= 0, dataset

    # SE matters most at long context.
    assert result.overhead("cocktail", "hack_nose") > \
        result.overhead("imdb", "hack_nose")
    assert result.overhead("arxiv", "hack_nose") > \
        result.overhead("humaneval", "hack_nose")

    # RQE matters most at short context, and is nearly free at long.
    assert result.overhead("imdb", "hack_norqe") > \
        result.overhead("cocktail", "hack_norqe")
    assert result.overhead("cocktail", "hack_norqe") < 0.08

    # Long-context SE overhead lands in the paper's region.
    assert 0.08 <= result.overhead("cocktail", "hack_nose") <= 0.45
