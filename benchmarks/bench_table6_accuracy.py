"""Bench: Table 6 — accuracy across methods, models and datasets (§7.3).

Shapes: every 2-bit method's loss stays within a few percent of the
baseline (the paper band is 0.55–2.68%); within HACK the partition-size
ordering Π=32 < Π=64 < Π=128 (loss ascending) emerges from measured
errors; Π=128 is the weakest row, as in the paper.
"""

from conftest import run_once, show

from repro.accuracy import PAPER_BASELINE_ACCURACY
from repro.experiments import table6_accuracy


def test_table6_accuracy(benchmark):
    result = run_once(benchmark, table6_accuracy.run, n_trials=4)
    show(result)

    losses = {m: result.mean_loss(m)
              for m in table6_accuracy.METHOD_ORDER if m != "baseline"}

    # Baseline row is the paper's, verbatim.
    assert result.accuracies["baseline"] == PAPER_BASELINE_ACCURACY

    # All methods land in the paper's loss band (widened for substrate
    # noise): a fraction of a percent to a few percent.
    for method, loss in losses.items():
        assert 0.002 < loss < 0.035, (method, loss)

    # The Π ordering emerges from measured error.
    assert losses["hack_pi32"] < losses["hack_pi64"] < losses["hack_pi128"]

    # Π=128 is the weakest configuration in the comparison (paper: it
    # trails even KVQuant slightly).
    assert losses["hack_pi128"] == max(losses.values())

    # Per-cell sanity: accuracy never exceeds the baseline.
    for method, cells in result.accuracies.items():
        for cell, acc in cells.items():
            assert acc <= PAPER_BASELINE_ACCURACY[cell] + 1e-9
