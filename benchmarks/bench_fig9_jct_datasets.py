"""Bench: Fig. 9 — average JCT by dataset (§7.2).

Paper numbers for Llama-70B on A10G prefill: HACK cuts JCT vs the
baseline by 38.6% (IMDb), 40.1% (HumanEval), 55.3% (arXiv), 61.6%
(Cocktail), and vs CacheGen by 19.2/22.5/36.8/41.5%.  The reproduction
asserts the ordering, the long-beats-short pattern, and that the
long-sequence reductions land in the paper's region.
"""

from conftest import run_once, show

from repro.experiments import fig9_12_jct

SCALE = 0.7


def test_fig9_jct_by_dataset(benchmark):
    result = run_once(benchmark, fig9_12_jct.run_fig9_fig10, scale=SCALE)
    show(result)

    for dataset in ("imdb", "arxiv", "cocktail", "humaneval"):
        jcts = {m: result.results[dataset][m].avg_jct()
                for m in ("baseline", "cachegen", "kvquant", "hack")}
        # Full ordering: HACK < CacheGen <= KVQuant < Baseline.
        assert jcts["hack"] < jcts["cachegen"], dataset
        assert jcts["cachegen"] <= jcts["kvquant"], dataset
        assert jcts["kvquant"] < jcts["baseline"], dataset

    # Long-sequence reductions exceed short-sequence ones.
    assert result.reduction("cocktail", "hack", "baseline") > \
        result.reduction("imdb", "hack", "baseline")
    assert result.reduction("arxiv", "hack", "baseline") > \
        result.reduction("humaneval", "hack", "baseline")

    # Long-sequence magnitudes in the paper's region (±~15 points).
    assert 0.40 <= result.reduction("cocktail", "hack", "baseline") <= 0.75
    assert 0.40 <= result.reduction("arxiv", "hack", "baseline") <= 0.72
    assert 0.25 <= result.reduction("cocktail", "hack", "cachegen") <= 0.55
