"""Bench: Table 8 — partition-size sensitivity (§7.5).

Paper: relative to Π=128, Π=32 gains up to 1.53 accuracy points but up
to 28% JCT; Π=64 gains less and costs less — the accuracy/performance
trade-off that makes Π=64 the default.
"""

from conftest import run_once, show

from repro.experiments import table8_sensitivity

SCALE = 0.5


def test_table8_sensitivity(benchmark):
    result = run_once(benchmark, table8_sensitivity.run, scale=SCALE,
                      n_trials=4)
    show(result)

    for dataset in ("imdb", "arxiv", "cocktail", "humaneval"):
        acc = result.accuracy_increase[dataset]
        jct = result.jct_increase[dataset]
        # Finer partitions buy accuracy and cost JCT, monotonically.
        assert acc[32] > acc[64] > 0, dataset
        assert jct[32] > jct[64] >= 0, dataset

    # The JCT penalty is largest on the longest dataset (paper: 28% on
    # Cocktail) and clearly positive there.
    assert result.jct_increase["cocktail"][32] == max(
        result.jct_increase[d][32] for d in result.jct_increase
    )
    assert result.jct_increase["cocktail"][32] > 0.05
