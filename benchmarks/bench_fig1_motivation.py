"""Bench: Fig. 1 — baseline bottleneck ratios (§2.1).

Regenerates all four panels and checks the §2.1 observations: comm up
to ~42% of the bucket sum on low-bandwidth instances but small on A100;
decode the largest bucket; pipelining ineffective exactly where the
paper says it is.
"""

from conftest import run_once, show

from repro.experiments import fig1_motivation

SCALE = 0.4


def test_fig1_motivation(benchmark):
    result = run_once(benchmark, fig1_motivation.run, scale=SCALE)
    show(result)

    comm = {gpu: vals[1] for gpu, vals in result.by_gpu.series.items()}
    decode = {gpu: vals[2] for gpu, vals in result.by_gpu.series.items()}

    # Fig 1(a): A100's 400 Gbps keeps comm tiny; 10-50 Gbps instances
    # pay double digits, V100 the most.
    assert comm["A100"] < 10.0
    for gpu in ("A10G", "V100", "T4", "L4"):
        assert comm[gpu] > 10.0
    assert comm["V100"] == max(comm.values())
    # Decode is the largest bucket except on V100, whose 10 Gbps NIC
    # lets communication take over (our network calibration is more
    # pessimistic there than the paper's Fig. 1(a); see EXPERIMENTS.md).
    for gpu, vals in result.by_gpu.series.items():
        if gpu != "V100":
            assert decode[gpu] == max(vals), gpu

    # Fig 1(c): long-sequence datasets dominate comm.
    ds_comm = {d: vals[1] for d, vals in result.by_dataset.series.items()}
    assert ds_comm["cocktail"] > ds_comm["imdb"]
    assert ds_comm["arxiv"] > ds_comm["humaneval"]

    # Fig 1(d): pipelining leaves a few percent exposed at light load;
    # on V100 — where comm far exceeds prefill, the paper's case (i) —
    # the ratio climbs steeply with RPS.  A100 stays small throughout.
    v100 = result.pipelining.series["V100"]
    assert v100[-1] > v100[0] + 5.0  # several points of growth
    assert max(result.pipelining.series["A100"]) < 10.0
    for gpu in ("A10G", "T4", "L4"):
        series = result.pipelining.series[gpu]
        assert series[-1] >= 0.8 * series[0]  # non-degrading with load
