"""Bench: §3 — the FP4/FP6/FP8 study.

Shape: comm ratios order FP4 < FP6 < FP8 on every prefill GPU, and all
three stay well above the 2-bit methods — low-precision floats cannot
fix the KV transfer bottleneck.
"""

from conftest import run_once, show

from repro.experiments import sec3_fp_formats

SCALE = 0.4


def test_sec3_fp_formats(benchmark):
    result = run_once(benchmark, sec3_fp_formats.run, scale=SCALE)
    show(result)

    for gpu, series in result.comm.series.items():
        fp4, fp6, fp8, hack = series
        assert fp4 < fp6 < fp8, gpu
        # HACK's 2-bit wire format beats every FP format.
        assert hack < fp4, gpu

    # On the bandwidth-starved instances FP8's comm ratio stays large
    # (the paper measures up to 37.5%).
    assert result.comm.series["V100"][2] > 15.0
