"""Bench: simulator throughput — span fast-forwarding vs token stepping.

Runs a fig9-style scenario (Llama-70B, A10G prefill, the paper's
four-way method comparison) in both decode step modes and reports
simulated decode tokens per wall-clock second, the speedup, and a
differential check that both modes produce the same results.

Plain script (no pytest fixtures) so CI can smoke it with only numpy
installed::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py --scale 0.1

There are deliberately no timing assertions — the speedup is printed
for the record; only the span-vs-token equivalence is asserted.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import Table
from repro.api import Runner, Scenario, compare_artifacts
from repro.methods.registry import PAPER_COMPARISON


def run(scale: float = 1.0, dataset: str = "cocktail",
        methods: tuple[str, ...] = PAPER_COMPARISON,
        rtol: float = 1e-9) -> Table:
    """Run both step modes; return the throughput table."""
    runner = Runner()
    base = Scenario(model="L", prefill_gpu="A10G", dataset=dataset,
                    methods=methods, scale=scale)
    artifacts = {
        mode: runner.run(base.replace(step_mode=mode))
        for mode in ("token", "span")
    }
    diff = compare_artifacts(artifacts["token"], artifacts["span"],
                             rtol=rtol)
    # step_mode is the only scenario field allowed to differ.
    mismatched = {m: d for m, d in diff["methods"].items() if d}
    if mismatched:
        raise AssertionError(
            f"span results diverge from token results beyond rtol={rtol}: "
            f"{mismatched}"
        )

    table = Table(f"Simulator throughput — {dataset}, Llama-70B/A10G "
                  f"(scale={scale})",
                  ["method", "tokens", "token-mode tok/s", "span-mode tok/s",
                   "speedup"])
    for method in methods:
        token = artifacts["token"].perf[method]
        span = artifacts["span"].perf[method]
        table.add_row(method, token["simulated_tokens"],
                      round(token["tokens_per_s"]),
                      round(span["tokens_per_s"]),
                      f'{token["wall_s"] / span["wall_s"]:.1f}x')
    return table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="trace-length multiplier (default 1.0)")
    parser.add_argument("--dataset", default="cocktail")
    parser.add_argument("--methods", default=",".join(PAPER_COMPARISON),
                        help="comma-separated method names")
    args = parser.parse_args(argv)
    table = run(scale=args.scale, dataset=args.dataset,
                methods=tuple(m for m in args.methods.split(",") if m))
    print(table.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
