"""Bench: simulator throughput — span fast-forwarding vs token stepping.

Runs a fig9-style scenario (Llama-70B, A10G prefill, the paper's
four-way method comparison) in both decode step modes and reports
simulated decode tokens per wall-clock second, the speedup, and a
differential check that both modes produce the same results.  A second
measurement runs one method with the tiered KV store enabled on the
same single-shot trace — every lookup misses, so the tokens/s delta is
the store's pure bookkeeping overhead on the hot path.  A third
measurement arms the fault machinery with a plan whose only event sits
far past the horizon — nothing ever fires, so the wall-clock delta is
the fault path's pure overhead, and the results must stay identical.
A fourth measurement arms the elastic subsystem with the ``static``
autoscaler and ``accept_all`` admission — the autoscaler never
evaluates and the admission never rejects, so the per-request records
must stay identical and the delta is the elastic path's pure overhead.
A fifth measurement times a full ``repro lint`` pass over the tree —
the invariant gate runs on every CI push, so its wall-clock (and that
it still reports zero non-baselined findings) is part of the record.

Plain script (no pytest fixtures) so CI can smoke it with only numpy
installed::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py --scale 0.1 \
        --bench-json BENCH_9.json

``--bench-json`` writes the numbers machine-readably (per-method
tokens/s and span-vs-token speedup, plus the kvstore, fault-path,
elastic-path overhead blocks and the lint-runtime block) for CI
artifact upload.  There are deliberately no timing assertions —
the speedup is printed for the record; only the span-vs-token
equivalence is asserted.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.tables import Table
from repro.api import Runner, Scenario, compare_artifacts
from repro.methods.registry import PAPER_COMPARISON


def run(scale: float = 1.0, dataset: str = "cocktail",
        methods: tuple[str, ...] = PAPER_COMPARISON,
        rtol: float = 1e-9) -> tuple[Table, dict]:
    """Run both step modes; return the throughput table + JSON record."""
    runner = Runner()
    base = Scenario(model="L", prefill_gpu="A10G", dataset=dataset,
                    methods=methods, scale=scale)
    artifacts = {
        mode: runner.run(base.replace(step_mode=mode))
        for mode in ("token", "span")
    }
    diff = compare_artifacts(artifacts["token"], artifacts["span"],
                             rtol=rtol)
    # step_mode is the only scenario field allowed to differ.
    mismatched = {m: d for m, d in diff["methods"].items() if d}
    if mismatched:
        raise AssertionError(
            f"span results diverge from token results beyond rtol={rtol}: "
            f"{mismatched}"
        )

    table = Table(f"Simulator throughput — {dataset}, Llama-70B/A10G "
                  f"(scale={scale})",
                  ["method", "tokens", "token-mode tok/s", "span-mode tok/s",
                   "speedup"])
    record = {"bench": "sim_throughput", "model": "L", "dataset": dataset,
              "prefill_gpu": "A10G", "scale": scale, "methods": {}}
    for method in methods:
        token = artifacts["token"].perf[method]
        span = artifacts["span"].perf[method]
        speedup = token["wall_s"] / span["wall_s"]
        table.add_row(method, token["simulated_tokens"],
                      round(token["tokens_per_s"]),
                      round(span["tokens_per_s"]),
                      f"{speedup:.1f}x")
        record["methods"][method] = {
            "simulated_tokens": token["simulated_tokens"],
            "token_tokens_per_s": token["tokens_per_s"],
            "span_tokens_per_s": span["tokens_per_s"],
            "span_speedup": speedup,
        }
    record["kvstore_overhead"] = _kvstore_overhead(runner, base)
    record["fault_overhead"] = _fault_overhead(runner, base)
    record["elastic_overhead"] = _elastic_overhead(runner, base)
    record["lint_runtime"] = _lint_runtime()
    return table, record


def _kvstore_overhead(runner: Runner, base: Scenario) -> dict:
    """The store's hot-path cost when it never helps.

    A single-shot (non-session) trace gives every request a unique
    cache key — 0% hit rate — so the only difference a configured store
    makes to wall-clock is its own lookup/put/eviction bookkeeping.
    """
    method = "hack"
    plain = runner.run(base.replace(methods=(method,)))
    stored = runner.run(base.replace(methods=(method,),
                                     kvstore="tiered?dram_gb=8.0"))
    wall_plain = plain.perf[method]["wall_s"]
    wall_store = stored.perf[method]["wall_s"]
    stats = stored.methods[method].summary["kvstore"]
    return {
        "method": method,
        "hit_rate": stats["hit_rate"],
        "lookups": stats["lookups"],
        "wall_s_plain": wall_plain,
        "wall_s_kvstore": wall_store,
        "overhead_frac": wall_store / wall_plain - 1.0
        if wall_plain > 0 else 0.0,
    }


def _fault_overhead(runner: Runner, base: Scenario) -> dict:
    """The fault machinery's cost when nothing ever fails.

    An armed plan whose single event starts far beyond the horizon
    exercises every per-event fault check (epoch guards, NIC factor,
    flap draws are all still gated off) without injecting anything, so
    the runs must produce byte-identical records and the wall-clock
    delta is the fault path's pure overhead.
    """
    method = "hack"
    plain = runner.run(base.replace(methods=(method,)))
    armed = runner.run(base.replace(methods=(method,),
                                    faults="nic_degrade?start=1e9,"
                                           "duration=1.0",
                                    recovery="retry"))
    if plain.methods[method].requests != armed.methods[method].requests:
        raise AssertionError(
            "armed-but-idle fault plan changed simulation results")
    wall_plain = plain.perf[method]["wall_s"]
    wall_armed = armed.perf[method]["wall_s"]
    return {
        "method": method,
        "wall_s_plain": wall_plain,
        "wall_s_faults_armed": wall_armed,
        "overhead_frac": wall_armed / wall_plain - 1.0
        if wall_plain > 0 else 0.0,
    }


def _elastic_overhead(runner: Runner, base: Scenario) -> dict:
    """The elastic machinery's cost when it never acts.

    The ``static`` autoscaler declares it never evaluates (zero heap
    events) and ``accept_all`` admits every arrival unchanged, so the
    armed run must produce byte-identical per-request records; the
    wall-clock delta is the cost of the replica-state checks and
    GPU-hour bookkeeping alone.
    """
    method = "hack"
    plain = runner.run(base.replace(methods=(method,)))
    armed = runner.run(base.replace(methods=(method,),
                                    autoscaler="static",
                                    admission="accept_all"))
    if plain.methods[method].requests != armed.methods[method].requests:
        raise AssertionError(
            "armed-but-idle elastic config changed simulation results")
    wall_plain = plain.perf[method]["wall_s"]
    wall_armed = armed.perf[method]["wall_s"]
    stats = armed.methods[method].summary["elastic"]
    return {
        "method": method,
        "scaling_events": stats["scaling_events"],
        "gpu_hours": stats["gpu_hours"],
        "wall_s_plain": wall_plain,
        "wall_s_elastic_armed": wall_armed,
        "overhead_frac": wall_armed / wall_plain - 1.0
        if wall_plain > 0 else 0.0,
    }


def _lint_runtime() -> dict:
    """One full ``repro lint`` pass, timed.

    The invariant gate runs on every push, so its cost rides along in
    the benchmark record; a clean tree must report zero non-baselined
    findings, and that is asserted here like the equivalence checks
    above.
    """
    from time import perf_counter

    from repro.lint import run_lint

    start = perf_counter()
    result = run_lint()
    wall = perf_counter() - start
    if not result.ok:
        raise AssertionError(
            "repro lint found non-baselined findings:\n"
            + "\n".join(f.render() for f in result.findings))
    return {
        "wall_s": wall,
        "n_files": result.n_files,
        "files_per_s": result.n_files / wall if wall > 0 else 0.0,
        "new_findings": len(result.findings),
        "baselined": len(result.baselined),
        "suppressed": len(result.suppressed),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="trace-length multiplier (default 1.0)")
    parser.add_argument("--dataset", default="cocktail")
    parser.add_argument("--methods", default=",".join(PAPER_COMPARISON),
                        help="comma-separated method names")
    parser.add_argument("--bench-json", default=None, metavar="PATH",
                        help="also write the numbers as JSON here "
                             "(machine-readable CI artifact)")
    args = parser.parse_args(argv)
    table, record = run(scale=args.scale, dataset=args.dataset,
                        methods=tuple(m for m in args.methods.split(",")
                                      if m))
    print(table.render())
    over = record["kvstore_overhead"]
    print(f"kvstore lookup overhead (all-miss, {over['lookups']} lookups): "
          f"{over['overhead_frac'] * 100:.1f}% wall "
          f"({over['wall_s_plain']:.3f}s -> {over['wall_s_kvstore']:.3f}s)")
    fover = record["fault_overhead"]
    print(f"fault-path overhead (armed, zero events fired): "
          f"{fover['overhead_frac'] * 100:.1f}% wall "
          f"({fover['wall_s_plain']:.3f}s -> "
          f"{fover['wall_s_faults_armed']:.3f}s)")
    eover = record["elastic_overhead"]
    print(f"elastic-path overhead (static autoscaler, "
          f"{eover['scaling_events']} scaling events): "
          f"{eover['overhead_frac'] * 100:.1f}% wall "
          f"({eover['wall_s_plain']:.3f}s -> "
          f"{eover['wall_s_elastic_armed']:.3f}s)")
    lint = record["lint_runtime"]
    print(f"repro lint runtime: {lint['wall_s']:.3f}s for "
          f"{lint['n_files']} files ({lint['files_per_s']:.0f} files/s, "
          f"{lint['new_findings']} findings, "
          f"{lint['suppressed']} pragma-suppressed)")
    if args.bench_json:
        path = Path(args.bench_json)
        path.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
        print(f"wrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
