"""Bench: Table 7 — the accuracy cost of disabling RQE (§7.4).

Paper: HACK/RQE loses 0.14–0.29 accuracy points versus HACK, the
smallest drop on IMDb (shortest outputs — requantization error only
accumulates during decode).
"""

from conftest import run_once, show

from repro.experiments import fig13_ablation


def test_table7_rqe_accuracy(benchmark):
    result = run_once(benchmark, fig13_ablation.run_table7, n_trials=4)
    show(result)

    # Every dataset loses accuracy, by a fraction of a point.
    for dataset, drop in result.drops.items():
        assert -1.0 < drop < 0.0, dataset

    # IMDb (shortest outputs) shows the smallest decrease.
    assert abs(result.drops["imdb"]) == min(
        abs(d) for d in result.drops.values()
    )

    # Magnitudes within ~3x of the paper's 0.14–0.29 points.
    for dataset, drop in result.drops.items():
        assert 0.02 <= abs(drop) <= 0.9, (dataset, drop)
