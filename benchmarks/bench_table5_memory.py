"""Bench: Table 5 — peak decode memory usage, plus the §7.4 overheads.

Shapes: the baseline's FP16 KV pressures memory hardest on the
long-sequence datasets; every quantized method cuts peak usage; HACK
sits at or slightly above CacheGen/KVQuant (SE sums + RQE buffer); the
SE and RQE side structures are small fractions of replica memory with
SE ≫ RQE.
"""

from conftest import run_once, show

from repro.experiments import table5_memory

SCALE = 0.5


def test_table5_memory(benchmark):
    result = run_once(benchmark, table5_memory.run, scale=SCALE)
    show(result)

    for dataset in ("imdb", "arxiv", "cocktail", "humaneval"):
        peaks = result.peaks[dataset]
        # Quantized methods never exceed the baseline's peak.
        for method in ("cachegen", "kvquant", "hack"):
            assert peaks[method] <= peaks["baseline"] + 1e-9, (dataset, method)
        # HACK's extras keep its peak essentially at the plain 2-bit
        # methods' level (paper: +0.6-2.9 points; here HACK's faster
        # drain can offset the static overhead, so allow near-equality).
        assert peaks["hack"] >= 0.98 * peaks["kvquant"], dataset

    # The *static* per-request claim behind §7.4: HACK's resident KV
    # bytes strictly exceed the comparators' (SE sums ride along).
    from repro.methods import get_method

    assert get_method("hack").kv_mem_bytes_per_value > \
        get_method("kvquant").kv_mem_bytes_per_value

    # Long-sequence baselines pressure memory hardest.
    assert result.peaks["cocktail"]["baseline"] > \
        result.peaks["imdb"]["baseline"]
    assert result.peaks["arxiv"]["baseline"] > \
        result.peaks["humaneval"]["baseline"]

    # §7.4 side structures: small, and SE sums dominate the RQE tail.
    assert 0 < result.rqe_fraction < 0.01
    for dataset, frac in result.se_fraction.items():
        assert 0 < frac < 0.03, dataset
    assert result.se_fraction["cocktail"] > result.rqe_fraction
