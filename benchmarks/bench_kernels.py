"""Bench: micro-benchmarks of the core kernels.

Characterizes the library's own primitives (numpy substrate, so
absolute times are not the paper's GPU times — the *count* claims are
what carry over):

* Eq. 4's per-iteration correction flops are orders of magnitude below
  the comparators' dequantization flops at long context (§5.3);
* HACK's wire bytes are ~6.4x smaller than FP16;
* the arithmetic coder and quantizer throughputs, for the record.
"""

import numpy as np
from conftest import run_once

from repro.core import costs, homomorphic_matmul, make_rng, quantize
from repro.core.kv_cache import DequantizingKVCache, HackKVCache
from repro.quant.entropy import decode, encode
from repro.quant.kvquant import kmeans_1d


def test_homomorphic_matmul_kernel(benchmark):
    rng = make_rng(0)
    a = rng.normal(size=(32, 128))
    b = rng.normal(size=(128, 512))
    qa = quantize(a, 8, axis=1, partition_size=64, rng=rng)
    qb = quantize(b, 2, axis=0, partition_size=64, rng=rng)
    out = benchmark(lambda: homomorphic_matmul(qa, qb))
    assert out.shape == (32, 512)


def test_quantize_kernel(benchmark):
    rng = make_rng(1)
    x = rng.normal(size=(1024, 128))
    qt = benchmark(lambda: quantize(x, 2, axis=1, partition_size=64,
                                    rounding="nearest"))
    assert qt.codes.shape == x.shape


def test_entropy_coder_roundtrip(benchmark):
    rng = make_rng(2)
    syms = np.clip(np.round(rng.normal(4, 1.0, size=2000)), 0, 7).astype(int)

    def roundtrip():
        data = encode(syms, 8)
        return decode(data, syms.size, 8)

    out = benchmark(roundtrip)
    np.testing.assert_array_equal(out, syms)


def test_decode_iteration_flop_claim(benchmark):
    """§5.3: at L=16K, dequantization costs ~50x the Eq. 4 corrections."""
    def counts():
        d_h, ctx = 128, 16200
        return (costs.kv_dequant_flops_per_iter(d_h, ctx),
                costs.hack_approx_flops_per_iter(d_h, ctx))

    dequant, approx = run_once(benchmark, counts)
    print(f"\ndequant flops/iter: {dequant:,}  approx flops/iter: {approx:,} "
          f"(ratio {dequant / approx:.0f}x)")
    assert dequant > 40 * approx


def test_cache_decode_step_hack_vs_dequant(benchmark):
    """One decode step on a 512-token cache, both cache families.

    The measured ledger must show the HACK cache doing no
    dequantization work while the comparator dequantizes everything.
    """
    d, n = 64, 512
    rng = make_rng(3)
    k = rng.normal(size=(n, d))
    v = rng.normal(size=(n, d))
    q = rng.normal(size=d)

    hack = HackKVCache(d, partition_size=32, rng=make_rng(0))
    hack.append_bulk(k, v)
    deq = DequantizingKVCache(d, partition_size=32, rng=make_rng(0))
    deq.append_bulk(k, v)

    def step():
        return hack.attention(q), deq.attention(q)

    benchmark(step)
    assert hack.ledger.dequant_flops == 0
    assert deq.ledger.dequant_flops > 0


def _kmeans_1d_python_loop(values, k, n_iter=25):
    """Pre-vectorization Lloyd's update (per-centroid Python loop) —
    the before case for the ``kmeans_1d`` bincount rewrite."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    quantiles = (np.arange(k) + 0.5) / k
    centroids = np.quantile(values, quantiles)
    for _ in range(n_iter):
        assignment = np.argmin(np.abs(values[:, None] - centroids[None, :]),
                               axis=1)
        for j in range(k):
            members = values[assignment == j]
            if members.size:
                centroids[j] = members.mean()
    return np.sort(centroids)


def test_kmeans_lloyd_python_loop(benchmark):
    """Before: per-centroid masked-mean loop (k passes over the data)."""
    rng = make_rng(5)
    sample = rng.normal(size=8192)
    out = benchmark(lambda: _kmeans_1d_python_loop(sample, 64))
    assert out.shape == (64,)


def test_kmeans_lloyd_vectorized(benchmark):
    """After: one ``np.bincount`` pair per Lloyd iteration.

    Must reproduce the loop version's centroids (identical assignments;
    means agree to accumulation order).
    """
    rng = make_rng(5)
    sample = rng.normal(size=8192)
    out = benchmark(lambda: kmeans_1d(sample, 64))
    np.testing.assert_allclose(out, _kmeans_1d_python_loop(sample, 64),
                               rtol=1e-12, atol=1e-12)


def test_wire_size_claim(benchmark):
    """HACK's quantized KV is ~6.4x smaller than FP16 on the wire."""
    rng = make_rng(4)
    plane = rng.normal(size=(1024, 128))

    def compress():
        qt = quantize(plane, 2, axis=1, partition_size=64, rng=make_rng(0))
        return qt.total_nbytes(with_sums=False)

    nbytes = run_once(benchmark, compress)
    ratio = (plane.size * 2) / nbytes
    print(f"\nwire compression: {ratio:.2f}x smaller than FP16")
    assert ratio > 5.5
