"""Bench: Fig. 10 — JCT decomposition (§7.2).

Shapes: quantization costs ~1–3% of JCT for every quantized method; KV
transfer drops by >75% once compressed; HACK's approximation bucket is
a small fraction of the comparators' dequantization bucket; HACK's
prefill beats everyone's on long sequences.
"""

from conftest import run_once, show

from repro.experiments import fig9_12_jct

SCALE = 0.5


def test_fig10_decomposition(benchmark):
    result = run_once(benchmark, fig9_12_jct.run_fig9_fig10, scale=SCALE)
    show(result)

    for dataset in ("arxiv", "cocktail"):
        decomp = {m: result.results[dataset][m].mean_decomposition()
                  for m in ("baseline", "cachegen", "kvquant", "hack")}
        jct = {m: result.results[dataset][m].avg_jct()
               for m in decomp}

        # Quantization cost is a one-time, low-percent overhead.
        for method in ("cachegen", "kvquant", "hack"):
            assert decomp[method]["quant"] / jct[method] < 0.05, (dataset, method)

        # KV transfer shrinks by >75% under every quantized method.
        for method in ("cachegen", "kvquant", "hack"):
            assert decomp[method]["comm"] < 0.25 * decomp["baseline"]["comm"]

        # HACK's Eq.4 approximation is far cheaper than dequantization.
        assert decomp["hack"]["dequant_or_approx"] < \
            0.25 * decomp["cachegen"]["dequant_or_approx"], dataset

        # HACK's INT8 prefill beats the others on long sequences.
        assert decomp["hack"]["prefill"] < decomp["baseline"]["prefill"]
        assert decomp["hack"]["prefill"] < decomp["cachegen"]["prefill"]

        # CacheGen/KVQuant decode (ex-dequant) beats the baseline's —
        # the reduced KV memory traffic (paper: 16.5–38.1%).
        assert decomp["cachegen"]["decode"] < decomp["baseline"]["decode"]
