"""Bench: Figs. 2–4 — comparator quantization overhead (§2.2).

Shape: CacheGen/KVQuant collapse the comm ratio but introduce a
dequantization bucket in the double-digit percent range on
long-sequence workloads — Observation 2.
"""

from conftest import run_once, show

from repro.experiments import fig1_motivation, fig2_4_quant_overhead

SCALE = 0.4


def test_fig2_4_quant_overhead(benchmark):
    result = run_once(benchmark, fig2_4_quant_overhead.run, scale=SCALE)
    show(result)

    baseline = fig1_motivation.run(scale=SCALE)
    base_comm = {g: v[1] for g, v in baseline.by_gpu.series.items()}

    for method in ("cachegen", "kvquant"):
        by_gpu = result.by_gpu[method].series
        for gpu in ("A10G", "V100", "T4", "L4"):
            comm = by_gpu[gpu][1]
            dequant = by_gpu[gpu][2]
            # Comm collapses relative to the baseline...
            assert comm < 0.4 * base_comm[gpu], (method, gpu)
            # ...but dequantization appears in its place.
            assert dequant > 5.0, (method, gpu)

        # Fig 4: long-sequence datasets pay far more dequantization.
        # Ratios compress the gap (the paper's 12-25x is in absolute
        # time, checked in tests/experiments); the ratio ordering and a
        # clear margin must still hold.
        by_ds = result.by_dataset[method].series
        assert by_ds["cocktail"][2] > 1.4 * by_ds["imdb"][2]
        assert by_ds["arxiv"][2] > 1.4 * by_ds["humaneval"][2]
