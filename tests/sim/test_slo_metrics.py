"""Serving metrics (TTFT/TBT/SLO) and the decode off-by-one regression.

The metric substrate is per-request token completion times, recorded
per iteration on the token path and via closed-form cumulative span
latencies on the fast path — so every metric must agree between the
two step modes to 1e-9, across all built-in arrival processes.
"""

import math

import numpy as np
import pytest

from repro.methods import get_method
from repro.model import get_model
from repro.sim import capacity_rps, default_cluster, simulate
from repro.sim.engine import DEFAULT_TBT_SLO_S, DEFAULT_TTFT_SLO_S
from repro.workload import TraceRequest, generate_trace, get_dataset

L = get_model("L")
RTOL = 1e-9

ARRIVALS = ("constant", "poisson", "gamma?cv=3.0",
            "mmpp?burst=4.0,duty=0.2,dwell=10.0",
            "diurnal?amp=0.8,period=120.0")


def _close(a, b):
    return math.isclose(a, b, rel_tol=RTOL, abs_tol=1e-12)


def _run(method="hack", dataset="cocktail", n=30, seed=0, rps=None,
         arrival="poisson", step_mode="span", **cfg):
    config = default_cluster(L, get_method(method), "A10G",
                             step_mode=step_mode, **cfg)
    if rps is None:
        rps = capacity_rps(config, get_dataset(dataset)) * 1.05
    trace = generate_trace(dataset, rps, n, seed=seed, arrival=arrival)
    return simulate(config, trace)


class TestOffByOneRegression:
    """`output_len == 1` requests must run zero decode iterations: the
    prefill stage already produced their only token."""

    @pytest.fixture(scope="class", params=("span", "token"))
    def result(self, request):
        trace = [
            TraceRequest(0, 0.1, input_len=500, output_len=1),
            TraceRequest(1, 0.2, input_len=400, output_len=2),
            TraceRequest(2, 0.3, input_len=300, output_len=5),
        ]
        config = default_cluster(L, get_method("baseline"), "A10G",
                                 step_mode=request.param)
        return simulate(config, trace)

    def test_single_token_request_skips_decode(self, result):
        one = result.requests[0]
        assert one.tokens_generated == 0
        assert one.decode_s == 0.0
        assert one.finish == one.transfer_end
        assert one.token_times().size == 0
        assert one.tbt_gaps().size == 0

    def test_multi_token_requests_unchanged(self, result):
        for req, expected in zip(result.requests[1:], (1, 4)):
            assert req.tokens_generated == expected
            assert req.token_times().size == expected
            assert req.decode_s > 0

    def test_all_requests_complete_with_consistent_timeline(self, result):
        assert len(result.requests) == 3
        for r in result.requests:
            assert r.arrival <= r.prefill_start <= r.prefill_end
            assert r.prefill_end <= r.transfer_end <= r.finish
            assert r.jct > 0

    @pytest.mark.parametrize("mode", ("span", "token"))
    def test_degenerate_lengths_rejected_up_front(self, mode):
        """output_len == 0 used to be silently promoted to 1 by the
        removed ``max(1, …)``; now both modes reject it at entry
        instead of crashing deep inside the span engine."""
        config = default_cluster(L, get_method("baseline"), "A10G",
                                 step_mode=mode)
        for bad in (TraceRequest(0, 0.1, input_len=100, output_len=0),
                    TraceRequest(0, 0.1, input_len=0, output_len=10)):
            with pytest.raises(ValueError, match="output_len >= 1"):
                simulate(config, [bad])


class TestTokenTimes:
    @pytest.fixture(scope="class")
    def result(self):
        return _run(n=25)

    def test_count_is_output_len_minus_one(self, result):
        for r in result.requests:
            assert r.token_times().size == r.trace.output_len - 1
            assert r.tokens_generated == r.trace.output_len - 1

    def test_monotone_and_bracketed(self, result):
        for r in result.requests:
            times = r.token_times()
            assert np.all(np.diff(times) > 0)
            assert times[0] > r.decode_start
            assert _close(times[-1], r.finish)

    def test_ttft_is_prefill_end(self, result):
        for r in result.requests:
            assert _close(r.ttft, r.prefill_end - r.arrival)
            assert r.ttft > 0

    def test_gap_count_and_positivity(self, result):
        for r in result.requests:
            gaps = r.tbt_gaps()
            assert gaps.size == r.trace.output_len - 1
            assert np.all(gaps > 0)

    def test_first_gap_includes_transfer(self, result):
        """The first decode token trails prefill's token by at least
        the KV transfer — the stall compression shrinks."""
        for r in result.requests:
            gaps = r.tbt_gaps()
            if gaps.size:
                assert gaps[0] >= r.transfer_end - r.prefill_end - 1e-12


class TestResultMetrics:
    @pytest.fixture(scope="class")
    def result(self):
        return _run(n=30)

    def test_percentiles_ordered(self, result):
        assert result.ttft_percentile(50) <= result.ttft_percentile(99)
        assert result.tbt_percentile(50) <= result.tbt_percentile(99)

    def test_attainment_monotone_in_slo(self, result):
        tight = result.slo_attainment(1.0, 0.01)
        mid = result.slo_attainment(DEFAULT_TTFT_SLO_S, DEFAULT_TBT_SLO_S)
        loose = result.slo_attainment(1e9, 1e9)
        assert 0.0 <= tight <= mid <= loose == 1.0

    def test_goodput_bounded_by_throughput(self, result):
        rate = len(result.requests) / result.makespan_s()
        assert 0.0 <= result.slo_goodput_rps() <= rate + 1e-12

    def test_summary_v2_keys(self, result):
        s = result.summary()
        for key in ("mean_ttft_s", "p50_ttft_s", "p95_ttft_s", "p99_ttft_s",
                    "mean_tbt_s", "p50_tbt_s", "p95_tbt_s", "p99_tbt_s",
                    "mean_normalized_latency_s", "slo_ttft_s", "slo_tbt_s",
                    "slo_attainment", "slo_goodput_rps"):
            assert key in s, key
        assert s["slo_ttft_s"] == DEFAULT_TTFT_SLO_S
        assert s["slo_tbt_s"] == DEFAULT_TBT_SLO_S

    def test_summary_accepts_custom_slo(self, result):
        s = result.summary(ttft_slo_s=1e9, tbt_slo_s=1e9)
        assert s["slo_attainment"] == 1.0

    def test_normalized_latency(self, result):
        expected = np.mean([r.jct / r.trace.output_len
                            for r in result.requests])
        assert _close(result.mean_normalized_latency(), float(expected))

    def test_records_carry_metrics(self, result):
        rec = result.to_records()[0]
        for key in ("ttft_s", "tbt_mean_s", "tbt_p99_s", "tbt_max_s",
                    "normalized_latency_s"):
            assert key in rec, key
        assert rec["tbt_mean_s"] <= rec["tbt_max_s"] + 1e-12


class TestStepModeAgreement:
    """TTFT/TBT/SLO must agree between span and token stepping to 1e-9
    across every built-in arrival process (the metric substrate is
    computed very differently in the two modes)."""

    @pytest.mark.parametrize("arrival", ARRIVALS)
    @pytest.mark.parametrize("method", ("baseline", "hack"))
    def test_metrics_agree(self, arrival, method):
        token = _run(method=method, arrival=arrival, n=24, seed=3,
                     step_mode="token")
        span = _run(method=method, arrival=arrival, n=24, seed=3,
                    step_mode="span")
        st, ss = token.summary(), span.summary()
        for key in st:
            if key == "mean_decomposition_s":
                continue
            assert _close(st[key], ss[key]), f"{key}: {st[key]} vs {ss[key]}"
        for rt, rs in zip(token.requests, span.requests):
            assert _close(rt.ttft, rs.ttft)
            tt, ts = rt.token_times(), rs.token_times()
            assert tt.size == ts.size
            np.testing.assert_allclose(tt, ts, rtol=RTOL)

    def test_agreement_with_single_token_requests(self):
        """Mixed trace incl. output_len==1 exercises the immediate-finish
        path in both modes."""
        trace = [TraceRequest(i, 0.05 * (i + 1), input_len=200 + 10 * i,
                              output_len=1 + (i % 4) * 3)
                 for i in range(12)]
        results = {}
        for mode in ("token", "span"):
            config = default_cluster(L, get_method("hack"), "A10G",
                                     step_mode=mode)
            results[mode] = simulate(config, trace)
        st = results["token"].summary()
        ss = results["span"].summary()
        for key in st:
            if key == "mean_decomposition_s":
                continue
            assert _close(st[key], ss[key]), key
