"""Fault/recovery spec grammar, registries and timeline determinism."""

import numpy as np
import pytest

from repro.sim import (
    FaultPlan,
    FaultSpec,
    RecoverySpec,
    canonical_faults,
    canonical_recovery,
    fault_families,
    parse_faults,
    parse_recovery,
    recovery_policies,
    register_fault,
    register_recovery,
    split_faults_list,
    split_recovery_list,
)
from repro.sim.faults import FaultFamily, FaultParam, has_fault_families
from repro.sim.recovery import RecoveryPolicy, has_recovery_policy


class TestFaultGrammar:
    def test_parse_and_canonical(self):
        plan = parse_faults("replica_crash?mttr=15,mttf=120")
        assert plan.canonical() == "replica_crash?mttf=120.0,mttr=15.0"

    def test_bare_family_keeps_no_params(self):
        plan = parse_faults("transfer_flap")
        assert plan.canonical() == "transfer_flap"
        assert plan.faults[0].resolved_params() == {"p_fail": 0.05}

    def test_composition_preserves_order(self):
        plan = parse_faults("transfer_flap?p_fail=0.01+replica_crash")
        assert plan.canonical() == \
            "transfer_flap?p_fail=0.01+replica_crash"
        assert [s.kind for s in plan.faults] == \
            ["transfer_flap", "replica_crash"]

    def test_repeated_family_allowed(self):
        plan = parse_faults(
            "nic_degrade?start=10,duration=5+nic_degrade?start=50,duration=5")
        assert len(plan.faults) == 2

    def test_unknown_family_suggests(self):
        with pytest.raises(ValueError, match="replica_crash"):
            parse_faults("replica_crsh")

    def test_unknown_param_suggests(self):
        with pytest.raises(ValueError, match="mttf"):
            parse_faults("replica_crash?mtff=60")

    def test_word_param_validated(self):
        assert parse_faults("replica_crash?role=prefill").faults[0] \
            .resolved_params()["role"] == "prefill"
        with pytest.raises(ValueError, match="role"):
            parse_faults("replica_crash?role=gateway")

    @pytest.mark.parametrize("bad", [
        "replica_crash?mttf=0", "replica_crash?mttr=-1",
        "replica_crash?replicas=0.5", "nic_degrade?factor=0",
        "nic_degrade?factor=1.5", "nic_degrade?duration=0",
        "transfer_flap?p_fail=1.1", "kvstore_outage?duration=-5",
    ])
    def test_out_of_range_params_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_faults(bad)

    def test_duplicate_param_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            parse_faults("transfer_flap?p_fail=0.1,p_fail=0.2")

    def test_split_keeps_params_attached(self):
        assert split_faults_list(
            "transfer_flap,replica_crash?mttf=300,mttr=20+nic_degrade"
        ) == ["transfer_flap", "replica_crash?mttf=300,mttr=20+nic_degrade"]

    def test_split_continuation_only_inside_open_clause(self):
        assert split_faults_list("nic_degrade+transfer_flap,nic_degrade") \
            == ["nic_degrade+transfer_flap", "nic_degrade"]

    def test_has_fault_families(self):
        assert has_fault_families("replica_crash+transfer_flap?p_fail=0.1")
        assert not has_fault_families("replica_crash+mystery_fault")

    def test_canonical_accepts_plan_spec_and_string(self):
        spec = FaultSpec.of("transfer_flap", p_fail=0.1)
        assert canonical_faults(spec) == "transfer_flap?p_fail=0.1"
        assert canonical_faults(FaultPlan((spec,))) == \
            "transfer_flap?p_fail=0.1"
        assert canonical_faults("transfer_flap?p_fail=0.1") == \
            "transfer_flap?p_fail=0.1"


class TestTimeline:
    def _timeline(self, text, horizon=500.0, seed=None):
        plan = parse_faults(text)
        rng = np.random.default_rng(plan.rng_seed()
                                    if seed is None else seed)
        return plan.timeline(rng, horizon, n_prefill=5, n_decode=4)

    def test_seed_is_a_pure_function_of_the_canonical_string(self):
        a = parse_faults("replica_crash?mttf=120,mttr=15")
        b = parse_faults("replica_crash?mttr=15,mttf=120")
        assert a.rng_seed() == b.rng_seed()
        assert a.rng_seed() != parse_faults("replica_crash").rng_seed()

    def test_timeline_deterministic(self):
        assert self._timeline("replica_crash?mttf=50,mttr=10,replicas=2") \
            == self._timeline("replica_crash?mttf=50,mttr=10,replicas=2")

    def test_timeline_sorted_and_paired(self):
        events = self._timeline("replica_crash?mttf=40,mttr=5")
        times = [t for t, _, _ in events]
        assert times == sorted(times)
        downs = [e for e in events if e[1] == "replica_down"]
        ups = [e for e in events if e[1] == "replica_up"]
        assert len(downs) == len(ups) > 0   # every crash gets a repair

    def test_crash_leaves_one_replica_unaffected(self):
        events = self._timeline(
            "replica_crash?mttf=10,mttr=1,replicas=99,role=decode")
        targets = {payload[1] for _, kind, payload in events}
        assert targets <= set(range(3))     # fleet of 4 -> at most 3

    def test_window_families_emit_on_off_pairs(self):
        events = self._timeline(
            "nic_degrade?factor=0.5,start=10,duration=20"
            "+kvstore_outage?tier=pool,start=5,duration=50")
        assert (10.0, "nic_on", 0.5) in events
        assert (30.0, "nic_off", 0.5) in events
        assert (5.0, "kv_dark", ("pool", True)) in events
        assert (55.0, "kv_dark", ("pool", False)) in events

    def test_flap_probability_composes_independently(self):
        plan = parse_faults(
            "transfer_flap?p_fail=0.5+transfer_flap?p_fail=0.5")
        assert plan.transfer_fail_prob() == pytest.approx(0.75)
        assert parse_faults("replica_crash").transfer_fail_prob() == 0.0


class TestFaultRegistry:
    def test_builtins_registered(self):
        assert {"replica_crash", "nic_degrade", "transfer_flap",
                "kvstore_outage"} <= set(fault_families())

    def test_custom_family_round_trips(self):
        @register_fault(replace=True)
        class BlackoutFault(FaultFamily):
            name = "test_blackout"
            description = "everything down for a window"
            params = {"start": FaultParam(10.0, "window start")}

            def events(self, rng, horizon_s, n_prefill, n_decode):
                return [(self.p["start"], "nic_on", 0.5)]

        try:
            plan = parse_faults("test_blackout?start=3")
            assert plan.canonical() == "test_blackout?start=3.0"
            rng = np.random.default_rng(0)
            assert plan.timeline(rng, 100.0, 1, 1) == [(3.0, "nic_on", 0.5)]
        finally:
            import repro.sim.faults as faults_mod
            faults_mod._FAULTS.pop("test_blackout", None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_fault
            class Dup(FaultFamily):
                name = "transfer_flap"

    def test_non_family_rejected(self):
        with pytest.raises(TypeError):
            register_fault(object)


class TestRecoveryGrammar:
    def test_parse_and_canonical(self):
        spec = parse_recovery("retry?max=5,base_s=0.5")
        assert spec.canonical() == "retry?base_s=0.5,max=5.0"
        assert canonical_recovery("none") == "none"

    def test_unknown_policy_suggests(self):
        with pytest.raises(ValueError, match="retry"):
            parse_recovery("rety")

    @pytest.mark.parametrize("bad", [
        "retry?max=0", "retry?base_s=0", "retry?base_s=10,cap_s=1",
        "migrate?max=0.5",
    ])
    def test_out_of_range_params_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_recovery(bad)

    def test_split_keeps_params_attached(self):
        assert split_recovery_list("none,retry?max=5,base_s=0.5,migrate") \
            == ["none", "retry?max=5,base_s=0.5", "migrate"]
        assert split_recovery_list("none,migrate,retry") == \
            ["none", "migrate", "retry"]

    def test_has_recovery_policy(self):
        assert has_recovery_policy("retry?max=2")
        assert not has_recovery_policy("give_up")


class TestRecoveryPolicies:
    def test_builtins_registered(self):
        assert {"none", "retry", "migrate"} <= set(recovery_policies())

    def test_none_fails_immediately(self):
        policy = RecoverySpec("none").build()
        assert policy.delay(None, 1, np.random.default_rng(0)) is None

    def test_retry_backoff_doubles_within_jitter(self):
        policy = parse_recovery("retry?max=4,base_s=1.0,cap_s=100.0").build()
        rng = np.random.default_rng(0)
        for attempt in range(1, 5):
            d = policy.delay(None, attempt, rng)
            backoff = 2.0 ** (attempt - 1)
            assert 0.5 * backoff <= d < 1.5 * backoff
        assert policy.delay(None, 5, rng) is None

    def test_retry_backoff_capped(self):
        policy = parse_recovery("retry?max=9,base_s=1.0,cap_s=2.0").build()
        rng = np.random.default_rng(0)
        for attempt in range(1, 10):
            assert policy.delay(None, attempt, rng) < 3.0

    def test_retry_jitter_is_deterministic_per_stream(self):
        policy = parse_recovery("retry").build()
        a = policy.delay(None, 1, np.random.default_rng(7))
        b = policy.delay(None, 1, np.random.default_rng(7))
        assert a == b

    def test_migrate_is_immediate_until_exhausted(self):
        policy = parse_recovery("migrate?max=2").build()
        rng = np.random.default_rng(0)
        assert policy.delay(None, 1, rng) == 0.0
        assert policy.delay(None, 2, rng) == 0.0
        assert policy.delay(None, 3, rng) is None

    def test_custom_policy_registers(self):
        @register_recovery(replace=True)
        class HalfRecovery(RecoveryPolicy):
            name = "test_half"
            description = "fixed half-second delay"

            def delay(self, req, attempt, rng):
                return 0.5

        try:
            assert parse_recovery("test_half").build() \
                .delay(None, 1, np.random.default_rng(0)) == 0.5
        finally:
            import repro.sim.recovery as recovery_mod
            recovery_mod._RECOVERIES.pop("test_half", None)
