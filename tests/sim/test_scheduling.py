"""Scheduling & placement policies: differential, grammar, fleet and
edge-case regression tests.

The dispatch/placement refactor must not move a single bit of the
paper's results: the default pair is pinned against pre-refactor golden
JCTs across all 13 legacy methods × both step modes, and the fig9/fig10
render is pinned byte-identical with and without an explicit default
scheduler.  The rest covers the policy grammar, heterogeneous prefill
fleets, the no-swap/reject path and the goodput/empty-aggregate/
capacity-clipping bugfixes that ride along.
"""

import json
import math

import pytest

from repro.api import Runner, Scenario, Sweep
from repro.experiments import fig9_12_jct
from repro.methods import get_method
from repro.model import get_model
from repro.sim import (
    ClusterConfig,
    SimulationResult,
    canonical_scheduler,
    capacity_rps,
    default_cluster,
    parse_scheduler,
    simulate,
    split_scheduler_list,
    stage_capacities,
)
from repro.sim.capacity import clipped_mean_lengths
from repro.sim.request import BUCKETS, SimRequest
from repro.sim.scheduling import PolicySpec, SchedulerSpec
from repro.cluster import parse_fleet_spec
from repro.workload import generate_trace, get_dataset, merge_traces
from repro.workload.traces import TraceRequest

L = get_model("L")

#: avg JCT of the §7.1 cell (cocktail, A10G, n=30, seed=0, 1.05×
#: baseline capacity) captured from the engine *before* dispatch/
#: placement were extracted into policies.  The default policy pair
#: must keep reproducing these bit-for-bit.
GOLDEN_AVG_JCT = {
    "baseline": {"token": 50.13010979397682, "span": 50.13010979397681},
    "cachegen": {"token": 36.39329589301899, "span": 36.39329589301897},
    "fp4": {"token": 39.245246146400746, "span": 39.245246146400746},
    "fp6": {"token": 42.21920051108222, "span": 42.21920051108223},
    "fp8": {"token": 43.32599326807183, "span": 43.32599326807182},
    "hack": {"token": 27.588283680614115, "span": 27.588283680614122},
    "hack_int4": {"token": 25.834402922815205, "span": 25.83440292281519},
    "hack_norqe": {"token": 27.70352120163705, "span": 27.703521201637038},
    "hack_nose": {"token": 33.342993035299656, "span": 33.342993035299656},
    "hack_pi128": {"token": 26.765659149019537, "span": 26.765659149019573},
    "hack_pi32": {"token": 29.25686974454113, "span": 29.256869744541145},
    "hack_pi64": {"token": 27.588283680614115, "span": 27.588283680614122},
    "kvquant": {"token": 38.488306540913904, "span": 38.4883065409139},
}

#: stage_capacities of the default baseline cluster (L, A10G) captured
#: pre-change: the capacity clipping fix must not move datasets whose
#: lengths fit the model context.
GOLDEN_CAPACITIES = {
    "imdb": (43.79604078695019, 35.810052024843586, 139.77343424640236),
    "arxiv": (1.6748627343407034, 1.8152035641885027, 1.1067634272904308),
    "cocktail": (0.46893232941571916, 0.7062258612000643,
                 0.6661706701111139),
    "humaneval": (68.01406317006631, 54.867300142567196, 44.62613980972785),
}


def _cell(method: str, mode: str, scheduler=None, gpu: str = "A10G",
          n: int = 30, seed: int = 0):
    config = default_cluster(L, get_method(method), gpu, step_mode=mode,
                             scheduler=scheduler)
    rate = capacity_rps(config, get_dataset("cocktail")) * 1.05
    trace = generate_trace("cocktail", rate, n, seed=seed)
    return simulate(config, trace)


def _assert_equivalent(a, b, rtol=1e-9):
    assert a.n_swapped == b.n_swapped
    assert a.n_rejected == b.n_rejected
    assert len(a.requests) == len(b.requests)
    for ra, rb in zip(a.requests, b.requests):
        assert ra.request_id == rb.request_id
        assert math.isclose(ra.jct, rb.jct, rel_tol=rtol, abs_tol=1e-12)
        da, db = ra.decomposition(), rb.decomposition()
        for bucket in da:
            assert math.isclose(da[bucket], db[bucket], rel_tol=rtol,
                                abs_tol=1e-12)


class TestDefaultPairGolden:
    """The refactored default pair is the pre-refactor engine, bitwise."""

    @pytest.mark.parametrize("method", sorted(GOLDEN_AVG_JCT))
    @pytest.mark.parametrize("mode", ("token", "span"))
    def test_avg_jct_unmoved(self, method, mode):
        assert _cell(method, mode).avg_jct() == \
            pytest.approx(GOLDEN_AVG_JCT[method][mode], rel=1e-12)

    def test_explicit_default_scheduler_identical(self):
        implicit = _cell("hack", "span")
        explicit = _cell("hack", "span",
                         scheduler="splitwise+shortest_queue")
        _assert_equivalent(implicit, explicit, rtol=0.0)

    def test_fig9_fig10_tables_byte_identical(self, monkeypatch):
        """fig9/fig10 must render byte-identically with the default
        scheduler spelled out."""
        default_text = fig9_12_jct.run_fig9_fig10(scale=0.1).render()
        explicit_sweep = Sweep(
            fig9_12_jct.FIG9_SWEEP.base.replace(
                scheduler="splitwise+shortest_queue"),
            axes=fig9_12_jct.FIG9_SWEEP.axes,
        )
        monkeypatch.setattr(fig9_12_jct, "FIG9_SWEEP", explicit_sweep)
        explicit_text = fig9_12_jct.run_fig9_fig10(scale=0.1).render()
        assert default_text == explicit_text


class TestPolicyGrammar:
    def test_single_dispatch(self):
        spec = parse_scheduler("round_robin")
        assert spec.dispatch.kind == "round_robin"
        assert spec.placement is None
        assert spec.canonical() == "round_robin"

    def test_single_placement(self):
        spec = parse_scheduler("best_fit")
        assert spec.dispatch is None
        assert spec.placement.kind == "best_fit"
        assert spec.canonical() == "best_fit"

    def test_pair_canonical_order(self):
        # Canonical form puts dispatch first regardless of input order.
        assert canonical_scheduler("best_fit+round_robin") == \
            "round_robin+best_fit"
        assert canonical_scheduler("round_robin+best_fit") == \
            "round_robin+best_fit"

    def test_params_round_trip(self):
        text = canonical_scheduler("random?seed=7")
        assert text == "random?seed=7.0"
        assert canonical_scheduler(text) == text

    def test_default_spec_canonical(self):
        assert SchedulerSpec().canonical() == "splitwise+shortest_queue"

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            parse_scheduler("warp")

    def test_typo_suggestion(self):
        with pytest.raises(ValueError, match="splitwise"):
            parse_scheduler("splitwize")

    def test_two_dispatch_policies_rejected(self):
        with pytest.raises(ValueError, match="two dispatch"):
            parse_scheduler("splitwise+round_robin")

    def test_two_placement_policies_rejected(self):
        with pytest.raises(ValueError, match="two placement"):
            parse_scheduler("best_fit+no_swap")

    def test_bad_parameter(self):
        with pytest.raises(ValueError, match="no parameter"):
            parse_scheduler("random?foo=1")
        with pytest.raises(ValueError, match="bad policy parameter"):
            parse_scheduler("random?seed")

    def test_param_validation(self):
        with pytest.raises(ValueError, match="seed"):
            parse_scheduler("random?seed=-1")
        with pytest.raises(ValueError, match="seed"):
            parse_scheduler("random?seed=1.5")

    def test_wrong_role_slot_rejected(self):
        with pytest.raises(ValueError, match="dispatch slot"):
            SchedulerSpec(dispatch=PolicySpec("placement", "best_fit"))

    def test_split_scheduler_list(self):
        assert split_scheduler_list(
            "splitwise,random?seed=3+no_swap,least_work"
        ) == ["splitwise", "random?seed=3+no_swap", "least_work"]
        # A key=value token after an open ? clause continues the clause.
        assert split_scheduler_list("random?seed=3,best_fit") == \
            ["random?seed=3", "best_fit"]


class TestScenarioPlumbing:
    def test_scheduler_round_trips(self):
        s = Scenario(scheduler="round_robin+best_fit")
        assert Scenario.from_json(s.to_json()).scheduler == \
            "round_robin+best_fit"
        assert "scheduler=round_robin+best_fit" in s.describe()

    def test_defaulted_scenario_serializes_as_before(self):
        assert "scheduler" not in Scenario().to_dict()

    def test_unknown_policy_string_kept_verbatim(self):
        s = Scenario(scheduler="my_custom_policy?knob=2")
        assert s.scheduler == "my_custom_policy?knob=2"
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            Runner().run(s.replace(n_requests=10))

    def test_known_policy_with_bad_params_rejected(self):
        with pytest.raises(ValueError, match="no parameter"):
            Scenario(scheduler="random?foo=3")

    def test_sweep_axis(self):
        sweep = Sweep(Scenario(methods=("baseline",)),
                      axes={"scheduler": ("splitwise",
                                          "round_robin+best_fit")})
        expanded = sweep.expand()
        assert [s.scheduler for s in expanded] == \
            ["splitwise", "round_robin+best_fit"]

    def test_scheduler_spec_object_canonicalized(self):
        s = Scenario(scheduler=SchedulerSpec(
            dispatch=PolicySpec("dispatch", "nic_aware")))
        assert s.scheduler == "nic_aware"

    def test_cluster_config_coerces_grammar_strings(self):
        config = ClusterConfig(model=L, method=get_method("hack"),
                               prefill_gpu="A10G", n_prefill_replicas=2,
                               n_decode_replicas=1,
                               scheduler="round_robin+no_swap")
        assert isinstance(config.scheduler, SchedulerSpec)
        assert config.scheduler.canonical() == "round_robin+no_swap"
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            ClusterConfig(model=L, method=get_method("hack"),
                          prefill_gpu="A10G", n_prefill_replicas=2,
                          n_decode_replicas=1, scheduler="warp")


class TestHeterogeneousFleets:
    def test_fleet_grammar(self):
        assert parse_fleet_spec("A10G") == (("A10G", None),)
        assert parse_fleet_spec("a10g+t4") == (("A10G", None), ("T4", None))
        assert parse_fleet_spec("A10G:2+T4:4") == (("A10G", 2), ("T4", 4))
        with pytest.raises(ValueError, match="repeats"):
            parse_fleet_spec("A10G+A10G:2")
        with pytest.raises(ValueError, match="count"):
            parse_fleet_spec("A10G:0")
        with pytest.raises(ValueError, match="count"):
            parse_fleet_spec("A10G:x")

    def test_default_cluster_mixed_fleet(self):
        config = default_cluster(L, get_method("hack"), "A10G+T4")
        # §7.1 defaults: ten g5.12xlarge → 5 replicas, sixteen
        # g4dn.12xlarge → 4 replicas (TP4·PP4 on T4).
        assert config.prefill_fleets == (("A10G", 5), ("T4", 4))
        assert config.n_prefill_replicas == 9
        assert config.prefill_gpu == "A10G:5+T4:4"

    def test_explicit_replica_counts(self):
        config = default_cluster(L, get_method("hack"), "A10G:2+T4:3")
        assert config.prefill_fleets == (("A10G", 2), ("T4", 3))
        assert config.n_prefill_replicas == 5

    def test_single_fleet_unchanged_shape(self):
        config = default_cluster(L, get_method("hack"), "A10G")
        assert config.prefill_fleets is None
        assert config.prefill_gpu == "A10G"

    def test_instances_override_rejected_for_fleets(self):
        with pytest.raises(ValueError, match="n_prefill_instances"):
            default_cluster(L, get_method("hack"), "A10G+T4",
                            n_prefill_instances=4)
        # …and for an explicit replica count, which it would otherwise
        # silently lose against.
        with pytest.raises(ValueError, match="n_prefill_instances"):
            default_cluster(L, get_method("hack"), "A10G:3",
                            n_prefill_instances=7)

    def test_prefill_replica_ambiguous_on_mixed_fleet(self):
        config = default_cluster(L, get_method("hack"), "A10G+T4")
        with pytest.raises(ValueError, match="ambiguous"):
            config.prefill_replica()
        # Homogeneous configs keep the historical behaviour.
        single = default_cluster(L, get_method("hack"), "A10G")
        assert single.prefill_replica().mem_gb > 0

    def test_misbehaving_placement_policy_caught(self):
        """A custom policy returning a sentinel index or ignoring the
        reservation must fail loudly, not over-commit memory."""
        from repro.sim.engine import Simulator

        config = default_cluster(L, get_method("hack"), "A10G")
        trace = generate_trace("cocktail", 0.5, 5, seed=0)

        class BadIndex:
            name, swap_on_full = "bad_index", True
            def choose(self, now, req, replicas, reserve):
                return -1

        sim = Simulator(config, trace)
        sim.placement = BadIndex()
        with pytest.raises(ValueError, match="bad_index"):
            sim.run()

        class NoRoom:
            name, swap_on_full = "no_room", True
            def choose(self, now, req, replicas, reserve):
                return max(range(len(replicas)),
                           key=lambda i: -replicas[i].free_bytes())

        scarce = default_cluster(L, get_method("baseline"), "A10G",
                                 n_decode_instances=1,
                                 activation_overhead=1.19)
        sim = Simulator(scarce, generate_trace("cocktail", 1.0, 5, seed=3))
        sim.placement = NoRoom()
        with pytest.raises(ValueError, match="without room"):
            sim.run()

    def test_replica_override_rejected_for_fleets(self):
        scenario = Scenario(methods=("baseline",), prefill_gpu="A10G+T4",
                            n_prefill_replicas=3, n_requests=10)
        with pytest.raises(ValueError, match="fleet"):
            Runner().run(scenario)

    def test_config_fleet_total_validated(self):
        with pytest.raises(ValueError, match="summed fleet counts"):
            ClusterConfig(model=L, method=get_method("hack"),
                          prefill_gpu="A10G:1+T4:1",
                          n_prefill_replicas=5, n_decode_replicas=1,
                          prefill_fleets=(("A10G", 1), ("T4", 1)))

    def test_capacity_sums_over_fleets(self):
        ds = get_dataset("cocktail")
        a10g = stage_capacities(
            default_cluster(L, get_method("baseline"), "A10G:5"), ds)
        t4 = stage_capacities(
            default_cluster(L, get_method("baseline"), "T4:4"), ds)
        both = stage_capacities(
            default_cluster(L, get_method("baseline"), "A10G:5+T4:4"), ds)
        assert both[0] == pytest.approx(a10g[0] + t4[0], rel=1e-12)
        assert both[1] == pytest.approx(a10g[1] + t4[1], rel=1e-12)
        assert both[2] == pytest.approx(a10g[2], rel=1e-12)  # decode shared

    @pytest.mark.parametrize("scheduler",
                             ("splitwise", "round_robin", "least_work"))
    def test_no_replica_starvation(self, scheduler):
        """Every replica of a mixed fleet serves work — a dispatch
        policy that funnels everything to one fleet would be useless."""
        config = default_cluster(L, get_method("hack"), "A10G+T4",
                                 scheduler=scheduler)
        rate = capacity_rps(config, get_dataset("cocktail")) * 1.05
        trace = generate_trace("cocktail", rate, 60, seed=1)
        res = simulate(config, trace)
        used = {r.prefill_replica for r in res.requests}
        assert used == set(range(config.n_prefill_replicas))

    @pytest.mark.parametrize("method", ("baseline", "hack"))
    def test_span_matches_token_on_mixed_fleet(self, method):
        token = _cell(method, "token", gpu="A10G+T4")
        span = _cell(method, "span", gpu="A10G+T4")
        _assert_equivalent(token, span)


class TestNoSwapPlacement:
    def _scarce_config(self, activation_overhead=1.1, **kwargs):
        # One decode instance and a fat activation reservation leave
        # little KV room: most FP16 baseline KV spills.
        return default_cluster(L, get_method("baseline"), "A10G",
                               n_decode_instances=1,
                               activation_overhead=activation_overhead,
                               **kwargs)

    def test_rejects_surface_in_counts(self):
        config = self._scarce_config(scheduler="splitwise+no_swap")
        trace = generate_trace("cocktail", 1.0, 30, seed=2)
        res = simulate(config, trace)
        assert res.n_rejected > 0
        assert len(res.requests) == 30 - res.n_rejected
        assert res.n_swapped == 0
        assert res.summary()["n_rejected"] == res.n_rejected

    def test_swap_default_under_same_pressure(self):
        config = self._scarce_config()
        trace = generate_trace("cocktail", 1.0, 30, seed=2)
        res = simulate(config, trace)
        assert res.n_rejected == 0
        assert res.n_swapped > 0
        assert len(res.requests) == 30

    def test_all_rejected_yields_empty_but_valid_summary(self):
        # At this reservation no cocktail request's KV fits anywhere.
        config = self._scarce_config(scheduler="no_swap",
                                     activation_overhead=1.19)
        trace = generate_trace("cocktail", 1.0, 8, seed=3)
        res = simulate(config, trace)
        assert res.requests == []
        assert res.n_rejected == 8
        summary = res.summary()
        assert summary["n_requests"] == 0
        assert summary["avg_jct_s"] == 0.0
        assert summary["slo_goodput_rps"] == 0.0
        text = json.dumps(summary, allow_nan=False)   # no Infinity/NaN
        assert json.loads(text)["n_rejected"] == 8


class TestEmptyAggregates:
    """mean_decomposition/mean_ratios/summary &co on an empty result."""

    @pytest.fixture(scope="class")
    def empty(self):
        config = default_cluster(L, get_method("baseline"), "A10G")
        return SimulationResult(requests=[], peak_memory_fraction=0.65,
                                n_swapped=0, config=config, n_rejected=4)

    def test_zero_filled_decomposition(self, empty):
        assert empty.mean_decomposition() == {b: 0.0 for b in BUCKETS}

    def test_mean_ratios(self, empty):
        assert empty.mean_ratios() == \
            {b: 0.0 for b in BUCKETS if b != "queue"}
        assert empty.mean_ratios(include_queue=True) == \
            {b: 0.0 for b in BUCKETS}

    def test_scalar_aggregates(self, empty):
        assert empty.avg_jct() == 0.0
        assert empty.makespan_s() == 0.0
        assert empty.slo_attainment() == 0.0
        assert empty.slo_goodput_rps() == 0.0
        assert empty.mean_kv_access_ratio() == 0.0
        assert empty.mean_normalized_latency() == 0.0
        assert empty.jct_percentile(99) == 0.0
        assert empty.generated_tokens() == 0

    def test_summary_json_round_trips(self, empty):
        text = json.dumps(empty.summary(), allow_nan=False)
        assert json.loads(text)["n_requests"] == 0


class TestGoodputRegression:
    def test_zero_makespan_goodput_is_zero_not_inf(self):
        """A degenerate single-instant run used to emit float('inf'),
        which json.dump writes as non-compliant ``Infinity``."""
        config = default_cluster(L, get_method("baseline"), "A10G")
        req = SimRequest(trace=TraceRequest(0, 5.0, 4, 1))
        req.prefill_start = req.prefill_end = req.finish = 5.0
        res = SimulationResult(requests=[req], peak_memory_fraction=0.5,
                               n_swapped=0, config=config)
        assert res.makespan_s() == 0.0
        assert res.slo_goodput_rps() == 0.0
        summary = res.summary()
        text = json.dumps(summary, allow_nan=False)
        assert "Infinity" not in text
        assert json.loads(text)["slo_goodput_rps"] == 0.0


class TestCapacityClipping:
    @pytest.mark.parametrize("dataset", sorted(GOLDEN_CAPACITIES))
    def test_default_datasets_pinned(self, dataset):
        """Datasets that fit the model context are untouched by the
        clipping alignment."""
        config = default_cluster(L, get_method("baseline"), "A10G")
        got = stage_capacities(config, get_dataset(dataset))
        assert got == pytest.approx(GOLDEN_CAPACITIES[dataset], rel=1e-12)

    def test_clipped_means_match_trace_clipping(self):
        """Capacity now sizes for the lengths the trace actually
        replays: outputs truncated to max_context-1 first, inputs to
        the remaining window."""
        arxiv = get_dataset("arxiv")
        mean_in, mean_out = clipped_mean_lengths(arxiv, 2048)
        assert mean_out == 243                 # untouched (243 < 2047)
        assert mean_in == 2048 - 243           # not 2047
        assert mean_in + mean_out <= 2048

    def test_falcon_capacity_rises_with_shorter_prompts(self):
        """Pre-fix, Falcon-2K/arXiv capacity was computed at a 2047-token
        prompt the trace never replays; the aligned 1805-token prompt
        sustains a higher rate (pre-fix bottleneck was 2.497 rps)."""
        F = get_model("F")
        config = default_cluster(F, get_method("baseline"), "A10G")
        prefill, nic, decode = stage_capacities(config,
                                                get_dataset("arxiv"))
        assert prefill > 2.6
        assert min(prefill, nic, decode) == prefill


class TestTraceClipCounts:
    def test_no_cap_no_counts(self):
        trace = generate_trace("cocktail", 1.0, 20, seed=0)
        assert trace.n_input_clipped == 0
        assert trace.n_output_clipped == 0

    def test_input_clipping_counted(self):
        trace = generate_trace("arxiv", 1.0, 50, seed=0, max_context=2048)
        assert trace.n_input_clipped > 0
        assert trace.n_output_clipped == 0     # arXiv outputs max 464
        assert all(r.input_len + r.output_len <= 2048 for r in trace)

    def test_output_clipping_counted(self):
        """Outputs are truncated too — the docstring used to claim only
        inputs were clipped."""
        trace = generate_trace("arxiv", 1.0, 50, seed=0, max_context=300)
        assert trace.n_output_clipped > 0
        assert all(r.output_len <= 299 for r in trace)
        assert all(r.input_len + r.output_len <= 300 for r in trace)

    def test_merge_sums_counts(self):
        a = generate_trace("arxiv", 1.0, 20, seed=0, max_context=2048)
        b = generate_trace("cocktail", 1.0, 20, seed=1, max_context=10000)
        merged = merge_traces(a, b)
        assert merged.n_input_clipped == \
            a.n_input_clipped + b.n_input_clipped
        assert merged.n_output_clipped == \
            a.n_output_clipped + b.n_output_clipped

    def test_resolved_scenario_reports_counts(self):
        from repro.api.runner import resolve
        resolved = resolve(Scenario(model="F", dataset="arxiv",
                                    methods=("baseline",), n_requests=20))
        assert resolved.max_context == 2048
        assert resolved.n_input_clipped > 0


class TestSchedExperiment:
    """`run sched`: the policy × arrival × method grid."""

    @pytest.fixture(scope="class")
    def study(self):
        from repro.experiments import scheduling
        return scheduling.run(scale=0.04)

    def test_full_grid(self, study):
        from repro.experiments.scheduling import ARRIVALS, METHODS, \
            SCHEDULERS
        assert len(study.results) == len(SCHEDULERS) * len(ARRIVALS)
        assert len(study.table.rows) == \
            len(SCHEDULERS) * len(ARRIVALS) * len(METHODS)
        # ≥ 2 arrival processes per acceptance criteria, and the
        # module constants (written pre-canonicalized) index the
        # results directly.
        assert len(ARRIVALS) >= 2
        for scheduler in SCHEDULERS:
            for arrival in ARRIVALS:
                assert (scheduler, arrival) in study.results

    def test_hack_leads_under_every_policy(self, study):
        """Scheduling must not explain the compression gap away."""
        for cell in study.results.values():
            assert cell["hack"].avg_jct() < cell["baseline"].avg_jct()

    def test_renders(self, study):
        text = study.render()
        assert "Scheduling policies" in text
        assert "rejected" in text
