"""KV-store engine integration: differential span==token coverage
across hit/miss/eviction regimes, the what-the-store-buys semantics,
and the golden byte-pin that the store-less default path is untouched.
"""

import hashlib
import math

import pytest

from repro.experiments import fig9_12_jct
from repro.methods import get_method
from repro.model import get_model
from repro.sim import capacity_rps, default_cluster, simulate
from repro.workload import generate_trace, get_dataset

L = get_model("L")
RTOL = 1e-9
SESSIONS = "sessions?turns=4.0,think_time=20.0,prefix_growth=0.3,tiers=3.0"

#: sha256/length of the fig9/fig10 render at scale=0.1, captured before
#: the KV-store subsystem existed.  The kvstore-disabled engine path
#: must keep reproducing it byte-for-byte.
GOLDEN_FIG9_SHA256 = \
    "ef48fb90f3caf7231816c6071fbff499d9a3ff229d1bc7556bb433faa6318072"
GOLDEN_FIG9_LEN = 2669


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=RTOL, abs_tol=1e-12)


def _trace(n=50, seed=4, rps=2.0, arrival=SESSIONS, dataset="cocktail"):
    return generate_trace(dataset, rps, n, seed=seed, arrival=arrival)


def _run_both(method="hack", trace=None, **cfg_kwargs):
    trace = trace if trace is not None else _trace()
    results = {}
    for mode in ("token", "span"):
        config = default_cluster(L, get_method(method), "A10G",
                                 step_mode=mode, **cfg_kwargs)
        results[mode] = simulate(config, trace)
    return results["token"], results["span"]


def _assert_equivalent(token, span):
    assert _close(token.avg_jct(), span.avg_jct())
    for p in (50, 95, 99):
        assert _close(token.jct_percentile(p), span.jct_percentile(p))
    assert token.kvstore_stats == span.kvstore_stats
    assert token.selection_mix == span.selection_mix
    assert len(token.requests) == len(span.requests)
    for rt, rs in zip(token.requests, span.requests):
        assert rt.request_id == rs.request_id
        assert rt.prefix_hit_tokens == rs.prefix_hit_tokens
        assert rt.cache_tier == rs.cache_tier
        assert _close(rt.cache_read_s, rs.cache_read_s)
        assert (rt.method.name if rt.method else None) == \
            (rs.method.name if rs.method else None)
        assert _close(rt.jct, rs.jct)
        dt, ds = rt.decomposition(), rs.decomposition()
        for bucket in dt:
            assert _close(dt[bucket], ds[bucket]), \
                f"request {rt.request_id} bucket {bucket}"


class TestDifferential:
    def test_warm_hits(self):
        token, span = _run_both(kvstore="tiered?dram_gb=8.0")
        assert token.kvstore_stats["hit_rate"] > 0
        _assert_equivalent(token, span)

    def test_all_miss_single_shot(self):
        token, span = _run_both(trace=_trace(n=30, arrival="poisson"),
                                kvstore="tiered?dram_gb=8.0")
        assert token.kvstore_stats["hit_rate"] == 0.0
        _assert_equivalent(token, span)

    def test_eviction_churn_and_expiry(self):
        token, span = _run_both(
            trace=_trace(n=80, seed=9),
            kvstore="tiered?hbm_gb=0.05,dram_gb=0.2,pool_gb=0.5"
                    "+ttl?seconds=60.0")
        stats = token.kvstore_stats
        churn = sum(t["evictions"] for t in stats["tiers"].values())
        assert churn > 0 and stats["dropped"] + stats["expired"] > 0
        _assert_equivalent(token, span)

    @pytest.mark.parametrize("selection", [
        "slo_tier", "congestion?hi=0.6,lo=0.3"])
    def test_with_selection_policies(self, selection):
        token, span = _run_both(kvstore="tiered?dram_gb=8.0",
                                selection=selection)
        _assert_equivalent(token, span)

    def test_selection_without_store(self):
        token, span = _run_both(selection="slo_tier")
        assert token.kvstore_stats is None
        assert set(token.selection_mix) == {"0", "1", "2"}
        _assert_equivalent(token, span)


class TestSemantics:
    def test_warm_store_cuts_ttft_on_sessions(self):
        trace = _trace(n=60, seed=2)
        cold, _ = _run_both(trace=trace)
        warm, _ = _run_both(trace=trace, kvstore="tiered?dram_gb=8.0")
        stats = warm.kvstore_stats
        assert stats["hit_rate"] > 0.3
        assert stats["prefill_tokens_skipped"] > 0
        assert warm.summary()["mean_ttft_s"] < cold.summary()["mean_ttft_s"]

    def test_hits_shrink_prefill_and_pay_comm(self):
        trace = _trace(n=60, seed=2)
        cold, _ = _run_both(trace=trace)
        warm, _ = _run_both(trace=trace, kvstore="tiered?dram_gb=8.0")
        hit = {r.request_id: r for r in warm.requests
               if r.prefix_hit_tokens > 0}
        assert hit
        cold_by_id = {r.request_id: r for r in cold.requests}
        for rid, r in hit.items():
            assert r.cache_read_s > 0 and r.cache_tier is not None
            assert r.prefix_hit_tokens < r.trace.input_len
            assert r.prefill_s < cold_by_id[rid].prefill_s

    def test_miss_records_stay_unmarked(self):
        warm, _ = _run_both(trace=_trace(n=30, arrival="poisson"),
                            kvstore="tiered?dram_gb=8.0")
        for r in warm.requests:
            assert r.prefix_hit_tokens == 0
            assert r.cache_read_s == 0.0 and r.cache_tier is None
            rec = r.record()
            assert rec["method_selected"] == "hack"

    def test_disabled_runs_carry_no_kv_keys(self):
        plain, _ = _run_both(trace=_trace(n=20, arrival="poisson"))
        assert plain.kvstore_stats is None
        assert plain.selection_mix is None
        summary = plain.summary()
        assert "kvstore" not in summary and "selection_mix" not in summary
        rec = plain.requests[0].record()
        assert "method_selected" not in rec
        assert "prefix_hit_tokens" not in rec

    def test_selection_governs_wire_bytes(self):
        """slo_tier sends class-0 traffic as FP16 baseline: those
        requests' NIC transfers must dwarf their compressed peers'."""
        trace = _trace(n=40, seed=6)
        res, _ = _run_both(kvstore="tiered?dram_gb=8.0",
                           selection="slo_tier", trace=trace)
        mix = res.selection_mix
        assert mix["0"] == {"baseline": sum(mix["0"].values())}
        by_method = {}
        for r in res.requests:
            if r.prefix_hit_tokens == 0 and r.trace.input_len > 0:
                by_method.setdefault(r.method.name, []).append(
                    r.comm_s / r.trace.input_len)
        if "baseline" in by_method and "hack" in by_method:
            assert min(by_method["baseline"]) > max(by_method["hack"])

    def test_summary_surfaces_kvstore_sections(self):
        res, _ = _run_both(kvstore="tiered?dram_gb=8.0",
                           selection="slo_tier")
        summary = res.summary()
        assert summary["kvstore"]["hit_rate"] == \
            res.kvstore_stats["hit_rate"]
        assert set(summary["kvstore"]["tiers"]) == {"hbm", "dram", "pool"}
        assert summary["selection_mix"] == res.selection_mix


class TestGolden:
    def test_fig9_fig10_byte_identical_without_kvstore(self):
        """The no-kvstore default path renders the pre-subsystem golden
        tables byte-for-byte."""
        text = fig9_12_jct.run_fig9_fig10(scale=0.1).render()
        assert len(text) == GOLDEN_FIG9_LEN
        assert hashlib.sha256(text.encode()).hexdigest() == \
            GOLDEN_FIG9_SHA256

    def test_capacity_planning_ignores_kvstore(self):
        """Configuring a store must not move baseline capacity (rates
        derive from prefill/NIC/decode, never the cache)."""
        plain = default_cluster(L, get_method("hack"), "A10G")
        stored = default_cluster(L, get_method("hack"), "A10G",
                                 kvstore="tiered?dram_gb=8.0")
        dataset = get_dataset("cocktail")
        assert capacity_rps(plain, dataset) == \
            capacity_rps(stored, dataset)
