"""Engine integration of fault injection and recovery.

Three layers of guarantees:

* the no-fault path is **byte-identical** to the historical engine —
  configuring a recovery policy without faults changes nothing;
* under active fault timelines the span fast-forward engine still
  matches the token engine to 1e-9, for every shipped fault family ×
  recovery policy, on both the baseline and HACK methods (crashes
  interrupt spans, transfers and KV-store reads mid-flight);
* reliability accounting is conserved: every trace request ends in
  exactly one of finished/rejected/failed, and the summary's fault
  block agrees with the per-request records.
"""

import math

import pytest

from repro.methods import get_method
from repro.model import get_model
from repro.sim import capacity_rps, default_cluster, simulate
from repro.workload import generate_trace, get_dataset

L = get_model("L")
RTOL = 1e-9

#: Session arrivals give the store real prefix reuse, so KV-aided
#: recovery and dark-tier misses are actually exercised.
SESSIONS = "sessions?turns=4.0,think_time=10.0,prefix_growth=0.3,tiers=3.0"

#: One aggressive plan per shipped family, timed to fire inside the
#: short test traces.
FAMILY_PLANS = {
    "replica_crash": "replica_crash?mttf=30.0,mttr=6.0",
    "nic_degrade": "nic_degrade?factor=0.2,start=4.0,duration=40.0",
    "transfer_flap": "transfer_flap?p_fail=0.15",
    "kvstore_outage": "kvstore_outage?tier=hbm,start=4.0,duration=40.0",
}

RECOVERIES = ("none", "retry?base_s=0.5,cap_s=4.0,max=3.0", "migrate")


def _config(method="hack", mode="span", faults=None, recovery=None,
            **cfg_kwargs):
    if faults and "kvstore_outage" in faults:
        cfg_kwargs.setdefault("kvstore", "tiered?dram_gb=8.0")
    return default_cluster(L, get_method(method), "A10G", step_mode=mode,
                           faults=faults, recovery=recovery, **cfg_kwargs)


def _trace(n=24, seed=0, dataset="cocktail", rps=None, arrival="poisson",
           config=None):
    rate = rps if rps is not None else \
        capacity_rps(config, get_dataset(dataset)) * 1.05
    return generate_trace(dataset, rate, n, seed=seed, arrival=arrival)


def _run(method="hack", mode="span", faults=None, recovery=None, n=24,
         seed=0, dataset="cocktail", rps=None, arrival="poisson",
         **cfg_kwargs):
    config = _config(method, mode, faults, recovery, **cfg_kwargs)
    trace = _trace(n, seed, dataset, rps, arrival, config=config)
    return simulate(config, trace)


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=RTOL, abs_tol=1e-12)


def _assert_equivalent(token, span):
    """Both engines must agree on every terminal request."""
    for attr in ("requests", "rejected_requests", "failed_requests"):
        assert [r.request_id for r in getattr(token, attr)] == \
            [r.request_id for r in getattr(span, attr)], attr
    for rt, rs in zip(token.terminal_requests(), span.terminal_requests()):
        assert rt.terminal == rs.terminal
        assert rt.n_retries == rs.n_retries
        assert _close(rt.wasted_compute_s, rs.wasted_compute_s), \
            f"request {rt.request_id} wasted: " \
            f"{rt.wasted_compute_s} vs {rs.wasted_compute_s}"
        if rt.done:
            assert rt.tokens_generated == rs.tokens_generated
            assert _close(rt.jct, rs.jct), \
                f"request {rt.request_id} jct: {rt.jct} vs {rs.jct}"
            dt, ds = rt.decomposition(), rs.decomposition()
            for bucket in dt:
                assert _close(dt[bucket], ds[bucket]), \
                    f"request {rt.request_id} bucket {bucket}: " \
                    f"{dt[bucket]} vs {ds[bucket]}"
    assert _close(token.wasted_compute_s(), span.wasted_compute_s())
    assert _close(token.availability(), span.availability())


class TestNoFaultByteIdentity:
    def test_recovery_without_faults_changes_nothing(self):
        plain = _run(faults=None, recovery=None)
        armed = _run(faults=None, recovery="retry?max=5.0")
        assert plain.to_records() == armed.to_records()
        assert plain.summary() == armed.summary()

    def test_unfaulted_result_reports_no_fault_block(self):
        res = _run(faults=None)
        assert not res.faulted
        assert "faults" not in res.summary()
        assert res.summary()["n_failed"] == 0
        assert res.availability() == 1.0
        assert res.wasted_compute_s() == 0.0

    def test_far_future_faults_keep_results_identical(self):
        """An armed plan whose events all land after the run must not
        perturb a single metric (only add the accounting block)."""
        plain = _run(faults=None)
        armed = _run(faults="nic_degrade?start=1e9,duration=1.0")
        assert armed.faulted
        assert plain.to_records() == armed.to_records()
        summary = armed.summary()
        assert summary["faults"]["availability"] == 1.0
        assert summary["faults"]["wasted_compute_s"] == 0.0
        summary.pop("faults")
        assert summary == plain.summary()


class TestDifferentialUnderFaults:
    """span == token to 1e-9 under every family × recovery policy."""

    @pytest.mark.parametrize("recovery", RECOVERIES)
    @pytest.mark.parametrize("family", sorted(FAMILY_PLANS))
    def test_hack_all_combinations(self, family, recovery):
        kwargs = dict(faults=FAMILY_PLANS[family], recovery=recovery,
                      seed=3)
        if family == "kvstore_outage":
            kwargs["arrival"] = SESSIONS
        token = _run(mode="token", **kwargs)
        span = _run(mode="span", **kwargs)
        _assert_equivalent(token, span)

    @pytest.mark.parametrize("family", sorted(FAMILY_PLANS))
    def test_baseline_with_retry(self, family):
        kwargs = dict(method="baseline", faults=FAMILY_PLANS[family],
                      recovery="retry?base_s=0.5,cap_s=4.0", seed=5)
        if family == "kvstore_outage":
            kwargs["arrival"] = SESSIONS
        token = _run(mode="token", **kwargs)
        span = _run(mode="span", **kwargs)
        _assert_equivalent(token, span)

    def test_prefill_crash(self):
        """Crashes on the prefill side kill queued batches and in-flight
        transfers sourced from the dead replica."""
        for method in ("baseline", "hack"):
            kwargs = dict(method=method, seed=7,
                          faults="replica_crash?mttf=25.0,mttr=5.0,"
                                 "role=prefill,replicas=2.0",
                          recovery="retry?base_s=0.5,cap_s=4.0")
            token = _run(mode="token", **kwargs)
            span = _run(mode="span", **kwargs)
            _assert_equivalent(token, span)

    def test_compound_plan(self):
        kwargs = dict(seed=11,
                      faults="replica_crash?mttf=30.0,mttr=6.0"
                             "+transfer_flap?p_fail=0.1"
                             "+nic_degrade?factor=0.5,start=8.0,"
                             "duration=30.0",
                      recovery="migrate")
        token = _run(mode="token", **kwargs)
        span = _run(mode="span", **kwargs)
        _assert_equivalent(token, span)


class TestReliabilityAccounting:
    @pytest.fixture(scope="class")
    def crashed(self):
        return _run(faults="replica_crash?mttf=20.0,mttr=5.0",
                    recovery="retry?base_s=0.5,cap_s=4.0", n=40, seed=3)

    def test_conservation(self, crashed):
        terminal = crashed.terminal_requests()
        assert len(terminal) == 40
        assert len(crashed.requests) + len(crashed.rejected_requests) \
            + len(crashed.failed_requests) == 40
        ids = [r.request_id for r in terminal]
        assert ids == sorted(set(ids))
        for r in terminal:
            assert r.terminal in ("finished", "rejected", "failed")

    def test_some_requests_recovered(self, crashed):
        recovered = [r for r in crashed.requests if r.recovered]
        assert recovered, "crash plan never interrupted a request"
        for r in recovered:
            assert r.n_retries >= 1
            assert r.done

    def test_wasted_work_positive_and_bounded(self, crashed):
        assert crashed.wasted_compute_s() > 0.0
        assert 0.0 < crashed.wasted_work_fraction() < 1.0

    def test_availability_matches_counts(self, crashed):
        avail = crashed.availability()
        assert avail == len(crashed.requests) / 40
        assert 0.0 < avail <= 1.0

    def test_summary_fault_block_consistent(self, crashed):
        block = crashed.summary()["faults"]
        assert block["availability"] == crashed.availability()
        assert block["n_failed"] == len(crashed.failed_requests)
        assert block["n_recovered"] == \
            sum(1 for r in crashed.requests if r.recovered)
        assert block["n_retries"] == \
            sum(r.n_retries for r in crashed.terminal_requests())
        assert block["wasted_compute_s"] == crashed.wasted_compute_s()
        assert block["goodput_under_faults_rps"] > 0

    def test_records_shape_by_terminal_state(self, crashed):
        for rec in crashed.to_records():
            assert rec["terminal"] in ("finished", "rejected", "failed")
            assert "n_retries" in rec and "wasted_compute_s" in rec
            if rec["terminal"] == "finished":
                assert "jct_s" in rec and "decomposition_s" in rec
            else:
                assert "jct_s" not in rec

    def test_determinism(self, crashed):
        again = _run(faults="replica_crash?mttf=20.0,mttr=5.0",
                     recovery="retry?base_s=0.5,cap_s=4.0", n=40, seed=3)
        assert again.to_records() == crashed.to_records()
        assert again.summary() == crashed.summary()


class TestRetryExhaustion:
    def test_none_policy_fails_on_first_fault(self):
        res = _run(faults="transfer_flap?p_fail=0.5", recovery="none",
                   n=30, seed=3)
        assert res.failed_requests, "flap plan never hit a transfer"
        for r in res.failed_requests:
            assert r.failed and not r.done
            assert r.n_retries == 0      # no retry was ever scheduled
        assert res.availability() < 1.0

    def test_exhausted_retry_budget_sheds_load(self):
        res = _run(faults="transfer_flap?p_fail=0.6",
                   recovery="retry?max=1.0,base_s=0.5,cap_s=1.0",
                   n=30, seed=3)
        assert res.failed_requests, "no request exhausted its budget"
        for r in res.failed_requests:
            assert r.n_retries == 1      # one retry granted, then shed
        finished_retried = [r for r in res.requests if r.n_retries]
        assert finished_retried, "no flapped request recovered"

    def test_flap_waste_is_the_lost_transfer_time(self):
        res = _run(faults="transfer_flap?p_fail=0.5", recovery="none",
                   n=30, seed=3)
        for r in res.failed_requests:
            assert r.wasted_compute_s > 0.0


class TestKVStoreUnderFaults:
    def test_outage_dark_misses_counted(self):
        # Large KV entries are evicted from the small hbm tier into
        # dram almost immediately, so a dram outage strands the warm
        # entries; requests that would have hit re-prefill instead.
        res = _run(faults="kvstore_outage?tier=dram,start=25.0,"
                          "duration=80.0",
                   arrival=SESSIONS, n=40, seed=3,
                   kvstore="tiered?dram_gb=8.0")
        stats = res.kvstore_stats
        assert stats is not None
        assert stats["dark_misses"] > 0   # warm entries went unreachable
        healthy = _run(faults=None, arrival=SESSIONS, n=40, seed=3,
                       kvstore="tiered?dram_gb=8.0")
        assert stats["hits"] < healthy.kvstore_stats["hits"]

    def test_store_aids_crash_recovery(self):
        """With a warm store, a crashed request re-fetches its whole
        prefill prefix instead of recomputing it — more tokens are
        served from cache than natural session reuse alone provides."""
        kwargs = dict(faults="replica_crash?mttf=20.0,mttr=5.0",
                      recovery="retry?base_s=0.5,cap_s=4.0",
                      arrival=SESSIONS, n=40, seed=3,
                      kvstore="tiered?dram_gb=8.0")
        faulted = _run(**kwargs)
        assert any(r.n_retries for r in faulted.terminal_requests()), \
            "crash plan never interrupted a request"
        healthy = _run(**{**kwargs, "faults": None, "recovery": None})
        extra = faulted.kvstore_stats["prefill_tokens_skipped"] - \
            healthy.kvstore_stats["prefill_tokens_skipped"]
        assert extra > 0


class TestGracefulDegradation:
    def test_capacity_signal_trips_congestion_selection(self):
        """A decode crash must push congestion selection to the cheaper
        method while replicas are down."""
        kwargs = dict(methods=None, n=40, seed=3, arrival=SESSIONS,
                      kvstore="tiered?dram_gb=8.0",
                      selection="congestion?hi=0.4,lo=0.2")
        kwargs.pop("methods")
        faulted = _run(faults="replica_crash?mttf=15.0,mttr=30.0,"
                              "replicas=3.0",
                       recovery="retry?base_s=0.5,cap_s=4.0", **kwargs)
        healthy = _run(faults=None, **kwargs)
        flips = _selection_counts(faulted)
        base = _selection_counts(healthy)
        # Crashed run: most admissions happen while replicas are down
        # (capacity signal 1/4..3/4 > hi=0.4), so selection escalates
        # to the strong method far more often than the healthy run.
        assert flips.get("hack_int4", 0) > base.get("hack_int4", 0)


def _selection_counts(res):
    counts = {}
    for r in res.terminal_requests():
        name = r.method.name if r.method is not None else "default"
        counts[name] = counts.get(name, 0) + 1
    return counts
