"""Elastic cluster subsystem: autoscaler/admission registries, the
``family?k=v`` grammar, and engine integration.

Three layers of guarantees:

* arming the default policies (``static`` + ``accept_all``) is
  **byte-identical** to an unarmed run — the elastic path costs
  nothing until a policy actually acts;
* under active scaling the span fast-forward engine still matches the
  token engine to 1e-9, drain-then-retire never kills in-flight work,
  and scaling composes with fault injection;
* GPU-hour accounting is conserved: the elastic block's hours agree
  with the replica timeseries, static fleets report the peak-sized
  backfill, and goodput-per-GPU-hour rewards scale-to-trough.
"""

import math
from dataclasses import replace

import pytest

from repro.api import Runner, Scenario, Sweep, compare_artifacts
from repro.methods import get_method
from repro.model import get_model
from repro.sim import capacity_rps, default_cluster, simulate
from repro.sim.elastic import (
    AdmissionPolicy,
    AdmissionSpec,
    AutoscalerPolicy,
    AutoscalerSpec,
    ElasticParam,
    admission_spec,
    autoscaler_policies,
    autoscaler_spec,
    canonical_admission,
    canonical_autoscaler,
    parse_autoscaler,
    register_admission,
    register_autoscaler,
    split_autoscaler_list,
)
from repro.workload import generate_trace, get_dataset

L = get_model("L")
RTOL = 1e-9

#: One diurnal day with a deep trough — the regime where elasticity
#: pays (short period so the short test traces cover a full cycle).
DIURNAL = "diurnal?amp=0.9,period=120.0"

#: A twitchy reactive policy so scaling actually happens on tiny
#: traces: short cooldown, fast evaluation, quick boots.
REACTIVE = ("reactive?queue_hi=3.0,queue_lo=1.0,cooldown_s=10.0,"
            "interval_s=2.0,cold_start_s=5.0")


def _config(method="hack", mode="span", n_prefill_replicas=None,
            **cfg_kwargs):
    config = default_cluster(L, get_method(method), "A10G",
                             step_mode=mode, **cfg_kwargs)
    if n_prefill_replicas is not None:
        config = replace(config, n_prefill_replicas=n_prefill_replicas)
    return config


def _trace(n=30, seed=0, dataset="cocktail", rps=None, arrival="poisson",
           config=None):
    rate = rps if rps is not None else \
        capacity_rps(config, get_dataset(dataset)) * 1.05
    return generate_trace(dataset, rate, n, seed=seed, arrival=arrival)


def _run(method="hack", mode="span", n=30, seed=0, dataset="cocktail",
         rps=None, arrival="poisson", load=0.4, **cfg_kwargs):
    config = _config(method, mode, **cfg_kwargs)
    if rps is None:
        rps = capacity_rps(config, get_dataset(dataset)) * load
    trace = _trace(n=n, seed=seed, dataset=dataset, rps=rps,
                   arrival=arrival, config=config)
    return simulate(config, trace)


# -- grammar and specs --------------------------------------------------------


class TestGrammar:
    def test_parse_and_canonical_sort_params(self):
        spec = parse_autoscaler("reactive?queue_lo=1,queue_hi=6")
        assert spec.kind == "reactive"
        assert spec.canonical() == "reactive?queue_hi=6.0,queue_lo=1.0"

    def test_bare_family_canonical_is_bare(self):
        assert canonical_autoscaler("static") == "static"
        assert canonical_admission("accept_all") == "accept_all"

    def test_unknown_family_suggests(self):
        with pytest.raises(ValueError, match="reactive"):
            parse_autoscaler("reactve?queue_hi=6")

    def test_unknown_param_suggests(self):
        with pytest.raises(ValueError, match="queue_hi"):
            parse_autoscaler("reactive?queue_high=6")

    def test_validation_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError, match="queue_hi"):
            autoscaler_spec("reactive?queue_hi=1.0,queue_lo=5.0").build()

    def test_schedule_plan_round_trips(self):
        spec = autoscaler_spec("schedule?plan=0:1.0|60:0.5,period_s=120")
        assert "plan=0:1.0|60:0.5" in spec.canonical()
        policy = spec.build()
        assert policy._fraction(0.0) == 1.0
        assert policy._fraction(61.0) == 0.5
        assert policy._fraction(121.0) == 1.0  # wraps at period_s

    def test_schedule_plan_must_start_at_zero(self):
        with pytest.raises(ValueError, match="plan"):
            autoscaler_spec("schedule?plan=10:0.5").build()

    def test_degrade_method_resolved_at_validation(self):
        with pytest.raises(ValueError):
            admission_spec("degrade?method=hack_int5").build()

    def test_split_list_respects_param_commas(self):
        items = split_autoscaler_list(
            "static,reactive?queue_hi=6.0,queue_lo=1.0")
        assert items == ["static", "reactive?queue_hi=6.0,queue_lo=1.0"]

    def test_spec_of_constructor(self):
        spec = AutoscalerSpec.of("reactive", queue_hi=4.0)
        assert spec.canonical() == "reactive?queue_hi=4.0"
        assert AdmissionSpec.of("shed", queue_max=8.0).canonical() == \
            "shed?queue_max=8.0"


class TestRegistries:
    def test_builtins_registered(self):
        assert {"static", "reactive", "slo", "schedule"} <= \
            set(autoscaler_policies())

    def test_custom_autoscaler_registers_and_builds(self):
        @register_autoscaler(replace=True)
        class Pinned(AutoscalerPolicy):
            name = "test_pinned"
            description = "always wants exactly one prefill replica"
            params = {"n": ElasticParam(1.0, "target prefill count")}

            def desired(self, now, sim, n_prefill, n_decode,
                        cur_prefill, cur_decode):
                return int(self.p["n"]), n_decode

        try:
            spec = autoscaler_spec("test_pinned?n=2")
            assert spec.build().desired(0, None, 4, 2, 4, 2) == (2, 2)
        finally:
            del autoscaler_policies()["test_pinned"]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="replace"):
            @register_autoscaler
            class Clash(AutoscalerPolicy):
                name = "static"
                description = "clash"

    def test_policy_signatures_render(self):
        for cls in autoscaler_policies().values():
            sig = cls.signature()
            assert sig.startswith(cls.name)


# -- armed-but-idle byte identity ---------------------------------------------


class TestArmedIdleIdentity:
    def test_static_accept_all_records_identical(self):
        plain = _run(seed=1)
        armed = _run(seed=1, autoscaler="static", admission="accept_all")
        assert plain.to_records() == armed.to_records()

    def test_idle_elastic_block_shape(self):
        armed = _run(seed=1, autoscaler="static")
        stats = armed.elastic_stats
        assert stats["n_scale_ups"] == 0
        assert stats["n_scale_downs"] == 0
        assert stats["scaling_events"] == 0
        assert stats["mean_utilization"] == pytest.approx(1.0)
        assert stats["n_shed"] == 0 and stats["n_degraded"] == 0

    def test_unarmed_run_has_no_elastic_block(self):
        plain = _run(seed=1)
        assert plain.elastic_stats is None
        assert "elastic" not in plain.summary()


# -- GPU-hour accounting ------------------------------------------------------


class TestGpuHours:
    def test_static_backfill_is_fleet_times_makespan(self):
        res = _run(seed=2)
        config = _config()
        total_gpus = (config.prefill_replica().parallelism.n_gpus
                      * config.n_prefill_replicas
                      + config.decode_replica().parallelism.n_gpus
                      * config.n_decode_replicas)
        end = max(r.finish for r in res.requests)
        expected = total_gpus * end / 3600.0
        assert res.gpu_hours() == pytest.approx(expected, rel=1e-12)
        assert res.summary()["gpu_hours"] == pytest.approx(expected)

    def test_armed_static_matches_backfill(self):
        plain = _run(seed=2)
        armed = _run(seed=2, autoscaler="static")
        assert armed.gpu_hours() == \
            pytest.approx(plain.gpu_hours(), rel=1e-6)

    def test_goodput_per_gpu_hour_in_summary(self):
        res = _run(seed=2)
        summ = res.summary()
        assert summ["goodput_per_gpu_hour"] == pytest.approx(
            res.goodput_per_gpu_hour(), rel=1e-12)
        assert summ["goodput_per_gpu_hour"] > 0

    def test_scaled_down_fleet_bills_fewer_hours(self):
        static = _run(seed=3, arrival=DIURNAL, load=0.3,
                      n_prefill_replicas=4, autoscaler="static")
        reactive = _run(seed=3, arrival=DIURNAL, load=0.3,
                        n_prefill_replicas=4, autoscaler=REACTIVE)
        assert reactive.elastic_stats["gpu_hours"] < \
            static.elastic_stats["gpu_hours"]
        # No request is sacrificed for the savings; the efficiency win
        # (goodput per GPU-hour) is asserted at experiment scale in
        # tests/experiments/test_scale_experiment.py.
        assert reactive.summary()["n_requests"] == \
            static.summary()["n_requests"]


# -- active scaling -----------------------------------------------------------


class TestReactiveScaling:
    @pytest.fixture(scope="class")
    def scaled(self):
        return _run(seed=4, n=40, arrival=DIURNAL, load=0.3,
                    n_prefill_replicas=4, autoscaler=REACTIVE)

    def test_scaling_happened(self, scaled):
        stats = scaled.elastic_stats
        assert stats["n_scale_downs"] > 0
        assert stats["mean_prefill_replicas"] < 4.0
        assert len(stats["events"]) == stats["scaling_events"]
        assert stats["timeseries"][0][1] == 4  # starts fully powered

    def test_no_request_lost_to_scaling(self, scaled):
        summ = scaled.summary()
        assert summ["n_requests"] == 40
        assert summ["n_failed"] == 0
        assert scaled.availability() == pytest.approx(1.0)

    def test_replica_counts_stay_in_bounds(self, scaled):
        n_decode = _config().n_decode_replicas
        for _, n_p, n_d in scaled.elastic_stats["timeseries"]:
            assert 1 <= n_p <= 4
            assert 1 <= n_d <= n_decode

    def test_span_matches_token_under_scaling(self):
        span = _run(seed=4, n=40, mode="span", arrival=DIURNAL, load=0.3,
                    n_prefill_replicas=4, autoscaler=REACTIVE)
        token = _run(seed=4, n=40, mode="token", arrival=DIURNAL,
                     load=0.3, n_prefill_replicas=4, autoscaler=REACTIVE)
        srec, trec = span.to_records(), token.to_records()
        assert len(srec) == len(trec)
        for s, t in zip(srec, trec):
            for key in ("ttft_s", "jct_s", "tbt_mean_s"):
                assert math.isclose(s[key], t[key], rel_tol=RTOL,
                                    abs_tol=RTOL)
        sev = span.elastic_stats["events"]
        tev = token.elastic_stats["events"]
        assert len(sev) == len(tev)
        for (st, srole, skind, sn), (tt, trole, tkind, tn) in \
                zip(sev, tev):
            assert (srole, skind, sn) == (trole, tkind, tn)
            assert math.isclose(st, tt, rel_tol=RTOL, abs_tol=RTOL)

    def test_determinism(self, scaled):
        again = _run(seed=4, n=40, arrival=DIURNAL, load=0.3,
                     n_prefill_replicas=4, autoscaler=REACTIVE)
        assert again.to_records() == scaled.to_records()
        assert again.elastic_stats["events"] == \
            scaled.elastic_stats["events"]


class TestScheduleAutoscaler:
    def test_plan_halves_fleet(self):
        res = _run(seed=5, n=40, load=0.3, n_prefill_replicas=4,
                   autoscaler="schedule?plan=0:1.0|20:0.25,"
                              "interval_s=2.0,cold_start_s=5.0")
        stats = res.elastic_stats
        assert stats["n_scale_downs"] > 0
        assert stats["mean_prefill_replicas"] < 4.0


class TestFaultComposition:
    def test_scaling_plus_crashes(self):
        res = _run(seed=6, n=30, arrival=DIURNAL, load=0.35,
                   n_prefill_replicas=4, autoscaler=REACTIVE,
                   faults="replica_crash?mttf=40.0,mttr=8.0",
                   recovery="retry?base_s=0.5,cap_s=4.0,max=3.0")
        summ = res.summary()
        assert summ["n_requests"] + summ["n_rejected"] + \
            summ["n_failed"] == 30
        assert res.elastic_stats["gpu_hours"] > 0
        span = res.to_records()
        token = _run(seed=6, n=30, mode="token", arrival=DIURNAL,
                     load=0.35, n_prefill_replicas=4,
                     autoscaler=REACTIVE,
                     faults="replica_crash?mttf=40.0,mttr=8.0",
                     recovery="retry?base_s=0.5,cap_s=4.0,max=3.0"
                     ).to_records()
        for s, t in zip(span, token):
            assert s["terminal"] == t["terminal"]
            assert math.isclose(s["jct_s"], t["jct_s"], rel_tol=RTOL,
                                abs_tol=RTOL)


# -- admission ----------------------------------------------------------------


class TestAdmission:
    def test_shed_bounds_queue_and_conserves_requests(self):
        res = _run(seed=7, n=40, load=1.4,
                   admission="shed?queue_max=10.0")
        stats = res.elastic_stats
        assert stats["n_shed"] > 0
        summ = res.summary()
        assert summ["n_rejected"] == stats["n_shed"]
        assert summ["n_requests"] + summ["n_rejected"] == 40

    def test_shed_improves_tail_ttft(self):
        open_door = _run(seed=7, n=40, load=1.4)
        capped = _run(seed=7, n=40, load=1.4,
                      admission="shed?queue_max=10.0")
        assert capped.ttft_percentile(99) < open_door.ttft_percentile(99)

    def test_degrade_swaps_method_for_low_tiers(self):
        res = _run(seed=8, n=40, load=0.8,
                   arrival="sessions?turns=2.0,tiers=3.0",
                   admission="degrade?tier=1.0,method=hack_int4")
        assert res.elastic_stats["n_degraded"] > 0
        selected = {r["method_selected"] for r in res.to_records()
                    if "method_selected" in r}
        assert "hack_int4" in selected and "hack" in selected

    def test_custom_admission_policy(self):
        @register_admission(replace=True)
        class EveryOther(AdmissionPolicy):
            name = "test_every_other"
            description = "sheds every second arrival"

            def bind(self, sim):
                self._count = 0

            def admit(self, now, req, sim):
                self._count += 1
                return "shed" if self._count % 2 == 0 else None

        try:
            res = _run(seed=9, n=20, admission="test_every_other")
            assert res.elastic_stats["n_shed"] == 10
        finally:
            from repro.sim.elastic import admission_policies
            del admission_policies()["test_every_other"]


# -- API plumbing -------------------------------------------------------------


class TestScenarioPlumbing:
    def test_fields_canonicalized(self):
        s = Scenario(autoscaler="reactive?queue_lo=1,queue_hi=6",
                     admission="shed?queue_max=32")
        assert s.autoscaler == "reactive?queue_hi=6.0,queue_lo=1.0"
        assert s.admission == "shed?queue_max=32.0"
        loaded = Scenario.from_json(s.to_json())
        assert (loaded.autoscaler, loaded.admission) == \
            (s.autoscaler, s.admission)

    def test_default_omits_fields(self):
        d = Scenario().to_dict()
        assert "autoscaler" not in d and "admission" not in d

    def test_unknown_policies_kept_verbatim(self):
        s = Scenario(autoscaler="my_scaler?x=1", admission="my_gate")
        assert s.autoscaler == "my_scaler?x=1"
        assert s.admission == "my_gate"

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            Scenario(autoscaler="reactive?queue_high=6")

    def test_parallel_sweep_identical_to_serial(self):
        sweep = Sweep(Scenario(methods=("hack",), n_requests=16, seed=3,
                               arrival=DIURNAL, load_factor=0.4,
                               n_prefill_replicas=3),
                      axes={"autoscaler": (None, "static", REACTIVE)})
        serial = [a.to_json() for a in Runner().run_sweep(sweep)]
        parallel = [a.to_json()
                    for a in Runner(workers=2).run_sweep(sweep)]
        assert serial == parallel

    def test_artifact_carries_elastic_block(self):
        art = Runner().run(Scenario(methods=("hack",), n_requests=16,
                                    seed=3, arrival=DIURNAL,
                                    load_factor=0.4,
                                    n_prefill_replicas=3,
                                    autoscaler=REACTIVE))
        block = art.methods["hack"].summary["elastic"]
        assert "events" not in block and "timeseries" not in block
        assert block["goodput_per_gpu_hour"] > 0
        rt = compare_artifacts(
            art, type(art).from_json(art.to_json()))
        assert rt["equal"]
