"""Tests for repro.sim — the discrete-event serving simulator."""

import numpy as np
import pytest

from repro.methods import get_method
from repro.model import get_model
from repro.sim import (
    capacity_rps,
    default_cluster,
    experiment_rps,
    simulate,
    stage_capacities,
)
from repro.workload import generate_trace, get_dataset

L = get_model("L")


def _run(method="baseline", gpu="A10G", dataset="cocktail", n=40, rps=None,
         seed=0, **cfg_kwargs):
    config = default_cluster(L, get_method(method), gpu, **cfg_kwargs)
    if rps is None:
        rps = capacity_rps(config, get_dataset(dataset)) * 0.7
    trace = generate_trace(dataset, rps, n, seed=seed)
    return simulate(config, trace)


class TestConservation:
    def test_every_request_finishes_once(self):
        res = _run(n=50)
        assert len(res.requests) == 50
        ids = [r.request_id for r in res.requests]
        assert ids == sorted(set(ids))

    def test_all_requests_have_complete_timeline(self):
        res = _run(n=30)
        for r in res.requests:
            assert r.arrival <= r.prefill_start <= r.prefill_end
            assert r.prefill_end <= r.transfer_end <= r.finish
            assert r.tokens_generated >= 1

    def test_jct_at_least_sum_of_buckets(self):
        res = _run(n=30)
        for r in res.requests:
            busy = sum(r.decomposition().values()) - r.queue_s
            assert r.jct >= busy - 1e-9

    def test_ratios_sum_to_one(self):
        res = _run(n=30)
        for r in res.requests:
            assert sum(r.ratios(include_queue=True).values()) == \
                pytest.approx(1.0)
            assert sum(r.ratios(include_queue=False).values()) == \
                pytest.approx(1.0)

    def test_decode_memory_released(self):
        res = _run(n=30)
        # After completion all reservations must be gone; peak observed
        # while running must exceed the idle base.
        assert res.peak_memory_fraction > 0.4  # params + activations alone
        assert res.peak_memory_fraction <= 1.0


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = _run(n=25, seed=3)
        b = _run(n=25, seed=3)
        assert a.avg_jct() == b.avg_jct()
        assert a.peak_memory_fraction == b.peak_memory_fraction


class TestMethodOrdering:
    """The paper's headline orderings must hold in any loaded regime."""

    @pytest.fixture(scope="class")
    def results(self):
        rps = experiment_rps(L, "A10G", "cocktail", load_factor=1.05)
        trace = generate_trace("cocktail", rps, 60, seed=1)
        return {
            m: simulate(default_cluster(L, get_method(m), "A10G"), trace)
            for m in ("baseline", "cachegen", "kvquant", "hack")
        }

    def test_hack_beats_everyone(self, results):
        h = results["hack"].avg_jct()
        assert h < results["cachegen"].avg_jct()
        assert h < results["kvquant"].avg_jct()
        assert h < results["baseline"].avg_jct()

    def test_quant_methods_beat_baseline(self, results):
        b = results["baseline"].avg_jct()
        assert results["cachegen"].avg_jct() < b
        assert results["kvquant"].avg_jct() < b

    def test_cachegen_beats_kvquant(self, results):
        assert results["cachegen"].avg_jct() <= results["kvquant"].avg_jct()

    def test_hack_reduction_magnitude(self, results):
        """Cocktail/A10G: paper reports 61.6% vs baseline, 41.5% vs
        CacheGen; the reproduction must land in the same region."""
        h = results["hack"].avg_jct()
        vs_base = 1 - h / results["baseline"].avg_jct()
        vs_cg = 1 - h / results["cachegen"].avg_jct()
        assert 0.40 <= vs_base <= 0.75
        assert 0.25 <= vs_cg <= 0.55

    def test_dequant_bucket_present_only_for_comparators(self, results):
        assert results["cachegen"].mean_decomposition()["dequant_or_approx"] > 0
        assert results["baseline"].mean_decomposition()["dequant_or_approx"] == 0

    def test_hack_approx_far_below_dequant(self, results):
        hack_ap = results["hack"].mean_decomposition()["dequant_or_approx"]
        cg_dq = results["cachegen"].mean_decomposition()["dequant_or_approx"]
        assert hack_ap < 0.25 * cg_dq

    def test_comm_bucket_shrinks_with_quantization(self, results):
        base_c = results["baseline"].mean_decomposition()["comm"]
        for m in ("cachegen", "kvquant", "hack"):
            assert results[m].mean_decomposition()["comm"] < 0.25 * base_c

    def test_memory_pressure_ordering(self, results):
        assert results["hack"].peak_memory_fraction < \
            results["baseline"].peak_memory_fraction


class TestBottleneckShapes:
    def test_v100_baseline_comm_dominates(self):
        res = _run(gpu="V100", n=30)
        ratios = res.mean_ratios()
        assert ratios["comm"] > 0.3  # 10 Gbps NIC (paper: up to 42.2%)

    def test_a100_comm_small(self):
        """Fig. 1(a): A100's 400 Gbps keeps comm under ~10%."""
        res = _run(gpu="A100", n=30)
        assert res.mean_ratios()["comm"] < 0.10

    def test_long_dataset_more_comm_than_short(self):
        long_r = _run(dataset="cocktail", n=30).mean_ratios()["comm"]
        short_r = _run(dataset="imdb", n=30, rps=2.0).mean_ratios()["comm"]
        assert long_r > short_r

    def test_kv_access_ratio_band(self):
        """§2.1: KV memory access is a visible share of baseline JCT."""
        res = _run(n=40, rps=None)
        assert 0.03 <= res.mean_kv_access_ratio() <= 0.45


class TestSwapPath:
    def test_swap_triggers_under_memory_pressure(self):
        """Scarce decode memory forces the §5.1 CPU-swap path.

        A large prefill fleet (40 instances → 20 replicas) outruns a
        single decode instance, so FP16 KV floods the decode memory.
        """
        config = default_cluster(L, get_method("baseline"), "A10G",
                                 n_decode_instances=1,
                                 n_prefill_instances=40)
        trace = generate_trace("cocktail", 2.0, 80, seed=2)
        res = simulate(config, trace)
        assert res.n_swapped > 0
        assert len(res.requests) == 80  # everyone still completes

    def test_swapped_requests_pay_more_comm(self):
        config = default_cluster(L, get_method("baseline"), "A10G",
                                 n_decode_instances=1,
                                 n_prefill_instances=40)
        trace = generate_trace("cocktail", 2.0, 80, seed=2)
        res = simulate(config, trace)
        swapped = [r for r in res.requests if r.swapped]
        direct = [r for r in res.requests if not r.swapped]
        if swapped and direct:
            assert np.mean([r.comm_s for r in swapped]) > \
                np.mean([r.comm_s for r in direct])


class TestPipelining:
    def test_pipelining_reduces_comm_when_light(self):
        """Fig. 1(d): at low RPS pipelining hides most transfer time."""
        rps = 0.05
        trace = generate_trace("cocktail", rps, 30, seed=3)
        plain = simulate(default_cluster(L, get_method("baseline"), "A10G"),
                         trace)
        piped = simulate(default_cluster(L, get_method("baseline"), "A10G",
                                         pipelining=True), trace)
        assert piped.mean_decomposition()["comm"] < \
            0.7 * plain.mean_decomposition()["comm"]

    def test_pipelining_ineffective_on_v100(self):
        """§2.1 case i: V100 comm far exceeds prefill, little overlap."""
        trace = generate_trace("cocktail", 0.05, 30, seed=4)
        plain = simulate(default_cluster(L, get_method("baseline"), "V100"),
                         trace)
        piped = simulate(default_cluster(L, get_method("baseline"), "V100",
                                         pipelining=True), trace)
        ratio = (piped.mean_decomposition()["comm"]
                 / plain.mean_decomposition()["comm"])
        assert ratio > 0.6


class TestCapacity:
    def test_three_stages_returned(self):
        config = default_cluster(L, get_method("baseline"), "A10G")
        caps = stage_capacities(config, get_dataset("cocktail"))
        assert len(caps) == 3
        assert all(c > 0 for c in caps)

    def test_v100_nic_bound(self):
        config = default_cluster(L, get_method("baseline"), "V100")
        prefill, nic, decode = stage_capacities(config, get_dataset("cocktail"))
        assert nic < prefill
        assert nic < decode

    def test_hack_capacity_exceeds_baseline(self):
        base = default_cluster(L, get_method("baseline"), "A10G")
        hack = default_cluster(L, get_method("hack"), "A10G")
        ds = get_dataset("cocktail")
        assert capacity_rps(hack, ds) > capacity_rps(base, ds)

    def test_experiment_rps_positive(self):
        assert experiment_rps(L, "A10G", "cocktail") > 0


class TestValidation:
    def test_empty_trace_rejected(self):
        config = default_cluster(L, get_method("baseline"), "A10G")
        with pytest.raises(ValueError):
            simulate(config, [])
