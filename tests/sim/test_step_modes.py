"""Differential tests: span fast-forwarding vs legacy token stepping.

The span engine advances whole runs of decode iterations with
closed-form latency sums; these tests pin it to the token path —
per-request, per-bucket, across every registered method, with
pipelining on and off and through the CPU-swap path — to 1e-9 relative
tolerance, plus a golden check that the rendered fig9/fig10 tables are
byte-identical between the two modes.
"""

import math

import pytest

from repro.api import Runner, Scenario, Sweep
from repro.experiments import fig9_12_jct
from repro.methods import get_method
from repro.methods.registry import METHODS
from repro.model import get_model
from repro.sim import capacity_rps, default_cluster, simulate
from repro.workload import generate_trace, get_dataset

L = get_model("L")
RTOL = 1e-9


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=RTOL, abs_tol=1e-12)


def _run_both(method: str, n: int = 30, seed: int = 0, rps: float = None,
              dataset: str = "cocktail", **cfg_kwargs):
    results = {}
    for mode in ("token", "span"):
        config = default_cluster(L, get_method(method), "A10G",
                                 step_mode=mode, **cfg_kwargs)
        rate = rps if rps is not None else \
            capacity_rps(config, get_dataset(dataset)) * 1.05
        trace = generate_trace(dataset, rate, n, seed=seed)
        results[mode] = simulate(config, trace)
    return results["token"], results["span"]


def _assert_equivalent(token, span):
    """Every §7 metric the paper reports must agree between modes."""
    assert token.n_swapped == span.n_swapped
    assert _close(token.peak_memory_fraction, span.peak_memory_fraction)
    assert _close(token.avg_jct(), span.avg_jct())
    for p in (50, 95, 99):
        assert _close(token.jct_percentile(p), span.jct_percentile(p))
    assert len(token.requests) == len(span.requests)
    for rt, rs in zip(token.requests, span.requests):
        assert rt.request_id == rs.request_id
        assert rt.tokens_generated == rs.tokens_generated
        assert rt.swapped == rs.swapped
        assert _close(rt.jct, rs.jct)
        dt, ds = rt.decomposition(), rs.decomposition()
        for bucket in dt:
            assert _close(dt[bucket], ds[bucket]), \
                f"request {rt.request_id} bucket {bucket}: " \
                f"{dt[bucket]} vs {ds[bucket]}"


class TestDifferentialAllMethods:
    @pytest.mark.parametrize("method", sorted(METHODS))
    def test_span_matches_token(self, method):
        token, span = _run_both(method)
        _assert_equivalent(token, span)


class TestDifferentialRegimes:
    @pytest.mark.parametrize("method", ("baseline", "hack"))
    def test_pipelining(self, method):
        token, span = _run_both(method, pipelining=True)
        _assert_equivalent(token, span)

    @pytest.mark.parametrize("method", ("baseline", "hack"))
    def test_swap_path(self, method):
        """Scarce decode memory forces the §5.1 CPU-swap detour; swap
        admissions re-enter decode mid-stream and must interrupt spans
        identically in both modes."""
        token, span = _run_both(method, n=80, seed=2, rps=2.0,
                                n_decode_instances=1,
                                n_prefill_instances=40)
        if method == "baseline":          # compressed KV fits; FP16 spills
            assert token.n_swapped > 0
        _assert_equivalent(token, span)

    def test_single_decode_replica_high_load(self):
        """Many concurrent joins/finishes per replica — maximum span
        interrupt pressure."""
        token, span = _run_both("hack", n=60, seed=5, rps=3.0,
                                n_decode_instances=1)
        _assert_equivalent(token, span)

    def test_short_output_dataset(self):
        """Output lengths near 1 give degenerate (k=1) spans."""
        token, span = _run_both("baseline", dataset="imdb", rps=2.0)
        _assert_equivalent(token, span)


class TestGoldenRendering:
    def test_fig9_fig10_tables_byte_identical(self, monkeypatch):
        """The rendered fig9/fig10 artifact must not change at table
        precision when the fast path replaces token stepping."""
        span_text = fig9_12_jct.run_fig9_fig10(scale=0.1).render()
        token_sweep = Sweep(
            fig9_12_jct.FIG9_SWEEP.base.replace(step_mode="token"),
            axes=fig9_12_jct.FIG9_SWEEP.axes,
        )
        monkeypatch.setattr(fig9_12_jct, "FIG9_SWEEP", token_sweep)
        token_text = fig9_12_jct.run_fig9_fig10(scale=0.1).render()
        assert span_text == token_text


class TestScenarioPlumbing:
    def test_step_mode_round_trips(self):
        s = Scenario(step_mode="token")
        assert Scenario.from_json(s.to_json()).step_mode == "token"
        assert "step_mode=token" in s.describe()

    def test_invalid_step_mode_rejected(self):
        with pytest.raises(ValueError):
            Scenario(step_mode="warp")
        with pytest.raises(ValueError):
            default_cluster(L, get_method("baseline"), "A10G",
                            step_mode="warp")

    def test_runner_records_throughput(self):
        art = Runner().run(Scenario(methods=("baseline",), n_requests=15,
                                    step_mode="span"))
        perf = art.perf["baseline"]
        assert perf["step_mode"] == "span"
        assert perf["simulated_tokens"] == \
            art.results["baseline"].generated_tokens()
        assert perf["tokens_per_s"] > 0
