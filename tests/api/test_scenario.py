"""Scenario/Sweep declarative layer: construction and JSON round-trips."""

import json

import pytest

from repro.api import Scenario, Sweep
from repro.api.scenario import model_dataset
from repro.model import get_model


class TestScenario:
    def test_defaults_match_paper_conventions(self):
        s = Scenario()
        assert s.model == "L"
        assert s.dataset == "cocktail"
        assert s.prefill_gpu == "A10G"
        assert s.decode_gpu == "A100"
        assert s.methods == ("baseline",)

    def test_methods_string_is_split(self):
        s = Scenario(methods="baseline,hack")
        assert s.methods == ("baseline", "hack")

    def test_empty_methods_rejected(self):
        with pytest.raises(ValueError, match="at least one method"):
            Scenario(methods=())

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            Scenario(scale=0)

    def test_json_round_trip(self):
        s = Scenario(model="Y", methods=("baseline", "hack"), dataset="imdb",
                     prefill_gpu="V100", decode_gpu="L4", rps=0.25,
                     seed=7, scale=0.5, pipelining=True,
                     n_prefill_replicas=3,
                     calibration={"net_efficiency": 0.5})
        restored = Scenario.from_json(s.to_json())
        assert restored == s
        assert restored.calibration_overrides() == {"net_efficiency": 0.5}

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown scenario field"):
            Scenario.from_dict({"modle": "L"})

    def test_json_is_deterministic(self):
        a = Scenario(calibration={"kv_bw_eff": 0.1, "net_efficiency": 0.5})
        b = Scenario(calibration={"net_efficiency": 0.5, "kv_bw_eff": 0.1})
        assert a == b
        assert a.to_json() == b.to_json()
        assert a.slug() == b.slug()

    def test_slug_distinguishes_scenarios(self):
        assert Scenario().slug() != Scenario(seed=2).slug()

    def test_name_label_never_affects_identity(self):
        """A sweep-labelled cell equals the same cell run directly."""
        plain, labelled = Scenario(), Scenario(name="dataset=cocktail")
        assert plain == labelled
        assert plain.slug() == labelled.slug()
        # …but the label still round-trips through JSON.
        assert Scenario.from_json(labelled.to_json()).name == \
            "dataset=cocktail"

    def test_split_methods(self):
        s = Scenario(methods=("baseline", "hack"), dataset="arxiv")
        parts = s.split_methods()
        assert [p.methods for p in parts] == [("baseline",), ("hack",)]
        assert all(p.dataset == "arxiv" for p in parts)

    def test_model_dataset_falcon_substitution(self):
        name, cap = model_dataset(get_model("F"), "cocktail")
        assert (name, cap) == ("arxiv", 2048)


class TestSweep:
    def test_expansion_is_row_major(self):
        sweep = Sweep(Scenario(), axes={"dataset": ["imdb", "arxiv"],
                                        "seed": [1, 2]})
        cells = [(s.dataset, s.seed) for s in sweep.expand()]
        assert cells == [("imdb", 1), ("imdb", 2),
                         ("arxiv", 1), ("arxiv", 2)]
        assert len(sweep) == 4

    def test_methods_axis_freezes_lists(self):
        sweep = Sweep(Scenario(), axes={"methods": [["baseline"], ["hack"]]})
        assert [s.methods for s in sweep.expand()] == [("baseline",),
                                                       ("hack",)]

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="not a sweepable"):
            Sweep(Scenario(), axes={"nonsense": [1]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            Sweep(Scenario(), axes={"dataset": []})

    def test_json_round_trip(self):
        sweep = Sweep(Scenario(methods=("hack",)),
                      axes={"dataset": ["imdb", "cocktail"],
                            "prefill_gpu": ["A10G", "V100"]})
        restored = Sweep.from_json(sweep.to_json())
        assert restored == sweep
        assert restored.expand() == sweep.expand()
        # and the JSON itself is valid, deterministic JSON
        assert json.loads(sweep.to_json())["axes"]["dataset"] == \
            ["imdb", "cocktail"]

    def test_override_rescales_base(self):
        sweep = Sweep(Scenario(), axes={"dataset": ["imdb"]})
        assert sweep.override(scale=0.25).base.scale == 0.25
        # the original is untouched (sweeps are immutable)
        assert sweep.base.scale == 1.0
