"""Schema v2 artifacts (serving metrics) and arrival-process plumbing."""

import json

import pytest

from repro.api import (
    Runner,
    RunArtifact,
    SCHEMA_VERSION,
    Scenario,
    Sweep,
    compare_artifacts,
)
from repro.api.runner import resolve
from repro.cli import main

SMALL = Scenario(methods=("baseline",), dataset="imdb", n_requests=12,
                 seed=3)


def _as_v1(artifact: RunArtifact) -> dict:
    """Strip a fresh artifact back to the v1 shape (as an old file)."""
    v1_summary = ("n_requests", "avg_jct_s", "p50_jct_s", "p95_jct_s",
                  "p99_jct_s", "max_jct_s", "mean_decomposition_s",
                  "peak_memory_fraction", "n_swapped")
    v1_record = ("request_id", "arrival_s", "input_len", "output_len",
                 "prefill_replica", "decode_replica", "swapped", "jct_s",
                 "decomposition_s", "kv_access_s")
    data = json.loads(artifact.to_json())
    data["schema_version"] = 1
    data.pop("trace", None)        # the v3 trace block postdates v1
    for run in data["methods"].values():
        run["summary"] = {k: run["summary"][k] for k in v1_summary}
        run["requests"] = [{k: r[k] for k in v1_record}
                           for r in run["requests"]]
    return data


class TestSchemaV2:
    @pytest.fixture(scope="class")
    def artifact(self):
        return Runner().run(SMALL)

    def test_writes_current_schema(self, artifact):
        assert SCHEMA_VERSION == 5
        assert artifact.to_dict()["schema_version"] == 5

    def test_summary_has_serving_metrics(self, artifact):
        s = artifact.methods["baseline"].summary
        assert s["p99_ttft_s"] > 0
        assert s["p99_tbt_s"] > 0
        assert 0.0 <= s["slo_attainment"] <= 1.0

    def test_v1_artifact_still_loads(self, artifact):
        loaded = RunArtifact.from_dict(_as_v1(artifact))
        assert loaded.scenario == SMALL
        assert "p99_ttft_s" not in loaded.methods["baseline"].summary

    def test_v1_artifact_renders(self, artifact):
        loaded = RunArtifact.from_dict(_as_v1(artifact))
        text = loaded.summary_table().render()
        assert "p99_ttft_s" in text      # column exists, cells are "-"
        assert "-" in text

    def test_v1_vs_v2_compare_ignores_missing_keys(self, artifact):
        """Same run, old file vs new file: shared metrics all match, so
        the diff must not flag the v2-only keys."""
        loaded = RunArtifact.from_dict(_as_v1(artifact))
        diff = compare_artifacts(artifact, loaded)
        assert diff["equal"]

    def test_unknown_version_still_rejected(self, artifact):
        data = artifact.to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            RunArtifact.from_dict(data)


class TestScenarioArrival:
    def test_default_omits_arrival(self):
        """Slug/JSON stability: a defaulted scenario serializes exactly
        as it did before the field existed."""
        assert "arrival" not in Scenario().to_dict()

    def test_round_trip_and_canonicalization(self):
        s = Scenario(arrival="mmpp?duty=0.2,burst=4")
        assert s.arrival == "mmpp?burst=4.0,duty=0.2"
        assert Scenario.from_json(s.to_json()).arrival == s.arrival
        assert "arrival=mmpp?burst=4.0,duty=0.2" in s.describe()

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            Scenario(arrival="mmpp?duty=2.0")

    def test_unknown_family_kept_verbatim(self):
        """Artifacts referencing a custom arrival process must load."""
        s = Scenario(arrival="my_custom_process?x=1")
        assert s.arrival == "my_custom_process?x=1"

    def test_resolve_plumbs_arrival(self):
        poisson = resolve(SMALL)
        bursty = resolve(SMALL.replace(arrival="gamma?cv=4.0"))
        assert poisson.trace != bursty.trace
        explicit = resolve(SMALL.replace(arrival="poisson"))
        assert poisson.trace == explicit.trace

    def test_sweepable(self):
        sweep = Sweep(SMALL, axes={"arrival": ["poisson", "gamma?cv=3.0"]})
        cells = sweep.expand()
        assert [c.arrival for c in cells] == ["poisson", "gamma?cv=3.0"]


class TestCliArrival:
    def test_run_flag(self, capsys):
        assert main(["run", "--methods", "baseline", "--dataset", "imdb",
                     "--n-requests", "10", "--arrival",
                     "mmpp?burst=4,duty=0.2", "--json"]) == 0
        artifact = json.loads(capsys.readouterr().out)
        assert artifact["scenario"]["arrival"] == "mmpp?burst=4.0,duty=0.2"
        summary = artifact["methods"]["baseline"]["summary"]
        assert "slo_goodput_rps" in summary

    def test_sweep_axis_keeps_spec_params_attached(self, tmp_path):
        assert main(["sweep", "--methods", "hack", "--dataset", "imdb",
                     "--n-requests", "10", "--axis",
                     "arrival=poisson,mmpp?burst=4,duty=0.2",
                     "--out", str(tmp_path)]) == 0
        files = sorted(tmp_path.glob("*.json"))
        assert len(files) == 2
        arrivals = sorted(json.loads(p.read_text())["scenario"]
                          .get("arrival", "poisson") for p in files)
        assert arrivals == ["mmpp?burst=4.0,duty=0.2", "poisson"]

    def test_unknown_arrival_is_clean_cli_error(self, capsys):
        assert main(["run", "--methods", "baseline", "--n-requests", "10",
                     "--arrival", "bursty"]) == 2
        assert "unknown arrival process" in capsys.readouterr().err

    def test_list_shows_arrival_processes(self, capsys):
        assert main(["list", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert "mmpp" in catalog["arrival_processes"]
        assert "slo" in catalog["experiments"]
