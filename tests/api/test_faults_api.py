"""Fault/recovery plumbing through Scenario, Sweep, Runner, artifacts
and the CLI (schema v4)."""

import json

import pytest

from repro.api import Runner, RunArtifact, Scenario, Sweep, compare_artifacts
from repro.api.runner import resolve
from repro.cli import main

FAULTED = Scenario(methods=("baseline",), dataset="imdb", n_requests=14,
                   seed=3, faults="replica_crash?mttf=20,mttr=5",
                   recovery="retry?base_s=0.5")


class TestScenarioFields:
    def test_default_omits_fault_fields(self):
        """Slug/JSON stability: a defaulted scenario serializes exactly
        as it did before the fields existed."""
        data = Scenario().to_dict()
        assert "faults" not in data and "recovery" not in data

    def test_round_trip_and_canonicalization(self):
        s = Scenario(faults="replica_crash?mttr=5,mttf=20",
                     recovery="retry?max=5,base_s=0.5")
        assert s.faults == "replica_crash?mttf=20.0,mttr=5.0"
        assert s.recovery == "retry?base_s=0.5,max=5.0"
        loaded = Scenario.from_json(s.to_json())
        assert loaded.faults == s.faults
        assert loaded.recovery == s.recovery
        assert "faults=replica_crash?mttf=20.0,mttr=5.0" in s.describe()
        assert "recovery=retry?base_s=0.5,max=5.0" in s.describe()

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            Scenario(faults="replica_crash?mttf=0")
        with pytest.raises(ValueError):
            Scenario(recovery="retry?max=0")

    def test_unknown_families_kept_verbatim(self):
        """Artifacts referencing custom fault/recovery families must
        load even where the family is not registered."""
        s = Scenario(faults="cosmic_rays?rate=1", recovery="pray")
        assert s.faults == "cosmic_rays?rate=1"
        assert s.recovery == "pray"

    def test_resolve_plumbs_fault_fields(self):
        resolved = resolve(FAULTED)
        config = resolved.configs["baseline"]
        assert config.faults.canonical() == FAULTED.faults
        assert config.recovery.canonical() == FAULTED.recovery
        plain = resolve(FAULTED.replace(faults=None, recovery=None))
        assert plain.configs["baseline"].faults is None
        assert plain.configs["baseline"].recovery is None


class TestParallelDeterminism:
    """Fault timelines and retry jitter re-derive identically inside
    forked sweep workers — parallel runs stay bit-identical."""

    def test_parallel_is_bit_identical_to_serial(self):
        serial = Runner().run(FAULTED.replace(methods=("baseline", "hack")))
        parallel = Runner(workers=4).run(
            FAULTED.replace(methods=("baseline", "hack")))
        assert parallel.to_json() == serial.to_json()
        assert compare_artifacts(parallel, serial)["equal"]

    def test_sweep_with_faults_axis_parallel_equals_serial(self):
        sweep = Sweep(FAULTED, axes={
            "faults": [None, "replica_crash?mttf=20,mttr=5",
                       "transfer_flap?p_fail=0.3"],
            "recovery": [None, "none"],
        })
        serial = Runner().run_sweep(sweep)
        parallel = Runner(workers=4).run_sweep(sweep)
        assert [a.to_json() for a in serial] == \
            [a.to_json() for a in parallel]


class TestArtifactV4:
    @pytest.fixture(scope="class")
    def artifact(self):
        return Runner().run(FAULTED)

    def test_summary_carries_fault_block(self, artifact):
        summary = artifact.methods["baseline"].summary
        assert "n_failed" in summary
        assert "faults" in summary
        assert 0.0 < summary["faults"]["availability"] <= 1.0

    def test_records_carry_terminal_state(self, artifact):
        for rec in artifact.methods["baseline"].requests:
            assert rec["terminal"] in ("finished", "rejected", "failed")
            assert "n_retries" in rec

    def test_round_trip(self, artifact, tmp_path):
        path = artifact.save(tmp_path)
        loaded = RunArtifact.load(path)
        assert loaded.to_json() == artifact.to_json()
        assert loaded.scenario.faults == FAULTED.faults

    def test_compare_flags_terminal_flip(self, artifact):
        other = RunArtifact.from_json(artifact.to_json())
        record = other.methods["baseline"].requests[0]
        record["terminal"] = "failed"
        record.pop("jct_s", None)
        diff = compare_artifacts(artifact, other)
        assert not diff["equal"]
        assert "requests.jct_s" in diff["methods"]["baseline"]

    def test_compare_flags_fault_metric_drift(self, artifact):
        other = RunArtifact.from_json(artifact.to_json())
        other.methods["baseline"].summary["faults"]["availability"] *= 0.5
        diff = compare_artifacts(artifact, other)
        assert "faults.availability" in diff["methods"]["baseline"]

    def test_v3_shaped_artifact_still_loads(self, artifact):
        """A pre-fault file (no terminal keys, finished-only records)
        must load and compare cleanly against itself."""
        v4_only = ("terminal", "n_retries", "wasted_compute_s",
                   "recovered")
        data = json.loads(
            Runner().run(FAULTED.replace(faults=None,
                                         recovery=None)).to_json())
        data["schema_version"] = 3
        for run in data["methods"].values():
            run["summary"].pop("n_failed", None)
            run["requests"] = [
                {k: v for k, v in r.items() if k not in v4_only}
                for r in run["requests"]]
        loaded = RunArtifact.from_dict(data)
        assert compare_artifacts(loaded, loaded)["equal"]


class TestCliFaults:
    def test_run_flags(self, capsys):
        assert main(["run", "--methods", "baseline", "--dataset", "imdb",
                     "--n-requests", "12", "--seed", "3",
                     "--faults", "replica_crash?mttf=20,mttr=5",
                     "--recovery", "migrate", "--json"]) == 0
        artifact = json.loads(capsys.readouterr().out)
        assert artifact["scenario"]["faults"] == \
            "replica_crash?mttf=20.0,mttr=5.0"
        assert artifact["scenario"]["recovery"] == "migrate"
        summary = artifact["methods"]["baseline"]["summary"]
        assert "faults" in summary

    def test_sweep_axis_keeps_plan_params_attached(self, tmp_path):
        assert main(["sweep", "--methods", "hack", "--dataset", "imdb",
                     "--n-requests", "10", "--axis",
                     "faults=none,replica_crash?mttf=30,mttr=5"
                     "+transfer_flap",
                     "--out", str(tmp_path)]) == 0
        files = sorted(tmp_path.glob("*.json"))
        assert len(files) == 2
        plans = sorted(json.loads(p.read_text())["scenario"]
                       .get("faults", "none") for p in files)
        assert plans == \
            ["none", "replica_crash?mttf=30.0,mttr=5.0+transfer_flap"]

    def test_unknown_family_is_clean_cli_error(self, capsys):
        assert main(["run", "--methods", "baseline", "--n-requests", "10",
                     "--faults", "meteor_strike"]) == 2
        assert "unknown fault family" in capsys.readouterr().err

    def test_list_shows_fault_catalogs(self, capsys):
        assert main(["list", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert "replica_crash" in catalog["fault_families"]
        assert "retry" in catalog["recovery_policies"]
        assert "faults" in catalog["experiments"]

    def test_outage_without_store_is_clean_cli_error(self, capsys):
        assert main(["run", "--methods", "baseline", "--n-requests", "10",
                     "--faults", "kvstore_outage"]) == 2
        assert "kvstore" in capsys.readouterr().err


class TestFaultsExperiment:
    def test_grid_covers_every_family_and_policy(self):
        from repro.experiments.faults import (
            FAULT_PLANS, FAULT_SWEEP, RECOVERIES)
        cells = FAULT_SWEEP.expand()
        assert len(cells) == len(FAULT_PLANS) * len(RECOVERIES)
        families = {p.partition("?")[0] for p in FAULT_PLANS}
        assert {"replica_crash", "nic_degrade", "transfer_flap",
                "kvstore_outage"} <= families
        for cell in cells:
            assert cell.kvstore is not None   # outage rows need a store

    def test_single_cell_runs(self):
        from repro.experiments import faults as faults_experiment

        study = faults_experiment.run(scale=0.01)
        assert study.table.rows
        healthy = study.healthy()
        assert healthy.availability() == 1.0
