"""Schema v3 artifacts (trace block, kvstore/selection sections) and
the kvstore/selection plumbing through Scenario, Sweep, Runner, CLI."""

import json

import pytest

from repro.api import (
    Runner,
    RunArtifact,
    Scenario,
    Sweep,
    compare_artifacts,
)
from repro.cli import main

KV = Scenario(methods=("hack",), n_requests=24, seed=3, rps=2.0,
              arrival="sessions?think_time=20.0,turns=4.0",
              kvstore="tiered?dram_gb=8.0", selection="slo_tier")


@pytest.fixture(scope="module")
def artifact():
    return Runner().run(KV)


@pytest.fixture(scope="module")
def plain_artifact():
    return Runner().run(Scenario(methods=("baseline",), dataset="imdb",
                                 n_requests=12, seed=3))


class TestTraceBlock:
    def test_every_artifact_carries_clip_counts(self, plain_artifact):
        assert plain_artifact.trace == {"n_input_clipped": 0,
                                        "n_output_clipped": 0}

    def test_clipping_surfaces(self):
        art = Runner().run(Scenario(methods=("baseline",), dataset="arxiv",
                                    model="F", n_requests=15, seed=1))
        assert art.trace["n_input_clipped"] > 0
        title = art.summary_table().render().splitlines()[0]
        assert f"clipped: in={art.trace['n_input_clipped']}" in title

    def test_unclipped_title_stays_clean(self, plain_artifact):
        title = plain_artifact.summary_table().render().splitlines()[0]
        assert "clipped" not in title

    def test_round_trips(self, plain_artifact):
        loaded = RunArtifact.from_json(plain_artifact.to_json())
        assert loaded.trace == plain_artifact.trace

    def test_compare_flags_clip_count_drift(self, plain_artifact):
        data = json.loads(plain_artifact.to_json())
        data["trace"]["n_input_clipped"] = 7
        drifted = RunArtifact.from_dict(data)
        diff = compare_artifacts(plain_artifact, drifted)
        assert not diff["equal"]
        assert diff["trace"]["n_input_clipped"] == \
            {"a": 0, "b": 7, "rel_diff": 1.0}

    def test_v2_artifact_still_loads(self, plain_artifact):
        data = json.loads(plain_artifact.to_json())
        data["schema_version"] = 2
        del data["trace"]
        loaded = RunArtifact.from_dict(data)
        assert loaded.trace is None
        assert compare_artifacts(plain_artifact, loaded)["equal"]


class TestKVStoreSections:
    def test_summary_sections_round_trip(self, artifact):
        summary = artifact.methods["hack"].summary
        assert summary["kvstore"]["hit_rate"] > 0
        assert summary["selection_mix"]
        loaded = RunArtifact.from_json(artifact.to_json())
        assert loaded.methods["hack"].summary["kvstore"] == \
            summary["kvstore"]
        assert compare_artifacts(artifact, loaded)["equal"]

    def test_requests_carry_selection_keys(self, artifact):
        rec = artifact.methods["hack"].requests[0]
        assert {"method_selected", "prefix_hit_tokens", "cache_read_s",
                "cache_tier"} <= set(rec)

    def test_plain_runs_stay_v2_shaped(self, plain_artifact):
        summary = plain_artifact.methods["baseline"].summary
        assert "kvstore" not in summary
        assert "selection_mix" not in summary
        assert "method_selected" not in \
            plain_artifact.methods["baseline"].requests[0]

    def test_compare_diffs_kvstore_metrics(self, artifact):
        other = Runner().run(KV.replace(
            kvstore="tiered?hbm_gb=0.05,dram_gb=0.1,pool_gb=0.2"))
        diff = compare_artifacts(artifact, other)
        assert not diff["equal"]
        assert any(k.startswith("kvstore.") for k in diff["methods"]["hack"])

    def test_compare_flags_presence_mismatch(self, artifact):
        stripped = json.loads(artifact.to_json())
        for run in stripped["methods"].values():
            run["summary"].pop("kvstore")
        diff = compare_artifacts(artifact, RunArtifact.from_dict(stripped))
        assert diff["methods"]["hack"]["kvstore"] == \
            {"a": True, "b": False, "rel_diff": 1.0}

    def test_serial_and_parallel_runs_byte_identical(self):
        two = KV.replace(methods=("hack", "baseline"))
        serial = Runner().run(two).to_json()
        parallel = Runner(workers=2).run(two).to_json()
        assert serial == parallel


class TestScenarioFields:
    def test_canonicalized_and_round_tripped(self):
        s = Scenario(kvstore="tiered?pool_gb=64,dram_gb=8+lfu",
                     selection="congestion?lo=0.4,hi=0.8")
        assert s.kvstore == "tiered?dram_gb=8.0,pool_gb=64.0+lfu"
        assert s.selection == "congestion?hi=0.8,lo=0.4"
        loaded = Scenario.from_json(s.to_json())
        assert (loaded.kvstore, loaded.selection) == \
            (s.kvstore, s.selection)
        assert "kvstore=tiered?dram_gb=8.0,pool_gb=64.0+lfu" \
            in s.describe()

    def test_default_omits_fields(self):
        d = Scenario().to_dict()
        assert "kvstore" not in d and "selection" not in d

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            Scenario(kvstore="tiered?dram_gb=-1")
        with pytest.raises(ValueError):
            Scenario(selection="congestion?hi=2.0")

    def test_unknown_families_kept_verbatim(self):
        """Artifacts referencing custom registrations must load."""
        s = Scenario(kvstore="my_store?x=1", selection="my_policy")
        assert s.kvstore == "my_store?x=1"
        assert s.selection == "my_policy"


class TestSweepAxes:
    def test_kvstore_param_axis(self):
        sweep = Sweep(KV, axes={"kvstore.dram_gb": [0.5, 8.0]})
        cells = sweep.expand()
        assert [c.kvstore for c in cells] == \
            ["tiered?dram_gb=0.5", "tiered?dram_gb=8.0"]
        assert all(c.selection == KV.selection for c in cells)

    def test_axis_on_storeless_base_implies_tiered(self):
        sweep = Sweep(Scenario(methods=("hack",)),
                      axes={"kvstore.pool_gb": [64.0]})
        assert sweep.expand()[0].kvstore == "tiered?pool_gb=64.0"

    def test_axis_preserves_eviction(self):
        base = KV.replace(kvstore="tiered+lfu")
        cell, = Sweep(base, axes={"kvstore.dram_gb": [2.0]}).expand()
        assert cell.kvstore == "tiered?dram_gb=2.0+lfu"

    def test_bad_axis_params_rejected(self):
        with pytest.raises(ValueError, match="dram_gb"):
            Sweep(KV, axes={"kvstore.dram": [1.0]}).expand()
        with pytest.raises(ValueError):
            Sweep(KV, axes={"kvstore.": [1.0]})

    def test_whole_spec_and_selection_axes(self):
        sweep = Sweep(KV, axes={"kvstore": [None, "tiered?dram_gb=8.0"],
                                "selection": [None, "slo_tier"]})
        cells = sweep.expand()
        assert len(cells) == 4
        assert {(c.kvstore, c.selection) for c in cells} == {
            (None, None), (None, "slo_tier"),
            ("tiered?dram_gb=8.0", None),
            ("tiered?dram_gb=8.0", "slo_tier")}


CLI_KV = ["run", "--methods", "hack", "--n-requests", "16", "--rps", "2",
          "--arrival", "sessions?turns=4,think_time=20",
          "--kvstore", "tiered?dram_gb=8", "--selection", "slo_tier"]


class TestCli:
    def test_run_flags_reach_artifact(self, capsys):
        assert main([*CLI_KV, "--json"]) == 0
        artifact = json.loads(capsys.readouterr().out)
        assert artifact["scenario"]["kvstore"] == "tiered?dram_gb=8.0"
        assert artifact["scenario"]["selection"] == "slo_tier"
        summary = artifact["methods"]["hack"]["summary"]
        assert summary["kvstore"]["lookups"] == 16
        assert summary["selection_mix"]
        assert "trace" in artifact

    def test_unknown_kvstore_is_clean_cli_error(self, capsys):
        assert main(["run", "--methods", "hack", "--n-requests", "10",
                     "--kvstore", "tierd"]) == 2
        assert "tiered" in capsys.readouterr().err

    def test_list_catalogs_kvstore_registries(self, capsys):
        assert main(["list", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert "tiered" in catalog["kvstore_families"]
        assert {"lru", "lfu", "ttl"} <= set(catalog["eviction_policies"])
        assert catalog["selection_policies"]["congestion"]["signature"] \
            .startswith("congestion?")
        assert "kvstore" in catalog["experiments"]

    def test_sweep_axis_keeps_selection_params_attached(self, tmp_path):
        assert main(["sweep", "--methods", "hack", "--n-requests", "10",
                     "--rps", "2",
                     "--arrival", "sessions?turns=4,think_time=20",
                     "--kvstore", "tiered",
                     "--axis", "kvstore.dram_gb=0.5,8",
                     "--axis", "selection=slo_tier,congestion?hi=0.8,lo=0.4",
                     "--out", str(tmp_path)]) == 0
        files = sorted(tmp_path.glob("*.json"))
        assert len(files) == 4
        combos = {(json.loads(p.read_text())["scenario"]["kvstore"],
                   json.loads(p.read_text())["scenario"]["selection"])
                  for p in files}
        assert combos == {
            ("tiered?dram_gb=0.5", "slo_tier"),
            ("tiered?dram_gb=0.5", "congestion?hi=0.8,lo=0.4"),
            ("tiered?dram_gb=8.0", "slo_tier"),
            ("tiered?dram_gb=8.0", "congestion?hi=0.8,lo=0.4")}
