"""Runner execution: resolution fidelity, parallel == serial, artifacts."""

import pytest

from repro.api import Runner, RunArtifact, Scenario, Sweep, compare_artifacts
from repro.api.runner import resolve
from repro.methods import get_method
from repro.model import get_model
from repro.sim import default_cluster

#: Small but non-trivial cell: short prompts keep the simulation fast.
SMALL = Scenario(methods=("baseline", "hack"), dataset="imdb",
                 n_requests=16, seed=3)


class TestResolve:
    def test_matches_default_cluster(self):
        resolved = resolve(Scenario(methods=("hack",)))
        expected = default_cluster(get_model("L"), get_method("hack"), "A10G")
        assert resolved.configs["hack"] == expected

    def test_replica_overrides(self):
        resolved = resolve(SMALL.replace(n_prefill_replicas=3,
                                         n_decode_replicas=1))
        config = resolved.configs["baseline"]
        assert config.n_prefill_replicas == 3
        assert config.n_decode_replicas == 1

    def test_decode_gpu_and_activation_overhead_flow_through(self):
        resolved = resolve(Scenario(model="Y", methods=("baseline",),
                                    decode_gpu="L4",
                                    activation_overhead=0.3))
        config = resolved.configs["baseline"]
        assert config.decode_gpu == "L4"
        # repro: lint-ignore[REPRO604] same literal in and out, bit-exact
        assert config.activation_overhead == 0.3

    def test_trace_is_method_independent(self):
        a = resolve(SMALL.replace(methods=("baseline",)))
        b = resolve(SMALL.replace(methods=("hack",)))
        assert a.trace == b.trace

    def test_calibration_overrides_applied(self):
        resolved = resolve(SMALL.replace(
            calibration={"net_efficiency": 0.5}))
        assert resolved.calib.net_efficiency == 0.5

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="unknown method"):
            resolve(Scenario(methods=("no_such_method",)))


class TestRunner:
    @pytest.fixture(scope="class")
    def serial(self):
        return Runner().run(SMALL)

    def test_artifact_carries_live_results(self, serial):
        assert set(serial.results) == {"baseline", "hack"}
        assert serial.results["hack"].avg_jct() > 0

    def test_parallel_is_bit_identical_to_serial(self, serial):
        parallel = Runner(workers=4).run(SMALL)
        assert parallel.to_json() == serial.to_json()
        assert compare_artifacts(parallel, serial)["equal"]

    def test_sweep_parallel_equals_serial(self):
        sweep = Sweep(SMALL.replace(methods=("hack",)),
                      axes={"dataset": ["imdb", "humaneval"],
                            "seed": [1, 2]})
        serial = Runner().run_sweep(sweep)
        parallel = Runner(workers=4).run_sweep(sweep)
        assert [a.to_json() for a in serial] == \
            [a.to_json() for a in parallel]

    def test_sweep_order_matches_expansion(self):
        sweep = Sweep(SMALL.replace(methods=("baseline",)),
                      axes={"seed": [1, 2]})
        artifacts = Runner().run_sweep(sweep)
        assert [a.scenario.seed for a in artifacts] == [1, 2]

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            Runner(workers=0)

    def test_summary_fields(self, serial):
        summary = serial.methods["baseline"].summary
        assert summary["n_requests"] == 16
        assert summary["p50_jct_s"] <= summary["p99_jct_s"] \
            <= summary["max_jct_s"]
        assert set(summary["mean_decomposition_s"]) == {
            "queue", "prefill", "quant", "comm", "dequant_or_approx",
            "decode"}

    def test_per_request_records(self, serial):
        records = serial.methods["hack"].requests
        assert len(records) == 16
        first = records[0]
        assert first["request_id"] == 0
        assert first["jct_s"] > 0
        assert set(first["decomposition_s"]) == {
            "queue", "prefill", "quant", "comm", "dequant_or_approx",
            "decode"}


class TestArtifactIO:
    @pytest.fixture(scope="class")
    def artifact(self):
        return Runner().run(SMALL)

    def test_save_load_round_trip(self, artifact, tmp_path):
        path = artifact.save(tmp_path)
        loaded = RunArtifact.load(path)
        assert loaded.to_json() == artifact.to_json()
        assert loaded.scenario == SMALL
        assert loaded.results is None   # live objects don't round-trip

    def test_explicit_filename(self, artifact, tmp_path):
        path = artifact.save(tmp_path / "custom.json")
        assert path.name == "custom.json"
        assert RunArtifact.load(path).to_json() == artifact.to_json()

    def test_schema_version_enforced(self, artifact):
        data = artifact.to_dict()
        data["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            RunArtifact.from_dict(data)
        data["schema"] = "something-else"
        with pytest.raises(ValueError, match="not a"):
            RunArtifact.from_dict(data)

    def test_compare_flags_differences(self, artifact):
        other = Runner().run(SMALL.replace(seed=4))
        diff = compare_artifacts(artifact, other)
        assert not diff["equal"]
        assert not diff["scenario_equal"]
        assert "avg_jct_s" in diff["methods"]["baseline"]

    def test_compare_equal_artifacts(self, artifact):
        again = Runner().run(SMALL)
        diff = compare_artifacts(artifact, again)
        assert diff["equal"]
        assert diff["methods"] == {}

    def test_compare_sees_bucket_reattribution(self, artifact):
        """Moving time between buckets while preserving JCT totals must
        still be flagged (the regression `compare` exists to catch)."""
        import copy

        other = copy.deepcopy(RunArtifact.from_dict(artifact.to_dict()))
        decomp = other.methods["baseline"].summary["mean_decomposition_s"]
        shift = decomp["decode"] * 0.5
        decomp["decode"] -= shift
        decomp["comm"] += shift
        diff = compare_artifacts(artifact, other)
        assert not diff["equal"]
        assert "mean_decomposition_s.comm" in diff["methods"]["baseline"]

    def test_compare_sees_per_request_drift(self, artifact):
        # via JSON so the copy shares no mutable state with `artifact`
        other = RunArtifact.from_json(artifact.to_json())
        other.methods["hack"].requests[3]["jct_s"] *= 1.01
        diff = compare_artifacts(artifact, other)
        assert not diff["equal"]
        assert "requests.jct_s" in diff["methods"]["hack"]


class TestRunMethodsEquivalence:
    def test_wrapper_matches_api(self):
        """experiments.common.run_methods is a thin view over the API."""
        from repro.experiments.common import run_methods

        old = run_methods(("baseline", "hack"), dataset="imdb",
                          n_requests=16, seed=3)
        new = Runner().run(SMALL).results
        for method in ("baseline", "hack"):
            assert old[method].avg_jct() == new[method].avg_jct()
            assert old[method].peak_memory_fraction == \
                new[method].peak_memory_fraction

    def test_registry_model_spec_accepted(self):
        from repro.experiments.common import make_scenario

        scenario = make_scenario(("baseline",), model=get_model("Y"))
        assert scenario.model == "Y"

    def test_modified_model_spec_rejected(self):
        """A non-registry spec must fail loudly, not be silently swapped
        for the stock model of the same letter."""
        import dataclasses

        from repro.experiments.common import run_methods

        tweaked = dataclasses.replace(get_model("L"), max_context=4096)
        with pytest.raises(ValueError, match="registry"):
            run_methods(("baseline",), model=tweaked, n_requests=10)
