"""Schema v5 artifacts (cost-efficiency pair + elastic block) and
backward compatibility: v1–v4 artifacts still load, render and
compare cleanly."""

import json

import pytest

from repro.api import (
    Runner,
    RunArtifact,
    Scenario,
    compare_artifacts,
)
from repro.api.artifact import SCHEMA_VERSION, SUPPORTED_SCHEMA_VERSIONS
from repro.cli import main

ELASTIC = Scenario(methods=("hack",), n_requests=20, seed=3,
                   load_factor=0.4, n_prefill_replicas=3,
                   arrival="diurnal?amp=0.9,period=120.0",
                   autoscaler="reactive?queue_hi=3.0,queue_lo=1.0,"
                              "cooldown_s=10.0,interval_s=2.0,"
                              "cold_start_s=5.0",
                   admission="shed?queue_max=24.0")


@pytest.fixture(scope="module")
def artifact():
    return Runner().run(ELASTIC)


@pytest.fixture(scope="module")
def plain_artifact():
    return Runner().run(Scenario(methods=("baseline",), dataset="imdb",
                                 n_requests=12, seed=3))


class TestSchemaV5:
    def test_version_stamped(self, plain_artifact):
        assert SCHEMA_VERSION == 5
        assert json.loads(plain_artifact.to_json())["schema_version"] == 5

    def test_every_summary_carries_cost_pair(self, plain_artifact):
        summary = plain_artifact.methods["baseline"].summary
        assert summary["gpu_hours"] > 0
        assert summary["goodput_per_gpu_hour"] > 0
        assert "elastic" not in summary

    def test_elastic_block_round_trips(self, artifact):
        block = artifact.methods["hack"].summary["elastic"]
        assert block["autoscaler"].startswith("reactive?")
        assert block["admission"] == "shed?queue_max=24.0"
        assert "events" not in block and "timeseries" not in block
        loaded = RunArtifact.from_json(artifact.to_json())
        assert loaded.methods["hack"].summary["elastic"] == block
        assert compare_artifacts(artifact, loaded)["equal"]

    def test_renders(self, artifact):
        rendered = artifact.summary_table().render()
        assert "goodput_per_gpu_hour" in rendered


class TestBackwardCompatibility:
    @pytest.mark.parametrize("version", sorted(SUPPORTED_SCHEMA_VERSIONS))
    def test_older_artifacts_load_and_compare(self, plain_artifact,
                                              version):
        data = json.loads(plain_artifact.to_json())
        data["schema_version"] = version
        if version < 5:
            for run in data["methods"].values():
                run["summary"].pop("gpu_hours")
                run["summary"].pop("goodput_per_gpu_hour")
        if version < 4:
            for run in data["methods"].values():
                run["summary"].pop("n_failed")
        if version < 3:
            del data["trace"]
        loaded = RunArtifact.from_dict(data)
        assert compare_artifacts(plain_artifact, loaded)["equal"]
        assert loaded.summary_table().render()

    def test_unsupported_version_rejected(self, plain_artifact):
        data = json.loads(plain_artifact.to_json())
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            RunArtifact.from_dict(data)


class TestCompareElasticBlock:
    def test_diffs_elastic_metrics(self, artifact):
        other = Runner().run(ELASTIC.replace(
            autoscaler="reactive?queue_hi=8.0,queue_lo=1.0,"
                       "cooldown_s=30.0,interval_s=5.0,"
                       "cold_start_s=10.0"))
        diff = compare_artifacts(artifact, other)
        assert not diff["equal"]
        assert any(k.startswith("elastic.")
                   for k in diff["methods"]["hack"])

    def test_flags_shed_count_drift(self, artifact):
        data = json.loads(artifact.to_json())
        block = data["methods"]["hack"]["summary"]["elastic"]
        block["n_shed"] += 3
        block["n_degraded"] += 1
        drifted = RunArtifact.from_dict(data)
        diff = compare_artifacts(artifact, drifted)["methods"]["hack"]
        assert "elastic.n_shed" in diff
        assert "elastic.n_degraded" in diff

    def test_flags_gpu_hour_drift(self, artifact):
        data = json.loads(artifact.to_json())
        summ = data["methods"]["hack"]["summary"]
        summ["gpu_hours"] *= 2.0
        drifted = RunArtifact.from_dict(data)
        diff = compare_artifacts(artifact, drifted)["methods"]["hack"]
        assert "gpu_hours" in diff

    def test_flags_presence_mismatch(self, artifact):
        stripped = json.loads(artifact.to_json())
        for run in stripped["methods"].values():
            run["summary"].pop("elastic")
        diff = compare_artifacts(artifact,
                                 RunArtifact.from_dict(stripped))
        assert diff["methods"]["hack"]["elastic"] == \
            {"a": True, "b": False, "rel_diff": 1.0}


CLI_ELASTIC = ["run", "--methods", "hack", "--n-requests", "16",
               "--load-factor", "0.4", "--n-prefill-replicas", "3",
               "--arrival", "diurnal?amp=0.9,period=120",
               "--autoscaler", "reactive?queue_hi=3,queue_lo=1,"
                               "cooldown_s=10,interval_s=2,"
                               "cold_start_s=5",
               "--admission", "shed?queue_max=24"]


class TestCli:
    def test_run_flags_reach_artifact(self, capsys):
        assert main([*CLI_ELASTIC, "--json"]) == 0
        artifact = json.loads(capsys.readouterr().out)
        assert artifact["scenario"]["autoscaler"].startswith("reactive?")
        assert artifact["scenario"]["admission"] == "shed?queue_max=24.0"
        summary = artifact["methods"]["hack"]["summary"]
        assert summary["elastic"]["gpu_hours"] > 0
        assert summary["goodput_per_gpu_hour"] > 0

    def test_unknown_autoscaler_is_clean_cli_error(self, capsys):
        assert main(["run", "--methods", "hack", "--n-requests", "10",
                     "--autoscaler", "reactve"]) == 2
        assert "reactive" in capsys.readouterr().err

    def test_list_catalogs_elastic_registries(self, capsys):
        assert main(["list", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert {"static", "reactive", "slo", "schedule"} <= \
            set(catalog["autoscaler_policies"])
        assert {"accept_all", "shed", "degrade"} <= \
            set(catalog["admission_policies"])
        assert catalog["autoscaler_policies"]["reactive"]["signature"] \
            .startswith("reactive?")
        assert "scale" in catalog["experiments"]

    def test_sweep_axis_with_none_cell(self, tmp_path):
        assert main(["sweep", "--methods", "hack", "--n-requests", "10",
                     "--load-factor", "0.4",
                     "--axis", "autoscaler=none,static",
                     "--out", str(tmp_path)]) == 0
        files = sorted(tmp_path.glob("*.json"))
        assert len(files) == 2
        scalers = {json.loads(p.read_text())["scenario"].get("autoscaler")
                   for p in files}
        assert scalers == {None, "static"}
