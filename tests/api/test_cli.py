"""Subcommand CLI: scenario runs, sweeps, artifacts, legacy aliases."""

import json

import pytest

from repro.cli import EXPERIMENTS, main
from repro.experiments import fig9_12_jct

RUN_FLAGS = ["--dataset", "imdb", "--methods", "baseline,hack",
             "--n-requests", "12", "--seed", "5"]


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_json_catalog(self, capsys):
        assert main(["list", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert "fig9" in catalog["experiments"]
        assert "hack" in catalog["methods"]
        assert "cocktail" in catalog["datasets"]


class TestRunScenario:
    def test_table_output(self, capsys):
        assert main(["run", *RUN_FLAGS]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "hack" in out
        assert "avg_jct_s" in out

    def test_json_output_is_schema_versioned(self, capsys):
        assert main(["run", *RUN_FLAGS, "--json"]) == 0
        artifact = json.loads(capsys.readouterr().out)
        assert artifact["schema"] == "hack-repro/run-artifact"
        assert artifact["schema_version"] == 5
        assert set(artifact["methods"]) == {"baseline", "hack"}
        assert artifact["scenario"]["dataset"] == "imdb"

    def test_out_writes_artifact(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        assert main(["run", *RUN_FLAGS, "--out", str(out_dir)]) == 0
        files = list(out_dir.glob("*.json"))
        assert len(files) == 1
        data = json.loads(files[0].read_text())
        assert data["schema_version"] == 5

    def test_workers_produce_identical_artifact(self, tmp_path):
        main(["run", *RUN_FLAGS, "--out", str(tmp_path / "serial")])
        main(["run", *RUN_FLAGS, "--workers", "2",
              "--out", str(tmp_path / "parallel")])
        a, = (tmp_path / "serial").glob("*.json")
        b, = (tmp_path / "parallel").glob("*.json")
        assert a.read_text() == b.read_text()


class TestSweep:
    AXES = ["--axis", "dataset=imdb,humaneval", "--axis", "seed=1,2",
            "--methods", "hack", "--n-requests", "10"]

    def test_two_axis_grid_table(self, capsys):
        assert main(["sweep", *self.AXES]) == 0
        out = capsys.readouterr().out
        assert out.count("hack") == 4   # 2 datasets x 2 seeds

    def test_parallel_matches_serial(self, tmp_path, capsys):
        assert main(["sweep", *self.AXES,
                     "--out", str(tmp_path / "serial")]) == 0
        assert main(["sweep", *self.AXES, "--workers", "4",
                     "--out", str(tmp_path / "parallel")]) == 0
        serial = sorted((tmp_path / "serial").glob("*.json"))
        parallel = sorted((tmp_path / "parallel").glob("*.json"))
        assert [p.name for p in serial] == [p.name for p in parallel]
        assert [p.read_text() for p in serial] == \
            [p.read_text() for p in parallel]
        # and the compare subcommand agrees
        assert main(["compare", str(tmp_path / "serial"),
                     str(tmp_path / "parallel")]) == 0

    def test_bad_axis_spec(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--axis", "dataset"])

    def test_single_file_out_rejected_for_multi_artifact(self, tmp_path):
        with pytest.raises(SystemExit, match="single file"):
            main(["sweep", *self.AXES,
                  "--out", str(tmp_path / "grid.json")])

    def test_default_axes_honor_user_flags(self, capsys):
        """`sweep --methods X` without --axis must sweep X, not the
        hardcoded default methods."""
        assert main(["sweep", "--methods", "kvquant", "--dataset", "imdb",
                     "--n-requests", "10"]) == 0
        out = capsys.readouterr().out
        assert "kvquant" in out
        assert "baseline" not in out
        # --dataset was pinned, so the grid is a single cell (one data
        # row, which prints the method in both the axis and method cols).
        assert out.count("kvquant  kvquant") == 1

    def test_json_shape_is_array_even_for_one_cell(self, capsys):
        assert main(["sweep", "--axis", "dataset=imdb", "--methods",
                     "hack", "--n-requests", "10", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1
        assert payload[0]["schema_version"] == 5

    def test_method_param_axis_produces_per_spec_artifacts(self, tmp_path,
                                                           capsys):
        """The acceptance-criterion sweep: Π as a first-class axis."""
        assert main(["sweep", "--methods", "hack", "--axis",
                     "method.partition_size=32,64,128,256",
                     "--n-requests", "10", "--dataset", "imdb",
                     "--out", str(tmp_path)]) == 0
        files = sorted(tmp_path.glob("*.json"))
        assert len(files) == 4
        methods = sorted(json.loads(p.read_text())["scenario"]["methods"][0]
                         for p in files)
        assert methods == ["hack?pi=128", "hack?pi=256", "hack?pi=32",
                           "hack?pi=64"]

    def test_method_param_axis_renders_table(self, capsys):
        """The summary-table path must show the swept parameter value
        (method.<param> is not a Scenario attribute)."""
        assert main(["sweep", "--methods", "hack", "--axis",
                     "method.partition_size=32,64", "--n-requests", "10",
                     "--dataset", "imdb"]) == 0
        out = capsys.readouterr().out
        assert "method.partition_size" in out
        assert "hack?pi=32" in out and "hack?pi=64" in out

    def test_method_spec_in_methods_flag(self, capsys):
        assert main(["run", "--dataset", "imdb", "--methods",
                     "baseline,hack?pi=128,bits=4", "--n-requests", "10",
                     "--json"]) == 0
        artifact = json.loads(capsys.readouterr().out)
        assert set(artifact["methods"]) == {"baseline", "hack?bits=4,pi=128"}

    def test_methods_axis_value_may_be_a_multi_param_spec(self, capsys):
        """A ',' inside a spec's parameters must not split the axis."""
        assert main(["sweep", "--axis",
                     "methods=baseline+hack?pi=128,bits=4,kvquant",
                     "--dataset", "imdb", "--n-requests", "10",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        grids = sorted(tuple(a["scenario"]["methods"]) for a in payload)
        assert grids == [("baseline", "hack?bits=4,pi=128"), ("kvquant",)]

    def test_method_bool_axis_accepts_1_0(self, capsys):
        assert main(["sweep", "--methods", "hack", "--axis",
                     "method.se=1,0", "--dataset", "imdb",
                     "--n-requests", "10", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        methods = [a["scenario"]["methods"][0] for a in payload]
        assert methods == ["hack?se=on", "hack?se=off"]

    def test_inapplicable_method_axis_is_clean_error(self, capsys):
        assert main(["sweep", "--methods", "baseline", "--axis",
                     "method.partition_size=32", "--n-requests", "10"]) == 2
        assert "apply to none" in capsys.readouterr().err


class TestCompareExport:
    @pytest.fixture(scope="class")
    def artifact_path(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("art")
        main(["run", *RUN_FLAGS, "--out", str(out)])
        path, = out.glob("*.json")
        return path

    def test_compare_detects_difference(self, artifact_path, tmp_path,
                                        capsys):
        main(["run", "--dataset", "imdb", "--methods", "baseline,hack",
              "--n-requests", "12", "--seed", "6", "--out", str(tmp_path)])
        other, = tmp_path.glob("*.json")
        assert main(["compare", str(artifact_path), str(other)]) == 1
        assert "DIFFERS" in capsys.readouterr().out

    def test_export_text_and_md_and_csv(self, artifact_path, capsys):
        assert main(["export", str(artifact_path)]) == 0
        text = capsys.readouterr().out
        assert "avg_jct_s" in text
        assert main(["export", str(artifact_path), "--format", "md"]) == 0
        assert "| method |" in capsys.readouterr().out
        assert main(["export", str(artifact_path), "--format", "csv"]) == 0
        assert capsys.readouterr().out.startswith("method,")

    def test_export_missing_file(self):
        with pytest.raises(SystemExit):
            main(["export", "/no/such/artifact.json"])


class TestLegacyAliases:
    def test_fig9_alias_renders_identically(self, capsys):
        """Golden check: the legacy spelling reproduces the experiment
        module's rendering verbatim (modulo the timing footer)."""
        expected = fig9_12_jct.run_fig9_fig10(scale=0.1).render()
        assert main(["fig9", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert expected in out
        assert out.startswith("== fig9: ")

    def test_run_subcommand_spelling_matches_alias(self, capsys):
        assert main(["run", "fig13", "--scale", "0.1"]) == 0
        via_run = capsys.readouterr().out
        assert main(["fig13", "--scale", "0.1"]) == 0
        via_alias = capsys.readouterr().out
        # identical up to the timing footer line
        def strip(s):
            return [line for line in s.splitlines()
                    if not line.startswith("[fig13 took")]

        assert strip(via_run) == strip(via_alias)

    def test_scale_rejected_for_accuracy_experiments(self):
        for name in ("table6", "table7"):
            with pytest.raises(SystemExit, match="no simulation trace"):
                main([name, "--scale", "0.5"])

    def test_json_rejected_for_predefined(self):
        with pytest.raises(SystemExit, match="scenario runs"):
            main(["run", "fig9", "--json"])

    def test_scenario_flags_rejected_for_predefined(self):
        """Flags a predefined grid would ignore must fail loudly."""
        with pytest.raises(SystemExit, match="--dataset"):
            main(["run", "fig9", "--dataset", "imdb"])
        with pytest.raises(SystemExit, match="--rps"):
            main(["fig13", "--rps", "2.0"])

    def test_unknown_method_is_clean_cli_error(self, capsys):
        assert main(["run", "--methods", "hacck", "--n-requests", "10"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown method")


class TestJsonOutPaths:
    def test_json_with_out_lists_written_files(self, tmp_path, capsys):
        assert main(["run", *RUN_FLAGS, "--json",
                     "--out", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        paths = json.loads(captured.out)
        assert len(paths) == 1
        assert paths[0].endswith(".json")
        assert json.loads(open(paths[0]).read())["schema_version"] == 5
