"""Tests for repro.model.config — the model registry (paper Table 3)."""

import pytest

from repro.model.config import MODEL_LETTERS, MODELS, get_model, tiny_spec


class TestRegistry:
    def test_all_five_paper_models_present(self):
        assert set(MODEL_LETTERS) == {"M", "P", "Y", "L", "F"}

    def test_lookup_by_name_and_letter(self):
        assert get_model("llama-3.1-70b") is get_model("L")

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("gpt-5")

    def test_param_counts_roughly_match_names(self):
        expected = {"M": 7e9, "P": 14e9, "Y": 34e9, "L": 70e9, "F": 180e9}
        for letter, approx in expected.items():
            spec = get_model(letter)
            assert 0.9 * approx <= spec.n_params <= 1.15 * approx

    def test_architecture_estimate_consistent(self):
        """Architecture-derived parameter count within ~12% of published."""
        for spec in MODELS.values():
            est = spec.estimated_params()
            assert 0.85 * spec.n_params <= est <= 1.15 * spec.n_params, spec.name

    def test_falcon_context_cap(self):
        """The paper notes Falcon-180B is limited to a 2K context."""
        assert get_model("F").max_context == 2048

    def test_gqa_divisibility(self):
        for spec in MODELS.values():
            assert spec.n_heads % spec.n_kv_heads == 0


class TestDerivedSizes:
    def test_llama70b_kv_bytes_per_token(self):
        """2 · 80 layers · 8 kv-heads · 128 dim · 2 B = 320 KiB/token."""
        assert get_model("L").kv_bytes_per_token() == 327_680

    def test_kv_scales_with_quantization(self):
        spec = get_model("L")
        fp16 = spec.kv_bytes_per_token(2)
        two_bit = spec.kv_bytes_per_token(0.25)
        assert two_bit == fp16 / 8

    def test_param_bytes(self):
        spec = get_model("M")
        assert spec.param_bytes() == spec.n_params * 2

    def test_prefill_flops_quadratic_term(self):
        spec = get_model("M")
        short = spec.prefill_flops(1000)
        double = spec.prefill_flops(2000)
        # More than 2x because of the quadratic attention term.
        assert double > 2 * short

    def test_flops_per_token_grows_with_context(self):
        spec = get_model("M")
        assert spec.flops_per_token(10_000) > spec.flops_per_token(0)

    def test_kv_ordering_across_models(self):
        """Falcon's 8 kv-heads × 64 dims gives a smaller per-token KV
        than Llama-70B despite more parameters."""
        assert get_model("F").kv_bytes_per_token() < \
            get_model("L").kv_bytes_per_token()


class TestTinySpec:
    def test_defaults_valid(self):
        spec = tiny_spec()
        assert spec.n_params == spec.estimated_params()
        assert spec.n_heads % spec.n_kv_heads == 0

    def test_custom_dims(self):
        spec = tiny_spec(n_layers=3, hidden_size=32, n_heads=2, n_kv_heads=1,
                         head_dim=16)
        assert spec.n_layers == 3
        assert spec.kv_bytes_per_token() == 2 * 3 * 1 * 16 * 2

    def test_invalid_gqa_rejected(self):
        with pytest.raises(ValueError):
            tiny_spec(n_heads=3, n_kv_heads=2)
