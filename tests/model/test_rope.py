"""Tests for repro.model.rope."""

import numpy as np
import pytest

from repro.model.rope import apply_rope, rope_angles


class TestRopeAngles:
    def test_shapes(self):
        cos, sin = rope_angles(np.arange(5), 16)
        assert cos.shape == (5, 8)
        assert sin.shape == (5, 8)

    def test_position_zero_identity_angles(self):
        cos, sin = rope_angles(np.array([0]), 8)
        np.testing.assert_allclose(cos, 1.0)
        np.testing.assert_allclose(sin, 0.0)

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError):
            rope_angles(np.arange(3), 7)

    def test_frequency_decay(self):
        """Higher channel pairs rotate slower."""
        cos, sin = rope_angles(np.array([1]), 64)
        angles = np.arctan2(sin[0], cos[0])
        assert np.all(np.diff(angles) <= 0)


class TestApplyRope:
    def test_norm_preserved(self):
        """Rotation preserves the norm of every channel pair."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(6, 16))
        out = apply_rope(x, np.arange(6))
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=1), np.linalg.norm(x, axis=1)
        )

    def test_position_zero_is_identity(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 8))
        np.testing.assert_allclose(apply_rope(x, np.array([0])), x)

    def test_relative_position_property(self):
        """q_m · k_n depends only on m - n (the point of RoPE)."""
        rng = np.random.default_rng(2)
        q = rng.normal(size=(1, 32))
        k = rng.normal(size=(1, 32))

        def dot(m, n):
            qr = apply_rope(q, np.array([m]))
            kr = apply_rope(k, np.array([n]))
            return float((qr @ kr.T)[0, 0])

        assert dot(5, 3) == pytest.approx(dot(12, 10), rel=1e-9)
        assert dot(7, 7) == pytest.approx(dot(0, 0), rel=1e-9)

    def test_different_positions_rotate_differently(self):
        x = np.ones((2, 8))
        out = apply_rope(x, np.array([1, 2]))
        assert not np.allclose(out[0], out[1])

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            apply_rope(np.zeros(8), np.array([0]))

    def test_custom_base(self):
        x = np.ones((1, 8))
        a = apply_rope(x, np.array([3]), base=10000.0)
        b = apply_rope(x, np.array([3]), base=500.0)
        assert not np.allclose(a, b)
