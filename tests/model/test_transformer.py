"""Tests for repro.model.transformer — the runnable numpy transformer."""

import numpy as np
import pytest

from repro.core import DequantizingKVCache, HackConfig, HackKVCache
from repro.model import Transformer, TransformerWeights, rms_norm, silu, tiny_spec
from repro.quant import CacheGenCompressor, KVQuantCompressor
from repro.quant.roundtrip_cache import RoundtripKVCache

SPEC = tiny_spec()


def _prompt(n=24, seed=0):
    rng = np.random.default_rng(seed)
    return list(rng.integers(0, SPEC.vocab_size, size=n))


@pytest.fixture(scope="module")
def model():
    return Transformer(SPEC, backend="reference", seed=3)


class TestPrimitives:
    def test_rms_norm_unit_scale(self):
        x = np.array([[3.0, 4.0]])
        out = rms_norm(x, np.ones(2))
        np.testing.assert_allclose(np.sqrt((out ** 2).mean()), 1.0, rtol=1e-5)

    def test_rms_norm_weight(self):
        x = np.ones((1, 4))
        out = rms_norm(x, np.array([1.0, 2.0, 3.0, 4.0]))
        np.testing.assert_allclose(out[0], [1, 2, 3, 4], rtol=1e-5)

    def test_silu_values(self):
        np.testing.assert_allclose(silu(np.array([0.0])), [0.0])
        assert silu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-3)
        assert silu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-3)


class TestForwardFull:
    def test_logits_shape(self, model):
        tokens = _prompt(10)
        assert model.forward_full(tokens).shape == (10, SPEC.vocab_size)

    def test_deterministic(self, model):
        tokens = _prompt(8, seed=1)
        np.testing.assert_array_equal(
            model.forward_full(tokens), model.forward_full(tokens)
        )

    def test_causality(self, model):
        """Changing a later token must not change earlier logits."""
        tokens = _prompt(12, seed=2)
        logits1 = model.forward_full(tokens)
        tokens2 = list(tokens)
        tokens2[-1] = (tokens2[-1] + 1) % SPEC.vocab_size
        logits2 = model.forward_full(tokens2)
        np.testing.assert_allclose(logits1[:-1], logits2[:-1])

    def test_flash_backend_matches_reference(self):
        tokens = _prompt(16, seed=3)
        ref = Transformer(SPEC, backend="reference", seed=5)
        fla = Transformer(SPEC, backend="flash", seed=5)
        np.testing.assert_allclose(
            fla.forward_full(tokens), ref.forward_full(tokens), atol=1e-8
        )

    def test_hack_backend_perturbs_but_tracks(self):
        tokens = _prompt(32, seed=4)
        ref = Transformer(SPEC, backend="reference", seed=5)
        hack = Transformer(SPEC, backend="hack", seed=5,
                           hack_config=HackConfig(partition_size=16))
        l_ref = ref.forward_full(tokens)
        l_hack = hack.forward_full(tokens)
        rel = np.linalg.norm(l_hack - l_ref) / np.linalg.norm(l_ref)
        assert 0 < rel < 0.8

    def test_dequant_backend_runs(self):
        tokens = _prompt(16, seed=5)
        deq = Transformer(SPEC, backend="dequant", seed=5,
                          hack_config=HackConfig(partition_size=16))
        assert deq.forward_full(tokens).shape == (16, SPEC.vocab_size)

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            Transformer(SPEC, backend="triton")

    def test_invalid_tokens(self, model):
        with pytest.raises(ValueError):
            model.forward_full([])
        with pytest.raises(ValueError):
            model.forward_full([SPEC.vocab_size])

    def test_shared_weights_same_logits(self):
        weights = TransformerWeights(SPEC, seed=11)
        a = Transformer(SPEC, weights=weights)
        b = Transformer(SPEC, weights=weights)
        tokens = _prompt(6, seed=6)
        np.testing.assert_array_equal(a.forward_full(tokens),
                                      b.forward_full(tokens))


class TestKvPlanes:
    def test_shapes(self, model):
        planes = model.kv_planes(_prompt(10, seed=7))
        assert len(planes) == SPEC.n_layers
        for k, v in planes:
            assert k.shape == (10, SPEC.n_kv_heads * SPEC.head_dim)
            assert v.shape == k.shape

    def test_k_is_rotated(self, model):
        """K planes are post-RoPE: same token at different positions
        produces different K."""
        token = [5, 5]
        planes = model.kv_planes(token)
        k, _ = planes[0]
        assert not np.allclose(k[0], k[1])

    def test_v_not_position_dependent(self, model):
        token = [5, 5]
        _, v = model.kv_planes(token)[0]
        np.testing.assert_allclose(v[0], v[1])


class TestGenerate:
    def test_output_length_and_range(self, model):
        out = model.generate(_prompt(12, seed=8), 6)
        assert len(out) == 6
        assert all(0 <= t < SPEC.vocab_size for t in out)

    def test_fp16_cache_matches_full_forward(self, model):
        """Decode-path prediction must equal teacher-forced full forward."""
        prompt = _prompt(10, seed=9)
        gen = model.generate(prompt, 4)
        # Reconstruct: the k-th generated token is the argmax at the end
        # of prompt + first k generated tokens.
        seq = list(prompt)
        for tok in gen:
            logits = model.forward_full(seq)
            assert int(np.argmax(logits[-1])) == tok
            seq.append(tok)

    def test_empty_prompt_rejected(self, model):
        with pytest.raises(ValueError):
            model.generate([], 3)

    def test_hack_cache_generation_runs(self, model):
        prompt = _prompt(16, seed=10)
        out = model.generate(
            prompt, 5,
            cache_factory=lambda: HackKVCache(
                SPEC.head_dim, partition_size=16,
                rng=np.random.default_rng(0)),
        )
        assert len(out) == 5

    def test_dequant_cache_generation_runs(self, model):
        prompt = _prompt(16, seed=11)
        out = model.generate(
            prompt, 5,
            cache_factory=lambda: DequantizingKVCache(
                SPEC.head_dim, partition_size=16,
                rng=np.random.default_rng(0)),
        )
        assert len(out) == 5

    def test_roundtrip_cache_generation_runs(self, model):
        prompt = _prompt(16, seed=12)
        out = model.generate(
            prompt, 5,
            cache_factory=lambda: RoundtripKVCache(
                SPEC.head_dim,
                CacheGenCompressor(chunk_size=4),
                KVQuantCompressor(axis="token", outlier_fraction=0.0),
                group_size=8),
        )
        assert len(out) == 5

    def test_8bit_hack_cache_matches_baseline(self, model):
        """8-bit KV quantization should rarely flip any greedy decision."""
        prompt = _prompt(20, seed=13)
        base = model.generate(prompt, 8)
        out = model.generate(
            prompt, 8,
            cache_factory=lambda: HackKVCache(
                SPEC.head_dim, partition_size=16, kv_bits=8,
                rng=np.random.default_rng(0)),
        )
        agreement = np.mean([a == b for a, b in zip(base, out)])
        assert agreement >= 0.75
