"""Tests for repro.methods — the method registry."""

import pytest

from repro.methods import (
    ABLATIONS,
    FP_FORMAT_METHODS,
    METHODS,
    PAPER_COMPARISON,
    get_method,
    hack_method,
    quantized_bytes_per_value,
)


class TestQuantizedBytes:
    def test_2bit_pi64(self):
        """0.25 B codes + 4/64 B metadata = 0.3125 B/value."""
        assert quantized_bytes_per_value(2, 64) == pytest.approx(0.3125)

    def test_sums_add_expected_bytes(self):
        """Π=64 2-bit sums fit one byte per partition: +1/64 B/value."""
        with_sums = quantized_bytes_per_value(2, 64, include_sums=True)
        assert with_sums == pytest.approx(0.3125 + 1 / 64)

    def test_pi128_uses_int16_sums(self):
        """§6: 9-bit sums at Π=128 are stored as INT16."""
        delta = (quantized_bytes_per_value(2, 128, True)
                 - quantized_bytes_per_value(2, 128, False))
        assert delta == pytest.approx(2 / 128)

    def test_smaller_pi_more_metadata(self):
        assert quantized_bytes_per_value(2, 32) > \
            quantized_bytes_per_value(2, 64) > quantized_bytes_per_value(2, 128)


class TestRegistry:
    def test_paper_comparison_set(self):
        assert PAPER_COMPARISON == ("baseline", "cachegen", "kvquant", "hack")
        for name in PAPER_COMPARISON + ABLATIONS + FP_FORMAT_METHODS:
            assert name in METHODS

    def test_baseline_is_fp16(self):
        base = get_method("baseline")
        assert base.kv_wire_bytes_per_value == 2.0
        assert not base.is_quantized
        assert base.compression_ratio == 0.0

    def test_comparators_86_percent(self):
        for name in ("cachegen", "kvquant"):
            assert get_method(name).compression_ratio == pytest.approx(0.86)

    def test_hack_compression_within_paper_band(self):
        """'approximately 15% of its original size' (§7.2)."""
        hack = get_method("hack")
        assert 0.82 <= hack.compression_ratio <= 0.87

    def test_hack_flags(self):
        hack = get_method("hack")
        assert hack.int8_attention
        assert hack.approx_per_iter
        assert not hack.dequant_per_iter
        assert hack.summation_elimination
        assert hack.requant_elimination

    def test_comparators_dequant_no_speedup(self):
        for name in ("cachegen", "kvquant"):
            m = get_method(name)
            assert m.dequant_per_iter
            assert not m.int8_attention
            assert not m.approx_per_iter

    def test_kvquant_dequant_scale(self):
        assert get_method("kvquant").dequant_traffic_scale > \
            get_method("cachegen").dequant_traffic_scale

    def test_ablation_variants(self):
        assert not get_method("hack_nose").summation_elimination
        assert not get_method("hack_norqe").requant_elimination
        # Ablations keep everything else identical to HACK.
        assert get_method("hack_nose").int8_attention
        assert get_method("hack_norqe").int8_attention

    def test_nose_has_no_resident_sums(self):
        assert get_method("hack_nose").kv_mem_bytes_per_value < \
            get_method("hack").kv_mem_bytes_per_value

    def test_fp_format_compression_ordering(self):
        """§3: FP4 < FP6 < FP8 wire size; all worse than 2-bit schemes."""
        fp4, fp6, fp8 = (get_method(n) for n in FP_FORMAT_METHODS)
        assert fp4.compression_ratio == pytest.approx(0.734, abs=0.01)
        assert fp6.compression_ratio == pytest.approx(0.609, abs=0.01)
        assert fp8.compression_ratio == pytest.approx(0.484, abs=0.01)
        assert fp4.compression_ratio < get_method("hack").compression_ratio

    def test_fp_formats_pay_conversion(self):
        for name in FP_FORMAT_METHODS:
            assert get_method(name).dequant_per_iter

    def test_fp8_simulated_speedup_flag(self):
        assert get_method("fp8").fp8_attention_sim
        assert not get_method("fp4").fp8_attention_sim

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            get_method("int4")

    def test_typo_gets_close_match_suggestion(self):
        with pytest.raises(ValueError, match="did you mean 'hack_pi64'"):
            get_method("hack_pi_64")


class TestHackMethodFactory:
    def test_pi_sensitivity_bytes(self):
        assert hack_method(32).kv_wire_bytes_per_value > \
            hack_method(64).kv_wire_bytes_per_value

    def test_default_naming(self):
        assert hack_method(32).name == "hack_pi32"
        assert hack_method(64, summation_elimination=False).name == \
            "hack_pi64_nose"

    def test_validation(self):
        with pytest.raises(ValueError):
            hack_method(64, name="bad").__class__(
                name="x", display_name="x",
                kv_wire_bytes_per_value=1.0, kv_mem_bytes_per_value=0.5,
            )
