"""MethodSpec: grammar/JSON round-trips, the open family registry, and
the golden legacy-compatibility contract (all 13 historical names must
resolve bit-for-bit to their pre-redesign Method instances)."""

import json

import pytest

from repro.api import Scenario, Sweep
from repro.methods import (
    Method,
    MethodFamily,
    MethodSpec,
    ParamDef,
    apply_method_params,
    canonical_method,
    get_method,
    legacy_names,
    method_spec,
    parse_method,
    register_family,
    resolve_method,
    split_method_list,
)


class TestParseAndCanonical:
    def test_bare_family(self):
        spec = parse_method("quant")
        assert spec == MethodSpec("quant")
        assert spec.canonical() == "quant"

    def test_parameterized(self):
        spec = parse_method("hack?pi=128,bits=4,se=off")
        assert dict(spec.params) == {
            "partition_size": 128, "bits": 4,
            "summation_elimination": False,
        }

    def test_aliases_and_long_names_are_equivalent(self):
        assert parse_method("hack?pi=128") == \
            parse_method("hack?partition_size=128")

    def test_parameter_order_is_irrelevant(self):
        assert parse_method("hack?bits=4,pi=128") == \
            parse_method("hack?pi=128,bits=4")

    def test_boolean_spellings(self):
        for token in ("off", "false", "no", "0"):
            spec = parse_method(f"hack?se={token}")
            assert dict(spec.params)["summation_elimination"] is False
        for token in ("on", "true", "yes", "1"):
            spec = parse_method(f"hack?rqe={token}")
            assert dict(spec.params)["requant_elimination"] is True

    def test_canonical_round_trip(self):
        for text in ("hack?pi=128,bits=4,se=off", "quant?bits=4",
                     "fp?bits=6", "cachegen?delta_bits=4,delta_gain=8",
                     "hack?gain=1.6"):
            spec = parse_method(text)
            assert parse_method(spec.canonical()) == spec

    def test_float_values_round_trip_exactly(self):
        """Close-but-distinct floats must keep distinct canonical
        strings (they drive scenario slugs, i.e. artifact filenames)."""
        a = MethodSpec.of("hack", int_compute_gain=1 / 3)
        b = MethodSpec.of("hack", int_compute_gain=0.3333334)
        assert a.canonical() != b.canonical()
        assert parse_method(a.canonical()) == a
        assert parse_method(b.canonical()) == b

    def test_canonical_uses_short_aliases(self):
        assert parse_method("hack?partition_size=128").canonical() == \
            "hack?pi=128"

    def test_unknown_family_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'hack'"):
            parse_method("hacck?pi=64")

    def test_unknown_parameter_suggests(self):
        with pytest.raises(ValueError, match="no parameter 'partition_siez'"):
            parse_method("hack?partition_siez=64")

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ValueError, match="given twice"):
            parse_method("hack?pi=32,partition_size=64")

    def test_malformed_pair_rejected(self):
        with pytest.raises(ValueError, match="grammar"):
            parse_method("hack?pi")

    def test_type_coercion_errors(self):
        with pytest.raises(ValueError, match="integer"):
            parse_method("hack?pi=sixty-four")
        with pytest.raises(ValueError, match="on/off"):
            parse_method("hack?se=maybe")

    def test_choices_enforced(self):
        with pytest.raises(ValueError, match="must be one of"):
            parse_method("fp?bits=5")

    def test_legacy_names_parse_to_their_spec(self):
        assert parse_method("hack_pi128") == \
            MethodSpec.of("hack", partition_size=128)


class TestJsonRoundTrip:
    def test_flat_dict_form(self):
        spec = MethodSpec.of("hack", partition_size=128, bits=4,
                             summation_elimination=False)
        data = spec.to_dict()
        assert data == {"family": "hack", "partition_size": 128,
                        "bits": 4, "summation_elimination": False}
        assert MethodSpec.from_dict(data) == spec

    def test_issue_example_dict(self):
        spec = MethodSpec.from_dict({
            "family": "hack", "partition_size": 128, "bits": 4,
            "summation_elimination": False,
        })
        assert spec.canonical() == "hack?bits=4,pi=128,se=off"

    def test_json_round_trip_via_string(self):
        spec = parse_method("quant?bits=8,pi=32")
        restored = MethodSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert restored.canonical() == spec.canonical()

    def test_missing_family_rejected(self):
        with pytest.raises(ValueError, match="'family'"):
            MethodSpec.from_dict({"partition_size": 64})

    def test_spec_string_json_spec_triangle(self):
        """spec -> string -> spec -> dict -> spec all agree."""
        original = MethodSpec.of("hack", bits=4)
        via_string = parse_method(original.canonical())
        via_dict = MethodSpec.from_dict(via_string.to_dict())
        assert original == via_string == via_dict


#: Every pre-redesign registry entry, verbatim (byte counts written out
#: as exact literals — 2-bit codes are 0.25 B, Π metadata is 4/Π B,
#: SE sums are sum_storage_bits/8/Π B).
GOLDEN_METHODS = {
    "baseline": Method(
        name="baseline", display_name="Baseline",
        kv_wire_bytes_per_value=2.0, kv_mem_bytes_per_value=2.0),
    "cachegen": Method(
        name="cachegen", display_name="CacheGen",
        kv_wire_bytes_per_value=0.28, kv_mem_bytes_per_value=0.28,
        dequant_per_iter=True, quantize_cost=True),
    "kvquant": Method(
        name="kvquant", display_name="KVQuant",
        kv_wire_bytes_per_value=0.28, kv_mem_bytes_per_value=0.28,
        dequant_per_iter=True, dequant_traffic_scale=1.25,
        quantize_cost=True),
    "hack": Method(
        name="hack", display_name="HACK",
        kv_wire_bytes_per_value=0.3125, kv_mem_bytes_per_value=0.328125,
        int8_attention=True, approx_per_iter=True, quantize_cost=True,
        partition_size=64),
    "hack_pi32": Method(
        name="hack_pi32", display_name="HACK (Π=32)",
        kv_wire_bytes_per_value=0.375, kv_mem_bytes_per_value=0.40625,
        int8_attention=True, approx_per_iter=True, quantize_cost=True,
        partition_size=32),
    "hack_pi64": Method(
        name="hack_pi64", display_name="HACK (Π=64)",
        kv_wire_bytes_per_value=0.3125, kv_mem_bytes_per_value=0.328125,
        int8_attention=True, approx_per_iter=True, quantize_cost=True,
        partition_size=64),
    "hack_pi128": Method(
        name="hack_pi128", display_name="HACK (Π=128)",
        kv_wire_bytes_per_value=0.28125, kv_mem_bytes_per_value=0.296875,
        int8_attention=True, approx_per_iter=True, quantize_cost=True,
        partition_size=128),
    "hack_nose": Method(
        name="hack_nose", display_name="HACK/SE",
        kv_wire_bytes_per_value=0.3125, kv_mem_bytes_per_value=0.3125,
        int8_attention=True, approx_per_iter=True, quantize_cost=True,
        partition_size=64, summation_elimination=False),
    "hack_norqe": Method(
        name="hack_norqe", display_name="HACK/RQE",
        kv_wire_bytes_per_value=0.3125, kv_mem_bytes_per_value=0.328125,
        int8_attention=True, approx_per_iter=True, quantize_cost=True,
        partition_size=64, requant_elimination=False),
    "hack_int4": Method(
        name="hack_int4", display_name="HACK (INT4 kernel)",
        kv_wire_bytes_per_value=0.3125, kv_mem_bytes_per_value=0.328125,
        int8_attention=True, int_compute_gain=1.6, approx_per_iter=True,
        quantize_cost=True, partition_size=64),
    "fp4": Method(
        name="fp4", display_name="FP4 (E2M1)",
        kv_wire_bytes_per_value=0.53125, kv_mem_bytes_per_value=0.53125,
        dequant_per_iter=True, quantize_cost=True),
    "fp6": Method(
        name="fp6", display_name="FP6 (E3M2)",
        kv_wire_bytes_per_value=0.78125, kv_mem_bytes_per_value=0.78125,
        dequant_per_iter=True, quantize_cost=True),
    "fp8": Method(
        name="fp8", display_name="FP8 (E4M3)",
        kv_wire_bytes_per_value=1.03125, kv_mem_bytes_per_value=1.03125,
        dequant_per_iter=True, fp8_attention_sim=True, quantize_cost=True),
}


class TestLegacyGolden:
    def test_all_13_names_registered(self):
        assert set(legacy_names()) == set(GOLDEN_METHODS)
        assert len(GOLDEN_METHODS) == 13

    @pytest.mark.parametrize("name", sorted(GOLDEN_METHODS))
    def test_legacy_name_resolves_bit_for_bit(self, name):
        """Equality covers every Method field, name and display
        included — the spec path must reproduce the frozen registry."""
        assert resolve_method(name) == GOLDEN_METHODS[name]
        assert get_method(name) == GOLDEN_METHODS[name]

    def test_legacy_names_canonicalize_to_themselves(self):
        for name in legacy_names():
            assert canonical_method(name) == name

    def test_grammar_spec_equals_legacy_values(self):
        assert resolve_method("hack?pi=128") == get_method("hack_pi128")
        assert resolve_method("fp?bits=6") == get_method("fp6")

    def test_perf_and_accuracy_share_one_spec(self):
        """No duplicated byte accounting: the perf Method's wire bytes
        and the compressor's measured bytes come from the same spec."""
        import numpy as np

        spec = MethodSpec.of("hack", partition_size=32)
        method = spec.build_method()
        k_comp, _ = spec.build_compressors()
        plane = np.arange(64 * 32, dtype=float).reshape(64, 32)
        measured = k_comp.compress(plane)
        assert measured.nbytes / plane.size == pytest.approx(
            method.kv_mem_bytes_per_value)


class TestSplitMethodList:
    def test_plain_list(self):
        assert split_method_list("baseline,hack") == ["baseline", "hack"]

    def test_spec_keeps_its_parameters(self):
        assert split_method_list("baseline,hack?pi=128,bits=4,cachegen") == \
            ["baseline", "hack?pi=128,bits=4", "cachegen"]

    def test_spec_first(self):
        assert split_method_list("hack?pi=32,se=off,baseline") == \
            ["hack?pi=32,se=off", "baseline"]

    def test_empty_tokens_skipped(self):
        assert split_method_list("baseline,,hack,") == ["baseline", "hack"]

    def test_plus_joined_sets_keep_spec_parameters(self):
        """The CLI's methods-axis values: '+'-joined sets where only
        the last member can have an open '?' clause."""
        assert split_method_list("baseline+hack?pi=128,bits=4,kvquant") == \
            ["baseline+hack?pi=128,bits=4", "kvquant"]
        assert split_method_list("hack?pi=64+baseline,kvquant") == \
            ["hack?pi=64+baseline", "kvquant"]

    def test_string_values_reject_grammar_metacharacters(self):
        """A str parameter value containing ',', '=', '?', '+' or a
        space would canonicalize to an unparseable string."""
        with pytest.raises(ValueError, match="free of"):
            MethodSpec.of("quant", dequant="a,b")


class TestScenarioIntegration:
    def test_spec_strings_canonicalize(self):
        s = Scenario(methods="baseline,hack?partition_size=128,bits=4")
        assert s.methods == ("baseline", "hack?bits=4,pi=128")

    def test_spec_objects_and_dicts_accepted(self):
        s = Scenario(methods=(MethodSpec.of("hack", bits=4),
                              {"family": "fp", "bits": 6}))
        assert s.methods == ("hack?bits=4", "fp?bits=6")

    def test_spec_scenario_json_round_trip(self):
        s = Scenario(methods=("hack?pi=256",), dataset="imdb")
        assert Scenario.from_json(s.to_json()) == s

    def test_spec_slug_is_filesystem_safe(self):
        slug = Scenario(methods=("hack?pi=128,bits=4",)).slug()
        assert "?" not in slug and "," not in slug

    def test_legacy_slug_pinned(self):
        """Pre-spec scenarios must keep their exact slug (artifact
        filenames are part of the compatibility contract)."""
        assert Scenario().slug() == "l-cocktail-a10g-baseline-08e4dd26"
        assert Scenario(methods=("baseline", "hack")).slug() == \
            "l-cocktail-a10g-baseline+hack-5ae34792"

    def test_unknown_method_string_kept_verbatim(self):
        """Scenarios are pure description: a method whose family is not
        registered here must still construct (saved artifacts from
        other processes render and diff); resolution errors at run
        time."""
        from repro.api.runner import resolve

        s = Scenario(methods=("some_custom?knob=1",))
        assert s.methods == ("some_custom?knob=1",)
        with pytest.raises(ValueError, match="unknown method"):
            resolve(s)

    def test_unknown_method_object_rejected(self):
        with pytest.raises(ValueError, match="unknown method family"):
            Scenario(methods=({"family": "no_such_family"},))

    def test_malformed_spec_of_known_family_rejected(self):
        """Only *unknown families* defer validation; a bad parameter
        of a registered family is a construction error."""
        with pytest.raises(ValueError, match="no parameter 'pii'"):
            Scenario(methods=("hack?pii=128",))

    def test_int_boolean_spellings(self):
        """The grammar's 1/0 booleans also work as ints (sweep axes
        coerce numeric tokens before the spec sees them)."""
        assert apply_method_params("hack", {"se": 1}) == \
            ("hack?se=on", {"se"})
        assert apply_method_params("hack", {"se": 0}) == \
            ("hack?se=off", {"se"})
        with pytest.raises(ValueError, match="boolean"):
            MethodSpec.of("hack", summation_elimination=2)


class TestMethodAxes:
    def test_sweep_expands_partition_sizes(self):
        sweep = Sweep(Scenario(methods=("baseline", "hack")),
                      axes={"method.partition_size": [32, 64, 128, 256]})
        assert len(sweep) == 4
        grids = [s.methods for s in sweep.expand()]
        assert grids == [("baseline", "hack?pi=32"),
                         ("baseline", "hack?pi=64"),
                         ("baseline", "hack?pi=128"),
                         ("baseline", "hack?pi=256")]

    def test_labels_name_the_axis(self):
        sweep = Sweep(Scenario(methods=("hack",)),
                      axes={"method.bits": [2, 4]})
        assert [s.name for s in sweep.expand()] == \
            ["method.bits=2", "method.bits=4"]

    def test_method_axis_composes_with_field_axes(self):
        sweep = Sweep(Scenario(methods=("hack",)),
                      axes={"dataset": ["imdb", "arxiv"],
                            "method.partition_size": [32, 64]})
        cells = [(s.dataset, s.methods) for s in sweep.expand()]
        assert cells == [("imdb", ("hack?pi=32",)),
                         ("imdb", ("hack?pi=64",)),
                         ("arxiv", ("hack?pi=32",)),
                         ("arxiv", ("hack?pi=64",))]

    def test_parameter_survives_on_parameterized_base(self):
        sweep = Sweep(Scenario(methods=("hack?se=off",)),
                      axes={"method.partition_size": [128]})
        assert sweep.expand()[0].methods == ("hack?pi=128,se=off",)

    def test_inapplicable_axis_rejected(self):
        sweep = Sweep(Scenario(methods=("baseline",)),
                      axes={"method.partition_size": [32]})
        with pytest.raises(ValueError, match="apply to none"):
            sweep.expand()

    def test_comparator_rides_along_as_its_own_methods_cell(self):
        """A methods axis crossed with a method axis must not abort on
        the comparator-only cells — inertness is judged across the
        whole grid, not per cell."""
        sweep = Sweep(Scenario(),
                      axes={"methods": [("baseline",), ("hack",)],
                            "method.partition_size": [32, 64]})
        grids = [s.methods for s in sweep.expand()]
        assert grids == [("baseline",), ("baseline",),
                         ("hack?pi=32",), ("hack?pi=64",)]

    def test_degenerate_quant_params_rejected(self):
        with pytest.raises(ValueError, match="partition_size"):
            resolve_method("hack?pi=0")
        with pytest.raises(ValueError, match="bits"):
            resolve_method("quant?bits=0")

    def test_behavior_changing_params_reach_the_method_name(self):
        """Distinct specs must not collapse to one Method name (labels
        and display series are derived from it)."""
        assert resolve_method("hack?gain=1.6").name == "hack_pi64_gain1.6"
        assert resolve_method("quant?dequant=once").name == "int4_pi64_once"
        assert resolve_method("quant").name == "int4_pi64"

    def test_typoed_axis_cannot_hide_behind_a_valid_one(self):
        """Applicability is per parameter: a typo'd axis must error
        even when another method axis applies (a silently inert axis
        would expand to duplicate scenarios with colliding slugs)."""
        sweep = Sweep(Scenario(methods=("hack",)),
                      axes={"method.partition_size": [32, 64],
                            "method.bit": [2, 4]})   # typo: 'bit'
        with pytest.raises(ValueError, match=r"\['bit'\] apply to none"):
            sweep.expand()

    def test_empty_method_axis_name_rejected(self):
        with pytest.raises(ValueError, match="names no parameter"):
            Sweep(Scenario(), axes={"method.": [1]})

    def test_apply_method_params_passthrough(self):
        new, applied = apply_method_params("baseline",
                                           {"partition_size": 32})
        assert (new, applied) == ("baseline", set())
        new, applied = apply_method_params("hack_nose", {"pi": 128})
        assert (new, applied) == ("hack?pi=128,se=off", {"pi"})


@register_family("testtoy")
class _ToyFamily(MethodFamily):
    """A perf-model-only family used to exercise the open registry."""

    description = "test-only token-dropping family"
    params = {"keep": ParamDef(0.5)}

    def build_method(self, *, keep):
        return Method(name=f"testtoy{keep:g}",
                      display_name=f"Toy (keep={keep:g})",
                      kv_wire_bytes_per_value=2.0 * keep,
                      kv_mem_bytes_per_value=2.0 * keep)


class TestOpenRegistry:
    def test_user_family_resolves(self):
        method = resolve_method("testtoy?keep=0.25")
        assert method.kv_wire_bytes_per_value == 0.5
        assert method.compression_ratio == 0.75

    def test_user_family_sweeps(self):
        sweep = Sweep(Scenario(methods=("testtoy",)),
                      axes={"method.keep": [0.25, 1.0]})
        wires = [resolve_method(s.methods[0]).kv_wire_bytes_per_value
                 for s in sweep.expand()]
        assert wires == [0.5, 2.0]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_family("testtoy")(_ToyFamily)

    def test_no_accuracy_path_is_a_clear_error(self):
        spec = method_spec("testtoy")
        with pytest.raises(ValueError, match="no accuracy path"):
            spec.attention_output(None, None, None, None)

    def test_bad_family_name_rejected(self):
        class Bad(MethodFamily):
            params = {}

        with pytest.raises(ValueError, match="family name"):
            register_family("Not A Name!")(Bad)
