"""Cross-package integration tests: the full prefill→ship→decode story."""

import numpy as np
import pytest

from repro.core import (
    Fp16KVCache,
    HackKVCache,
    attention_reference,
    make_rng,
    pack_codes,
    unpack_codes,
)
from repro.methods import get_method
from repro.model import Transformer, tiny_spec
from repro.perfmodel import kv_wire_bytes
from repro.quant import HackCompressor
from repro.sim import default_cluster, simulate
from repro.workload import generate_trace
from repro.model import get_model


class TestPrefillToDecodeHandoff:
    """The §5.1 workflow end to end on the runnable transformer."""

    def test_shipped_kv_reproduces_decode_attention(self):
        """Quantize prefill KV, pack it, 'transmit', unpack on the
        decode side, and verify the decode cache computes the same
        attention as a cache fed the original values + quantization."""
        spec = tiny_spec()
        model = Transformer(spec, seed=9)
        prompt = list(make_rng(0).integers(0, spec.vocab_size, size=32))
        k_plane, v_plane = model.kv_planes(prompt)[0]
        d = spec.head_dim
        k_head = k_plane[:, :d]
        v_head = v_plane[:, :d]

        # Prefill side: quantize and serialize the codes.
        sender = HackKVCache(d, partition_size=16, rng=make_rng(1))
        sender.append_bulk(k_head, v_head)
        k_hat_sent, v_hat_sent = sender.materialize()

        # The wire carries packed 2-bit codes; round-trip one block.
        codes = sender._v_blocks[0].codes
        packed = pack_codes(codes, 2)
        unpacked = unpack_codes(packed, codes.size, 2).reshape(codes.shape)
        np.testing.assert_array_equal(unpacked, codes)

        # Decode side: the same quantized values drive attention.
        q_vec = make_rng(2).normal(size=d)
        receiver = Fp16KVCache(d)
        receiver.append_bulk(k_hat_sent, v_hat_sent)
        out_receiver = receiver.attention(q_vec)
        ref = attention_reference(q_vec[None, :], k_hat_sent, v_hat_sent,
                                  causal=False)[0]
        np.testing.assert_allclose(out_receiver, ref, atol=1e-9)

    def test_method_bytes_match_compressor_measurement(self):
        """The registry's analytic bytes/value agrees with the real
        quantizer's measured size on actual KV planes."""
        spec = tiny_spec(head_dim=64, n_kv_heads=1, n_heads=2,
                         hidden_size=128)
        model = Transformer(spec, seed=4)
        prompt = list(make_rng(3).integers(0, spec.vocab_size, size=128))
        k_plane, _ = model.kv_planes(prompt)[0]
        measured = HackCompressor(partition_size=64, plane_kind="k",
                                  include_sums=False).compress(k_plane)
        analytic = get_method("hack").kv_wire_bytes_per_value
        measured_per_value = measured.nbytes / k_plane.size
        assert measured_per_value == pytest.approx(analytic, rel=0.05)

    def test_wire_bytes_consistency(self):
        """perfmodel wire bytes = tokens x per-token bytes x method."""
        L = get_model("L")
        hack = get_method("hack")
        assert kv_wire_bytes(L, hack, 1000) == pytest.approx(
            1000 * L.kv_bytes_per_token(hack.kv_wire_bytes_per_value)
        )


class TestSimulationCrossChecks:
    def test_methods_share_arrival_process(self):
        """Different methods see identical arrivals and lengths."""
        L = get_model("L")
        trace = generate_trace("arxiv", 0.5, 25, seed=5)
        res_a = simulate(default_cluster(L, get_method("baseline"), "A10G"),
                         trace)
        res_b = simulate(default_cluster(L, get_method("hack"), "A10G"),
                         trace)
        for a, b in zip(res_a.requests, res_b.requests):
            assert a.trace == b.trace

    def test_bucket_sums_bound_jct(self):
        L = get_model("L")
        trace = generate_trace("cocktail", 0.3, 20, seed=6)
        res = simulate(default_cluster(L, get_method("cachegen"), "A10G"),
                       trace)
        for r in res.requests:
            decomp = r.decomposition()
            assert sum(decomp.values()) == pytest.approx(r.jct, rel=1e-6)

    def test_int4_variant_at_least_as_fast(self):
        L = get_model("L")
        trace = generate_trace("cocktail", 0.45, 25, seed=7)
        base = simulate(default_cluster(L, get_method("hack"), "A10G"), trace)
        int4 = simulate(default_cluster(L, get_method("hack_int4"), "A10G"),
                        trace)
        assert int4.avg_jct() <= base.avg_jct() + 1e-9


class TestGenerationWithEveryCacheFamily:
    """The transformer decodes correctly through each cache type."""

    @pytest.mark.parametrize("method", ["baseline", "hack", "hack_norqe",
                                        "dequant2bit"])
    def test_generation_runs(self, method):
        from repro.accuracy import generation_agreement

        g = generation_agreement(method, n_prompts=1, max_new_tokens=8)
        assert g.n_tokens == 8
        assert 0.0 <= g.rouge1_f1 <= 1.0
