"""Meta-test: the live repository satisfies its own invariants.

This is the same gate CI runs (``repro lint``): every rule over the
whole tree, gated against the committed ``lint_baseline.json``.  If a
change introduces a finding, either fix it, pragma it with a
justification, or (for a deliberate schema change) bump SCHEMA_VERSION
and refresh the pin.
"""

from repro.lint import lint_rules, run_lint
from repro.lint.baseline import BASELINE_NAME, load_baseline


class TestRepoLintsClean:
    def test_live_repo_has_no_new_findings(self, repo_root):
        result = run_lint(repo_root)
        assert result.ok, "new lint findings:\n" + "\n".join(
            f.render() for f in result.findings)

    def test_baseline_carries_no_stale_entries(self, repo_root):
        result = run_lint(repo_root)
        assert result.stale_baseline == [], (
            "baseline entries matching nothing; run "
            "`repro lint --baseline-update`")

    def test_walk_covers_the_tree(self, repo_root):
        assert run_lint(repo_root).n_files > 150

    def test_committed_baseline_parses(self, repo_root):
        load_baseline(repo_root / BASELINE_NAME)  # raises if malformed


class TestRuleInventory:
    def test_all_six_families_registered(self):
        codes = set(lint_rules())
        families = {"REPRO1", "REPRO2", "REPRO3", "REPRO4", "REPRO5",
                    "REPRO6"}
        assert {c[:6] for c in codes} >= families

    def test_every_rule_documents_itself(self):
        for code, rule in lint_rules().items():
            assert rule.description, f"{code} has no description"
            assert rule.name and rule.name != "abstract"
