"""REPRO601–604: the general-safety rule family."""

import pytest

from repro.lint.core import FileContext
from repro.lint.rules.safety import (BareExceptRule, FloatAssertTestRule,
                                     FloatEqualitySimRule,
                                     MutableDefaultRule,
                                     is_exact_float_literal)

SIM_PATH = "src/repro/sim/fixture_mod.py"
TEST_PATH = "tests/sim/test_fixture_mod.py"


@pytest.mark.parametrize("text,exact", [
    ("0.5", True), ("1.0", True), ("0.25", True), ("2.0", True),
    ("0.3", False), ("1e-9", False), ("3.333", False), ("0.1", False),
    ("95.73", False),
])
def test_is_exact_float_literal(text, exact):
    assert is_exact_float_literal(text) is exact


class TestMutableDefault:
    def test_fires_on_violation_fixture(self, fixture_ctx):
        ctx = fixture_ctx("safety_violation.py", SIM_PATH)
        findings = list(MutableDefaultRule().check_file(ctx))
        assert len(findings) == 2
        assert {f.code for f in findings} == {"REPRO601"}

    def test_clean_fixture_passes(self, fixture_ctx):
        ctx = fixture_ctx("safety_clean.py", SIM_PATH)
        assert list(MutableDefaultRule().check_file(ctx)) == []

    def test_kwonly_and_constructor_defaults(self):
        src = "def f(*, a=dict()):\n    return a\n"
        ctx = FileContext(SIM_PATH, src)
        assert len(list(MutableDefaultRule().check_file(ctx))) == 1

    def test_unscoped(self):
        assert MutableDefaultRule().applies("examples/anything.py")


class TestFloatEqualitySim:
    def test_fires_on_violation_fixture(self, fixture_ctx):
        ctx = fixture_ctx("safety_violation.py", SIM_PATH)
        findings = list(FloatEqualitySimRule().check_file(ctx))
        # 0.3 in close_enough plus 1e-9 in the assert (an assert's
        # comparison is still engine code when homed under sim/).
        assert len(findings) == 2
        assert {f.code for f in findings} == {"REPRO602"}
        assert any("0.3" in f.message for f in findings)

    def test_dyadic_equality_is_legal(self, fixture_ctx):
        ctx = fixture_ctx("safety_clean.py", SIM_PATH)
        assert list(FloatEqualitySimRule().check_file(ctx)) == []

    def test_negated_literal_and_chained_compare(self):
        src = "ok = a == -0.3\nok2 = 0.0 <= b == 0.7\n"
        ctx = FileContext(SIM_PATH, src)
        findings = list(FloatEqualitySimRule().check_file(ctx))
        assert sorted(f.line for f in findings) == [1, 2]

    def test_scope_excludes_tests(self):
        rule = FloatEqualitySimRule()
        assert rule.applies("src/repro/perfmodel/roofline.py")
        assert not rule.applies("tests/sim/test_engine.py")


class TestBareExcept:
    def test_fires_on_violation_fixture(self, fixture_ctx):
        ctx = fixture_ctx("safety_violation.py", SIM_PATH)
        findings = list(BareExceptRule().check_file(ctx))
        assert len(findings) == 1
        assert findings[0].code == "REPRO603"

    def test_typed_except_is_legal(self, fixture_ctx):
        ctx = fixture_ctx("safety_clean.py", SIM_PATH)
        assert list(BareExceptRule().check_file(ctx)) == []


class TestFloatAssertTest:
    def test_fires_on_violation_fixture(self, fixture_ctx):
        ctx = fixture_ctx("safety_violation.py", TEST_PATH)
        findings = list(FloatAssertTestRule().check_file(ctx))
        assert len(findings) == 1
        assert findings[0].code == "REPRO604"
        assert "1e-9" in findings[0].message

    def test_dyadic_assert_is_legal(self, fixture_ctx):
        ctx = fixture_ctx("safety_clean.py", TEST_PATH)
        assert list(FloatAssertTestRule().check_file(ctx)) == []

    def test_non_assert_comparison_is_ignored(self):
        ctx = FileContext(TEST_PATH, "flag = x == 0.3\n")
        assert list(FloatAssertTestRule().check_file(ctx)) == []

    def test_scope_is_tests(self):
        rule = FloatAssertTestRule()
        assert rule.applies("tests/sim/test_engine.py")
        assert not rule.applies("src/repro/sim/engine.py")


class TestPragmaSuppression:
    def test_every_finding_suppressed(self, fixture_ctx):
        sim_ctx = fixture_ctx("safety_pragma.py", SIM_PATH)
        test_ctx = fixture_ctx("safety_pragma.py", TEST_PATH)
        findings = list(MutableDefaultRule().check_file(sim_ctx))
        findings += list(BareExceptRule().check_file(sim_ctx))
        assert {f.code for f in findings} == {"REPRO601", "REPRO603"}
        assert all(sim_ctx.suppresses(f) for f in findings)
        asserts = list(FloatAssertTestRule().check_file(test_ctx))
        assert [f.code for f in asserts] == ["REPRO604"]
        assert all(test_ctx.suppresses(f) for f in asserts)

    def test_float_equality_pragma(self):
        pragma = "# repro: lint-" + "ignore[REPRO602] sentinel"
        ctx = FileContext(SIM_PATH, f"ok = a == 0.3  {pragma}\n")
        findings = list(FloatEqualitySimRule().check_file(ctx))
        assert [f.code for f in findings] == ["REPRO602"]
        assert ctx.suppresses(findings[0])
