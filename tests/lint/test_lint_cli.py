"""The lint command line: exit codes, --json, the baseline ratchet."""

import json

from repro.lint.cli import main
from repro.lint.report import render_json, render_text
from repro.lint.runner import run_lint


class TestExitCodes:
    def test_violating_file_exits_nonzero(self, fixtures_dir, capsys):
        code = main([str(fixtures_dir / "safety_violation.py"),
                     "--no-baseline"])
        assert code == 1
        out = capsys.readouterr().out
        assert "REPRO601" in out and "repro lint:" in out

    def test_clean_file_exits_zero(self, fixtures_dir, capsys):
        code = main([str(fixtures_dir / "safety_clean.py"),
                     "--no-baseline"])
        assert code == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for expected in ("REPRO101", "REPRO201", "REPRO301", "REPRO401",
                         "REPRO501", "REPRO601"):
            assert expected in out

    def test_select_flag(self, fixtures_dir, capsys):
        code = main([str(fixtures_dir / "safety_violation.py"),
                     "--no-baseline", "--select", "REPRO603"])
        assert code == 1
        out = capsys.readouterr().out
        assert "REPRO603" in out and "REPRO601" not in out


class TestJsonOutput:
    def test_shape(self, fixtures_dir, capsys):
        main([str(fixtures_dir / "safety_violation.py"),
              "--no-baseline", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["n_files"] == 1
        assert payload["counts"]["new"] == len(payload["findings"])
        first = payload["findings"][0]
        assert set(first) == {"path", "line", "code", "message", "rule"}


class TestBaselineRatchet:
    def _seed_repo(self, tmp_path, violating=True):
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        src = tmp_path / "src"
        src.mkdir(exist_ok=True)
        body = "def f(x=[]):\n    return x\n" if violating \
            else "def f(x=None):\n    return x\n"
        (src / "grown.py").write_text(body)

    def test_update_then_gate_then_stale(self, tmp_path, monkeypatch,
                                         capsys):
        self._seed_repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main([]) == 1                       # new finding fails
        assert main(["--baseline-update"]) == 0    # ratchet it in
        assert (tmp_path / "lint_baseline.json").is_file()
        assert main([]) == 0                       # now grandfathered
        capsys.readouterr()
        self._seed_repo(tmp_path, violating=False)
        assert main(["--verbose"]) == 0            # fixed: stale entry
        assert "stale baseline" in capsys.readouterr().out


class TestReporters:
    def test_render_text_counts_line(self, fixtures_dir):
        result = run_lint(paths=[fixtures_dir / "safety_violation.py"],
                          use_baseline=False)
        text = render_text(result)
        assert text.splitlines()[-1].startswith("repro lint: 4 findings")

    def test_render_json_round_trips(self, fixtures_dir):
        result = run_lint(paths=[fixtures_dir / "safety_clean.py"],
                          use_baseline=False)
        assert json.loads(render_json(result))["ok"] is True
