"""Shared helpers for the repro-lint test suite.

Fixture files live in ``tests/lint/fixtures`` and are excluded from
the default lint walk (they violate rules on purpose).  Scoped rules
are exercised by re-homing a fixture's source under a synthetic
relpath (e.g. ``src/repro/sim/…``) via :class:`FileContext`.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.lint.core import FileContext, ProjectContext

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def fixtures_dir():
    return FIXTURES


@pytest.fixture
def repo_root():
    return REPO_ROOT


@pytest.fixture
def fixture_ctx():
    """fixture_ctx(name, relpath) -> FileContext of a fixture file,
    linted as if it lived at ``relpath``."""

    def make(name, relpath):
        return FileContext(relpath, (FIXTURES / name).read_text())

    return make


@pytest.fixture
def mini_project():
    """mini_project(dirname) -> ProjectContext over a fixture
    mini-repo (e.g. ``catalog_violation`` with its own src/ tree)."""
    from repro.lint.runner import collect_files

    def make(dirname):
        root = FIXTURES / dirname
        return ProjectContext(root, collect_files(root))

    return make


@pytest.fixture
def load_fixture_module():
    """Import a fixture .py file as a uniquely-named module (for the
    round-trip rule, whose table names importable modules)."""
    loaded = []

    def load(name, modname):
        spec = importlib.util.spec_from_file_location(
            modname, FIXTURES / name)
        module = importlib.util.module_from_spec(spec)
        sys.modules[modname] = module
        loaded.append(modname)
        spec.loader.exec_module(module)
        return module

    yield load
    for modname in loaded:
        sys.modules.pop(modname, None)
