"""REPRO101/102/103: the determinism rule family."""

from repro.lint.core import FileContext
from repro.lint.rules.determinism import (SetIterationRule,
                                          UnseededRngRule, WallClockRule)

SIM_PATH = "src/repro/sim/fixture_mod.py"


def _codes(rule, ctx):
    return [f.code for f in rule.check_file(ctx)]


class TestUnseededRng:
    def test_fires_on_violation_fixture(self, fixture_ctx):
        ctx = fixture_ctx("determinism_violation.py", SIM_PATH)
        findings = list(UnseededRngRule().check_file(ctx))
        assert len(findings) == 3
        assert {f.code for f in findings} == {"REPRO101"}
        assert any("np.random.seed" in f.message for f in findings)
        assert any("random.random" in f.message for f in findings)

    def test_clean_fixture_passes(self, fixture_ctx):
        ctx = fixture_ctx("determinism_clean.py", SIM_PATH)
        assert _codes(UnseededRngRule(), ctx) == []

    def test_from_import_is_resolved(self):
        ctx = FileContext(
            SIM_PATH,
            "from numpy.random import rand\nx = rand(3)\n")
        assert _codes(UnseededRngRule(), ctx) == ["REPRO101"]

    def test_scope_is_src_repro(self):
        rule = UnseededRngRule()
        assert rule.applies("src/repro/sim/engine.py")
        assert not rule.applies("tests/sim/test_engine.py")


class TestWallClock:
    def test_fires_on_violation_fixture(self, fixture_ctx):
        ctx = fixture_ctx("determinism_violation.py", SIM_PATH)
        findings = list(WallClockRule().check_file(ctx))
        assert len(findings) == 2
        assert {f.code for f in findings} == {"REPRO102"}
        assert any("time.time" in f.message for f in findings)
        assert any("datetime.now" in f.message for f in findings)

    def test_perf_counter_is_legal(self, fixture_ctx):
        ctx = fixture_ctx("determinism_clean.py", SIM_PATH)
        assert _codes(WallClockRule(), ctx) == []

    def test_from_import_time(self):
        ctx = FileContext(
            SIM_PATH, "from time import time\nt = time()\n")
        assert _codes(WallClockRule(), ctx) == ["REPRO102"]


class TestSetIteration:
    def test_fires_on_violation_fixture(self, fixture_ctx):
        ctx = fixture_ctx("determinism_violation.py", SIM_PATH)
        findings = list(SetIterationRule().check_file(ctx))
        assert len(findings) == 2
        assert {f.code for f in findings} == {"REPRO103"}

    def test_sorted_wrapper_is_legal(self, fixture_ctx):
        ctx = fixture_ctx("determinism_clean.py", SIM_PATH)
        assert _codes(SetIterationRule(), ctx) == []

    def test_scope_is_sim_only(self):
        rule = SetIterationRule()
        assert rule.applies("src/repro/sim/engine.py")
        assert not rule.applies("src/repro/api/runner.py")


class TestPragmaSuppression:
    def test_every_finding_suppressed(self, fixture_ctx):
        ctx = fixture_ctx("determinism_pragma.py", SIM_PATH)
        findings = []
        for rule in (UnseededRngRule(), WallClockRule(),
                     SetIterationRule()):
            findings.extend(rule.check_file(ctx))
        assert len(findings) == 3  # one per rule in the fixture
        assert all(ctx.suppresses(f) for f in findings)
