"""REPRO201/202: the spec-hygiene rule family."""

from repro.lint.core import FileContext, ProjectContext
from repro.lint.rules.spec_hygiene import (DuplicateRegistrationRule,
                                           FrozenSpecRule)

SRC_PATH = "src/repro/fixture_mod.py"


class TestFrozenSpec:
    def test_fires_on_violation_fixture(self, fixture_ctx):
        ctx = fixture_ctx("spec_hygiene_violation.py", SRC_PATH)
        findings = list(FrozenSpecRule().check_file(ctx))
        assert {f.code for f in findings} == {"REPRO201"}
        named = {f.message.split("'")[1] for f in findings}
        assert named == {"MutableSpec", "ThawedSpec"}

    def test_clean_fixture_passes(self, fixture_ctx):
        ctx = fixture_ctx("spec_hygiene_clean.py", SRC_PATH)
        assert list(FrozenSpecRule().check_file(ctx)) == []

    def test_non_dataclass_spec_is_ignored(self):
        ctx = FileContext(SRC_PATH, "class FooSpec:\n    pass\n")
        assert list(FrozenSpecRule().check_file(ctx)) == []

    def test_scope_is_src(self):
        rule = FrozenSpecRule()
        assert rule.applies("src/repro/methods/spec.py")
        assert not rule.applies("tests/methods/test_spec.py")


class TestDuplicateRegistration:
    def _project(self, fixture_ctx, name, relpath=SRC_PATH):
        ctx = fixture_ctx(name, relpath)
        return ctx, ProjectContext(root=None, files=[ctx])

    def test_fires_on_violation_fixture(self, fixture_ctx):
        ctx, project = self._project(fixture_ctx,
                                     "spec_hygiene_violation.py")
        findings = list(
            DuplicateRegistrationRule().check_project(project))
        assert len(findings) == 1
        f = findings[0]
        assert f.code == "REPRO202"
        assert "'dup'" in f.message and SRC_PATH in f.message

    def test_clean_fixture_passes(self, fixture_ctx):
        _, project = self._project(fixture_ctx, "spec_hygiene_clean.py")
        assert list(
            DuplicateRegistrationRule().check_project(project)) == []

    def test_only_src_files_are_scanned(self, fixture_ctx):
        _, project = self._project(fixture_ctx,
                                   "spec_hygiene_violation.py",
                                   relpath="examples/fixture_mod.py")
        assert list(
            DuplicateRegistrationRule().check_project(project)) == []

    def test_replace_true_is_exempt(self):
        src = ("@register_family('x')\nclass A:\n    pass\n\n"
               "@register_family('x', replace=True)\nclass B:\n"
               "    pass\n")
        ctx = FileContext(SRC_PATH, src)
        project = ProjectContext(root=None, files=[ctx])
        assert list(
            DuplicateRegistrationRule().check_project(project)) == []

    def test_class_body_name_attr_is_read(self):
        src = ("@register_rule\nclass A:\n    name = 'x'\n\n"
               "@register_rule\nclass B:\n    name = 'x'\n")
        ctx = FileContext(SRC_PATH, src)
        project = ProjectContext(root=None, files=[ctx])
        findings = list(
            DuplicateRegistrationRule().check_project(project))
        assert len(findings) == 1
        assert "lint-rule" in findings[0].message


class TestPragmaSuppression:
    def test_every_finding_suppressed(self, fixture_ctx):
        ctx = fixture_ctx("spec_hygiene_pragma.py", SRC_PATH)
        project = ProjectContext(root=None, files=[ctx])
        findings = list(FrozenSpecRule().check_file(ctx))
        findings.extend(
            DuplicateRegistrationRule().check_project(project))
        assert {f.code for f in findings} == {"REPRO201", "REPRO202"}
        assert all(ctx.suppresses(f) for f in findings)
