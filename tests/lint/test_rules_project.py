"""REPRO301/302 (round-trip), REPRO401 (catalog), REPRO501 (schema)."""

import json

from repro.lint.core import FileContext, ProjectContext
from repro.lint.rules.catalog import CatalogCoverageRule
from repro.lint.rules.roundtrip import (REGISTRIES,
                                        CrossRoleUniquenessRule,
                                        RoundTripRule, check_roundtrip)
from repro.lint.rules.schema import (SchemaPinRule, extract_schema,
                                     load_pin, write_pin)


def _toy_rule(modname):
    rule = RoundTripRule()
    rule.table = ((
        "toy", modname, "toy_families", "parse_toy", "canonical_toy"),)
    return rule


class TestRoundTrip:
    def test_fires_on_broken_toy_grammar(self, repo_root,
                                         load_fixture_module):
        load_fixture_module("roundtrip_violation.py", "lintfix_rt_bad")
        project = ProjectContext(repo_root, [])
        findings = list(
            _toy_rule("lintfix_rt_bad").check_project(project))
        assert len(findings) == 1
        f = findings[0]
        assert f.code == "REPRO301"
        assert "'bad?p=2'" in f.message
        assert f.path == "tests/lint/fixtures/roundtrip_violation.py"

    def test_clean_toy_grammar_passes(self, repo_root,
                                      load_fixture_module):
        load_fixture_module("roundtrip_clean.py", "lintfix_rt_ok")
        project = ProjectContext(repo_root, [])
        assert list(
            _toy_rule("lintfix_rt_ok").check_project(project)) == []

    def test_pragma_suppresses_at_declaration(self, repo_root,
                                              load_fixture_module):
        load_fixture_module("roundtrip_pragma.py", "lintfix_rt_pragma")
        project = ProjectContext(repo_root, [])
        findings = list(
            _toy_rule("lintfix_rt_pragma").check_project(project))
        assert len(findings) == 1
        ctx = project.get("tests/lint/fixtures/roundtrip_pragma.py")
        assert ctx.suppresses(findings[0])

    def test_check_roundtrip_flags_exceptions(self):
        def parse(text):
            raise KeyError(text)

        failures = list(check_roundtrip({"x": object()}, parse, str))
        assert len(failures) == 1
        assert "KeyError" in failures[0][2]

    def test_live_registries_round_trip(self, repo_root):
        project = ProjectContext(repo_root, [])
        assert list(RoundTripRule().check_project(project)) == []
        assert list(
            CrossRoleUniquenessRule().check_project(project)) == []

    def test_table_covers_every_live_registry(self):
        assert len(REGISTRIES) == 11
        assert len({(mod, enum) for _, mod, enum, _, _
                    in REGISTRIES}) == 11


class TestCatalogCoverage:
    def test_fires_on_missing_catalog_key(self, mini_project):
        project = mini_project("catalog_violation")
        findings = list(CatalogCoverageRule().check_project(project))
        assert len(findings) == 1
        f = findings[0]
        assert f.code == "REPRO401"
        assert "widget_families" in f.message
        assert f.path == "src/repro/widgets.py"

    def test_covered_catalog_passes(self, mini_project):
        project = mini_project("catalog_clean")
        assert list(CatalogCoverageRule().check_project(project)) == []

    def test_pragma_suppresses_at_enumerator(self, mini_project):
        project = mini_project("catalog_pragma")
        findings = list(CatalogCoverageRule().check_project(project))
        assert len(findings) == 1
        ctx = project.get("src/repro/widgets.py")
        assert ctx.suppresses(findings[0])

    def test_missing_catalog_dict_is_a_finding(self):
        cli = FileContext("src/repro/cli.py", "def other():\n    pass\n")
        project = ProjectContext(root=None, files=[cli])
        findings = list(CatalogCoverageRule().check_project(project))
        assert len(findings) == 1
        assert "cannot be checked" in findings[0].message


def _schema_rule(root, pin_name="pin.json"):
    rule = SchemaPinRule()
    rule.pin_path = root / pin_name
    return rule


class TestSchemaPin:
    def test_fires_on_unbumped_key_drift(self, mini_project,
                                         fixtures_dir):
        root = fixtures_dir / "schema_violation"
        project = mini_project("schema_violation")
        findings = list(_schema_rule(root).check_project(project))
        assert len(findings) == 1
        f = findings[0]
        assert f.code == "REPRO501"
        assert "without a SCHEMA_VERSION bump" in f.message
        assert "throughput_rps" in f.message
        assert f.path == "src/repro/api/artifact.py"

    def test_matching_pin_passes(self, mini_project, fixtures_dir):
        root = fixtures_dir / "schema_clean"
        project = mini_project("schema_clean")
        assert list(_schema_rule(root).check_project(project)) == []

    def test_pragma_suppresses_at_summary_metrics(self, mini_project,
                                                  fixtures_dir):
        root = fixtures_dir / "schema_pragma"
        project = mini_project("schema_pragma")
        findings = list(_schema_rule(root).check_project(project))
        assert len(findings) == 1
        ctx = project.get("src/repro/api/artifact.py")
        assert ctx.suppresses(findings[0])

    def test_missing_pin_is_a_finding(self, mini_project, fixtures_dir):
        root = fixtures_dir / "schema_clean"
        project = mini_project("schema_clean")
        rule = _schema_rule(root, pin_name="no_such_pin.json")
        findings = list(rule.check_project(project))
        assert len(findings) == 1
        assert "missing or unreadable" in findings[0].message

    def test_version_bump_demands_pin_refresh(self, mini_project,
                                              fixtures_dir, tmp_path):
        project = mini_project("schema_clean")
        pin = json.loads(
            (fixtures_dir / "schema_clean" / "pin.json").read_text())
        pin["schema_version"] = 2
        stale = tmp_path / "pin.json"
        stale.write_text(json.dumps(pin))
        rule = SchemaPinRule()
        rule.pin_path = stale
        findings = list(rule.check_project(project))
        assert len(findings) == 1
        assert "--schema-pin-update" in findings[0].message

    def test_write_pin_round_trips(self, mini_project, tmp_path):
        project = mini_project("schema_clean")
        out = tmp_path / "pin.json"
        pin = write_pin(project, out)
        assert load_pin(out) == pin
        assert pin["schema_version"] == 1
        assert pin["summary_metrics"] == ["mean_jct_s", "p99_jct_s"]

    def test_live_schema_matches_committed_pin(self, repo_root):
        from repro.lint.runner import collect_files
        project = ProjectContext(repo_root, collect_files(repo_root))
        current = extract_schema(project)
        pin = load_pin()
        assert current is not None and pin is not None
        for key in ("schema_version", "summary_metrics",
                    "compare_scalars", "record_fields"):
            assert current[key] == pin[key]
