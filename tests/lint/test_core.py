"""Core framework: findings, pragmas, rule registration."""

import pytest

from repro.lint import core
from repro.lint.core import (FileContext, Finding, Rule, get_rule,
                             lint_rules, register_rule)

# Assembled so this test file's own source never contains a live
# pragma (the scanner reads raw source lines).
IGNORE = "# repro: lint-" + "ignore"


def _finding(path="src/x.py", line=3, code="REPRO101", message="m"):
    return Finding(path=path, line=line, code=code, message=message,
                   rule="r")


class TestFinding:
    def test_render_and_dict(self):
        f = _finding()
        assert f.render() == "src/x.py:3: REPRO101 m"
        assert f.to_dict() == {"path": "src/x.py", "line": 3,
                               "code": "REPRO101", "message": "m",
                               "rule": "r"}

    def test_signature_ignores_line(self):
        assert _finding(line=3).signature() == _finding(line=9).signature()

    def test_sort_order_is_path_then_line(self):
        a = _finding(path="a.py", line=9)
        b = _finding(path="b.py", line=1)
        assert sorted([b, a]) == [a, b]


class TestPragmas:
    def test_trailing_pragma_targets_its_line(self):
        ctx = FileContext(
            "f.py", f"x = 1  {IGNORE}[REPRO101] why\n")
        assert ctx.pragmas == {1: {"REPRO101"}}
        assert ctx.pragma_line(1) == 1

    def test_standalone_pragma_targets_next_statement(self):
        src = f"{IGNORE}[REPRO102]\n\nx = 1\n"
        ctx = FileContext("f.py", src)
        assert ctx.pragmas == {3: {"REPRO102"}}
        assert ctx.pragma_line(3) == 1

    def test_comma_list(self):
        ctx = FileContext(
            "f.py", f"x = 1  {IGNORE}[REPRO101, REPRO102]\n")
        assert ctx.pragmas[1] == {"REPRO101", "REPRO102"}

    def test_invalid_codes_are_not_pragmas(self):
        ctx = FileContext("f.py", f"x = 1  {IGNORE}[CODE]\n")
        assert ctx.pragmas == {}

    def test_suppresses_matches_line_and_code(self):
        ctx = FileContext(
            "f.py", f"x = 1  {IGNORE}[REPRO101]\n")
        assert ctx.suppresses(_finding(path="f.py", line=1))
        assert not ctx.suppresses(
            _finding(path="f.py", line=1, code="REPRO102"))
        assert not ctx.suppresses(_finding(path="f.py", line=2))

    def test_syntax_error_captured(self):
        ctx = FileContext("f.py", "def broken(:\n")
        assert ctx.tree is None
        assert ctx.syntax_error is not None


class TestRegistry:
    @pytest.fixture(autouse=True)
    def _isolated_registry(self, monkeypatch):
        monkeypatch.setattr(core, "_RULES", dict(core._RULES))

    def test_register_and_lookup(self):
        @register_rule
        class ProbeRule(Rule):
            code = "REPRO998"
            name = "probe-rule"
            scope = ("tests/lint/never/",)

        assert get_rule("REPRO998").name == "probe-rule"
        assert "REPRO998" in lint_rules()

    def test_bad_code_rejected(self):
        with pytest.raises(ValueError, match="must match"):
            @register_rule
            class BadCode(Rule):
                code = "X1"
                name = "bad-code"

    def test_duplicate_code_rejected_then_replaceable(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_rule
            class Clash(Rule):
                code = "REPRO101"
                name = "clash"

        @register_rule(replace=True)
        class Override(Rule):
            code = "REPRO101"
            name = "override"

        assert get_rule("REPRO101").name == "override"

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            @register_rule
            class NameClash(Rule):
                code = "REPRO997"
                name = "unseeded-module-rng"

    def test_unknown_code_lookup(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            get_rule("REPRO000")
