"""Violates the spec-hygiene rules (REPRO201/202).

Linted with a synthetic ``src/repro/...`` relpath; the registration
decorators are local stand-ins so the file parses without the repo.
"""

from dataclasses import dataclass


def register_family(name):
    def wrap(cls):
        return cls
    return wrap


@dataclass
class MutableSpec:                       # REPRO201: missing frozen=True
    bits: int = 4


@dataclass(frozen=False)
class ThawedSpec:                        # REPRO201: frozen explicitly off
    bits: int = 4


@register_family("dup")
class FirstMethod:
    pass


@register_family("dup")                  # REPRO202: duplicate name
class SecondMethod:
    pass
