"""Spec-hygiene rules satisfied: frozen specs, unique registrations."""

from dataclasses import dataclass


def register_family(name):
    def wrap(cls):
        return cls
    return wrap


@dataclass(frozen=True)
class TidySpec:
    bits: int = 4


# Not a dataclass at all: the *Spec naming rule only covers dataclasses.
class PlainSpec:
    pass


@register_family("alpha")
class AlphaMethod:
    pass


@register_family("beta")
class BetaMethod:
    pass
