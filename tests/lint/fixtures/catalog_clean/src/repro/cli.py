"""Mini-repo CLI whose catalog covers every registry."""


def _cmd_list(args):
    catalog = {
        "method_families": None,
        "widget_families": None,
    }
    return catalog
