"""Registry module the mini-repo CLI surfaces correctly."""

_WIDGETS = {}


def widget_families():
    return dict(_WIDGETS)


def method_families():
    return {}
