"""safety_violation.py with each finding pragma-suppressed.

REPRO602 is absent here: its scope (the engine/perf model) never
overlaps this file's real path, so a 602 pragma would itself be
flagged as unused; its suppression is tested with a re-homed source.
"""


# repro: lint-ignore[REPRO601] intentional shared accumulator
def enqueue(item, queue=[]):
    queue.append(item)
    return queue


def parse(raw):
    try:
        return float(raw)
    # repro: lint-ignore[REPRO603] fixture: swallow everything
    except:
        return None


def check(result):
    # repro: lint-ignore[REPRO604] literal stored and read back verbatim
    assert result == 1e-9
