"""schema_violation's artifact module with the drift pragma-suppressed.

REPRO501 anchors at the SUMMARY_METRICS assignment, so the pragma sits
directly above it.
"""

SCHEMA_VERSION = 1

# repro: lint-ignore[REPRO501] staged key, version bump lands next PR
SUMMARY_METRICS = (
    "mean_jct_s",
    "p99_jct_s",
    "throughput_rps",
)

_COMPARE_SCALARS = (
    "mean_jct_s",
)
