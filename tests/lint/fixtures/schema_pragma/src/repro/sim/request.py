"""Mini-repo request module: per-request record fields."""


class SimRequest:
    def record(self):
        return {
            "request_id": 0,
            "jct_s": 0.0,
        }
