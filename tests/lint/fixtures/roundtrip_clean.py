"""Toy registry whose grammar satisfies the round-trip law."""

from dataclasses import dataclass


@dataclass(frozen=True)
class ToySpec:
    family: str
    p: int = 1

    def signature(self):
        return f"{self.family}?p={self.p}"


def toy_families():
    return {"good": ToySpec("good", p=2), "fine": ToySpec("fine", p=3)}


def parse_toy(text):
    family, _, params = text.partition("?")
    p = 1
    for pair in filter(None, params.split("&")):
        key, _, value = pair.partition("=")
        if key == "p":
            p = int(value)
    return ToySpec(family, p=p)


def canonical_toy(text):
    return parse_toy(text).signature()
