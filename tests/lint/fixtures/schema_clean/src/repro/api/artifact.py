"""Mini-repo artifact module matching its pin exactly."""

SCHEMA_VERSION = 1

SUMMARY_METRICS = (
    "mean_jct_s",
    "p99_jct_s",
)

_COMPARE_SCALARS = (
    "mean_jct_s",
)
