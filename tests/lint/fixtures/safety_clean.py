"""The sanctioned spellings of everything safety_violation.py does."""

import math


def enqueue(item, queue=None):
    if queue is None:
        queue = []
    queue.append(item)
    return queue


def close_enough(a):
    # Dyadic literals compare exactly; non-dyadic ones use a tolerance.
    return a == 0.5 or math.isclose(a, 0.3, rel_tol=1e-12)


def parse(raw):
    try:
        return float(raw)
    except ValueError:
        return None


def check(result):
    assert result == 0.25  # dyadic, therefore exact
    assert math.isclose(result, 1e-9, rel_tol=1e-12)
