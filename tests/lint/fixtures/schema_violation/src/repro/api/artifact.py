"""Mini-repo artifact module whose keys drifted past its pin (REPRO501).

``pin.json`` next to this mini-repo records two summary metrics at
schema_version 1; the source grew a third without bumping the version.
"""

SCHEMA_VERSION = 1

SUMMARY_METRICS = (
    "mean_jct_s",
    "p99_jct_s",
    "throughput_rps",   # added without a SCHEMA_VERSION bump
)

_COMPARE_SCALARS = (
    "mean_jct_s",
)
