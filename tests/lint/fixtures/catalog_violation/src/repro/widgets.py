"""Registry module the mini-repo CLI forgot to surface."""

_WIDGETS = {}


def register_widget(name):
    def wrap(cls):
        _WIDGETS[name] = cls
        return cls
    return wrap


def widget_families():
    return dict(_WIDGETS)


def method_families():
    return {}


def split_widget_list(text):   # helper prefixes are not enumerators
    return text.split(",")
