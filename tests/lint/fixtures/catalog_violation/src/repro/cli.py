"""Mini-repo CLI whose catalog misses a registry (REPRO401)."""


def _cmd_list(args):
    catalog = {
        "method_families": None,
        # widget_families missing -> REPRO401 in widgets.py
    }
    return catalog
