"""Toy registry whose grammar breaks the round-trip law (REPRO301).

Loaded as a module by tests/lint and fed to RoundTripRule via its
``table`` override.  ``canonical_toy`` drops the parameter for the
``bad`` family, so ``parse(canonical("bad?p=2")) != parse("bad?p=2")``.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class ToySpec:
    family: str
    p: int = 1

    def signature(self):
        return f"{self.family}?p={self.p}"


def toy_families():
    return {"good": ToySpec("good", p=2), "bad": ToySpec("bad", p=2)}


def parse_toy(text):
    family, _, params = text.partition("?")
    p = 1
    for pair in filter(None, params.split("&")):
        key, _, value = pair.partition("=")
        if key == "p":
            p = int(value)
    return ToySpec(family, p=p)


def canonical_toy(text):
    spec = parse_toy(text)
    if spec.family == "bad":
        return spec.family          # loses p: round-trip broken
    return spec.signature()
