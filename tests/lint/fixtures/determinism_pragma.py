"""Same violations as determinism_violation.py, each pragma-suppressed."""

import time

import numpy as np


def sample():
    # repro: lint-ignore[REPRO101] fixture demonstrates the pragma form
    return np.random.rand(4)


def stamp():
    started = time.time()  # repro: lint-ignore[REPRO102] trailing form
    return started


def drain(pending):
    # repro: lint-ignore[REPRO103] order genuinely irrelevant here
    return max(item for item in set(pending))
