"""spec_hygiene_violation.py with each finding pragma-suppressed.

REPRO201/202 anchor at the ``class`` statement (not its decorators),
so the standalone pragmas sit between decorator and class line.
"""

from dataclasses import dataclass


def register_family(name):
    def wrap(cls):
        return cls
    return wrap


@dataclass
# repro: lint-ignore[REPRO201] mutated in-place by a legacy shim
class MutableSpec:
    bits: int = 4


@register_family("dup")
class FirstMethod:
    pass


@register_family("dup")
# repro: lint-ignore[REPRO202] second registration is shadow-tested
class SecondMethod:
    pass
