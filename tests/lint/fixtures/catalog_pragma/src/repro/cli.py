"""Mini-repo CLI missing a catalog key; the registry opts out."""


def _cmd_list(args):
    catalog = {
        "method_families": None,
    }
    return catalog
