"""Registry module that pragma-opts out of catalog coverage."""

_WIDGETS = {}


# repro: lint-ignore[REPRO401] internal registry, deliberately unlisted
def widget_families():
    return dict(_WIDGETS)


def method_families():
    return {}
