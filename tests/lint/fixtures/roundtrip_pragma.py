"""roundtrip_violation.py with the finding pragma-suppressed.

REPRO301 anchors at the registered spec class's definition, so the
pragma sits above ``ToySpec`` (decorator line included in the anchor).
"""

from dataclasses import dataclass


# repro: lint-ignore[REPRO301] toy grammar, drift is the fixture's point
@dataclass(frozen=True)
class ToySpec:
    family: str
    p: int = 1

    def signature(self):
        return f"{self.family}?p={self.p}"


def toy_families():
    return {"bad": ToySpec("bad", p=2)}


def parse_toy(text):
    family, _, params = text.partition("?")
    p = 1
    for pair in filter(None, params.split("&")):
        key, _, value = pair.partition("=")
        if key == "p":
            p = int(value)
    return ToySpec(family, p=p)


def canonical_toy(text):
    spec = parse_toy(text)
    if spec.family == "bad":
        return spec.family
    return spec.signature()
