"""Violates every determinism rule (REPRO101/102/103).

Linted by tests/lint with a synthetic ``src/repro/sim/...`` relpath so
the scoped rules apply; excluded from the default repo walk.
"""

import random
import time
from datetime import datetime

import numpy as np


def sample():
    np.random.seed(7)                    # REPRO101
    draws = np.random.rand(4)            # REPRO101
    jitter = random.random()             # REPRO101
    return draws, jitter


def stamp():
    started = time.time()                # REPRO102
    now = datetime.now()                 # REPRO102
    return started, now


def drain(pending):
    order = []
    for item in set(pending):            # REPRO103
        order.append(item)
    totals = [x * 2 for x in {1, 2, 3}]  # REPRO103
    return order, totals
