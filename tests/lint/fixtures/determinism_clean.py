"""The sanctioned spellings of everything determinism_violation.py does."""

import random
import time

import numpy as np


def sample(seed):
    rng = np.random.default_rng(seed)
    local = random.Random(seed)
    return rng.random(4), local.random()


def stamp():
    return time.perf_counter()


def drain(pending):
    order = []
    for item in sorted(set(pending)):
        order.append(item)
    totals = [x * 2 for x in sorted({1, 2, 3})]
    return order, totals
