"""Violates the safety rules (REPRO601/602/603/604).

REPRO601/603 are unscoped and fire at any relpath, so this file also
serves as the CI fixture-smoke target (linted by explicit path, which
bypasses the fixture exclusion).  REPRO602/604 need synthetic relpaths
(``src/repro/sim/...`` / ``tests/...``) supplied by the tests.
"""


def enqueue(item, queue=[]):             # REPRO601: mutable default
    queue.append(item)
    return queue


def tally(counts={}):                    # REPRO601: mutable default
    return counts


def close_enough(a):
    return a == 0.3                      # REPRO602 (under src/repro/sim/)


def parse(raw):
    try:
        return float(raw)
    except:                              # REPRO603: bare except
        return None


def check(result):
    assert result == 1e-9                # REPRO604 (under tests/)
