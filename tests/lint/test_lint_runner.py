"""run_lint: walking, exclusion, suppression, baseline and REPRO700/900."""

from repro.lint.baseline import (load_baseline, split_baselined,
                                 write_baseline)
from repro.lint.core import Finding
from repro.lint.runner import (EXCLUDED_PREFIXES, collect_files,
                               discover_root, run_lint)

IGNORE = "# repro: lint-" + "ignore"


class TestCollect:
    def test_default_walk_excludes_fixtures(self, repo_root):
        relpaths = [c.relpath for c in collect_files(repo_root)]
        assert "src/repro/lint/runner.py" in relpaths
        assert not any(r.startswith(EXCLUDED_PREFIXES) for r in relpaths)

    def test_explicit_paths_bypass_exclusion(self, repo_root,
                                             fixtures_dir):
        target = fixtures_dir / "safety_violation.py"
        contexts = collect_files(repo_root, [target])
        assert [c.relpath for c in contexts] == \
            ["tests/lint/fixtures/safety_violation.py"]

    def test_discover_root_finds_pyproject(self, repo_root,
                                           fixtures_dir):
        assert discover_root(fixtures_dir) == repo_root


class TestRunOnFixture:
    def test_violating_fixture_fails_the_gate(self, fixtures_dir):
        result = run_lint(
            paths=[fixtures_dir / "safety_violation.py"],
            use_baseline=False)
        codes = sorted(f.code for f in result.findings)
        # Unscoped rules + REPRO604 (relpath under tests/); REPRO602
        # stays quiet because the file does not live under the engine.
        assert codes == ["REPRO601", "REPRO601", "REPRO603", "REPRO604"]
        assert not result.ok

    def test_pragma_fixture_is_clean_with_suppressions(self,
                                                       fixtures_dir):
        result = run_lint(
            paths=[fixtures_dir / "safety_pragma.py"],
            use_baseline=False)
        assert result.ok
        codes = sorted(f.code for f in result.suppressed)
        assert codes == ["REPRO601", "REPRO603", "REPRO604"]

    def test_select_restricts_rules_and_skips_repro700(self,
                                                       fixtures_dir):
        result = run_lint(
            paths=[fixtures_dir / "safety_violation.py"],
            use_baseline=False, select=("REPRO601",))
        assert sorted(f.code for f in result.findings) == \
            ["REPRO601", "REPRO601"]
        result = run_lint(
            paths=[fixtures_dir / "safety_pragma.py"],
            use_baseline=False, select=("REPRO601",))
        assert [f.code for f in result.findings] == []


class TestSyntaxAndPragmaFindings:
    def test_syntax_error_is_repro900(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        result = run_lint(paths=[bad], use_baseline=False)
        assert [f.code for f in result.findings] == ["REPRO900"]

    def test_unused_pragma_is_repro700(self, tmp_path):
        lonely = tmp_path / "lonely.py"
        lonely.write_text(f"x = 1  {IGNORE}[REPRO603] nothing here\n")
        result = run_lint(paths=[lonely], use_baseline=False)
        assert [f.code for f in result.findings] == ["REPRO700"]
        assert "REPRO603" in result.findings[0].message


class TestBaseline:
    def _finding(self, message, line=1):
        return Finding(path="src/x.py", line=line, code="REPRO601",
                       message=message, rule="mutable-default-argument")

    def test_split_absorbs_one_occurrence_each(self):
        first = self._finding("shared", line=3)
        second = self._finding("shared", line=9)
        new, baselined, stale = split_baselined(
            [first, second], [self._finding("shared")])
        assert baselined == [first]
        assert new == [second]
        assert stale == []

    def test_stale_entries_are_reported(self):
        new, baselined, stale = split_baselined(
            [], [self._finding("gone")])
        assert (new, baselined) == ([], [])
        assert [f.message for f in stale] == ["gone"]

    def test_write_then_load_round_trips(self, tmp_path):
        path = tmp_path / "lint_baseline.json"
        findings = [self._finding("b"), self._finding("a")]
        write_baseline(path, findings)
        assert load_baseline(path) == sorted(findings)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == []

    def test_gate_respects_baseline_file(self, fixtures_dir, tmp_path):
        target = fixtures_dir / "safety_violation.py"
        raw = run_lint(paths=[target], use_baseline=False)
        baseline = tmp_path / "lint_baseline.json"
        write_baseline(baseline, raw.findings)
        gated = run_lint(paths=[target], baseline_path=baseline)
        assert gated.ok
        assert len(gated.baselined) == len(raw.findings)
