"""Tests for repro.cluster — GPUs, instances, parallelism, network, memory."""

import pytest

from repro.cluster import (
    DEFAULT_PREFILL_FLEETS,
    GPUS,
    MemoryModel,
    NetworkModel,
    get_gpu,
    get_instance,
    get_parallelism,
    instance_for_gpu,
    replica_resources,
)
from repro.model import get_model


class TestGpuRegistry:
    def test_all_five_gpus(self):
        assert set(GPUS) == {"A10G", "V100", "T4", "L4", "A100"}

    def test_v100_lacks_int8(self):
        """The Fig. 12 premise: V100 tensor cores have no INT8 path."""
        assert not get_gpu("V100").supports_int8_matmul
        assert get_gpu("V100").int8_speedup() == 1.0

    def test_others_have_int8_2x(self):
        for name in ("A10G", "T4", "L4", "A100"):
            assert get_gpu(name).int8_speedup() == pytest.approx(2.0)

    def test_case_insensitive_lookup(self):
        assert get_gpu("a10g") is GPUS["A10G"]

    def test_unknown_gpu(self):
        with pytest.raises(KeyError):
            get_gpu("H100")

    def test_no_fp8_support(self):
        """§3: none of the testbed GPUs support FP8 compute."""
        assert not any(g.supports_fp8 for g in GPUS.values())


class TestInstanceRegistry:
    def test_table2_bandwidths(self):
        expected = {"g5.12xlarge": 40, "p3.8xlarge": 10, "g4dn.12xlarge": 50,
                    "g6.12xlarge": 40, "p4de.24xlarge": 400}
        for name, gbps in expected.items():
            assert get_instance(name).network_gbps == gbps

    def test_table2_gpu_memory(self):
        expected = {"g5.12xlarge": 96, "p3.8xlarge": 64, "g4dn.12xlarge": 64,
                    "g6.12xlarge": 96, "p4de.24xlarge": 640}
        for name, gib in expected.items():
            assert get_instance(name).total_gpu_mem_gb == gib

    def test_instance_for_gpu(self):
        assert instance_for_gpu("A10G").name == "g5.12xlarge"
        assert instance_for_gpu("A100").name == "p4de.24xlarge"

    def test_fleet_sizes_section_7_1(self):
        assert DEFAULT_PREFILL_FLEETS == {"A10G": 10, "V100": 16, "T4": 16,
                                          "L4": 10, "A100": 2}

    def test_network_bytes_per_s(self):
        inst = get_instance("g5.12xlarge")
        assert inst.network_bytes_per_s(1.0) == pytest.approx(5e9)
        assert inst.network_bytes_per_s(0.5) == pytest.approx(2.5e9)


class TestParallelism:
    def test_table3_llama(self):
        assert get_parallelism("L", "A10G").pp == 2
        assert get_parallelism("L", "V100").pp == 4
        assert get_parallelism("L", "A100").pp == 1
        assert get_parallelism("L", "A10G").tp == 4

    def test_table3_falcon(self):
        assert get_parallelism("F", "V100").n_gpus == 32
        assert get_parallelism("F", "A100").n_gpus == 8

    def test_table3_mistral_a100_single_gpu(self):
        assert get_parallelism("M", "A100").n_gpus == 1

    def test_a10g_l4_share_config(self):
        for letter in "MPYLF":
            assert get_parallelism(letter, "A10G") == get_parallelism(letter, "L4")

    def test_unknown_pair(self):
        with pytest.raises(KeyError):
            get_parallelism("L", "H100")


class TestReplicaResources:
    def test_llama_a10g_spans_two_instances(self):
        res = replica_resources("L", "A10G")
        assert res.parallelism.n_gpus == 8
        assert res.n_instances == 2
        assert res.mem_gb == 8 * 24

    def test_nic_funneling(self):
        """Multi-instance replicas transfer at one NIC's rate."""
        assert replica_resources("L", "A10G").network_gbps == 40
        assert replica_resources("L", "V100").network_gbps == 10

    def test_partial_instance_share(self):
        """A 4-GPU replica on an 8-GPU p4de gets half the 400 Gbps."""
        assert replica_resources("L", "A100").network_gbps == 200

    def test_v100_replica_no_int8(self):
        assert not replica_resources("L", "V100").supports_int8
        assert replica_resources("L", "A10G").supports_int8

    def test_aggregate_compute(self):
        res = replica_resources("L", "A100")
        assert res.fp16_tflops == 4 * 312


class TestNetworkModel:
    def test_transfer_time_scales_with_bytes(self):
        net = NetworkModel(efficiency=1.0, latency_s=0.0)
        t1 = net.transfer_time(1e9, 40, 400).seconds
        t2 = net.transfer_time(2e9, 40, 400).seconds
        assert t2 == pytest.approx(2 * t1)

    def test_bottleneck_is_min(self):
        net = NetworkModel(efficiency=1.0, latency_s=0.0)
        a = net.transfer_time(1e9, 10, 400).seconds
        b = net.transfer_time(1e9, 400, 10).seconds
        assert a == pytest.approx(b)

    def test_exact_value(self):
        net = NetworkModel(efficiency=0.5, latency_s=0.0)
        # 40 Gbps * 0.5 = 2.5 GB/s -> 1 GB in 0.4 s.
        assert net.transfer_time(1e9, 40, 400).seconds == pytest.approx(0.4)

    def test_cpu_swap_adds_pcie_legs(self):
        net = NetworkModel()
        direct = net.transfer_time(1e9, 40, 400, via_cpu=False).seconds
        swapped = net.transfer_time(1e9, 40, 400, via_cpu=True).seconds
        assert swapped > direct

    def test_pipelining_bounds(self):
        """Exposed time is between one stage's tail and the full time."""
        net = NetworkModel(efficiency=1.0, latency_s=0.0)
        full = net.transfer_time(8e9, 40, 400).seconds
        exposed = net.pipelined_exposed_time(8e9, 40, 400, compute_s=full,
                                             n_stages=80)
        assert full / 80 <= exposed < full

    def test_pipelining_ineffective_when_comm_dominates(self):
        """§2.1 case i: communication >> prefill leaves most exposed."""
        net = NetworkModel(efficiency=1.0, latency_s=0.0)
        full = net.transfer_time(8e9, 10, 400).seconds
        exposed = net.pipelined_exposed_time(8e9, 10, 400,
                                             compute_s=full / 10, n_stages=80)
        assert exposed > 0.85 * full

    def test_pipelining_effective_when_compute_dominates(self):
        net = NetworkModel(efficiency=1.0, latency_s=0.0)
        full = net.transfer_time(1e9, 40, 400).seconds
        exposed = net.pipelined_exposed_time(1e9, 40, 400,
                                             compute_s=10 * full, n_stages=80)
        assert exposed == pytest.approx(full / 80)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(efficiency=0.0)
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1)
        net = NetworkModel()
        with pytest.raises(ValueError):
            net.transfer_time(-1, 40, 400)
        with pytest.raises(ValueError):
            net.pipelined_exposed_time(1e9, 40, 400, 1.0, 0)


class TestMemoryModel:
    def test_baseline_footprint_components(self):
        spec = get_model("L")
        model = MemoryModel(spec)
        bd = model.breakdown(n_requests=10, avg_seq_len=16000)
        assert bd.params == spec.n_params * 2
        assert bd.kv == pytest.approx(10 * 16000 * spec.kv_bytes_per_token())
        assert bd.total > bd.params

    def test_quantized_kv_much_smaller(self):
        spec = get_model("L")
        fp16 = MemoryModel(spec, kv_bytes_per_value=2.0)
        q2 = MemoryModel(spec, kv_bytes_per_value=0.3125)
        b_fp = fp16.breakdown(20, 16000)
        b_q = q2.breakdown(20, 16000)
        assert b_q.kv < 0.17 * b_fp.kv

    def test_max_concurrent_requests(self):
        spec = get_model("L")
        model = MemoryModel(spec)
        n = model.max_concurrent_requests(320.0, 16400)
        # ~100 GB of KV headroom past weights+workspace / 5.2 GB per
        # request.
        assert 15 <= n <= 25

    def test_quantization_triples_concurrency(self):
        spec = get_model("L")
        fp16 = MemoryModel(spec, kv_bytes_per_value=2.0)
        q2 = MemoryModel(spec, kv_bytes_per_value=0.3125)
        assert q2.max_concurrent_requests(320.0, 16400) > \
            3 * fp16.max_concurrent_requests(320.0, 16400)

    def test_sum_overhead_accounted(self):
        spec = get_model("L")
        model = MemoryModel(spec, kv_bytes_per_value=0.3125, sum_overhead=0.05)
        bd = model.breakdown(10, 16000)
        assert bd.sums == pytest.approx(0.05 * bd.kv)

    def test_fraction_of(self):
        spec = get_model("L")
        bd = MemoryModel(spec).breakdown(0, 1)
        assert 0 < bd.fraction_of(320e9) < 1

    def test_validation(self):
        spec = get_model("L")
        with pytest.raises(ValueError):
            MemoryModel(spec, kv_bytes_per_value=0)
        with pytest.raises(ValueError):
            MemoryModel(spec, sum_overhead=1.5)
