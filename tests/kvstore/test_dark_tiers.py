"""Dark (unreachable) KV-store tiers — the kvstore_outage fault's
store-side semantics."""

import pytest

from repro.kvstore import TierDef, TieredKVStore
from repro.kvstore.spec import LRUEviction

BPT = 1.0


def _store(caps=(100, 200, 400)):
    tiers = [TierDef(f"t{i}", float(c), read_gb_s=1.0, write_gb_s=1.0)
             for i, c in enumerate(caps)]
    return TieredKVStore(tiers, LRUEviction())


class TestDarkReads:
    def test_dark_owned_entry_misses(self):
        store = _store()
        store.put("s0", 80, BPT, "hack", now=0.0)
        store.set_dark("t0", True)
        hit = store.lookup("s0", 80, now=1.0)
        assert not hit.hit
        assert store.n_dark_misses == 1

    def test_entry_survives_the_outage(self):
        store = _store()
        store.put("s0", 80, BPT, "hack", now=0.0)
        store.set_dark("t0", True)
        assert not store.lookup("s0", 80, now=1.0).hit
        store.set_dark("t0", False)
        hit = store.lookup("s0", 80, now=2.0)
        assert hit.hit and hit.tokens == 80

    def test_live_tier_entries_unaffected(self):
        store = _store(caps=(50, 200, 400))
        store.put("s0", 80, BPT, "hack", now=0.0)   # too big for t0 ->
        assert store._index["s0"].tier == 1         # lands in t1
        store.set_dark("t0", True)
        assert store.lookup("s0", 80, now=1.0).hit
        assert store.n_dark_misses == 0


class TestDarkWrites:
    def test_new_puts_land_in_top_live_tier(self):
        store = _store()
        store.set_dark("t0", True)
        store.put("s0", 80, BPT, "hack", now=0.0)
        assert store._index["s0"].tier == 1

    def test_all_tiers_dark_drops_the_write(self):
        store = _store()
        for name in ("t0", "t1", "t2"):
            store.set_dark(name, True)
        store.put("s0", 80, BPT, "hack", now=0.0)
        assert "s0" not in store._index
        assert store.n_dark_drops == 1

    def test_extending_a_stranded_entry_drops(self):
        store = _store()
        store.put("s0", 50, BPT, "hack", now=0.0)
        store.set_dark("t0", True)
        store.put("s0", 90, BPT, "hack", now=1.0)
        assert store._index["s0"].tokens == 50      # extension lost
        assert store.n_dark_drops == 1

    def test_demotion_skips_dark_tier(self):
        store = _store(caps=(100, 200, 400))
        store.set_dark("t1", True)
        store.put("a", 80, BPT, "hack", now=0.0)
        store.put("b", 80, BPT, "hack", now=1.0)    # t0 over capacity
        tiers = sorted((e.key, e.tier) for e in store._index.values())
        assert tiers == [("a", 2), ("b", 0)]        # victim skipped t1

    def test_promotion_targets_top_live_tier(self):
        store = _store(caps=(100, 200, 400))
        store.set_dark("t0", True)
        store.put("s0", 80, BPT, "hack", now=0.0)   # lands in t1
        store.set_dark("t1", True)
        store.set_dark("t0", False)
        # t1 is dark: its entry misses; nothing to promote.
        assert not store.lookup("s0", 80, now=1.0).hit
        store.set_dark("t1", False)
        store.lookup("s0", 80, now=2.0)             # hit promotes to t0
        assert store._index["s0"].tier == 0


class TestDarkBookkeeping:
    def test_outages_stack(self):
        store = _store()
        store.set_dark("t0", True)
        store.set_dark("t0", True)      # overlapping outage specs
        store.set_dark("t0", False)
        assert store._is_dark(0)        # still one outage active
        store.set_dark("t0", False)
        assert not store._is_dark(0)

    def test_unbalanced_repair_rejected(self):
        store = _store()
        with pytest.raises(ValueError, match="not dark"):
            store.set_dark("t0", False)

    def test_unknown_tier_rejected(self):
        store = _store()
        with pytest.raises(ValueError, match="unknown tier"):
            store.set_dark("nvme", True)

    def test_stats_surface_dark_counters(self):
        store = _store()
        stats = store.stats()
        assert stats["dark_misses"] == 0 and stats["dark_drops"] == 0
        store.put("s0", 80, BPT, "hack", now=0.0)
        store.set_dark("t0", True)
        store.lookup("s0", 80, now=1.0)
        stats = store.stats()
        assert stats["dark_misses"] == 1
