"""KV-store spec grammar, registries and canonicalization."""

import pytest

from repro.kvstore import (
    DEFAULT_EVICTION,
    DEFAULT_STORE,
    EvictionPolicy,
    EvictionSpec,
    KVStoreSpec,
    TieredKVStore,
    canonical_kvstore,
    eviction_policies,
    get_eviction_policy,
    get_kvstore_family,
    has_kvstore_families,
    kvstore_families,
    kvstore_spec,
    parse_kvstore,
    register_eviction,
    split_kvstore_list,
)


class TestGrammar:
    def test_bare_store(self):
        spec = parse_kvstore("tiered")
        assert spec.kind == "tiered"
        assert spec.params == ()
        assert spec.eviction is None
        assert spec.canonical() == "tiered"

    def test_params_canonicalize_sorted_float(self):
        spec = parse_kvstore("tiered?pool_gb=64,dram_gb=8")
        assert spec.canonical() == "tiered?dram_gb=8.0,pool_gb=64.0"

    def test_bare_eviction_implies_default_store(self):
        spec = parse_kvstore("lfu")
        assert spec.kind == DEFAULT_STORE
        assert spec.eviction.kind == "lfu"
        assert spec.canonical() == "tiered+lfu"

    def test_both_parts_with_params(self):
        spec = parse_kvstore("tiered?pool_gb=64+ttl?seconds=120")
        assert spec.canonical() == "tiered?pool_gb=64.0+ttl?seconds=120.0"

    def test_explicit_default_param_is_kept(self):
        """ttl?seconds=300 stays distinct from bare ttl in the string."""
        assert canonical_kvstore("ttl?seconds=300") == \
            "tiered+ttl?seconds=300.0"
        assert canonical_kvstore("ttl") == "tiered+ttl"

    def test_two_store_families_rejected(self):
        with pytest.raises(ValueError, match="two store families"):
            parse_kvstore("tiered+tiered")

    def test_two_eviction_policies_rejected(self):
        with pytest.raises(ValueError, match="two eviction policies"):
            parse_kvstore("lru+lfu")

    def test_unknown_family_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'tiered'"):
            parse_kvstore("tierd")

    def test_unknown_param_suggests(self):
        with pytest.raises(ValueError, match="dram_gb"):
            parse_kvstore("tiered?dram=8")

    def test_duplicate_param_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            parse_kvstore("tiered?dram_gb=8,dram_gb=9")

    def test_non_numeric_param_rejected(self):
        with pytest.raises(ValueError, match="expects a number"):
            parse_kvstore("tiered?dram_gb=big")

    def test_malformed_pair_rejected(self):
        with pytest.raises(ValueError, match="grammar"):
            parse_kvstore("tiered?dram_gb")

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            parse_kvstore("tiered?dram_gb=-1")

    def test_all_tiers_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_kvstore("tiered?hbm_gb=0,dram_gb=0,pool_gb=0")

    def test_kvstore_spec_passthrough_and_types(self):
        spec = parse_kvstore("tiered?dram_gb=8")
        assert kvstore_spec(spec) is spec
        assert kvstore_spec("tiered?dram_gb=8") == spec
        with pytest.raises(TypeError):
            kvstore_spec(42)

    def test_split_list_keeps_params_attached(self):
        assert split_kvstore_list(
            "lru,tiered?dram_gb=8,pool_gb=64+lfu,ttl?seconds=60") == \
            ["lru", "tiered?dram_gb=8,pool_gb=64+lfu", "ttl?seconds=60"]


class TestSpecObjects:
    def test_with_params_overrides_and_drops(self):
        spec = parse_kvstore("tiered?dram_gb=8+lfu")
        bigger = spec.with_params(dram_gb=32.0, pool_gb=64.0)
        assert bigger.canonical() == "tiered?dram_gb=32.0,pool_gb=64.0+lfu"
        assert bigger.with_params(dram_gb=None, pool_gb=None).canonical() \
            == "tiered+lfu"

    def test_resolved_params_overlay_defaults(self):
        spec = parse_kvstore("tiered?dram_gb=8")
        p = spec.resolved_params()
        assert p["dram_gb"] == 8.0
        assert p["hbm_gb"] == \
            get_kvstore_family("tiered").params["hbm_gb"].default

    def test_build_returns_store_with_tiers_and_eviction(self):
        store = parse_kvstore("tiered?hbm_gb=0,dram_gb=1+lfu").build()
        assert isinstance(store, TieredKVStore)
        # a tier with capacity 0 is absent
        assert [t.spec.name for t in store.tiers] == ["dram", "pool"]
        assert store.eviction.name == "lfu"

    def test_default_eviction_is_lru(self):
        assert parse_kvstore("tiered").build().eviction.name \
            == DEFAULT_EVICTION

    def test_of_accepts_eviction_string(self):
        spec = KVStoreSpec.of("tiered", eviction="ttl?seconds=60",
                              dram_gb=2.0)
        assert spec.canonical() == "tiered?dram_gb=2.0+ttl?seconds=60.0"

    def test_eviction_spec_validates(self):
        with pytest.raises(ValueError, match="positive"):
            EvictionSpec.of("ttl", seconds=0)


class TestRegistries:
    def test_builtins_present(self):
        assert set(eviction_policies()) >= {"lru", "lfu", "ttl"}
        assert "tiered" in kvstore_families()
        for family in kvstore_families().values():
            assert family.description
            assert family.signature().startswith(family.name)
        for policy in eviction_policies().values():
            assert policy.description

    def test_has_kvstore_families(self):
        assert has_kvstore_families("tiered?dram_gb=8+lfu")
        assert has_kvstore_families("ttl?seconds=60")
        assert not has_kvstore_families("mystery_store")
        assert not has_kvstore_families("tiered+mystery_eviction")

    def test_register_open_and_duplicate_guard(self):
        @register_eviction
        class NewestFirst(EvictionPolicy):
            name = "newest_first_test"
            description = "anti-policy: evict the most recent entry"

            def victim(self, entries, now):
                return max(entries, key=lambda e: e.seq)

        assert parse_kvstore("tiered+newest_first_test").build() \
            .eviction.name == "newest_first_test"
        with pytest.raises(ValueError, match="already registered"):
            register_eviction(NewestFirst)
        register_eviction(replace=True)(NewestFirst)   # explicit override

    def test_lookup_suggestions_cross_role(self):
        """A store name mistyped as an eviction (or vice versa) still
        gets a useful suggestion — the roles share one namespace."""
        with pytest.raises(ValueError, match="unknown eviction"):
            get_eviction_policy("tieredd")
