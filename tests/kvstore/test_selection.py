"""Compression-selection policies: grammar, registry, choose() logic."""

from types import SimpleNamespace

import pytest

from repro.kvstore import (
    CompressionSelectionPolicy,
    SelectionSpec,
    canonical_selection,
    parse_selection,
    register_selection,
    selection_policies,
    selection_spec,
    split_selection_list,
)
from repro.methods import get_method


def _req(slo_tier=0):
    return SimpleNamespace(trace=SimpleNamespace(slo_tier=slo_tier))


def _sim(method=None, kvstore=None, prefill=()):
    return SimpleNamespace(method=method or get_method("hack"),
                           kvstore=kvstore, _prefill=list(prefill))


class TestGrammar:
    def test_bare_family(self):
        spec = parse_selection("static")
        assert spec.kind == "static" and spec.params == ()
        assert spec.canonical() == "static"

    def test_params_canonicalize_sorted(self):
        assert canonical_selection("congestion?lo=0.4,hi=0.8") == \
            "congestion?hi=0.8,lo=0.4"

    def test_string_and_float_params_coexist(self):
        spec = parse_selection("slo_tier?tier0=fp8")
        assert spec.canonical() == "slo_tier?tier0=fp8"
        assert spec.resolved_params()["tier1"] == "hack"

    def test_unknown_family_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'static'"):
            parse_selection("sttic")

    def test_unknown_param_suggests(self):
        with pytest.raises(ValueError, match="no parameter"):
            parse_selection("congestion?high=0.8")

    def test_method_ref_params_validated(self):
        with pytest.raises(ValueError, match="resolvable method"):
            parse_selection("slo_tier?tier0=not_a_method")

    def test_hysteresis_band_validated(self):
        with pytest.raises(ValueError, match="lo must be"):
            parse_selection("congestion?hi=0.5,lo=0.6")
        with pytest.raises(ValueError, match="hi must be"):
            parse_selection("congestion?hi=1.5")

    def test_spec_helper_passthrough(self):
        spec = parse_selection("slo_tier")
        assert selection_spec(spec) is spec
        with pytest.raises(TypeError):
            selection_spec(3.14)

    def test_split_list_keeps_params_attached(self):
        assert split_selection_list(
            "static,congestion?hi=0.8,lo=0.4,slo_tier") == \
            ["static", "congestion?hi=0.8,lo=0.4", "slo_tier"]


class TestBuiltinPolicies:
    def test_static_returns_scenario_method(self):
        sim = _sim(method=get_method("baseline"))
        policy = SelectionSpec("static").build()
        assert policy.choose(0.0, _req(), sim) is sim.method

    def test_slo_tier_maps_and_clamps(self):
        policy = SelectionSpec("slo_tier").build()
        sim = _sim()
        assert policy.choose(0.0, _req(0), sim).name == "baseline"
        assert policy.choose(0.0, _req(1), sim).name == "hack"
        assert policy.choose(0.0, _req(2), sim).name == "hack_int4"
        assert policy.choose(0.0, _req(7), sim).name == "hack_int4"
        assert policy.choose(0.0, _req(-3), sim).name == "baseline"

    def test_congestion_hysteresis_latch(self):
        policy = parse_selection("congestion?hi=0.75,lo=0.5").build()

        class FakeStore:
            def __init__(self):
                self.occ = 0.0

            def pool_occupancy(self):
                return self.occ

        store = FakeStore()
        sim = _sim(kvstore=store)
        req = _req()
        assert policy.choose(0.0, req, sim) is sim.method   # calm
        store.occ = 0.9
        assert policy.choose(1.0, req, sim).name == "hack_int4"
        store.occ = 0.6            # inside the band: latch holds
        assert policy.choose(2.0, req, sim).name == "hack_int4"
        store.occ = 0.4            # below lo: disarm
        assert policy.choose(3.0, req, sim) is sim.method

    def test_congestion_nic_signal(self):
        policy = parse_selection("congestion?nic_s=1.0").build()
        sim = _sim(prefill=[SimpleNamespace(nic_free_at=5.0)])
        assert policy.signal(4.5, sim) == pytest.approx(0.5)
        assert policy.signal(1.0, sim) == 1.0      # saturates at 1
        assert policy.signal(9.0, sim) == 0.0      # backlog in the past


class TestRegistry:
    def test_builtins_present_with_signatures(self):
        policies = selection_policies()
        assert set(policies) >= {"static", "slo_tier", "congestion"}
        for cls in policies.values():
            assert cls.description
            assert cls.signature().startswith(cls.name)

    def test_register_open_and_duplicate_guard(self):
        @register_selection
        class AlwaysBaseline(CompressionSelectionPolicy):
            name = "always_baseline_test"
            description = "test-only: baseline for everyone"

            def choose(self, now, req, sim):
                return get_method("baseline")

        assert parse_selection("always_baseline_test").build() \
            .choose(0.0, _req(), _sim()).name == "baseline"
        with pytest.raises(ValueError, match="already registered"):
            register_selection(AlwaysBaseline)
        register_selection(replace=True)(AlwaysBaseline)
