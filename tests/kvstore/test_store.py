"""TieredKVStore runtime semantics: lookup/put/promotion/eviction."""

import pytest

from repro.kvstore import TierDef, TieredKVStore, parse_kvstore
from repro.kvstore.spec import LFUEviction, LRUEviction
from repro.perfmodel.tiers import TIER_LATENCY_S, tier_access_time

#: 1 byte/token so entry bytes == tokens; tier names outside
#: TIER_LATENCY_S get zero fixed latency, keeping arithmetic exact.
BPT = 1.0


def _store(caps=(100, 200, 400), eviction=None):
    tiers = [TierDef(f"t{i}", float(c), read_gb_s=1.0, write_gb_s=1.0)
             for i, c in enumerate(caps)]
    return TieredKVStore(tiers, eviction or LRUEviction())


class TestLookupPut:
    def test_miss_on_empty(self):
        store = _store()
        hit = store.lookup("s0", 50, now=0.0)
        assert not hit.hit and hit.tokens == 0 and hit.tier is None
        assert store.n_lookups == 1 and store.n_hits == 0
        assert store.hit_rate() == 0.0

    def test_hit_is_token_granular_minimum(self):
        store = _store()
        store.put("s0", 80, BPT, "hack", now=0.0)
        assert store.lookup("s0", 50, now=1.0).tokens == 50   # request side
        assert store.lookup("s0", 99, now=2.0).tokens == 80   # cache side

    def test_zero_prefix_is_a_miss(self):
        store = _store()
        store.put("s0", 80, BPT, "hack", now=0.0)
        assert not store.lookup("s0", 0, now=1.0).hit

    def test_hit_charges_owning_tier_read(self):
        store = _store()
        store.put("s0", 80, BPT, "hack", now=0.0)
        hit = store.lookup("s0", 80, now=1.0)
        tier = store.tiers[0]
        assert hit.tier == "t0"
        assert hit.read_s == tier_access_time(80 * BPT, 1.0, 0.0)
        assert tier.bytes_read == 80 * BPT
        assert tier.hits == 1

    def test_put_extends_and_never_shrinks(self):
        store = _store()
        store.put("s0", 50, BPT, "hack", now=0.0)
        store.put("s0", 90, BPT, "hack", now=1.0)     # turn 2 writeback
        assert store._index["s0"].tokens == 90
        store.put("s0", 40, BPT, "hack", now=2.0)     # shrinking re-put
        assert store._index["s0"].tokens == 90
        assert store.tiers[0].used_bytes == 90 * BPT

    def test_degenerate_puts_ignored(self):
        store = _store()
        store.put("s0", 0, BPT, "hack", now=0.0)
        store.put("s1", 10, 0.0, "hack", now=0.0)
        assert not store._index

    def test_hit_promotes_to_top_tier(self):
        store = _store(caps=(100, 200, 400))
        store.put("a", 80, BPT, "hack", now=0.0)
        store.put("b", 80, BPT, "hack", now=1.0)      # evicts a -> t1
        assert store._index["a"].tier == 1
        store.lookup("a", 80, now=2.0)
        assert store._index["a"].tier == 0            # hot again
        assert store._index["b"].tier == 1            # displaced

    def test_oversized_entry_not_promoted(self):
        store = _store(caps=(100, 200, 400))
        store.put("big", 150, BPT, "hack", now=0.0)   # overflows t0 -> t1
        assert store._index["big"].tier == 1
        store.lookup("big", 150, now=1.0)
        assert store._index["big"].tier == 1          # can never fit t0


class TestEviction:
    def test_capacity_demotes_down_the_hierarchy(self):
        store = _store(caps=(100, 100, 400))
        for i, key in enumerate(("a", "b", "c")):
            store.put(key, 80, BPT, "hack", now=float(i))
        assert store._index["a"].tier == 2            # demoted twice
        assert store._index["b"].tier == 1
        assert store._index["c"].tier == 0
        assert store.tiers[0].evictions == 2
        assert store.n_dropped == 0

    def test_demotion_skips_tiers_too_small_to_ever_fit(self):
        """An entry larger than the DRAM tier must still reach the
        pool, not fall out of the hierarchy (regression)."""
        store = _store(caps=(100, 50, 400))
        store.put("big", 80, BPT, "hack", now=0.0)
        store.put("big2", 90, BPT, "hack", now=1.0)
        assert store._index["big"].tier == 2          # skipped t1 (cap 50)
        assert store.n_dropped == 0

    def test_dropped_out_of_the_bottom(self):
        store = _store(caps=(100, 100, 100))
        for i in range(5):
            store.put(f"k{i}", 80, BPT, "hack", now=float(i))
        assert store.n_dropped == 2
        assert len(store._index) == 3
        for tier in store.tiers:
            assert tier.used_bytes <= tier.spec.capacity_bytes

    def test_lru_vs_lfu_pick_different_victims(self):
        def fill(eviction):
            store = _store(caps=(200, 0.0001, 0.0001), eviction=eviction)
            store.put("cold", 90, BPT, "hack", now=0.0)
            store.put("hot", 90, BPT, "hack", now=1.0)
            store.lookup("hot", 90, now=2.0)          # hot: recent + hit
            store.lookup("cold", 90, now=3.0)         # cold: recent, 1 hit
            store.lookup("hot", 90, now=4.0)          # hot: 2 hits
            store.put("new", 90, BPT, "hack", now=5.0)
            return store

        lru = fill(LRUEviction())
        assert set(lru._index) == {"hot", "new"}      # cold is the LRU
        lfu = fill(LFUEviction())
        assert set(lfu._index) == {"hot", "cold"}     # new has no hits

    def test_ttl_expires_idle_entries(self):
        store = parse_kvstore(
            "tiered?hbm_gb=0.001+ttl?seconds=10").build()
        store.put("s0", 100, BPT, "hack", now=0.0)
        assert store.lookup("s0", 100, now=5.0).hit   # refreshes idle clock
        assert not store.lookup("s0", 100, now=30.0).hit
        assert store.n_expired == 1
        assert not store._index

    def test_deterministic_tie_break_on_seq(self):
        store = _store(caps=(100, 0.0001, 0.0001))
        store.put("a", 80, BPT, "hack", now=0.0)
        store.put("b", 80, BPT, "hack", now=0.0)      # same timestamps
        assert "b" in store._index and "a" not in store._index


class TestStats:
    def test_stats_shape_and_accounting(self):
        store = parse_kvstore("tiered?dram_gb=8").build()
        assert [t.spec.name for t in store.tiers] == ["hbm", "dram", "pool"]
        assert store.tiers[2].latency_s == TIER_LATENCY_S["pool"]
        store.put("s0", 1000, 50_000.0, "hack", now=0.0)
        store.lookup("s0", 600, now=1.0)
        store.lookup("s1", 600, now=2.0)
        stats = store.stats()
        assert stats["lookups"] == 2 and stats["hits"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["prefill_tokens_skipped"] == 600
        assert stats["entries"] == 1
        assert stats["dropped"] == 0 and stats["expired"] == 0
        hbm = stats["tiers"]["hbm"]
        assert hbm["capacity_gb"] == pytest.approx(4.0)
        assert hbm["used_gb"] == pytest.approx(0.05)
        assert 0 < hbm["occupancy"] < 1
        assert hbm["hits"] == 1 and hbm["hit_rate"] == 0.5
        assert hbm["bytes_read"] == pytest.approx(600 * 50_000.0)
        assert hbm["read_s"] > 0 and hbm["write_s"] > 0

    def test_empty_tier_list_rejected(self):
        with pytest.raises(ValueError, match="at least one tier"):
            TieredKVStore([], LRUEviction())
