"""The ``sessions`` arrival family: multi-turn traces with shareable
prefixes, per-session SLO classes, determinism and clipping."""

import pytest

from repro.workload import generate_trace, merge_traces
from repro.workload.arrivals import (
    arrival_spec,
    get_arrival_process,
    parse_arrival,
)

ARRIVAL = "sessions?turns=4.0,think_time=20.0,prefix_growth=0.3,tiers=3.0"


def _by_session(trace):
    sessions = {}
    for r in trace:
        sessions.setdefault(r.session_id, []).append(r)
    return sessions


@pytest.fixture(scope="module")
def trace():
    return generate_trace("cocktail", rps=2.0, n_requests=60, seed=7,
                          arrival=ARRIVAL)


class TestInvariants:
    def test_shape(self, trace):
        assert len(trace) == 60
        assert [r.request_id for r in trace] == list(range(60))
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)
        assert all(r.arrival_s > 0 for r in trace)

    def test_multi_turn_structure(self, trace):
        sessions = _by_session(trace)
        assert all(sid >= 0 for sid in sessions)
        assert any(len(turns) > 1 for turns in sessions.values())
        for turns in sessions.values():
            turns.sort(key=lambda r: r.arrival_s)
            assert turns[0].prefix_len == 0
            prev_context = turns[0].input_len + turns[0].output_len
            for r in turns[1:]:
                # the prefix is exactly the prior conversation, and at
                # least one token is always new
                assert r.prefix_len == prev_context
                assert 0 < r.prefix_len < r.input_len
                prev_context = r.input_len + r.output_len
            if len(turns) == 1:
                continue
            grew = [turns[i + 1].prefix_len > turns[i].prefix_len
                    for i in range(1, len(turns) - 1)]
            assert all(grew)      # conversations only accumulate

    def test_slo_tiers_per_session(self, trace):
        sessions = _by_session(trace)
        tiers = {turns[0].slo_tier for turns in sessions.values()}
        assert tiers <= {0, 1, 2} and len(tiers) > 1
        for turns in sessions.values():
            assert len({r.slo_tier for r in turns}) == 1

    def test_deterministic_given_seed(self, trace):
        again = generate_trace("cocktail", rps=2.0, n_requests=60, seed=7,
                               arrival=ARRIVAL)
        assert list(again) == list(trace)
        other = generate_trace("cocktail", rps=2.0, n_requests=60, seed=8,
                               arrival=ARRIVAL)
        assert list(other) != list(trace)

    def test_max_context_clips_and_keeps_one_new_token(self):
        clipped = generate_trace("arxiv", rps=1.0, n_requests=40, seed=3,
                                 arrival="sessions?turns=6.0",
                                 max_context=4096)
        assert clipped.n_input_clipped > 0
        for r in clipped:
            assert r.input_len + r.output_len <= 4096
            assert r.prefix_len < r.input_len


class TestGrammarAndValidation:
    def test_canonicalization(self):
        spec = parse_arrival("sessions?think_time=20,turns=4")
        assert spec.canonical() == "sessions?think_time=20.0,turns=4.0"
        assert arrival_spec(ARRIVAL).resolved_params()["tiers"] == 3.0

    @pytest.mark.parametrize("bad", [
        "sessions?turns=0.5",
        "sessions?think_time=0",
        "sessions?prefix_growth=0",
        "sessions?prefix_growth=1.5",
        "sessions?tiers=2.5",
    ])
    def test_out_of_range_params_rejected(self, bad):
        with pytest.raises(ValueError):
            generate_trace("imdb", 1.0, 10, arrival=bad)

    def test_bare_arrival_times_undefined(self):
        family = get_arrival_process("sessions")
        with pytest.raises(ValueError, match="whole traces"):
            family.sample_arrivals(None, 1.0, 10)


class TestMerge:
    def test_session_ids_stay_unique_across_tenants(self):
        a = generate_trace("cocktail", 1.0, 20, seed=1, arrival=ARRIVAL)
        b = generate_trace("imdb", 1.0, 20, seed=1, arrival=ARRIVAL)
        merged = merge_traces(a, b)
        assert len(merged) == 40
        # two tenants both numbering sessions from 0 must not alias in
        # a prefix cache
        n_sessions = len({r.session_id for r in a}) \
            + len({r.session_id for r in b})
        assert len({r.session_id for r in merged}) == n_sessions

    def test_merge_keeps_single_shot_sessions_unset(self):
        a = generate_trace("imdb", 1.0, 10, seed=1)
        merged = merge_traces(a, a)
        assert all(r.session_id == -1 for r in merged)
