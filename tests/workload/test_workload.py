"""Tests for repro.workload — dataset length models and traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    DATASETS,
    LengthModel,
    LONG_SEQUENCE_DATASETS,
    SHORT_SEQUENCE_DATASETS,
    generate_trace,
    get_dataset,
)


class TestLengthModel:
    def test_samples_within_bounds(self):
        model = LengthModel(315, 106, 821)
        draws = model.sample(5000, np.random.default_rng(0))
        assert draws.min() >= 106
        assert draws.max() <= 821

    def test_mean_matches_target(self):
        for name, spec in DATASETS.items():
            draws = spec.input_len.sample(20000, np.random.default_rng(1))
            assert draws.mean() == pytest.approx(spec.input_len.mean, rel=0.05), name

    def test_integer_output(self):
        draws = LengthModel(100, 10, 500).sample(100, np.random.default_rng(2))
        assert draws.dtype == np.int64

    def test_deterministic_given_seed(self):
        model = LengthModel(243, 29, 464)
        a = model.sample(50, np.random.default_rng(7))
        b = model.sample(50, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            LengthModel(1000, 10, 500)  # mean above max
        with pytest.raises(ValueError):
            LengthModel(5, 0, 10)       # min below 1


class TestDatasetRegistry:
    def test_table4_values(self):
        cocktail = get_dataset("cocktail")
        assert cocktail.input_len.mean == 16200
        assert cocktail.input_len.minimum == 9400
        assert cocktail.input_len.maximum == 28800
        assert cocktail.output_len.mean == 159

    def test_long_short_split(self):
        assert set(LONG_SEQUENCE_DATASETS) == {"arxiv", "cocktail"}
        assert set(SHORT_SEQUENCE_DATASETS) == {"imdb", "humaneval"}
        for name in LONG_SEQUENCE_DATASETS:
            assert get_dataset(name).long_sequence

    def test_case_insensitive(self):
        assert get_dataset("IMDb") is DATASETS["imdb"]

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            get_dataset("c4")

    def test_mean_total_len_ordering(self):
        """Cocktail > arXiv > IMDb ≈ HumanEval in total length."""
        totals = {n: get_dataset(n).mean_total_len() for n in DATASETS}
        assert totals["cocktail"] > totals["arxiv"] > totals["humaneval"]
        assert totals["arxiv"] > totals["imdb"]

    def test_accuracy_metrics(self):
        assert get_dataset("arxiv").accuracy_metric == "rouge1"
        assert get_dataset("humaneval").accuracy_metric == "edit_sim"


class TestTraces:
    def test_trace_length_and_ordering(self):
        trace = generate_trace("imdb", rps=2.0, n_requests=100, seed=0)
        assert len(trace) == 100
        arrivals = [t.arrival_s for t in trace]
        assert arrivals == sorted(arrivals)
        assert all(t.request_id == i for i, t in enumerate(trace))

    def test_poisson_rate(self):
        trace = generate_trace("imdb", rps=5.0, n_requests=4000, seed=1)
        duration = trace[-1].arrival_s
        assert 4000 / duration == pytest.approx(5.0, rel=0.1)

    def test_deterministic(self):
        a = generate_trace("arxiv", 1.0, 20, seed=3)
        b = generate_trace("arxiv", 1.0, 20, seed=3)
        assert a == b

    def test_lengths_from_dataset(self):
        trace = generate_trace("cocktail", 1.0, 500, seed=4)
        lens = np.array([t.input_len for t in trace])
        assert lens.min() >= 9400
        assert lens.max() <= 28800

    def test_max_context_cap(self):
        """Falcon's 2K window truncates arXiv prompts (§7.1 F-arXiv)."""
        trace = generate_trace("arxiv", 1.0, 200, seed=5, max_context=2048)
        assert all(t.total_len <= 2048 for t in trace)
        assert all(t.input_len >= 1 for t in trace)

    def test_total_len(self):
        trace = generate_trace("imdb", 1.0, 5, seed=6)
        for t in trace:
            assert t.total_len == t.input_len + t.output_len

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_trace("imdb", 0.0, 10)
        with pytest.raises(ValueError):
            generate_trace("imdb", 1.0, 0)

    @given(st.integers(1, 50), st.floats(0.1, 20.0))
    @settings(max_examples=30, deadline=None)
    def test_trace_invariants(self, n, rps):
        trace = generate_trace("humaneval", rps, n, seed=n)
        assert len(trace) == n
        assert all(t.arrival_s > 0 for t in trace)
        assert all(t.output_len >= 1 for t in trace)
