"""Tests for repro.workload.arrivals — pluggable arrival processes."""

import numpy as np
import pytest

from repro.workload import (
    ArrivalParam,
    ArrivalProcess,
    ArrivalSpec,
    arrival_processes,
    canonical_arrival,
    generate_trace,
    merge_traces,
    parse_arrival,
    register_arrival,
    split_arrival_list,
)

BUILTINS = ("constant", "poisson", "gamma", "mmpp", "diurnal")

#: One representative non-default spec per family.
SPECS = (
    "constant",
    "poisson",
    "gamma?cv=3.0",
    "mmpp?burst=4.0,duty=0.2,dwell=10.0",
    "diurnal?amp=0.8,period=120.0",
)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTINS) <= set(arrival_processes())

    def test_unknown_family_suggests(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            parse_arrival("possion")

    def test_open_registry(self):
        @register_arrival("everyother_test", replace=True)
        class EveryOther(ArrivalProcess):
            description = "test-only"
            params = {"gap": ArrivalParam(2.0)}

            def sample_arrivals(self, rng, rps, n, *, gap):
                return np.arange(1, n + 1) * gap

        trace = generate_trace("imdb", 1.0, 5, seed=0,
                               arrival="everyother_test?gap=3.0")
        assert [t.arrival_s for t in trace] == [3.0, 6.0, 9.0, 12.0, 15.0]


class TestGrammar:
    def test_parse_canonical_round_trip(self):
        for text in SPECS:
            spec = parse_arrival(text)
            assert parse_arrival(spec.canonical()) == spec

    def test_canonical_sorts_params(self):
        a = canonical_arrival("mmpp?duty=0.2,burst=4")
        b = canonical_arrival("mmpp?burst=4,duty=0.2")
        assert a == b == "mmpp?burst=4.0,duty=0.2"

    def test_explicit_default_is_kept(self):
        assert canonical_arrival("gamma?cv=2.0") == "gamma?cv=2.0"
        assert canonical_arrival("gamma") == "gamma"

    def test_bad_parameter_name(self):
        with pytest.raises(ValueError, match="no parameter"):
            parse_arrival("gamma?shape=2")

    def test_bad_parameter_value(self):
        with pytest.raises(ValueError, match="expects a number"):
            parse_arrival("gamma?cv=high")

    def test_malformed_pair(self):
        with pytest.raises(ValueError, match="bad arrival parameter"):
            parse_arrival("gamma?cv")

    def test_duplicate_parameter(self):
        with pytest.raises(ValueError, match="given twice"):
            parse_arrival("gamma?cv=1,cv=2")

    def test_range_validation(self):
        for bad in ("gamma?cv=0", "mmpp?burst=0.5", "mmpp?duty=1.5",
                    "mmpp?dwell=-1", "diurnal?amp=1.5",
                    "diurnal?period=0"):
            with pytest.raises(ValueError):
                parse_arrival(bad)

    def test_split_arrival_list(self):
        assert split_arrival_list(
            "poisson,mmpp?burst=4,duty=0.2,gamma?cv=3"
        ) == ["poisson", "mmpp?burst=4,duty=0.2", "gamma?cv=3"]
        assert split_arrival_list("constant") == ["constant"]


class TestSampling:
    @pytest.mark.parametrize("spec", SPECS)
    def test_arrivals_sorted_and_positive(self, spec):
        times = parse_arrival(spec).sample(
            np.random.default_rng(0), rps=2.0, n=500)
        assert times.shape == (500,)
        assert times[0] > 0
        assert np.all(np.diff(times) >= 0)

    @pytest.mark.parametrize("spec", SPECS)
    def test_deterministic_given_seed(self, spec):
        a = parse_arrival(spec).sample(np.random.default_rng(7), 2.0, 100)
        b = parse_arrival(spec).sample(np.random.default_rng(7), 2.0, 100)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("spec", SPECS)
    def test_long_run_rate(self, spec):
        """Every process targets the same long-run rps."""
        times = parse_arrival(spec).sample(
            np.random.default_rng(1), rps=5.0, n=8000)
        assert 8000 / times[-1] == pytest.approx(5.0, rel=0.15)

    def test_constant_gaps_uniform(self):
        times = parse_arrival("constant").sample(
            np.random.default_rng(0), rps=4.0, n=10)
        np.testing.assert_allclose(np.diff(times), 0.25)

    def test_gamma_cv_controls_burstiness(self):
        rng = np.random.default_rng(3)
        smooth = np.diff(parse_arrival("gamma?cv=0.3").sample(rng, 2.0, 5000))
        rng = np.random.default_rng(3)
        bursty = np.diff(parse_arrival("gamma?cv=3.0").sample(rng, 2.0, 5000))
        assert bursty.std() > 3 * smooth.std()

    def test_mmpp_burstier_than_poisson(self):
        rng = np.random.default_rng(4)
        pois = np.diff(parse_arrival("poisson").sample(rng, 2.0, 5000))
        rng = np.random.default_rng(4)
        mmpp = np.diff(parse_arrival(
            "mmpp?burst=8.0,duty=0.1,dwell=20.0").sample(rng, 2.0, 5000))
        cv = lambda g: g.std() / g.mean()   # noqa: E731
        assert cv(mmpp) > cv(pois)

    def test_diurnal_rate_oscillates(self):
        """Arrivals cluster in the sine peaks: the peak-phase half of
        each cycle must hold well over half the arrivals."""
        times = parse_arrival("diurnal?amp=0.9,period=100.0").sample(
            np.random.default_rng(5), rps=4.0, n=6000)
        phase = (times % 100.0) / 100.0
        in_peak = ((phase > 0.0) & (phase < 0.5)).mean()
        assert in_peak > 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            parse_arrival("poisson").sample(np.random.default_rng(0), 0.0, 5)
        with pytest.raises(ValueError):
            parse_arrival("poisson").sample(np.random.default_rng(0), 1.0, 0)


class TestTraceIntegration:
    def test_default_is_bitwise_legacy_poisson(self):
        """The refactor must not move a single bit of existing traces:
        the default path draws the same exponential block first."""
        trace = generate_trace("cocktail", 1.5, 50, seed=9)
        explicit = generate_trace("cocktail", 1.5, 50, seed=9,
                                  arrival="poisson")
        rng = np.random.default_rng(9)
        expected = np.cumsum(rng.exponential(scale=1.0 / 1.5, size=50))
        assert trace == explicit
        np.testing.assert_array_equal(
            [t.arrival_s for t in trace], expected)

    def test_trace_deterministic_per_process(self):
        """Each (seed, arrival) pair is fully deterministic; different
        processes consume the stream differently, so their traces are
        distinct but individually reproducible."""
        a = generate_trace("imdb", 2.0, 30, seed=4, arrival="poisson")
        b = generate_trace("imdb", 2.0, 30, seed=4, arrival="constant")
        assert len(a) == len(b) == 30
        assert a != b
        assert b == generate_trace("imdb", 2.0, 30, seed=4,
                                   arrival="constant")

    def test_max_context_lower_bound(self):
        with pytest.raises(ValueError, match="max_context"):
            generate_trace("imdb", 1.0, 10, max_context=1)

    def test_arrival_spec_object_accepted(self):
        spec = ArrivalSpec.of("gamma", cv=3.0)
        trace = generate_trace("imdb", 2.0, 10, seed=0, arrival=spec)
        assert len(trace) == 10


class TestMergeTraces:
    def test_merge_orders_and_renumbers(self):
        a = generate_trace("cocktail", 0.5, 20, seed=1)
        b = generate_trace("imdb", 3.0, 60, seed=2, arrival="mmpp")
        merged = merge_traces(a, b)
        assert len(merged) == 80
        arrivals = [r.arrival_s for r in merged]
        assert arrivals == sorted(arrivals)
        assert [r.request_id for r in merged] == list(range(80))

    def test_merge_preserves_lengths(self):
        a = generate_trace("cocktail", 0.5, 10, seed=1)
        b = generate_trace("imdb", 3.0, 10, seed=2)
        merged = merge_traces(a, b)
        assert sorted((r.input_len, r.output_len) for r in merged) == \
            sorted((r.input_len, r.output_len) for r in [*a, *b])

    def test_merged_trace_simulates(self):
        from repro.methods import get_method
        from repro.model import get_model
        from repro.sim import default_cluster, simulate

        merged = merge_traces(
            generate_trace("cocktail", 0.3, 8, seed=1),
            generate_trace("imdb", 2.0, 20, seed=2, arrival="gamma?cv=3.0"),
        )
        config = default_cluster(get_model("L"), get_method("hack"), "A10G")
        res = simulate(config, merged)
        assert len(res.requests) == 28

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_traces()
