"""Tests for ROUGE-1 and edit similarity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accuracy import RougeScore, edit_similarity, levenshtein, rouge1


class TestRouge1:
    def test_identical(self):
        score = rouge1("the cat sat".split(), "the cat sat".split())
        assert score == RougeScore(1.0, 1.0, 1.0)

    def test_disjoint(self):
        score = rouge1(["a", "b"], ["c", "d"])
        assert score.f1 == 0.0

    def test_known_value(self):
        # candidate: the cat / reference: the cat sat -> P=1, R=2/3.
        score = rouge1(["the", "cat"], ["the", "cat", "sat"])
        assert score.precision == pytest.approx(1.0)
        assert score.recall == pytest.approx(2 / 3)
        assert score.f1 == pytest.approx(0.8)

    def test_clipped_counts(self):
        """Repeats in the candidate don't inflate overlap."""
        score = rouge1(["the", "the", "the"], ["the", "cat"])
        assert score.precision == pytest.approx(1 / 3)
        assert score.recall == pytest.approx(1 / 2)

    def test_empty_cases(self):
        assert rouge1([], []).f1 == 1.0
        assert rouge1(["a"], []).f1 == 0.0
        assert rouge1([], ["a"]).f1 == 0.0

    def test_works_on_integers(self):
        assert rouge1([1, 2, 3], [1, 2, 3]).f1 == 1.0

    def test_order_invariant(self):
        """ROUGE-1 is a bag-of-unigrams metric."""
        assert rouge1([1, 2, 3], [3, 2, 1]).f1 == 1.0

    @given(st.lists(st.integers(0, 5), max_size=20),
           st.lists(st.integers(0, 5), max_size=20))
    @settings(max_examples=60)
    def test_bounds_and_symmetric_f1(self, a, b):
        score = rouge1(a, b)
        assert 0.0 <= score.f1 <= 1.0
        assert score.f1 == pytest.approx(rouge1(b, a).f1)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("abc", "abc") == 0

    def test_known_distances(self):
        assert levenshtein("kitten", "sitting") == 3
        assert levenshtein("flaw", "lawn") == 2

    def test_empty(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("", "") == 0

    def test_single_ops(self):
        assert levenshtein("abc", "abd") == 1   # substitution
        assert levenshtein("abc", "abcd") == 1  # insertion
        assert levenshtein("abc", "ab") == 1    # deletion

    @given(st.lists(st.integers(0, 3), max_size=12),
           st.lists(st.integers(0, 3), max_size=12))
    @settings(max_examples=60)
    def test_metric_properties(self, a, b):
        d = levenshtein(a, b)
        assert d == levenshtein(b, a)
        assert d >= abs(len(a) - len(b))
        assert d <= max(len(a), len(b))
        assert (d == 0) == (a == b)


class TestEditSimilarity:
    def test_identical(self):
        assert edit_similarity("code", "code") == 1.0

    def test_disjoint(self):
        assert edit_similarity("aaa", "bbb") == 0.0

    def test_partial(self):
        assert edit_similarity("kitten", "sitting") == pytest.approx(1 - 3 / 7)

    def test_empty(self):
        assert edit_similarity("", "") == 1.0
        assert edit_similarity("a", "") == 0.0

    @given(st.text(max_size=15), st.text(max_size=15))
    @settings(max_examples=60)
    def test_bounds(self, a, b):
        assert 0.0 <= edit_similarity(a, b) <= 1.0
