"""Tests for the accuracy harness, KV distributions, and anchoring."""

import numpy as np
import pytest

from repro.accuracy import (
    K_DISTRIBUTION,
    PAPER_BASELINE_ACCURACY,
    TABLE6_CELLS,
    V_DISTRIBUTION,
    accuracy_from_error,
    accuracy_table,
    attention_error,
    calibrate_kappa,
    dataset_sensitivity,
    decode_path_error,
    generation_agreement,
    measure_errors,
    rqe_extra_error,
    synthetic_attention_inputs,
    synthetic_plane,
)
from repro.core.rounding import make_rng


class TestKvDistributions:
    def test_plane_shape(self):
        plane = synthetic_plane(64, 32, K_DISTRIBUTION, make_rng(0))
        assert plane.shape == (64, 32)
        assert np.isfinite(plane).all()

    def test_deterministic(self):
        a = synthetic_plane(32, 16, V_DISTRIBUTION, make_rng(5))
        b = synthetic_plane(32, 16, V_DISTRIBUTION, make_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_k_has_channel_structure(self):
        """Per-channel scale spread exceeds V's (the KVQuant premise)."""
        rng = make_rng(1)
        k = synthetic_plane(512, 64, K_DISTRIBUTION, rng)
        v = synthetic_plane(512, 64, V_DISTRIBUTION, make_rng(1))
        k_spread = np.std(k.std(axis=0)) / k.std()
        v_spread = np.std(v.std(axis=0)) / v.std()
        assert k_spread > v_spread

    def test_token_smoothness(self):
        """Adjacent tokens correlate strongly (CacheGen's premise)."""
        k = synthetic_plane(512, 64, K_DISTRIBUTION, make_rng(2))
        flat = k - k.mean(axis=0)
        corr = np.mean([
            np.corrcoef(flat[:-1, c], flat[1:, c])[0, 1] for c in range(64)
        ])
        assert corr > 0.7

    def test_attention_inputs(self):
        q, k, v = synthetic_attention_inputs(128, 32, make_rng(3), l_q=8)
        assert q.shape == (8, 32)
        assert k.shape == (128, 32)
        assert v.shape == k.shape

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_plane(0, 8, K_DISTRIBUTION, make_rng(0))


class TestAttentionError:
    def test_baseline_zero(self):
        assert attention_error("baseline") == 0.0

    def test_all_methods_positive_and_bounded(self):
        errs = measure_errors(n_tokens=96, head_dim=32, n_trials=2)
        for method, err in errs.items():
            if method == "baseline":
                continue
            assert 0 < err < 1.5, method

    def test_pi_ordering(self):
        """Finer partitions are more accurate (Table 6/8 shape)."""
        errs = measure_errors(("hack_pi32", "hack_pi64", "hack_pi128"),
                              n_tokens=192, head_dim=128, n_trials=3)
        assert errs["hack_pi32"] < errs["hack_pi64"] < errs["hack_pi128"]

    def test_fp_precision_ordering(self):
        errs = measure_errors(("fp4", "fp6", "fp8"), n_tokens=96,
                              head_dim=32, n_trials=2)
        assert errs["fp8"] < errs["fp6"] < errs["fp4"]

    def test_deterministic(self):
        a = attention_error("hack_pi32", n_tokens=64, head_dim=32, n_trials=2)
        b = attention_error("hack_pi32", n_tokens=64, head_dim=32, n_trials=2)
        assert a == b

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            attention_error("int1")

    def test_spec_matches_legacy_name(self):
        """A parameterized spec measures exactly like its legacy alias."""
        from repro.methods import MethodSpec

        legacy = attention_error("hack_pi32", n_tokens=64, head_dim=32,
                                 n_trials=2)
        spec = attention_error(MethodSpec.of("hack", partition_size=32),
                               n_tokens=64, head_dim=32, n_trials=2)
        grammar = attention_error("hack?pi=32", n_tokens=64, head_dim=32,
                                  n_trials=2)
        assert legacy == spec == grammar


class TestDecodePath:
    def test_rqe_reduces_error(self):
        """RQE's whole point: the no-RQE path accumulates extra error."""
        assert rqe_extra_error(n_prefill=32, n_decode=32, n_trials=3) > 0

    def test_decode_path_error_bounded(self):
        err = decode_path_error(True, n_prefill=24, n_decode=16)
        assert 0 < err < 1.5

    def test_extra_error_positive_across_lengths(self):
        """The no-RQE penalty is present at short and long outputs.

        (Raw per-step error does not grow monotonically with length in
        a teacher-forced harness — the partial V block resets every Π
        tokens; the paper's output-length dependence comes from
        autoregressive compounding, modelled by the anchoring layer's
        dataset sensitivity.)
        """
        for n_decode in (16, 64):
            assert rqe_extra_error(n_prefill=32, n_decode=n_decode,
                                   n_trials=4) > 0


class TestAnchoring:
    def test_table6_has_19_cells(self):
        assert len(TABLE6_CELLS) == 19
        assert ("cocktail", "F") not in PAPER_BASELINE_ACCURACY

    def test_baseline_values_verbatim(self):
        # repro: lint-ignore[REPRO604] verbatim paper constant, no arithmetic
        assert PAPER_BASELINE_ACCURACY[("imdb", "L")] == 95.73
        # repro: lint-ignore[REPRO604] verbatim paper constant, no arithmetic
        assert PAPER_BASELINE_ACCURACY[("cocktail", "M")] == 75.18

    def test_kappa_maps_anchor_to_target(self):
        kappa = calibrate_kappa(0.40)
        acc = accuracy_from_error("cocktail", "L", 0.40, kappa)
        loss = 1 - acc / PAPER_BASELINE_ACCURACY[("cocktail", "L")]
        assert loss == pytest.approx(0.0116, abs=1e-4)

    def test_dataset_sensitivity_ordering(self):
        """Longer outputs → more accumulated loss; arXiv > IMDb."""
        assert dataset_sensitivity("arxiv") > dataset_sensitivity("imdb")
        assert dataset_sensitivity("cocktail") == pytest.approx(1.0)

    def test_accuracy_table_structure(self):
        errs = {"baseline": 0.0, "hack_pi64": 0.4, "cachegen": 0.3}
        table = accuracy_table(errs)
        assert set(table) == set(errs)
        assert len(table["hack_pi64"]) == 19
        for cell, acc in table["baseline"].items():
            assert acc == PAPER_BASELINE_ACCURACY[cell]

    def test_losses_in_paper_band(self):
        """All 2-bit methods land within ~0.3–3% loss after anchoring."""
        errs = measure_errors(
            ("hack_pi32", "hack_pi64", "hack_pi128", "cachegen", "kvquant"),
            n_tokens=192, head_dim=128, n_trials=3,
        )
        table = accuracy_table(errs)
        for method, cells in table.items():
            for cell, acc in cells.items():
                loss = 1 - acc / PAPER_BASELINE_ACCURACY[cell]
                assert 0.002 < loss < 0.035, (method, cell, loss)

    def test_requires_anchor(self):
        with pytest.raises(ValueError):
            accuracy_table({"cachegen": 0.3})

    def test_unknown_cell(self):
        with pytest.raises(KeyError):
            accuracy_from_error("cocktail", "F", 0.1, 1.0)


class TestGenerationAgreement:
    def test_baseline_perfect(self):
        g = generation_agreement("baseline", n_prompts=1, max_new_tokens=6)
        assert g.exact_match == 1.0
        assert g.rouge1_f1 == 1.0

    def test_quantized_methods_bounded(self):
        for method in ("hack", "dequant2bit"):
            g = generation_agreement(method, n_prompts=1, max_new_tokens=6)
            assert 0.0 <= g.exact_match <= 1.0
            assert 0.0 <= g.rouge1_f1 <= 1.0
            assert 0.0 <= g.edit_sim <= 1.0

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            generation_agreement("fp2")
