"""Tests for the precomputed-coefficient decode model and its closed
forms (``BatchCostModel``)."""

import math

import numpy as np
import pytest

from repro.cluster import replica_resources
from repro.methods import get_method
from repro.methods.registry import METHODS
from repro.model import get_model
from repro.perfmodel import (
    BatchCostModel,
    iteration_latency,
    request_decode_costs,
)

L = get_model("L")
A100 = replica_resources(L, "A100")
V100 = replica_resources(L, "V100")


def _model(method_name: str, replica=A100) -> BatchCostModel:
    return BatchCostModel(L, replica, get_method(method_name))


class TestWrapperEquivalence:
    """The legacy functions are thin wrappers — results are identical."""

    @pytest.mark.parametrize("method", sorted(METHODS))
    def test_request_costs_bit_identical(self, method):
        model = _model(method)
        for ctx in (1, 63, 64, 65, 1000, 16000):
            a = model.request_costs(ctx)
            b = request_decode_costs(L, A100, get_method(method), ctx)
            assert a == b

    @pytest.mark.parametrize("method", ("baseline", "cachegen", "hack",
                                        "hack_nose", "hack_norqe"))
    def test_iteration_bit_identical(self, method):
        ctxs = [100, 5000, 16000, 321]
        a = _model(method).iteration(ctxs)
        b = iteration_latency(L, A100, get_method(method), ctxs)
        assert a.latency_s == b.latency_s
        assert a.per_request == b.per_request

    def test_no_int8_on_v100(self):
        """V100 lacks INT8 tensor cores; HACK falls back to FP16 rates."""
        hack = _model("hack", V100).request_costs(16000)
        base = _model("baseline", V100).request_costs(16000)
        assert hack.compute_s >= base.compute_s


class TestSpanClosedForm:
    """span(ctx0, k) must equal the k iterated per-token evaluations."""

    def _iterated(self, model, ctx0, k):
        shared = kv = compute = dequant = approx = requant = 0.0
        for i in range(k):
            timing = model.iteration([c + i for c in ctx0])
            shared += timing.shared_s
            kv += sum(c.kv_read_s for c in timing.per_request)
            compute += sum(c.compute_s for c in timing.per_request)
            dequant += sum(c.dequant_s for c in timing.per_request)
            approx += sum(c.approx_s for c in timing.per_request)
            requant += sum(c.requant_s for c in timing.per_request)
        return {
            "latency": shared + kv + compute + dequant + approx + requant,
            "decode": shared + kv + compute + requant,
            "dequant": dequant,
            "approx": approx,
            "kv": kv,
        }

    @pytest.mark.parametrize("method", sorted(METHODS))
    def test_totals_match_iterated(self, method):
        model = _model(method)
        ctx0 = [120, 4000, 63, 64, 16000]
        k = 257
        totals = model.span(ctx0, k)
        ref = self._iterated(model, ctx0, k)
        assert totals.k == k and totals.batch == len(ctx0)
        assert totals.latency_s == pytest.approx(ref["latency"], rel=1e-12)
        assert totals.decode_s == pytest.approx(ref["decode"], rel=1e-12)
        assert totals.kv_read_s == pytest.approx(ref["kv"], rel=1e-12)
        assert totals.dequant_s == pytest.approx(ref["dequant"],
                                                 rel=1e-12, abs=1e-18)
        assert totals.approx_s == pytest.approx(ref["approx"],
                                                rel=1e-12, abs=1e-18)

    def test_staircase_spans_partition_boundaries(self):
        """Spans crossing many ceil(ctx/Π) steps still sum exactly."""
        model = _model("hack")
        pi = model.method.partition_size
        for ctx_start in (1, pi - 1, pi, pi + 1):
            totals = model.span([ctx_start], 3 * pi + 5)
            ref = self._iterated(model, [ctx_start], 3 * pi + 5)
            assert totals.approx_s == pytest.approx(ref["approx"],
                                                    rel=1e-12)

    def test_span_of_one_is_an_iteration(self):
        model = _model("cachegen")
        ctxs = [100, 2000, 16000]
        assert model.span(ctxs, 1).latency_s == \
            pytest.approx(model.iteration(ctxs).latency_s, rel=1e-12)

    def test_latency_is_bucket_sum(self):
        totals = _model("kvquant").span([500, 600], 40)
        assert totals.latency_s == pytest.approx(
            totals.decode_s + totals.dequant_s + totals.approx_s, rel=1e-15)

    def test_validation(self):
        model = _model("baseline")
        with pytest.raises(ValueError):
            model.span([], 5)
        with pytest.raises(ValueError):
            model.span([100], 0)
        with pytest.raises(ValueError):
            model.span([0], 5)
        with pytest.raises(ValueError):
            model.request_costs(0)
        with pytest.raises(ValueError):
            model.iteration([])


class TestFindBoundary:
    @pytest.mark.parametrize("method", ("baseline", "hack", "cachegen"))
    def test_matches_linear_scan(self, method):
        model = _model(method)
        ctx0 = np.array([200, 1500, 70], dtype=np.int64)
        k = 50
        lat = [model.span(ctx0, j).latency_s for j in range(1, k + 1)]
        for elapsed in (0.0, lat[0] * 0.5, lat[0], lat[3] * 1.0001,
                        lat[-1] * 0.999, lat[-1], lat[-1] * 1.01):
            expected = next((j for j in range(1, k + 1)
                             if lat[j - 1] >= elapsed), k)
            assert model.find_boundary(ctx0, k, elapsed) == expected

    def test_zero_elapsed_is_first_boundary(self):
        model = _model("baseline")
        assert model.find_boundary(np.array([100]), 10, 0.0) == 1


class TestStaircaseCumsum:
    def test_exact_against_bruteforce(self):
        model = _model("hack")
        pi = model.method.partition_size
        n = np.arange(0, 4 * pi + 3, dtype=np.int64)
        expected = np.array(
            [sum(math.ceil(c / pi) for c in range(1, int(m) + 1))
             for m in n], dtype=np.int64)
        np.testing.assert_array_equal(model._stair_cumsum(n), expected)
