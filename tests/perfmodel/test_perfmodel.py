"""Tests for repro.perfmodel — the analytic timing model."""

import pytest

from repro.cluster import replica_resources
from repro.methods import get_method, hack_method
from repro.model import get_model
from repro.perfmodel import (
    DEFAULT_CALIBRATION,
    calibrated,
    iteration_latency,
    kv_wire_bytes,
    param_read_time,
    prefill_time,
    request_decode_costs,
    transfer_time,
)

L = get_model("L")
A10G = replica_resources(L, "A10G")
V100 = replica_resources(L, "V100")
A100 = replica_resources(L, "A100")
BASELINE = get_method("baseline")
HACK = get_method("hack")
CACHEGEN = get_method("cachegen")


class TestCalibration:
    def test_partition_efficiency_monotone(self):
        c = DEFAULT_CALIBRATION
        assert c.partition_efficiency(32) < c.partition_efficiency(64) \
            < c.partition_efficiency(128) < 1.0

    def test_partition_efficiency_validation(self):
        with pytest.raises(ValueError):
            DEFAULT_CALIBRATION.partition_efficiency(0)

    def test_calibrated_overrides(self):
        c = calibrated(linear_mfu=0.6)
        # repro: lint-ignore[REPRO604] same literal in and out, bit-exact
        assert c.linear_mfu == 0.6
        assert c.attention_mfu == DEFAULT_CALIBRATION.attention_mfu

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            calibrated(linear_mfu=0.0)
        with pytest.raises(ValueError):
            calibrated(net_efficiency=1.5)


class TestPrefill:
    def test_scales_superlinearly_with_prompt(self):
        short = prefill_time(L, A10G, 1000, BASELINE).compute_s
        long = prefill_time(L, A10G, 16000, BASELINE).compute_s
        assert long > 16 * short  # quadratic attention term

    def test_hack_faster_where_int8(self):
        base = prefill_time(L, A10G, 16200, BASELINE)
        hack = prefill_time(L, A10G, 16200, HACK)
        assert hack.compute_s < base.compute_s
        assert hack.linear_s == base.linear_s  # only attention accelerates

    def test_hack_no_gain_on_v100(self):
        """§7.2: V100 cannot accelerate HACK's prefill computation."""
        base = prefill_time(L, V100, 16200, BASELINE)
        hack = prefill_time(L, V100, 16200, HACK)
        assert hack.compute_s == pytest.approx(base.compute_s)

    def test_gain_grows_with_sequence_length(self):
        """Longer prompts → larger attention share → bigger HACK gain."""
        gains = []
        for prompt in (315, 6300, 16200):
            base = prefill_time(L, A10G, prompt, BASELINE).compute_s
            hack = prefill_time(L, A10G, prompt, HACK).compute_s
            gains.append(1 - hack / base)
        assert gains[0] < gains[1] < gains[2]

    def test_quantize_cost_small_fraction(self):
        """Paper: quantization is 1.25–2.91% of JCT; here a small share
        of prefill alone."""
        hack = prefill_time(L, A10G, 16200, HACK)
        assert 0 < hack.quantize_s < 0.05 * hack.compute_s

    def test_baseline_pays_no_quantize(self):
        assert prefill_time(L, A10G, 16200, BASELINE).quantize_s == 0.0

    def test_smaller_partition_slower(self):
        """Table 8: Π=32 prefill slower than Π=128."""
        small = prefill_time(L, A10G, 16200, hack_method(32)).compute_s
        large = prefill_time(L, A10G, 16200, hack_method(128)).compute_s
        assert small > large

    def test_validation(self):
        with pytest.raises(ValueError):
            prefill_time(L, A10G, 0, BASELINE)


class TestDecode:
    def test_param_read_is_floor(self):
        shared = param_read_time(L, A100)
        costs = request_decode_costs(L, A100, BASELINE, 16000)
        assert shared > costs.kv_read_s  # weights dominate one request

    def test_kv_read_scales_with_method_bytes(self):
        base = request_decode_costs(L, A100, BASELINE, 16000)
        hack = request_decode_costs(L, A100, HACK, 16000)
        ratio = hack.kv_read_s / base.kv_read_s
        assert 0.13 <= ratio <= 0.18  # ~2-bit + metadata vs FP16

    def test_dequant_only_for_comparators(self):
        assert request_decode_costs(L, A100, CACHEGEN, 16000).dequant_s > 0
        assert request_decode_costs(L, A100, BASELINE, 16000).dequant_s == 0
        assert request_decode_costs(L, A100, HACK, 16000).dequant_s == 0

    def test_kvquant_dequant_costlier_than_cachegen(self):
        cg = request_decode_costs(L, A100, CACHEGEN, 16000).dequant_s
        kq = request_decode_costs(L, A100, get_method("kvquant"), 16000).dequant_s
        assert kq > cg

    def test_dequant_dwarfs_approximation(self):
        """The paper's core claim (§5.3): Eq. 4 corrections cost far
        less than per-iteration dequantization at long context."""
        cg = request_decode_costs(L, A100, CACHEGEN, 16000)
        hack = request_decode_costs(L, A100, HACK, 16000)
        assert hack.approx_s < 0.1 * cg.dequant_s

    def test_no_se_much_more_expensive(self):
        """Fig. 13: recomputing sums every iteration is costly."""
        with_se = request_decode_costs(L, A100, HACK, 16000)
        without = request_decode_costs(L, A100, get_method("hack_nose"), 16000)
        assert without.approx_s > 10 * with_se.approx_s

    def test_no_rqe_pays_requant(self):
        norqe = request_decode_costs(L, A100, get_method("hack_norqe"), 16000)
        assert norqe.requant_s > 0
        assert request_decode_costs(L, A100, HACK, 16000).requant_s == 0

    def test_iteration_latency_grows_with_batch(self):
        one = iteration_latency(L, A100, BASELINE, [16000]).latency_s
        eight = iteration_latency(L, A100, BASELINE, [16000] * 8).latency_s
        assert eight > one
        assert eight < 8 * one  # parameters amortize across the batch

    def test_hack_iteration_faster_than_baseline(self):
        base = iteration_latency(L, A100, BASELINE, [16000] * 8).latency_s
        hack = iteration_latency(L, A100, HACK, [16000] * 8).latency_s
        assert hack < base

    def test_validation(self):
        with pytest.raises(ValueError):
            request_decode_costs(L, A100, BASELINE, 0)
        with pytest.raises(ValueError):
            iteration_latency(L, A100, BASELINE, [])


class TestTransfer:
    def test_wire_bytes_fp16(self):
        assert kv_wire_bytes(L, BASELINE, 1000) == 1000 * L.kv_bytes_per_token()

    def test_hack_compression_ratio(self):
        """~84% smaller wire size at Π=64 ('~15% of original size')."""
        ratio = kv_wire_bytes(L, HACK, 1000) / kv_wire_bytes(L, BASELINE, 1000)
        assert 0.14 <= ratio <= 0.17

    def test_transfer_ordering_across_gpus(self):
        """V100 (10 Gbps) slowest, A100 (200 Gbps share) fastest."""
        times = {
            gpu: transfer_time(L, BASELINE, 16200,
                               replica_resources(L, gpu), A100)
            for gpu in ("A10G", "V100", "T4", "A100")
        }
        assert times["V100"] > times["A10G"] > times["T4"] > times["A100"]

    def test_quantization_cuts_transfer_6x(self):
        base = transfer_time(L, BASELINE, 16200, A10G, A100)
        hack = transfer_time(L, HACK, 16200, A10G, A100)
        assert base / hack > 5.5

    def test_pipelining_reduces_exposed_time(self):
        full = transfer_time(L, BASELINE, 16200, A10G, A100)
        piped = transfer_time(L, BASELINE, 16200, A10G, A100,
                              pipelined=True, prefill_compute_s=full * 2)
        assert piped < full

    def test_via_cpu_slower(self):
        direct = transfer_time(L, BASELINE, 16200, A10G, A100)
        swapped = transfer_time(L, BASELINE, 16200, A10G, A100, via_cpu=True)
        assert swapped > direct

    def test_validation(self):
        with pytest.raises(ValueError):
            kv_wire_bytes(L, BASELINE, 0)
