"""Tests for the CacheGen-like / KVQuant-like / HACK compressor adapters."""

import numpy as np
import pytest

from repro.quant import (
    CacheGenCompressor,
    HackCompressor,
    KVQuantCompressor,
    compression_ratio,
    kmeans_1d,
)


def _kv_plane(n_tokens=128, n_channels=64, seed=0, token_smooth=0.1):
    """KV-like plane: channel structure + slowly drifting token dimension."""
    rng = np.random.default_rng(seed)
    channel_base = rng.normal(size=(1, n_channels)) * 1.5
    drift = np.cumsum(rng.normal(scale=token_smooth, size=(n_tokens, n_channels)),
                      axis=0)
    noise = rng.normal(scale=0.25, size=(n_tokens, n_channels))
    return channel_base + drift + noise


class TestCacheGen:
    def test_roundtrip_shape(self):
        plane = _kv_plane()
        rec, comp = CacheGenCompressor().roundtrip(plane)
        assert rec.shape == plane.shape
        assert comp.method == "cachegen"

    def test_reconstruction_error_small(self):
        plane = _kv_plane(seed=1)
        rec, _ = CacheGenCompressor().roundtrip(plane)
        rel = np.abs(rec - plane).mean() / np.abs(plane).mean()
        assert rel < 0.10

    def test_compression_substantial(self):
        plane = _kv_plane(seed=2)
        ratio = compression_ratio(CacheGenCompressor(), plane)
        assert ratio > 0.70

    def test_smoother_tokens_compress_better(self):
        """Token locality is the property CacheGen exploits."""
        smooth = _kv_plane(seed=3, token_smooth=0.02)
        rough = _kv_plane(seed=3, token_smooth=1.0)
        comp = CacheGenCompressor()
        assert compression_ratio(comp, smooth) > compression_ratio(comp, rough)

    def test_anchor_tokens_exactness(self):
        """Anchors are quantized at 8 bits — much closer than deltas."""
        plane = _kv_plane(seed=4)
        comp = CacheGenCompressor(chunk_size=16)
        rec, _ = comp.roundtrip(plane)
        anchor_err = np.abs(rec[::16] - plane[::16]).mean()
        other_err = np.abs(rec[1::16] - plane[1::16]).mean()
        assert anchor_err < other_err

    def test_single_chunk(self):
        plane = _kv_plane(n_tokens=5, seed=5)
        rec, _ = CacheGenCompressor(chunk_size=16).roundtrip(plane)
        assert rec.shape == plane.shape

    def test_chunk_boundary_token_counts(self):
        for n in (15, 16, 17, 32):
            plane = _kv_plane(n_tokens=n, seed=n)
            rec, _ = CacheGenCompressor(chunk_size=16).roundtrip(plane)
            assert rec.shape == (n, 64)

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheGenCompressor(chunk_size=1)
        with pytest.raises(ValueError):
            CacheGenCompressor(delta_bits=1)
        with pytest.raises(ValueError):
            CacheGenCompressor().compress(np.zeros(5))


class TestKmeans1d:
    def test_recovers_separated_clusters(self):
        rng = np.random.default_rng(0)
        values = np.concatenate([
            rng.normal(0, 0.01, 100), rng.normal(10, 0.01, 100)
        ])
        centroids = kmeans_1d(values, 2)
        np.testing.assert_allclose(centroids, [0, 10], atol=0.1)

    def test_sorted_output(self):
        rng = np.random.default_rng(1)
        centroids = kmeans_1d(rng.normal(size=500), 4)
        assert np.all(np.diff(centroids) >= 0)

    def test_k_one(self):
        values = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(kmeans_1d(values, 1), [2.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            kmeans_1d(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            kmeans_1d(np.array([]), 2)

    def test_deterministic(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=300)
        np.testing.assert_array_equal(kmeans_1d(values, 4), kmeans_1d(values, 4))


class TestKVQuant:
    def test_roundtrip_shape(self):
        plane = _kv_plane(seed=6)
        rec, comp = KVQuantCompressor().roundtrip(plane)
        assert rec.shape == plane.shape
        assert comp.method == "kvquant"

    def test_compression_near_86_percent(self):
        """2-bit + metadata ≈ the ~86% the paper quotes."""
        plane = _kv_plane(n_tokens=512, n_channels=128, seed=7)
        ratio = compression_ratio(KVQuantCompressor(bits=2), plane)
        assert 0.80 < ratio < 0.90

    def test_outliers_preserved_exactly(self):
        plane = _kv_plane(seed=8)
        plane[10, 20] = 100.0  # gross outlier
        rec, _ = KVQuantCompressor(outlier_fraction=0.01).roundtrip(plane)
        assert rec[10, 20] == pytest.approx(100.0)

    def test_outlier_isolation_improves_accuracy(self):
        plane = _kv_plane(seed=9)
        rng = np.random.default_rng(9)
        idx = rng.integers(0, plane.shape[0], 20), rng.integers(0, plane.shape[1], 20)
        plane[idx] += rng.choice([-30, 30], 20)
        with_out = KVQuantCompressor(outlier_fraction=0.02)
        without = KVQuantCompressor(outlier_fraction=0.0)
        err_with = np.abs(with_out.roundtrip(plane)[0] - plane).mean()
        err_without = np.abs(without.roundtrip(plane)[0] - plane).mean()
        assert err_with < err_without

    def test_nuq_beats_uniform_on_gaussian(self):
        rng = np.random.default_rng(10)
        plane = rng.normal(size=(256, 64))
        nuq = KVQuantCompressor(bits=2, nuq=True, outlier_fraction=0.0)
        uni = KVQuantCompressor(bits=2, nuq=False, outlier_fraction=0.0)
        err_nuq = np.abs(nuq.roundtrip(plane)[0] - plane).mean()
        err_uni = np.abs(uni.roundtrip(plane)[0] - plane).mean()
        assert err_nuq < err_uni

    def test_channel_vs_token_axis(self):
        """Channel grouping wins on channel-structured planes (K-like)."""
        plane = _kv_plane(seed=11)
        by_channel = KVQuantCompressor(axis="channel", outlier_fraction=0.0)
        by_token = KVQuantCompressor(axis="token", outlier_fraction=0.0)
        err_ch = np.abs(by_channel.roundtrip(plane)[0] - plane).mean()
        err_tok = np.abs(by_token.roundtrip(plane)[0] - plane).mean()
        assert err_ch < err_tok

    def test_more_bits_lower_error(self):
        plane = _kv_plane(seed=12)
        errs = []
        for bits in (2, 4):
            comp = KVQuantCompressor(bits=bits, outlier_fraction=0.0)
            errs.append(np.abs(comp.roundtrip(plane)[0] - plane).mean())
        assert errs[1] < errs[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            KVQuantCompressor(bits=0)
        with pytest.raises(ValueError):
            KVQuantCompressor(axis="row")
        with pytest.raises(ValueError):
            KVQuantCompressor(outlier_fraction=0.7)


class TestHackAdapter:
    def test_roundtrip_k_plane(self):
        plane = _kv_plane(seed=13)
        rec, comp = HackCompressor(plane_kind="k").roundtrip(plane)
        assert rec.shape == plane.shape
        assert comp.method == "hack"

    def test_compression_near_86_percent(self):
        plane = _kv_plane(n_tokens=512, n_channels=128, seed=14)
        for kind in ("k", "v"):
            ratio = compression_ratio(HackCompressor(plane_kind=kind), plane)
            assert 0.80 < ratio < 0.90

    def test_sums_add_bytes(self):
        plane = _kv_plane(seed=15)
        with_sums = HackCompressor(include_sums=True).compress(plane)
        without = HackCompressor(include_sums=False).compress(plane)
        assert with_sums.nbytes > without.nbytes

    def test_smaller_partitions_lower_error(self):
        plane = _kv_plane(seed=16)
        errs = {}
        for pi in (16, 128):
            comp = HackCompressor(partition_size=pi, plane_kind="v",
                                  rounding="nearest")
            errs[pi] = np.abs(comp.roundtrip(plane)[0] - plane).mean()
        assert errs[16] < errs[128]

    def test_validation(self):
        with pytest.raises(ValueError):
            HackCompressor(plane_kind="q")


class TestCompressedKVAccounting:
    def test_ratio_definition(self):
        plane = _kv_plane(seed=17)
        comp = HackCompressor().compress(plane)
        expected = 1 - comp.nbytes / (plane.size * 2)
        assert comp.ratio() == pytest.approx(expected)

    def test_fp16_nbytes(self):
        plane = _kv_plane(n_tokens=10, n_channels=8)
        comp = HackCompressor().compress(plane)
        assert comp.fp16_nbytes() == 10 * 8 * 2
