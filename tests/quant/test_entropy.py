"""Tests for repro.quant.entropy — the arithmetic coder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.entropy import (
    ArithmeticDecoder,
    ArithmeticEncoder,
    decode,
    encode,
)


class TestRoundTrip:
    def test_simple_sequence(self):
        syms = np.array([0, 1, 2, 3, 2, 1, 0])
        data = encode(syms, 4)
        np.testing.assert_array_equal(decode(data, syms.size, 4), syms)

    def test_single_symbol(self):
        data = encode(np.array([5]), 8)
        np.testing.assert_array_equal(decode(data, 1, 8), [5])

    def test_empty_sequence(self):
        data = encode(np.array([], dtype=int), 4)
        assert decode(data, 0, 4).size == 0

    def test_repeated_symbol(self):
        syms = np.zeros(500, dtype=int)
        data = encode(syms, 16)
        np.testing.assert_array_equal(decode(data, 500, 16), syms)

    @pytest.mark.parametrize("n_symbols", [2, 4, 16, 256])
    def test_random_uniform(self, n_symbols):
        rng = np.random.default_rng(n_symbols)
        syms = rng.integers(0, n_symbols, size=400)
        data = encode(syms, n_symbols)
        np.testing.assert_array_equal(decode(data, syms.size, n_symbols), syms)

    def test_alphabet_boundaries(self):
        syms = np.array([0, 15, 0, 15, 15, 0])
        data = encode(syms, 16)
        np.testing.assert_array_equal(decode(data, syms.size, 16), syms)

    @given(st.lists(st.integers(0, 7), min_size=0, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        syms = np.array(values, dtype=int)
        data = encode(syms, 8)
        np.testing.assert_array_equal(decode(data, syms.size, 8), syms)


class TestCompression:
    def test_skewed_distribution_compresses(self):
        """Low-entropy input must code in well under log2(alphabet) bits."""
        rng = np.random.default_rng(0)
        syms = np.clip(np.round(rng.normal(8, 0.5, size=4000)), 0, 15)
        data = encode(syms.astype(int), 16)
        bits_per_symbol = len(data) * 8 / syms.size
        assert bits_per_symbol < 2.5  # vs 4 bits nominal

    def test_constant_input_near_zero_bits(self):
        syms = np.full(4000, 3, dtype=int)
        data = encode(syms, 16)
        assert len(data) * 8 / syms.size < 0.1

    def test_uniform_input_near_nominal_bits(self):
        rng = np.random.default_rng(1)
        syms = rng.integers(0, 16, size=4000)
        data = encode(syms, 16)
        bits_per_symbol = len(data) * 8 / syms.size
        assert 3.9 < bits_per_symbol < 4.3

    def test_adaptivity_learns_distribution(self):
        """The adaptive model re-learns after a distribution shift and
        still codes far below the nominal 4 bits per symbol."""
        syms = np.concatenate([np.full(2000, 1), np.full(2000, 9)])
        data = encode(syms, 16)
        assert len(data) * 8 / syms.size < 1.2


class TestStreamingApi:
    def test_incremental_matches_batch(self):
        rng = np.random.default_rng(2)
        syms = rng.integers(0, 8, size=100)
        enc = ArithmeticEncoder(8)
        for s in syms:
            enc.encode_symbol(int(s))
        data = enc.finish()
        assert data == encode(syms, 8)

    def test_decoder_streaming(self):
        syms = [3, 1, 4, 1, 5]
        data = encode(np.array(syms), 8)
        dec = ArithmeticDecoder(data, 8)
        assert [dec.decode_symbol() for _ in syms] == syms

    def test_invalid_alphabet(self):
        with pytest.raises(ValueError):
            ArithmeticEncoder(0)
