"""Tests for repro.quant.fp_formats — FP4/FP6/FP8 minifloats (paper §3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.fp_formats import (
    FP4_E2M1,
    FP6_E3M2,
    FP8_E4M3,
    FpCastCompressor,
    cast,
    decode,
    representable_values,
)

ALL_FORMATS = [FP4_E2M1, FP6_E3M2, FP8_E4M3]


class TestRepresentableValues:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_symmetric(self, fmt):
        grid = representable_values(fmt)
        np.testing.assert_allclose(grid, -grid[::-1])

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_sorted_unique(self, fmt):
        grid = representable_values(fmt)
        assert np.all(np.diff(grid) > 0)

    def test_fp4_grid_values(self):
        """E2M1: 0, 0.5, 1, 1.5, 2, 3, 4, 6 and negatives."""
        grid = representable_values(FP4_E2M1)
        positives = grid[grid > 0]
        np.testing.assert_allclose(positives, [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0])

    def test_fp8_e4m3_max(self):
        """E4M3 (all-finite convention) tops out at 480 with bias 7."""
        assert representable_values(FP8_E4M3).max() == 480.0

    def test_contains_zero(self):
        for fmt in ALL_FORMATS:
            assert 0.0 in representable_values(fmt)

    @pytest.mark.parametrize("fmt,count", [(FP4_E2M1, 15), (FP6_E3M2, 63),
                                           (FP8_E4M3, 255)])
    def test_grid_size(self, fmt, count):
        """2**bits codes minus the duplicated ±0."""
        assert representable_values(fmt).size == count


class TestEncodeDecode:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_representable_values_roundtrip_exactly(self, fmt):
        grid = representable_values(fmt)
        np.testing.assert_array_equal(cast(grid, fmt), grid)

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_cast_idempotent(self, fmt):
        rng = np.random.default_rng(0)
        x = rng.normal(size=100) * 3
        once = cast(x, fmt)
        np.testing.assert_array_equal(cast(once, fmt), once)

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_rounds_to_nearest(self, fmt):
        grid = representable_values(fmt)
        rng = np.random.default_rng(1)
        x = rng.uniform(grid[0], grid[-1], size=200)
        out = cast(x, fmt)
        for xi, oi in zip(x, out):
            best = grid[np.argmin(np.abs(grid - xi))]
            assert abs(oi - xi) <= abs(best - xi) + 1e-15

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_saturates(self, fmt):
        big = representable_values(fmt).max()
        np.testing.assert_array_equal(
            cast(np.array([big * 10, -big * 10]), fmt), [big, -big]
        )

    def test_decode_rejects_bad_codes(self):
        with pytest.raises(ValueError):
            decode(np.array([200]), FP4_E2M1)

    def test_precision_ordering(self):
        """More bits, less cast error: FP8 < FP6 < FP4."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=2000)
        errs = [np.abs(cast(x, fmt) - x).mean() for fmt in ALL_FORMATS]
        assert errs[2] < errs[1] < errs[0]

    @given(st.floats(-400, 400, allow_nan=False))
    @settings(max_examples=100)
    def test_error_bounded_by_grid_gap(self, value):
        grid = representable_values(FP8_E4M3)
        out = cast(np.array([value]), FP8_E4M3)[0]
        gaps = np.diff(grid).max()
        assert abs(out - value) <= gaps


class TestFpCastCompressor:
    def _plane(self, seed=0):
        rng = np.random.default_rng(seed)
        return rng.normal(size=(64, 64)) * np.linspace(0.5, 4.0, 64)

    def test_compression_ratios_match_paper(self):
        """FP4≈73%, FP6≈61%, FP8≈48% with MX block scales — the §3 premise
        that FP formats cannot reach the 86% of 2-bit schemes."""
        plane = self._plane()
        expected = {FP4_E2M1: 0.734, FP6_E3M2: 0.609, FP8_E4M3: 0.484}
        for fmt, target in expected.items():
            ratio = FpCastCompressor(fmt).compress(plane).ratio()
            assert ratio == pytest.approx(target, abs=0.01)

    def test_roundtrip_error_ordering(self):
        plane = self._plane(seed=1)
        errs = []
        for fmt in ALL_FORMATS:
            rec, _ = FpCastCompressor(fmt).roundtrip(plane)
            errs.append(np.abs(rec - plane).mean())
        assert errs[2] < errs[1] < errs[0]

    def test_block_scales_help_wide_dynamic_range(self):
        """MX scaling exists to handle per-block magnitude variation."""
        plane = self._plane(seed=2)
        plane[:, 32:] *= 100
        scaled = FpCastCompressor(FP4_E2M1, shared_block_scale=True)
        unscaled = FpCastCompressor(FP4_E2M1, shared_block_scale=False)
        err_s = np.abs(scaled.roundtrip(plane)[0] - plane).mean()
        err_u = np.abs(unscaled.roundtrip(plane)[0] - plane).mean()
        assert err_s < err_u

    def test_ragged_channel_blocks(self):
        rng = np.random.default_rng(3)
        plane = rng.normal(size=(16, 50))  # 50 not divisible by 32
        rec, comp = FpCastCompressor(FP4_E2M1, block_size=32).roundtrip(plane)
        assert rec.shape == plane.shape

    def test_zero_block(self):
        plane = np.zeros((4, 32))
        plane[0, 0] = 1.0
        rec, _ = FpCastCompressor(FP4_E2M1).roundtrip(plane)
        assert np.isfinite(rec).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            FpCastCompressor(FP4_E2M1, block_size=0)
