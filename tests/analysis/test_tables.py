"""Tests for repro.analysis.tables."""

import pytest

from repro.analysis import SeriesFigure, Table, format_value


class TestFormatValue:
    def test_small_float(self):
        assert format_value(0.123456) == "0.123"

    def test_medium_float(self):
        assert format_value(42.318) == "42.3"

    def test_large_float(self):
        assert format_value(12345.6) == "12,346"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"

    def test_int(self):
        assert format_value(7) == "7"


class TestTable:
    def _table(self):
        t = Table("Demo", ["name", "value"])
        t.add_row("alpha", 1.5)
        t.add_row("beta", 20.25)
        return t

    def test_render_contains_everything(self):
        out = self._table().render()
        for needle in ("Demo", "name", "value", "alpha", "beta", "1.500", "20.2"):
            assert needle in out

    def test_render_aligned(self):
        lines = self._table().render().splitlines()
        header = next(line for line in lines if "name" in line)
        row = next(line for line in lines if "alpha" in line)
        assert header.index("value") == row.index("1.500")

    def test_markdown(self):
        md = self._table().to_markdown()
        assert md.startswith("**Demo**")
        assert "| name | value |" in md
        assert "| alpha | 1.500 |" in md

    def test_row_width_validation(self):
        t = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_empty_table_renders(self):
        out = Table("Empty", ["x"]).render()
        assert "Empty" in out


class TestSeriesFigure:
    def test_as_table(self):
        fig = SeriesFigure("F", "x", [1, 2, 3])
        fig.add_series("a", [10.0, 20.0, 30.0])
        fig.add_series("b", [1.0, 2.0, 3.0])
        table = fig.as_table()
        assert table.headers == ["x", "a", "b"]
        assert len(table.rows) == 3
        assert table.rows[1] == [2, 20.0, 2.0]

    def test_length_validation(self):
        fig = SeriesFigure("F", "x", [1, 2])
        with pytest.raises(ValueError):
            fig.add_series("a", [1.0])

    def test_render_and_markdown(self):
        fig = SeriesFigure("F", "x", ["p", "q"])
        fig.add_series("s", [0.5, 1.5])
        assert "F" in fig.render()
        assert "| x | s |" in fig.to_markdown()
