"""Integration tests: every experiment runs and shows the paper's shape.

These use small scales — the benchmarks run the full-size versions.
"""

import pytest

from repro.experiments import (
    fig1_motivation,
    fig2_4_quant_overhead,
    fig9_12_jct,
    fig13_ablation,
    fig14_scalability,
    sec3_fp_formats,
    table5_memory,
    table6_accuracy,
    table8_sensitivity,
)
from repro.experiments.common import model_dataset, run_methods
from repro.model import get_model

SCALE = 0.12


class TestCommon:
    def test_falcon_gets_capped_arxiv(self):
        """The F-arXiv substitution: Falcon cannot process Cocktail."""
        name, cap = model_dataset(get_model("F"), "cocktail")
        assert name == "arxiv"
        assert cap == 2048

    def test_llama_cocktail_unmodified(self):
        name, cap = model_dataset(get_model("L"), "cocktail")
        assert name == "cocktail"
        assert cap is None

    def test_llama_arxiv_within_context(self):
        name, cap = model_dataset(get_model("L"), "arxiv")
        assert name == "arxiv"
        assert cap is None

    def test_same_trace_for_all_methods(self):
        res = run_methods(("baseline", "hack"), scale=SCALE)
        base_ids = [r.request_id for r in res["baseline"].requests]
        hack_ids = [r.request_id for r in res["hack"].requests]
        assert base_ids == hack_ids


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1_motivation.run(scale=SCALE)

    def test_a100_comm_smallest(self, result):
        comm = {gpu: vals[1] for gpu, vals in result.by_gpu.series.items()}
        assert comm["A100"] == min(comm.values())
        assert comm["A100"] < 10.0

    def test_v100_comm_largest(self, result):
        comm = {gpu: vals[1] for gpu, vals in result.by_gpu.series.items()}
        assert comm["V100"] == max(comm.values())

    def test_long_datasets_higher_comm(self, result):
        comm = {d: vals[1] for d, vals in result.by_dataset.series.items()}
        assert comm["cocktail"] > comm["imdb"]
        assert comm["arxiv"] > comm["humaneval"]

    def test_ratios_sum_to_100(self, result):
        for vals in result.by_gpu.series.values():
            assert sum(vals) == pytest.approx(100.0, abs=0.5)

    def test_pipelining_panel_shape(self, result):
        assert set(result.pipelining.series) == set(fig1_motivation.GPUS)
        # A100 stays low across the RPS sweep.
        assert max(result.pipelining.series["A100"]) < 10.0

    def test_renders(self, result):
        assert "Fig 1(a)" in result.render()


class TestFig2to4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2_4_quant_overhead.run(scale=SCALE)

    def test_dequant_bucket_visible(self, result):
        for method, fig in result.by_dataset.items():
            dequant = {d: vals[2] for d, vals in fig.series.items()}
            assert dequant["cocktail"] > 2.0, method  # percent

    def test_long_sequence_dequant_dominates_short(self, result):
        """Paper: long-sequence datasets pay 12–25x the dequantization
        *time* of short ones (ratios compress the gap; times don't)."""
        fig = result.by_dataset["cachegen"]
        dequant_ratio = {d: vals[2] for d, vals in fig.series.items()}
        assert dequant_ratio["arxiv"] > 2.5 * dequant_ratio["imdb"]
        res_long = run_methods(("cachegen",), dataset="arxiv", scale=SCALE)
        res_short = run_methods(("cachegen",), dataset="imdb", scale=SCALE)
        t_long = res_long["cachegen"].mean_decomposition()["dequant_or_approx"]
        t_short = res_short["cachegen"].mean_decomposition()["dequant_or_approx"]
        assert t_long > 10 * t_short

    def test_comm_below_baseline(self, result):
        base = fig1_motivation.run(scale=SCALE)
        base_comm = {g: v[1] for g, v in base.by_gpu.series.items()}
        cg_comm = {g: v[1] for g, v in result.by_gpu["cachegen"].series.items()}
        for gpu in ("A10G", "V100", "T4", "L4"):
            assert cg_comm[gpu] < base_comm[gpu]


class TestSec3:
    def test_fp_comm_ordering(self):
        result = sec3_fp_formats.run(scale=SCALE)
        for gpu in ("A10G", "V100"):
            fp4, fp6, fp8, hack = result.comm.series[gpu]
            assert fp4 < fp6 < fp8
            assert hack < fp4  # 2-bit beats every FP format on the wire


class TestFig9to12:
    @pytest.fixture(scope="class")
    def by_dataset(self):
        return fig9_12_jct.run_fig9_fig10(scale=SCALE)

    def test_hack_wins_every_dataset(self, by_dataset):
        for dataset in fig1_motivation.DATASETS:
            assert by_dataset.reduction(dataset, "hack", "baseline") > 0
            assert by_dataset.reduction(dataset, "hack", "cachegen") > 0

    def test_long_datasets_bigger_gains(self, by_dataset):
        assert by_dataset.reduction("cocktail", "hack", "baseline") > \
            by_dataset.reduction("imdb", "hack", "baseline")

    def test_decomposition_tables_present(self, by_dataset):
        assert set(by_dataset.decomposition) == set(fig1_motivation.DATASETS)

    def test_fig11_hack_wins_every_model(self):
        result = fig9_12_jct.run_fig11(scale=SCALE)
        for label in result.results:
            assert result.reduction(label, "hack", "baseline") > 0

    def test_fig12_v100_extremes(self):
        result = fig9_12_jct.run_fig12(scale=0.3)
        vs_base = {g: result.reduction(g, "hack", "baseline")
                   for g in fig1_motivation.GPUS}
        vs_cg = {g: result.reduction(g, "hack", "cachegen")
                 for g in fig1_motivation.GPUS}
        # Fig 12's two headline claims.
        assert vs_base["V100"] == max(vs_base.values())
        assert vs_cg["V100"] == min(vs_cg.values())


class TestTable5:
    def test_memory_shape(self):
        result = table5_memory.run(scale=SCALE)
        for dataset in fig1_motivation.DATASETS:
            peaks = result.peaks[dataset]
            assert peaks["baseline"] >= peaks["hack"] - 1e-9
        # Long datasets pressure memory hardest for the baseline.
        assert result.peaks["cocktail"]["baseline"] > \
            result.peaks["imdb"]["baseline"]

    def test_se_and_rqe_overheads_small(self):
        result = table5_memory.run(scale=SCALE)
        assert all(0 < f < 0.03 for f in result.se_fraction.values())
        assert 0 < result.rqe_fraction < 0.01


class TestTable6:
    @pytest.fixture(scope="class")
    def result(self):
        return table6_accuracy.run(n_trials=2)

    def test_all_cells_populated(self, result):
        for method in table6_accuracy.METHOD_ORDER:
            assert len(result.accuracies[method]) == 19

    def test_baseline_verbatim(self, result):
        from repro.accuracy import PAPER_BASELINE_ACCURACY

        assert result.accuracies["baseline"] == PAPER_BASELINE_ACCURACY

    def test_pi_ordering(self, result):
        assert result.mean_loss("hack_pi32") < result.mean_loss("hack_pi64") \
            < result.mean_loss("hack_pi128")

    def test_losses_in_band(self, result):
        for method in table6_accuracy.METHOD_ORDER:
            if method == "baseline":
                continue
            assert 0.002 < result.mean_loss(method) < 0.035, method


class TestAblations:
    def test_fig13_se_hurts_long_sequences_most(self):
        result = fig13_ablation.run_fig13(scale=SCALE)
        assert result.overhead("cocktail", "hack_nose") > \
            result.overhead("imdb", "hack_nose")
        for dataset in fig1_motivation.DATASETS:
            assert result.overhead(dataset, "hack_nose") > 0

    def test_fig13_rqe_hurts_short_sequences_most(self):
        result = fig13_ablation.run_fig13(scale=SCALE)
        assert result.overhead("imdb", "hack_norqe") > \
            result.overhead("cocktail", "hack_norqe")

    def test_table7_drops_negative_and_small(self):
        result = fig13_ablation.run_table7(n_trials=2)
        for dataset, drop in result.drops.items():
            assert -1.0 < drop < 0.0, dataset

    def test_table7_imdb_smallest_drop(self):
        result = fig13_ablation.run_table7(n_trials=2)
        assert abs(result.drops["imdb"]) == min(
            abs(d) for d in result.drops.values()
        )


class TestTable8:
    def test_tradeoff_shape(self):
        result = table8_sensitivity.run(scale=SCALE, n_trials=2)
        for dataset in fig1_motivation.DATASETS:
            acc, jct = result.accuracy_increase[dataset], result.jct_increase[dataset]
            assert acc[32] > acc[64] > 0     # finer Π buys accuracy...
            assert jct[32] > jct[64] >= 0    # ...and costs JCT


class TestFig14:
    def test_baseline_grows_fastest(self):
        result = fig14_scalability.run(scale=0.35, p_values=(1, 4, 8))
        assert result.growth("baseline") > 0.3
        assert result.growth("hack") < 0.5 * result.growth("baseline")
        assert result.growth("cachegen") < result.growth("baseline")
