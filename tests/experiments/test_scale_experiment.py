"""The scale experiment: autoscaler × admission grid on diurnal load."""

import math

import pytest

from repro.experiments import scale
from repro.sim.elastic import canonical_autoscaler

SCALE = 0.1

REACTIVE = canonical_autoscaler(scale.AUTOSCALERS[1])
SHED = scale.ADMISSIONS[1]


@pytest.fixture(scope="module")
def study():
    return scale.run(scale=SCALE)


class TestGrid:
    def test_full_grid_present(self, study):
        assert len(study.results) == (len(scale.ARRIVALS)
                                      * len(scale.AUTOSCALERS)
                                      * len(scale.ADMISSIONS))

    def test_static_reference_accessor(self, study):
        ref = study.static_reference()
        assert ref is study.results[(scale.ARRIVALS[0], "static", None,
                                     "hack")]
        assert ref.elastic_stats["scaling_events"] == 0

    def test_reactive_beats_static_on_efficiency(self, study):
        """The acceptance shape: on a diurnal day the reactive
        autoscaler serves more goodput per GPU-hour than the
        peak-sized static fleet, in both arrival regimes."""
        for arrival in scale.ARRIVALS:
            static = study.results[(arrival, "static", None, "hack")]
            reactive = study.results[(arrival, REACTIVE, None, "hack")]
            assert reactive.goodput_per_gpu_hour() > \
                static.goodput_per_gpu_hour()
            assert reactive.elastic_stats["gpu_hours"] < \
                static.elastic_stats["gpu_hours"]

    def test_shed_bounds_tail_ttft(self, study):
        """Queue-cap admission never worsens p99 TTFT — it sheds the
        arrivals that would have queued behind the cap."""
        for arrival in scale.ARRIVALS:
            open_door = study.results[(arrival, REACTIVE, None, "hack")]
            capped = study.results[(arrival, REACTIVE, SHED, "hack")]
            assert capped.ttft_percentile(99) <= \
                open_door.ttft_percentile(99) * (1 + 1e-9)

    def test_every_cell_reports_cost_pair(self, study):
        for res in study.results.values():
            summ = res.summary()
            assert summ["gpu_hours"] > 0
            assert math.isfinite(summ["goodput_per_gpu_hour"])

    def test_renders(self, study):
        text = study.render()
        assert "goodput_per_gpuh" in text and "static" in text
