"""The kvstore experiment: store × selection grid on session traffic."""

import pytest

from repro.experiments import kvstore

SCALE = 0.1


@pytest.fixture(scope="module")
def study():
    return kvstore.run(scale=SCALE)


class TestGrid:
    def test_full_grid_present(self, study):
        assert len(study.results) == \
            len(kvstore.KVSTORES) * len(kvstore.SELECTIONS)
        assert study.cold() is study.results[(None, None)]

    def test_warm_store_beats_cold(self, study):
        """The acceptance shape: a warm pooled store on a session
        workload hits and cuts mean TTFT versus the cold baseline."""
        cold = study.cold().summary()
        warm_res = study.results[("tiered?dram_gb=8.0", None)]
        warm = warm_res.summary()
        assert study.cold().kvstore_stats is None
        assert warm_res.kvstore_stats["hit_rate"] > 0
        assert warm["mean_ttft_s"] < cold["mean_ttft_s"]

    def test_undersized_ttl_store_churns(self, study):
        from repro.kvstore import canonical_kvstore
        tiny, = [canonical_kvstore(k) for k in kvstore.KVSTORES
                 if k and "ttl" in k]
        stats = study.results[(tiny, None)].kvstore_stats
        churn = sum(t["evictions"] for t in stats["tiers"].values())
        assert churn + stats["expired"] + stats["dropped"] > 0

    def test_selection_mix_reported(self, study):
        res = study.results[("tiered?dram_gb=8.0", "slo_tier")]
        assert res.selection_mix
        assert study.cold().selection_mix is None

    def test_renders(self, study):
        text = study.render()
        assert "hit_rate" in text and "(none)" in text
        assert "slo_tier" in text
