"""Tests for repro.core.kv_cache — SE, RQE, and the three cache families."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kv_cache import DequantizingKVCache, Fp16KVCache, HackKVCache
from repro.core.quantize import quantize, dequantize
from repro.core.rounding import make_rng

D = 32
PI = 8


def _kv(n, seed=0, d=D):
    rng = make_rng(seed)
    k = rng.normal(size=(n, d)) + np.sin(np.arange(d))
    v = rng.normal(size=(n, d)) + 1.0
    return k, v


class TestFp16KVCache:
    def test_materialize_roundtrip(self):
        cache = Fp16KVCache(D)
        k, v = _kv(10)
        cache.append_bulk(k, v)
        k2, v2 = cache.materialize()
        np.testing.assert_array_equal(k2, k)
        np.testing.assert_array_equal(v2, v)

    def test_append_one_by_one_matches_bulk(self):
        k, v = _kv(7)
        a, b = Fp16KVCache(D), Fp16KVCache(D)
        a.append_bulk(k, v)
        for i in range(7):
            b.append(k[i], v[i])
        np.testing.assert_array_equal(a.materialize()[0], b.materialize()[0])
        assert len(a) == len(b) == 7

    def test_attention_matches_manual(self):
        cache = Fp16KVCache(D)
        k, v = _kv(20, seed=1)
        cache.append_bulk(k, v)
        q = make_rng(2).normal(size=D)
        scores = (q @ k.T) / np.sqrt(D)
        probs = np.exp(scores - scores.max())
        probs /= probs.sum()
        np.testing.assert_allclose(cache.attention(q), probs @ v, atol=1e-10)

    def test_kv_nbytes(self):
        cache = Fp16KVCache(D)
        k, v = _kv(10)
        cache.append_bulk(k, v)
        assert cache.kv_nbytes() == 2 * 10 * D * 2

    def test_shape_validation(self):
        cache = Fp16KVCache(D)
        with pytest.raises(ValueError):
            cache.append(np.zeros(D + 1), np.zeros(D))
        with pytest.raises(ValueError):
            cache.append_bulk(np.zeros((3, D)), np.zeros((4, D)))

    def test_ledger_counts_iterations(self):
        cache = Fp16KVCache(D)
        k, v = _kv(5)
        cache.append_bulk(k, v)
        q = make_rng(0).normal(size=D)
        cache.attention(q)
        cache.attention(q)
        assert cache.ledger.decode_iterations == 2
        assert cache.ledger.fp_matmul_flops > 0


class TestDequantizingKVCache:
    def test_attention_close_to_fp16(self):
        k, v = _kv(64, seed=3)
        ref = Fp16KVCache(D)
        ref.append_bulk(k, v)
        cache = DequantizingKVCache(D, partition_size=PI, rng=make_rng(0))
        cache.append_bulk(k, v)
        q = make_rng(4).normal(size=D)
        rel = np.linalg.norm(cache.attention(q) - ref.attention(q))
        rel /= np.linalg.norm(ref.attention(q))
        assert rel < 0.5

    def test_dequant_cost_charged_every_iteration(self):
        """The defining cost of this family: 4·d·L flops per decode step."""
        k, v = _kv(50, seed=5)
        cache = DequantizingKVCache(D, partition_size=PI, rng=make_rng(0))
        cache.append_bulk(k, v)
        q = make_rng(6).normal(size=D)
        cache.attention(q)
        first = cache.ledger.dequant_flops
        assert first == 4 * D * 50
        cache.attention(q)
        assert cache.ledger.dequant_flops == 2 * first

    def test_memory_smaller_than_fp16(self):
        k, v = _kv(256, seed=7)
        cache = DequantizingKVCache(D, partition_size=64, rng=make_rng(0))
        cache.append_bulk(k, v)
        fp16 = 2 * 256 * D * 2
        assert cache.kv_nbytes() < 0.25 * fp16

    def test_empty_attention_rejected(self):
        cache = DequantizingKVCache(D)
        with pytest.raises(ValueError):
            cache.attention(np.zeros(D))

    def test_8bit_variant_nearly_exact(self):
        k, v = _kv(64, seed=8)
        ref = Fp16KVCache(D)
        ref.append_bulk(k, v)
        cache = DequantizingKVCache(D, partition_size=PI, kv_bits=8,
                                    rng=make_rng(0))
        cache.append_bulk(k, v)
        q = make_rng(9).normal(size=D)
        np.testing.assert_allclose(cache.attention(q), ref.attention(q),
                                   rtol=0.02, atol=0.02)


class TestHackKVCacheFunctional:
    def test_attention_close_to_fp16(self):
        k, v = _kv(64, seed=10)
        ref = Fp16KVCache(D)
        ref.append_bulk(k, v)
        cache = HackKVCache(D, partition_size=PI, rng=make_rng(0))
        cache.append_bulk(k, v)
        q = make_rng(11).normal(size=D)
        out_ref = ref.attention(q)
        rel = np.linalg.norm(cache.attention(q) - out_ref) / np.linalg.norm(out_ref)
        assert rel < 0.5

    def test_materialize_k_matches_direct_quantization(self):
        """Cache K reconstruction equals quantizing K directly."""
        k, v = _kv(24, seed=12)
        cache = HackKVCache(D, partition_size=PI, rng=make_rng(7))
        cache.append_bulk(k, v)
        k_hat, _ = cache.materialize()
        qt = quantize(k, 2, axis=1, partition_size=PI, rng=make_rng(7))
        np.testing.assert_allclose(k_hat, dequantize(qt), atol=1e-9)

    def test_rqe_tail_is_exact(self):
        """With RQE, tokens in the partial V block round-trip exactly."""
        k, v = _kv(PI + 3, seed=13)
        cache = HackKVCache(D, partition_size=PI, rng=make_rng(0))
        cache.append_bulk(k, v)
        _, v_hat = cache.materialize()
        np.testing.assert_array_equal(v_hat[PI:], v[PI:])

    def test_no_rqe_tail_is_requantized(self):
        """Without RQE, even the tail carries quantization error."""
        k, v = _kv(PI + 3, seed=13)
        cache = HackKVCache(D, partition_size=PI, enable_rqe=False,
                            rng=make_rng(0))
        cache.append_bulk(k, v)
        _, v_hat = cache.materialize()
        assert np.abs(v_hat[PI:] - v[PI:]).max() > 1e-6

    def test_no_rqe_requant_events_counted(self):
        k, v = _kv(20, seed=14)
        cache = HackKVCache(D, partition_size=PI, enable_rqe=False,
                            rng=make_rng(0))
        cache.append_bulk(k, v)
        # Every append beyond the first token of a fresh block requantizes.
        assert cache.ledger.requant_events == 20 - (20 + PI - 1) // PI

    def test_rqe_error_not_worse_than_requantization(self):
        """RQE's V reconstruction error <= the no-RQE accumulated error."""
        k, v = _kv(3 * PI + 5, seed=15)
        with_rqe = HackKVCache(D, partition_size=PI, rng=make_rng(1))
        without = HackKVCache(D, partition_size=PI, enable_rqe=False,
                              rng=make_rng(1))
        for cache in (with_rqe, without):
            for i in range(v.shape[0]):
                cache.append(k[i], v[i])
        _, v_rqe = with_rqe.materialize()
        _, v_req = without.materialize()
        err_rqe = np.abs(v_rqe - v).mean()
        err_req = np.abs(v_req - v).mean()
        assert err_rqe <= err_req + 1e-9

    def test_incremental_equals_bulk_for_k(self):
        k, v = _kv(2 * PI, seed=16)
        bulk = HackKVCache(D, partition_size=PI, rng=make_rng(2))
        bulk.append_bulk(k, v)
        inc = HackKVCache(D, partition_size=PI, rng=make_rng(2))
        for i in range(k.shape[0]):
            inc.append(k[i], v[i])
        # Different rng consumption order, so compare structure not codes.
        assert len(bulk) == len(inc)
        kb, _ = bulk.materialize()
        ki, _ = inc.materialize()
        assert kb.shape == ki.shape

    def test_se_sums_match_recompute_after_appends(self):
        """SE invariant: stored sums equal freshly computed sums."""
        k, v = _kv(3 * PI + 2, seed=17)
        cache = HackKVCache(D, partition_size=PI, rng=make_rng(3))
        cache.append_bulk(k, v)
        kt = cache._k_transposed()
        stored = kt.partition_sums(cached=True)
        fresh = kt.partition_sums(cached=False)
        np.testing.assert_array_equal(stored, fresh)
        vq = cache._v_quantized()
        if vq._sums is not None:
            np.testing.assert_array_equal(
                vq.partition_sums(cached=True), vq.partition_sums(cached=False)
            )

    def test_se_and_non_se_attention_identical(self):
        """SE is a pure optimization: results must match exactly."""
        k, v = _kv(2 * PI + 4, seed=18)
        a = HackKVCache(D, partition_size=PI, enable_se=True, rng=make_rng(4))
        b = HackKVCache(D, partition_size=PI, enable_se=False, rng=make_rng(4))
        a.append_bulk(k, v)
        b.append_bulk(k, v)
        q = make_rng(19).normal(size=D)
        # Separate rngs consumed identically -> same stochastic draws.
        np.testing.assert_allclose(a.attention(q), b.attention(q), atol=1e-12)

    def test_decode_loop_grows_cache(self):
        cache = HackKVCache(D, partition_size=PI, rng=make_rng(5))
        k, v = _kv(PI, seed=20)
        cache.append_bulk(k, v)
        rng = make_rng(21)
        for _ in range(PI + 3):
            q = rng.normal(size=D)
            out = cache.attention(q)
            assert out.shape == (D,)
            cache.append(rng.normal(size=D), rng.normal(size=D))
        assert len(cache) == 2 * PI + 3
        assert len(cache._v_blocks) == 2

    def test_empty_attention_rejected(self):
        cache = HackKVCache(D)
        with pytest.raises(ValueError):
            cache.attention(np.zeros(D))


class TestHackKVCacheMemory:
    def test_compression_vs_fp16(self):
        """Quantized cache ~7x smaller than FP16 (≈86% compression)."""
        n = 512
        k, v = _kv(n, seed=22, d=128)
        cache = HackKVCache(128, partition_size=64, rng=make_rng(0))
        cache.append_bulk(k, v)
        fp16 = 2 * n * 128 * 2
        rate = 1 - cache.kv_nbytes() / fp16
        assert 0.80 <= rate <= 0.90

    def test_sums_small_fraction(self):
        """SE sums cost a few percent of the quantized KV (paper §6: ~5%)."""
        n = 512
        k, v = _kv(n, seed=23, d=128)
        cache = HackKVCache(128, partition_size=64, rng=make_rng(0))
        cache.append_bulk(k, v)
        frac = cache.sums_nbytes() / cache.kv_nbytes()
        assert 0.005 < frac < 0.10

    def test_fp16_tail_bounded_by_partition(self):
        k, v = _kv(64 + 13, seed=24, d=128)
        cache = HackKVCache(128, partition_size=64, rng=make_rng(0))
        cache.append_bulk(k, v)
        assert cache.fp16_tail_nbytes() == 13 * 128 * 2
        assert cache.fp16_tail_nbytes() < 64 * 128 * 2

    def test_no_se_no_sum_bytes(self):
        k, v = _kv(64, seed=25)
        cache = HackKVCache(D, partition_size=PI, enable_se=False,
                            rng=make_rng(0))
        cache.append_bulk(k, v)
        assert cache.sums_nbytes() == 0

    def test_total_is_sum_of_parts(self):
        k, v = _kv(100, seed=26)
        cache = HackKVCache(D, partition_size=PI, rng=make_rng(0))
        cache.append_bulk(k, v)
        assert cache.total_nbytes() == (
            cache.kv_nbytes() + cache.sums_nbytes() + cache.fp16_tail_nbytes()
        )


class TestHackKVCacheLedger:
    def test_approx_flops_grow_with_length(self):
        k, v = _kv(4 * PI, seed=27)
        cache = HackKVCache(D, partition_size=PI, rng=make_rng(0))
        cache.append_bulk(k, v)
        q = make_rng(28).normal(size=D)
        cache.attention(q)
        a1 = cache.ledger.approx_flops
        cache.append_bulk(*_kv(4 * PI, seed=29))
        cache.attention(q)
        assert cache.ledger.approx_flops - a1 > a1

    def test_se_reduces_approx_flops(self):
        k, v = _kv(4 * PI, seed=30)
        q = make_rng(31).normal(size=D)
        with_se = HackKVCache(D, partition_size=PI, enable_se=True, rng=make_rng(0))
        without = HackKVCache(D, partition_size=PI, enable_se=False, rng=make_rng(0))
        for cache in (with_se, without):
            cache.append_bulk(k, v)
            cache.attention(q)
        assert with_se.ledger.approx_flops < without.ledger.approx_flops

    def test_ledger_merge(self):
        from repro.core.kv_cache import CacheLedger

        a = CacheLedger(int_matmul_flops=1, approx_flops=2, decode_iterations=3)
        b = CacheLedger(int_matmul_flops=10, quant_flops=5)
        a.merge(b)
        assert a.int_matmul_flops == 11
        assert a.approx_flops == 2
        assert a.quant_flops == 5
        assert a.decode_iterations == 3


@given(st.integers(1, 40), st.integers(2, 12))
@settings(max_examples=30, deadline=None)
def test_cache_length_invariant(n_tokens, pi):
    """Property: cache length equals appended tokens; V storage partitions
    hold full blocks + a tail shorter than Π."""
    k, v = _kv(n_tokens, seed=n_tokens)
    cache = HackKVCache(D, partition_size=pi, rng=make_rng(0))
    cache.append_bulk(k, v)
    assert len(cache) == n_tokens
    n_blocks = len(cache._v_blocks)
    n_tail = len(cache._v_tail_fp)
    assert n_blocks * pi + n_tail == n_tokens
    assert n_tail < pi
    k_hat, v_hat = cache.materialize()
    assert k_hat.shape == (n_tokens, D)
    assert v_hat.shape == (n_tokens, D)
