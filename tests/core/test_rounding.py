"""Tests for repro.core.rounding."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rounding import make_rng, nearest_round, stochastic_round


class TestStochasticRound:
    def test_integers_unchanged(self):
        x = np.array([-3.0, -1.0, 0.0, 2.0, 7.0])
        out = stochastic_round(x, make_rng(0))
        np.testing.assert_array_equal(out, x)

    def test_result_is_floor_or_ceil(self):
        rng = make_rng(1)
        x = rng.normal(size=1000) * 10
        out = stochastic_round(x, rng)
        assert np.all((out == np.floor(x)) | (out == np.ceil(x)))

    def test_result_is_integral(self):
        rng = make_rng(2)
        x = rng.uniform(-50, 50, size=500)
        out = stochastic_round(x, rng)
        np.testing.assert_array_equal(out, np.round(out))

    def test_unbiased_mean(self):
        """E[round(x)] == x: the key property for quantization quality."""
        rng = make_rng(3)
        x = np.full(200_000, 2.3)
        out = stochastic_round(x, rng)
        assert abs(out.mean() - 2.3) < 0.01

    def test_unbiased_for_negative_values(self):
        rng = make_rng(4)
        x = np.full(200_000, -1.7)
        out = stochastic_round(x, rng)
        assert abs(out.mean() + 1.7) < 0.01

    def test_probability_proportional_to_fraction(self):
        """x = n + f rounds up with probability f."""
        rng = make_rng(5)
        x = np.full(100_000, 0.25)
        out = stochastic_round(x, rng)
        up_fraction = (out == 1.0).mean()
        assert abs(up_fraction - 0.25) < 0.01

    def test_deterministic_with_seed(self):
        x = np.linspace(-5, 5, 100)
        a = stochastic_round(x, make_rng(7))
        b = stochastic_round(x, make_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_default_rng_accepted(self):
        out = stochastic_round(np.array([0.5]))
        assert out[0] in (0.0, 1.0)

    def test_scalar_like_input(self):
        out = stochastic_round(np.array(1.5), make_rng(0))
        assert out in (1.0, 2.0)

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    @settings(max_examples=100)
    def test_bracketing_property(self, value):
        out = stochastic_round(np.array([value]), make_rng(0))[0]
        assert np.floor(value) <= out <= np.ceil(value)


class TestNearestRound:
    def test_basic(self):
        x = np.array([0.4, 0.6, -0.4, -0.6])
        np.testing.assert_array_equal(nearest_round(x), [0.0, 1.0, -0.0, -1.0])

    def test_half_to_even(self):
        x = np.array([0.5, 1.5, 2.5, -0.5])
        np.testing.assert_array_equal(nearest_round(x), [0.0, 2.0, 2.0, -0.0])

    def test_integral_identity(self):
        x = np.arange(-10.0, 10.0)
        np.testing.assert_array_equal(nearest_round(x), x)


class TestMakeRng:
    def test_same_seed_same_stream(self):
        assert make_rng(11).random() == make_rng(11).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_returns_generator(self):
        assert isinstance(make_rng(0), np.random.Generator)
