"""Tests for repro.core.packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packing import (
    codes_per_byte,
    pack_codes,
    packed_nbytes,
    unpack_codes,
)


class TestCodesPerByte:
    @pytest.mark.parametrize("bits,expected", [(2, 4), (4, 2), (8, 1)])
    def test_values(self, bits, expected):
        assert codes_per_byte(bits) == expected

    @pytest.mark.parametrize("bits", [0, 1, 3, 5, 16])
    def test_rejects_unsupported(self, bits):
        with pytest.raises(ValueError):
            codes_per_byte(bits)


class TestPackedNbytes:
    def test_exact_multiples(self):
        assert packed_nbytes(8, 2) == 2
        assert packed_nbytes(8, 4) == 4
        assert packed_nbytes(8, 8) == 8

    def test_rounds_up(self):
        assert packed_nbytes(5, 2) == 2
        assert packed_nbytes(1, 2) == 1
        assert packed_nbytes(3, 4) == 2

    def test_zero(self):
        assert packed_nbytes(0, 2) == 0

    def test_compression_factor(self):
        """2-bit packing is 8x smaller than FP16 per element."""
        n = 1024
        assert packed_nbytes(n, 2) * 8 == n * 2


class TestRoundTrip:
    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_roundtrip_random(self, bits):
        rng = np.random.default_rng(bits)
        codes = rng.integers(0, 1 << bits, size=1000).astype(np.uint8)
        packed = pack_codes(codes, bits)
        out = unpack_codes(packed, codes.size, bits)
        np.testing.assert_array_equal(out, codes)

    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_roundtrip_2d(self, bits):
        rng = np.random.default_rng(bits + 10)
        codes = rng.integers(0, 1 << bits, size=(17, 13)).astype(np.uint8)
        packed = pack_codes(codes, bits)
        out = unpack_codes(packed, codes.size, bits).reshape(codes.shape)
        np.testing.assert_array_equal(out, codes)

    def test_roundtrip_odd_length(self):
        codes = np.array([3, 1, 0, 2, 1], dtype=np.uint8)
        packed = pack_codes(codes, 2)
        assert packed.size == 2
        np.testing.assert_array_equal(unpack_codes(packed, 5, 2), codes)

    def test_empty(self):
        packed = pack_codes(np.array([], dtype=np.uint8), 2)
        assert packed.size == 0
        assert unpack_codes(packed, 0, 2).size == 0

    def test_packed_size_matches_helper(self):
        codes = np.arange(100, dtype=np.uint8) % 4
        assert pack_codes(codes, 2).size == packed_nbytes(100, 2)

    def test_little_end_first_layout(self):
        """First code occupies the least significant bits."""
        packed = pack_codes(np.array([1, 2, 3, 0], dtype=np.uint8), 2)
        assert packed[0] == 1 | (2 << 2) | (3 << 4)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([4], dtype=np.int64), 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([-1], dtype=np.int64), 2)

    @given(
        st.integers(min_value=0, max_value=2),
        st.lists(st.integers(min_value=0, max_value=255), max_size=64),
    )
    @settings(max_examples=60)
    def test_roundtrip_property(self, bits_idx, values):
        bits = (2, 4, 8)[bits_idx]
        codes = np.array([v % (1 << bits) for v in values], dtype=np.uint8)
        packed = pack_codes(codes, bits)
        np.testing.assert_array_equal(unpack_codes(packed, codes.size, bits), codes)
