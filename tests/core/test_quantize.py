"""Tests for repro.core.quantize — partitioned asymmetric quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.quantize import (
    dequantize,
    partition_bounds,
    quantize,
    sum_storage_bits,
)
from repro.core.rounding import make_rng


class TestPartitionBounds:
    def test_exact_division(self):
        assert partition_bounds(8, 4) == [(0, 4), (4, 8)]

    def test_ragged_tail(self):
        assert partition_bounds(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_single_partition(self):
        assert partition_bounds(3, 16) == [(0, 3)]

    def test_zero_length(self):
        assert partition_bounds(0, 4) == []

    def test_partition_of_one(self):
        assert partition_bounds(3, 1) == [(0, 1), (1, 2), (2, 3)]

    def test_rejects_nonpositive_partition(self):
        with pytest.raises(ValueError):
            partition_bounds(8, 0)

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            partition_bounds(-1, 4)

    @given(st.integers(1, 500), st.integers(1, 64))
    @settings(max_examples=80)
    def test_bounds_cover_range_exactly(self, length, pi):
        bounds = partition_bounds(length, pi)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == length
        for (a0, a1), (b0, b1) in zip(bounds, bounds[1:]):
            assert a1 == b0
        assert all(1 <= hi - lo <= pi for lo, hi in bounds)


class TestSumStorageBits:
    def test_paper_example_int16(self):
        """2-bit codes, Π=128 → 9 raw bits → INT16 (paper §6)."""
        assert sum_storage_bits(2, 128) == 16

    def test_paper_example_8bit(self):
        """2-bit codes, Π=64 → 8 raw bits fit a byte (paper §5.3)."""
        assert sum_storage_bits(2, 64) == 8

    def test_wide_codes(self):
        assert sum_storage_bits(8, 64) == 16

    def test_very_wide(self):
        assert sum_storage_bits(8, 1 << 10) == 32


class TestQuantizeBasics:
    def test_codes_within_range(self):
        rng = make_rng(0)
        x = rng.normal(size=(16, 32))
        for bits in (2, 4, 8):
            qt = quantize(x, bits, axis=1, partition_size=8, rng=rng)
            assert qt.codes.max() <= (1 << bits) - 1
            assert qt.codes.min() >= 0

    def test_metadata_shapes_axis1(self):
        x = make_rng(1).normal(size=(6, 20))
        qt = quantize(x, 2, axis=1, partition_size=8, rng=make_rng(2))
        assert qt.mins.shape == (6, 3)  # 20 cols -> partitions 8,8,4
        assert qt.scales.shape == (6, 3)

    def test_metadata_shapes_axis0(self):
        x = make_rng(1).normal(size=(20, 6))
        qt = quantize(x, 2, axis=0, partition_size=8, rng=make_rng(2))
        assert qt.mins.shape == (3, 6)

    def test_error_bounded_by_scale_nearest(self):
        """|x - dequant(quant(x))| <= scale/2 per element with nearest rounding."""
        rng = make_rng(3)
        x = rng.normal(size=(10, 64))
        qt = quantize(x, 4, axis=1, partition_size=16, rounding="nearest")
        err = np.abs(dequantize(qt) - x)
        for p, (lo, hi) in enumerate(qt.bounds()):
            bound = qt.scales[:, p][:, None] / 2 + 1e-12
            assert np.all(err[:, lo:hi] <= bound)

    def test_error_bounded_by_scale_stochastic(self):
        """Stochastic rounding moves at most one level: |err| <= scale."""
        rng = make_rng(4)
        x = rng.normal(size=(10, 64))
        qt = quantize(x, 2, axis=1, partition_size=16, rng=rng)
        err = np.abs(dequantize(qt) - x)
        for p, (lo, hi) in enumerate(qt.bounds()):
            bound = qt.scales[:, p][:, None] + 1e-12
            assert np.all(err[:, lo:hi] <= bound)

    def test_constant_partition_exact(self):
        """A constant partition dequantizes exactly (scale 0, codes 0)."""
        x = np.full((4, 16), 3.25)
        qt = quantize(x, 2, axis=1, partition_size=8, rng=make_rng(0))
        assert np.all(qt.codes == 0)
        assert np.all(qt.scales == 0)
        np.testing.assert_array_equal(dequantize(qt), x)

    def test_min_max_preserved_nearest(self):
        """Partition extremes map to code 0 and 2^b-1 and round-trip exactly."""
        x = make_rng(5).normal(size=(8, 32))
        qt = quantize(x, 2, axis=1, partition_size=16, rounding="nearest")
        deq = dequantize(qt)
        for p, (lo, hi) in enumerate(qt.bounds()):
            block, dblock = x[:, lo:hi], deq[:, lo:hi]
            np.testing.assert_allclose(
                dblock.min(axis=1), block.min(axis=1), atol=1e-12
            )
            np.testing.assert_allclose(
                dblock.max(axis=1), block.max(axis=1), atol=1e-12
            )

    def test_finer_partitions_reduce_error(self):
        """Smaller Π gives lower quantization error (paper §7.5 premise)."""
        rng = make_rng(6)
        x = rng.normal(size=(32, 128)) * np.linspace(0.5, 3.0, 128)
        errors = {}
        for pi in (16, 64, 128):
            qt = quantize(x, 2, axis=1, partition_size=pi, rounding="nearest")
            errors[pi] = np.abs(dequantize(qt) - x).mean()
        assert errors[16] < errors[64] < errors[128]

    def test_more_bits_reduce_error(self):
        rng = make_rng(7)
        x = rng.normal(size=(16, 64))
        errs = []
        for bits in (2, 4, 8):
            qt = quantize(x, bits, axis=1, partition_size=16, rounding="nearest")
            errs.append(np.abs(dequantize(qt) - x).mean())
        assert errs[0] > errs[1] > errs[2]

    def test_stochastic_unbiased_reconstruction(self):
        """Averaged over seeds, stochastic dequantization is unbiased."""
        x = make_rng(8).normal(size=(4, 16))
        acc = np.zeros_like(x)
        n = 400
        for seed in range(n):
            qt = quantize(x, 2, axis=1, partition_size=8, rng=make_rng(seed))
            acc += dequantize(qt)
        bias = np.abs(acc / n - x).max()
        scale_typ = (x.max() - x.min()) / 3
        assert bias < 0.12 * scale_typ

    def test_axis0_equals_transposed_axis1(self):
        x = make_rng(9).normal(size=(24, 8))
        q0 = quantize(x, 2, axis=0, partition_size=8, rounding="nearest")
        q1 = quantize(x.T, 2, axis=1, partition_size=8, rounding="nearest")
        np.testing.assert_array_equal(q0.codes, q1.codes.T)
        np.testing.assert_allclose(dequantize(q0), dequantize(q1).T)


class TestQuantizeValidation:
    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            quantize(np.zeros(8), 2, axis=1, partition_size=4)

    def test_rejects_bad_axis(self):
        with pytest.raises(ValueError):
            quantize(np.zeros((4, 4)), 2, axis=2, partition_size=4)

    def test_rejects_bad_bits(self):
        for bits in (0, 9, -1):
            with pytest.raises(ValueError):
                quantize(np.zeros((4, 4)), bits, axis=1, partition_size=4)

    def test_rejects_bad_rounding(self):
        with pytest.raises(ValueError):
            quantize(np.zeros((4, 4)), 2, axis=1, partition_size=4,
                     rounding="banker")


class TestPartitionSums:
    def test_sums_match_recompute(self):
        x = make_rng(10).normal(size=(12, 40))
        qt = quantize(x, 2, axis=1, partition_size=16, rng=make_rng(1))
        cached = qt.partition_sums(cached=True)
        fresh = qt.partition_sums(cached=False)
        np.testing.assert_array_equal(cached, fresh)

    def test_sums_values(self):
        x = make_rng(11).normal(size=(4, 8))
        qt = quantize(x, 2, axis=1, partition_size=4, rng=make_rng(1))
        sums = qt.partition_sums()
        expected = np.stack(
            [qt.codes[:, 0:4].sum(axis=1), qt.codes[:, 4:8].sum(axis=1)], axis=1
        )
        np.testing.assert_array_equal(sums, expected)

    def test_invalidate_sums(self):
        x = make_rng(12).normal(size=(4, 8))
        qt = quantize(x, 2, axis=1, partition_size=4, rng=make_rng(1))
        qt.partition_sums()
        assert qt._sums is not None
        qt.invalidate_sums()
        assert qt._sums is None

    def test_sums_fit_declared_storage(self):
        """Sums never exceed the bit width reserved for them (§5.3)."""
        x = make_rng(13).normal(size=(8, 128))
        for pi in (32, 64, 128):
            qt = quantize(x, 2, axis=1, partition_size=pi, rng=make_rng(2))
            width = sum_storage_bits(2, pi)
            assert qt.partition_sums().max() < (1 << width)


class TestMemoryAccounting:
    def test_code_bytes_2bit(self):
        x = make_rng(14).normal(size=(16, 64))
        qt = quantize(x, 2, axis=1, partition_size=64, rng=make_rng(0))
        assert qt.code_nbytes() == 16 * 64 * 2 // 8

    def test_metadata_bytes(self):
        x = make_rng(15).normal(size=(16, 64))
        qt = quantize(x, 2, axis=1, partition_size=32, rng=make_rng(0))
        # 2 partitions per row, min+scale in FP16.
        assert qt.metadata_nbytes() == 16 * 2 * 2 * 2

    def test_compression_rate_near_paper(self):
        """2-bit + metadata lands near the ~86% compression the paper cites."""
        x = make_rng(16).normal(size=(1024, 128))
        qt = quantize(x, 2, axis=1, partition_size=64, rng=make_rng(0))
        fp16_bytes = x.size * 2
        rate = 1 - qt.total_nbytes(with_sums=False) / fp16_bytes
        assert 0.82 <= rate <= 0.88

    def test_total_includes_sums(self):
        x = make_rng(17).normal(size=(8, 64))
        qt = quantize(x, 2, axis=1, partition_size=64, rng=make_rng(0))
        assert qt.total_nbytes(True) - qt.total_nbytes(False) == qt.sums_nbytes()


@given(
    hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 12), st.integers(1, 48)),
        elements=st.floats(-100, 100, allow_nan=False, width=32),
    ),
    st.integers(1, 16),
    st.sampled_from([2, 4, 8]),
)
@settings(max_examples=60, deadline=None)
def test_roundtrip_error_bound_property(x, pi, bits):
    """Property: dequantization error never exceeds one quantization step."""
    qt = quantize(x, bits, axis=1, partition_size=pi, rng=make_rng(0))
    err = np.abs(dequantize(qt) - x)
    for p, (lo, hi) in enumerate(qt.bounds()):
        bound = qt.scales[:, p][:, None] + 1e-9
        assert np.all(err[:, lo:hi] <= bound)
