"""Tests for repro.core.costs — the paper's operation-count formulas."""


from repro.core import costs


class TestMatmulFlops:
    def test_formula(self):
        assert costs.matmul_flops(2, 3, 4) == 48

    def test_decode_shape(self):
        assert costs.matmul_flops(1, 128, 1000) == 2 * 128 * 1000


class TestApproximationFlops:
    def test_full_formula(self):
        """9MN + MZ + NZ from §5.2."""
        m, z, n = 3, 5, 7
        assert costs.approximation_flops(m, z, n, summation_eliminated=False) \
            == 9 * m * n + m * z + n * z

    def test_se_removes_nz(self):
        m, z, n = 3, 5, 7
        assert costs.approximation_flops(m, z, n, True) == 9 * m * n + m * z


class TestPaperIdentities:
    """The paper's §5.3 cost claims, verified symbolically."""

    def test_decode_approx_cost_is_10_dh_plus_l(self):
        d_h, ctx = 128, 1000
        assert costs.hack_approx_flops_per_iter(d_h, ctx, True) == \
            10 * (d_h + ctx)

    def test_without_se_adds_2_dh_l(self):
        d_h, ctx = 128, 1000
        with_se = costs.hack_approx_flops_per_iter(d_h, ctx, True)
        without = costs.hack_approx_flops_per_iter(d_h, ctx, False)
        assert without - with_se == 2 * d_h * ctx

    def test_dequant_cost(self):
        assert costs.kv_dequant_flops_per_iter(128, 1000) == 4 * 128 * 1000

    def test_dequant_exceeds_approx_beyond_l_2_5(self):
        """4·d_h·L > 10(d_h + L) once L > 2.5 for d_h = 128 (§5.3)."""
        d_h = 128
        assert costs.kv_dequant_flops_per_iter(d_h, 3) > \
            costs.hack_approx_flops_per_iter(d_h, 3)
        assert costs.kv_dequant_flops_per_iter(d_h, 2) < \
            costs.hack_approx_flops_per_iter(d_h, 2)

    def test_order_of_magnitude_gap_beyond_l_30(self):
        """The paper: dequant exceeds approximation 10x once L > 30."""
        d_h = 128
        for ctx in (31, 100, 1000, 16000):
            assert costs.kv_dequant_flops_per_iter(d_h, ctx) > \
                10 * costs.hack_approx_flops_per_iter(d_h, ctx) * 0.99

    def test_savings_grow_with_sequence_length(self):
        d_h = 128
        gaps = [
            costs.kv_dequant_flops_per_iter(d_h, ctx)
            - costs.hack_approx_flops_per_iter(d_h, ctx)
            for ctx in (100, 1000, 10000)
        ]
        assert gaps[0] < gaps[1] < gaps[2]


class TestOtherFormulas:
    def test_dequantize_flops(self):
        assert costs.dequantize_flops(100) == 200

    def test_quantize_flops(self):
        assert costs.quantize_flops(100) == 500

    def test_attention_flops(self):
        l_q, l_kv, d = 4, 16, 8
        assert costs.attention_flops(l_q, l_kv, d) == \
            2 * l_q * d * l_kv + 2 * l_q * l_kv * d
