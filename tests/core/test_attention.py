"""Tests for repro.core.attention and repro.core.flash."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attention import (
    HackConfig,
    attention_dequantize,
    attention_hack,
    attention_reference,
    causal_mask,
    softmax,
)
from repro.core.flash import flash_attention, flash_attention_hack
from repro.core.rounding import make_rng


def _qkv(l_q=16, l_kv=48, d=32, seed=0, offset=1.0):
    """Q/K/V with a non-zero mean so relative errors are meaningful."""
    rng = make_rng(seed)
    q = rng.normal(size=(l_q, d))
    k = rng.normal(size=(l_kv, d)) + offset * np.sin(np.arange(d))
    v = rng.normal(size=(l_kv, d)) + offset
    return q, k, v


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = make_rng(0).normal(size=(5, 9))
        np.testing.assert_allclose(softmax(x).sum(axis=-1), np.ones(5))

    def test_matches_definition(self):
        x = np.array([[0.0, 1.0, 2.0]])
        expected = np.exp(x) / np.exp(x).sum()
        np.testing.assert_allclose(softmax(x), expected)

    def test_stable_for_large_values(self):
        x = np.array([[1e4, 1e4 + 1]])
        out = softmax(x)
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out.sum(), 1.0)

    def test_invariant_to_shift(self):
        x = make_rng(1).normal(size=(3, 7))
        np.testing.assert_allclose(softmax(x), softmax(x + 100))


class TestCausalMask:
    def test_square_lower_triangular(self):
        m = causal_mask(4, 4)
        np.testing.assert_array_equal(m, np.tril(np.ones((4, 4), dtype=bool)))

    def test_decode_shape_attends_everywhere(self):
        m = causal_mask(1, 10)
        assert m.all()

    def test_offset_alignment(self):
        m = causal_mask(2, 5)
        # query 0 is token index 3 of 5; attends to keys 0..3.
        np.testing.assert_array_equal(m[0], [True, True, True, True, False])
        np.testing.assert_array_equal(m[1], [True] * 5)

    def test_rejects_lq_greater_than_lkv(self):
        with pytest.raises(ValueError):
            causal_mask(5, 3)


class TestAttentionReference:
    def test_output_shape(self):
        q, k, v = _qkv()
        assert attention_reference(q, k, v).shape == (16, 32)

    def test_single_key_returns_value(self):
        q = np.ones((1, 4))
        k = np.ones((1, 4))
        v = np.array([[1.0, 2.0, 3.0, 4.0]])
        np.testing.assert_allclose(attention_reference(q, k, v), v)

    def test_uniform_scores_average_values(self):
        q = np.zeros((1, 4))
        k = make_rng(2).normal(size=(8, 4))
        v = make_rng(3).normal(size=(8, 4))
        np.testing.assert_allclose(
            attention_reference(q, k, v, causal=False), v.mean(axis=0)[None, :]
        )

    def test_causal_ignores_future(self):
        """Changing a future key/value must not affect earlier queries."""
        q, k, v = _qkv(l_q=8, l_kv=8, seed=4)
        out1 = attention_reference(q, k, v, causal=True)
        k2, v2 = k.copy(), v.copy()
        k2[-1] += 100
        v2[-1] -= 100
        out2 = attention_reference(q, k2, v2, causal=True)
        np.testing.assert_allclose(out1[:-1], out2[:-1])

    def test_convex_combination_of_values(self):
        q, k, v = _qkv(seed=5)
        out = attention_reference(q, k, v, causal=False)
        assert out.min() >= v.min() - 1e-9
        assert out.max() <= v.max() + 1e-9

    def test_custom_scale(self):
        q, k, v = _qkv(seed=6)
        default = attention_reference(q, k, v)
        explicit = attention_reference(q, k, v, scale=1 / np.sqrt(q.shape[1]))
        np.testing.assert_allclose(default, explicit)


class TestAttentionHack:
    def test_approximates_reference(self):
        q, k, v = _qkv(l_q=32, l_kv=128, d=64, seed=7)
        ref = attention_reference(q, k, v)
        out = attention_hack(q, k, v, HackConfig(partition_size=16),
                             rng=make_rng(0))
        rel = np.linalg.norm(out - ref) / np.linalg.norm(ref)
        assert rel < 0.25

    def test_smaller_partitions_more_accurate(self):
        """Π=16 beats Π=128 on average (paper Table 6 / Table 8 trend)."""
        rels = {}
        for pi in (16, 128):
            errs = []
            for seed in range(8):
                q, k, v = _qkv(l_q=16, l_kv=256, d=128, seed=seed)
                ref = attention_reference(q, k, v)
                out = attention_hack(q, k, v, HackConfig(partition_size=pi),
                                     rng=make_rng(seed))
                errs.append(np.linalg.norm(out - ref) / np.linalg.norm(ref))
            rels[pi] = np.mean(errs)
        assert rels[16] < rels[128]

    def test_respects_causal_mask(self):
        """Perturbing a *future K* row must not change earlier outputs.

        Only K is perturbed: K is quantized per token row, so other rows'
        codes are untouched, and the masked score column never reaches
        softmax.  (Perturbing a future V row legitimately *does* change
        earlier outputs slightly, because V partitions span the sequence
        dimension and share [min, max] — the coupling RQE addresses.)
        """
        q, k, v = _qkv(l_q=8, l_kv=8, seed=9)
        cfg = HackConfig(rounding="nearest")
        out1 = attention_hack(q, k, v, cfg, causal=True)
        k2 = k.copy()
        k2[-1] += 100
        out2 = attention_hack(q, k2, v, cfg, causal=True)
        np.testing.assert_allclose(out1[:-1], out2[:-1], atol=1e-8)

    def test_deterministic_given_rng(self):
        q, k, v = _qkv(seed=10)
        a = attention_hack(q, k, v, rng=make_rng(3))
        b = attention_hack(q, k, v, rng=make_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_nearest_rounding_mode(self):
        q, k, v = _qkv(seed=11)
        cfg = HackConfig(rounding="nearest", partition_size=16)
        a = attention_hack(q, k, v, cfg)
        b = attention_hack(q, k, v, cfg)
        np.testing.assert_array_equal(a, b)

    def test_8bit_kv_nearly_exact(self):
        q, k, v = _qkv(l_q=8, l_kv=64, d=32, seed=12)
        cfg = HackConfig(partition_size=16, kv_bits=8)
        out = attention_hack(q, k, v, cfg, rng=make_rng(0))
        ref = attention_reference(q, k, v)
        rel = np.linalg.norm(out - ref) / np.linalg.norm(ref)
        assert rel < 0.02

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HackConfig(partition_size=0)


class TestAttentionDequantize:
    def test_same_kv_error_no_qp_error(self):
        """Dequantize path only quantizes K/V; with 8-bit KV it is near-exact."""
        q, k, v = _qkv(l_q=8, l_kv=64, d=32, seed=13)
        cfg = HackConfig(partition_size=16, kv_bits=8)
        out = attention_dequantize(q, k, v, cfg, rng=make_rng(0))
        ref = attention_reference(q, k, v)
        rel = np.linalg.norm(out - ref) / np.linalg.norm(ref)
        assert rel < 0.01

    def test_comparable_error_to_hack(self):
        """HACK's extra Q/P quantization adds only modest error (§7.3)."""
        hack_err, deq_err = [], []
        for seed in range(6):
            q, k, v = _qkv(l_q=16, l_kv=128, d=64, seed=seed)
            ref = attention_reference(q, k, v)
            cfg = HackConfig(partition_size=32)
            h = attention_hack(q, k, v, cfg, rng=make_rng(seed))
            d = attention_dequantize(q, k, v, cfg, rng=make_rng(seed))
            hack_err.append(np.linalg.norm(h - ref) / np.linalg.norm(ref))
            deq_err.append(np.linalg.norm(d - ref) / np.linalg.norm(ref))
        assert np.mean(hack_err) < 2.0 * np.mean(deq_err) + 0.05


class TestFlashAttention:
    @pytest.mark.parametrize("block_size", [1, 7, 16, 64, 1000])
    def test_equals_naive(self, block_size):
        q, k, v = _qkv(l_q=12, l_kv=40, d=16, seed=14)
        ref = attention_reference(q, k, v)
        out = flash_attention(q, k, v, block_size=block_size)
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_equals_naive_noncausal(self):
        q, k, v = _qkv(seed=15)
        np.testing.assert_allclose(
            flash_attention(q, k, v, block_size=13, causal=False),
            attention_reference(q, k, v, causal=False),
            atol=1e-10,
        )

    def test_rejects_bad_block_size(self):
        q, k, v = _qkv()
        with pytest.raises(ValueError):
            flash_attention(q, k, v, block_size=0)

    @given(st.integers(1, 64), st.integers(1, 6), st.integers(1, 30))
    @settings(max_examples=40, deadline=None)
    def test_blocked_exactness_property(self, block_size, l_q, extra_kv):
        l_kv = l_q + extra_kv
        q, k, v = _qkv(l_q=l_q, l_kv=l_kv, d=8, seed=block_size)
        np.testing.assert_allclose(
            flash_attention(q, k, v, block_size=block_size),
            attention_reference(q, k, v),
            atol=1e-8,
        )


class TestFlashAttentionHack:
    def test_block_must_align_with_partition(self):
        q, k, v = _qkv()
        with pytest.raises(ValueError):
            flash_attention_hack(q, k, v, HackConfig(partition_size=16),
                                 block_size=24)

    def test_tracks_unfused_hack(self):
        """The fused flash kernel lands close to the plain HACK result."""
        q, k, v = _qkv(l_q=16, l_kv=128, d=64, seed=16)
        ref = attention_reference(q, k, v)
        cfg = HackConfig(partition_size=16)
        fused = flash_attention_hack(q, k, v, cfg, rng=make_rng(0))
        rel = np.linalg.norm(fused - ref) / np.linalg.norm(ref)
        assert rel < 0.3

    def test_deterministic_given_rng(self):
        q, k, v = _qkv(seed=17)
        cfg = HackConfig(partition_size=8)
        a = flash_attention_hack(q, k, v, cfg, rng=make_rng(5))
        b = flash_attention_hack(q, k, v, cfg, rng=make_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_default_block_size(self):
        q, k, v = _qkv(l_q=4, l_kv=40, d=16, seed=18)
        out = flash_attention_hack(q, k, v, HackConfig(partition_size=8),
                                   rng=make_rng(0))
        assert out.shape == (4, 16)
