"""Tests for repro.core.eviction — KV eviction composed with quantization."""

import numpy as np
import pytest

from repro.core.eviction import EvictingKVCache, HeavyHitterTracker
from repro.core.kv_cache import Fp16KVCache, HackKVCache
from repro.core.rounding import make_rng

D = 32


def _kv(n, seed=0):
    rng = make_rng(seed)
    k = rng.normal(size=(n, D)) + np.sin(np.arange(D))
    v = rng.normal(size=(n, D)) + 1.0
    return k, v


class TestHeavyHitterTracker:
    def test_extend_and_len(self):
        t = HeavyHitterTracker()
        t.extend(5)
        assert len(t) == 5

    def test_observe_accumulates(self):
        t = HeavyHitterTracker(protected_recent=0)
        t.extend(3)
        t.observe(np.array([0.5, 0.3, 0.2]), np.arange(3))
        t.observe(np.array([0.5, 0.3, 0.2]), np.arange(3))
        evict = t.select_evictions(np.arange(3), budget=2)
        assert evict == [2]  # the lowest-mass token goes first

    def test_protected_window(self):
        t = HeavyHitterTracker(protected_recent=2)
        t.extend(4)
        # Token 0 has all the mass; 1-3 have none, but 2,3 are recent.
        t.observe(np.array([1.0, 0.0, 0.0, 0.0]), np.arange(4))
        evict = t.select_evictions(np.arange(4), budget=3)
        assert evict == [1]

    def test_no_eviction_under_budget(self):
        t = HeavyHitterTracker()
        t.extend(3)
        assert t.select_evictions(np.arange(3), budget=10) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            HeavyHitterTracker(protected_recent=-1)
        t = HeavyHitterTracker()
        t.extend(2)
        with pytest.raises(ValueError):
            t.select_evictions(np.arange(2), budget=0)
        with pytest.raises(ValueError):
            t.observe(np.array([1.0]), np.arange(2))


class TestEvictingKVCache:
    def test_passthrough_without_budget(self):
        """budget=None must reproduce the wrapped cache's attention."""
        k, v = _kv(40, seed=1)
        q = make_rng(2).normal(size=D)
        plain = Fp16KVCache(D)
        plain.append_bulk(k, v)
        wrapped = EvictingKVCache(Fp16KVCache(D), budget=None)
        wrapped.append_bulk(k, v)
        np.testing.assert_allclose(wrapped.attention(q), plain.attention(q),
                                   atol=1e-12)

    def test_budget_bounds_live_tokens(self):
        k, v = _kv(60, seed=3)
        cache = EvictingKVCache(Fp16KVCache(D), budget=20)
        cache.append_bulk(k, v)
        assert cache.n_live <= 20
        assert len(cache) == 60

    def test_incremental_appends_respect_budget(self):
        cache = EvictingKVCache(Fp16KVCache(D), budget=10,
                                protected_recent=4)
        k, v = _kv(30, seed=4)
        q = make_rng(5).normal(size=D)
        for i in range(30):
            cache.append(k[i], v[i])
            if i >= 1:
                cache.attention(q)  # accumulate attention mass
        assert cache.n_live <= 10

    def test_eviction_error_bounded(self):
        """Evicting low-attention tokens perturbs the output modestly."""
        k, v = _kv(80, seed=6)
        q = make_rng(7).normal(size=D)
        exact = Fp16KVCache(D)
        exact.append_bulk(k, v)
        ref = exact.attention(q)

        cache = EvictingKVCache(Fp16KVCache(D), budget=60,
                                protected_recent=4)
        cache.append_bulk(k, v)
        cache.attention(q)          # first call builds the mass profile
        out = cache.attention(q)
        rel = np.linalg.norm(out - ref) / np.linalg.norm(ref)
        assert rel < 0.6

    def test_composes_with_hack_cache(self):
        """§9: eviction and quantization compound — fewer tokens *and*
        fewer bits per token."""
        k, v = _kv(64, seed=8)
        inner = HackKVCache(D, partition_size=8, rng=make_rng(0))
        cache = EvictingKVCache(inner, budget=32, protected_recent=4)
        cache.append_bulk(k, v)
        q = make_rng(9).normal(size=D)
        out = cache.attention(q)
        assert out.shape == (D,)
        assert cache.n_live <= 32
        # Compound compression: live quantized bytes vs full FP16.
        # (Π=8 on a 32-wide head is metadata-heavy — ~0.5x FP16 from
        # quantization alone; halving the live tokens compounds it.)
        fp16_bytes = 2 * 64 * D * 2
        quant_only = inner.kv_nbytes()
        assert cache.live_kv_nbytes() < 0.6 * quant_only
        assert cache.live_kv_nbytes() < 0.30 * fp16_bytes

    def test_materialize_returns_live_only(self):
        k, v = _kv(50, seed=10)
        cache = EvictingKVCache(Fp16KVCache(D), budget=25)
        cache.append_bulk(k, v)
        k_live, v_live = cache.materialize()
        assert k_live.shape[0] == cache.n_live
        assert v_live.shape == k_live.shape

    def test_heavy_hitters_survive(self):
        """A token that dominates attention must not be evicted."""
        rng = make_rng(11)
        k = rng.normal(size=(40, D)) * 0.1
        v = rng.normal(size=(40, D))
        q = rng.normal(size=D)
        k[5] = q * 3.0  # token 5 aligns with the query -> heavy hitter
        cache = EvictingKVCache(Fp16KVCache(D), budget=40,
                                protected_recent=2)
        cache.append_bulk(k, v)
        cache.attention(q)
        cache.budget = 10
        cache._enforce_budget()
        assert 5 not in cache._evicted

    def test_validation(self):
        with pytest.raises(ValueError):
            EvictingKVCache(Fp16KVCache(D), budget=0)
