"""Tests for repro.core.homomorphic — the Eq. 4 identity and its variants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.homomorphic import (
    homomorphic_matmul,
    homomorphic_matmul_blocked,
    integer_matmul,
    transpose,
)
from repro.core.quantize import dequantize, quantize
from repro.core.rounding import make_rng


def _quantize_pair(a, b, bits_a, bits_b, pi, seed=0):
    rng = make_rng(seed)
    qa = quantize(a, bits_a, axis=1, partition_size=pi, rng=rng)
    qb = quantize(b, bits_b, axis=0, partition_size=pi, rng=rng)
    return qa, qb


class TestHomomorphismIdentity:
    """Eq. 4 must equal dequantize-then-multiply *exactly* (paper §5.2)."""

    @pytest.mark.parametrize("pi", [4, 16, 64])
    @pytest.mark.parametrize("bits", [(2, 2), (8, 2), (8, 8)])
    def test_identity_various_configs(self, pi, bits):
        rng = make_rng(1)
        a = rng.normal(size=(8, 64))
        b = rng.normal(size=(64, 12))
        qa, qb = _quantize_pair(a, b, bits[0], bits[1], pi)
        expected = dequantize(qa) @ dequantize(qb)
        got = homomorphic_matmul(qa, qb)
        np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_identity_ragged_partitions(self):
        rng = make_rng(2)
        a = rng.normal(size=(5, 37))
        b = rng.normal(size=(37, 9))
        qa, qb = _quantize_pair(a, b, 8, 2, 16)
        np.testing.assert_allclose(
            homomorphic_matmul(qa, qb),
            dequantize(qa) @ dequantize(qb),
            atol=1e-9,
        )

    def test_identity_single_row(self):
        """Decode shape: M = L_Q = 1."""
        rng = make_rng(3)
        a = rng.normal(size=(1, 128))
        b = rng.normal(size=(128, 200))
        qa, qb = _quantize_pair(a, b, 8, 2, 64)
        np.testing.assert_allclose(
            homomorphic_matmul(qa, qb),
            dequantize(qa) @ dequantize(qb),
            atol=1e-9,
        )

    def test_identity_with_constant_partitions(self):
        a = np.ones((3, 8))
        b = np.zeros((8, 3))
        qa, qb = _quantize_pair(a, b, 2, 2, 4)
        np.testing.assert_allclose(
            homomorphic_matmul(qa, qb), a @ b, atol=1e-12
        )

    def test_cached_and_fresh_sums_agree(self):
        rng = make_rng(4)
        a = rng.normal(size=(6, 32))
        b = rng.normal(size=(32, 6))
        qa, qb = _quantize_pair(a, b, 8, 2, 16)
        with_cache = homomorphic_matmul(qa, qb, use_cached_b_sums=True)
        fresh = homomorphic_matmul(qa, qb, use_cached_b_sums=False)
        np.testing.assert_allclose(with_cache, fresh, atol=1e-12)

    def test_approximates_true_product(self):
        """With 8-bit codes, Eq. 4 closely tracks the FP product."""
        rng = make_rng(5)
        a = rng.normal(size=(16, 128))
        b = rng.normal(size=(128, 16))
        qa, qb = _quantize_pair(a, b, 8, 8, 32)
        got = homomorphic_matmul(qa, qb)
        rel = np.linalg.norm(got - a @ b) / np.linalg.norm(a @ b)
        assert rel < 0.02


class TestIntegerMatmul:
    def test_matches_code_product(self):
        rng = make_rng(6)
        a = rng.normal(size=(4, 16))
        b = rng.normal(size=(16, 4))
        qa, qb = _quantize_pair(a, b, 2, 2, 8)
        expected = qa.codes.astype(np.int64) @ qb.codes.astype(np.int64)
        np.testing.assert_array_equal(integer_matmul(qa, qb), expected)

    def test_no_overflow_large_codes(self):
        """Worst-case 8-bit codes over a long inner dim stay exact."""
        a = np.full((2, 4096), 1e6)
        b = np.full((4096, 2), 1e6)
        qa, qb = _quantize_pair(a + np.arange(4096), b, 8, 8, 128)
        out = integer_matmul(qa, qb)
        assert out.dtype == np.int64
        assert np.all(out >= 0)


class TestTranspose:
    def test_roundtrip(self):
        x = make_rng(7).normal(size=(12, 24))
        qt = quantize(x, 2, axis=1, partition_size=8, rng=make_rng(0))
        back = transpose(transpose(qt))
        np.testing.assert_array_equal(back.codes, qt.codes)
        np.testing.assert_array_equal(back.mins, qt.mins)
        assert back.axis == qt.axis

    def test_transpose_dequantize_commutes(self):
        x = make_rng(8).normal(size=(12, 24))
        qt = quantize(x, 2, axis=1, partition_size=8, rng=make_rng(0))
        np.testing.assert_allclose(
            dequantize(transpose(qt)), dequantize(qt).T, atol=1e-12
        )

    def test_qkt_pattern(self):
        """Quantize K row-wise, transpose, multiply — the S = Q·Kᵀ path."""
        rng = make_rng(9)
        q = rng.normal(size=(4, 32))
        k = rng.normal(size=(10, 32))
        qq = quantize(q, 8, axis=1, partition_size=16, rng=rng)
        kq = quantize(k, 2, axis=1, partition_size=16, rng=rng)
        got = homomorphic_matmul(qq, transpose(kq))
        expected = dequantize(qq) @ dequantize(kq).T
        np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_transposed_sums_preserved(self):
        x = make_rng(10).normal(size=(6, 16))
        qt = quantize(x, 2, axis=1, partition_size=8, rng=make_rng(0))
        qt.partition_sums()
        tr = transpose(qt)
        assert tr._sums is not None
        np.testing.assert_array_equal(tr._sums, qt._sums.T)


class TestBlocked:
    def test_blocked_equals_unblocked(self):
        """Fig. 6(b): splitting the inner dim into blocks changes nothing."""
        rng = make_rng(11)
        a = rng.normal(size=(6, 64))
        b = rng.normal(size=(64, 6))
        pi = 16
        qa_full, qb_full = _quantize_pair(a, b, 8, 2, pi, seed=3)
        full = homomorphic_matmul(qa_full, qb_full)

        halves = []
        for lo, hi in ((0, 32), (32, 64)):
            rng_blk = make_rng(3)
            qa_blk = quantize(a[:, lo:hi], 8, axis=1, partition_size=pi, rng=rng_blk)
            qb_blk = quantize(b[lo:hi, :], 2, axis=0, partition_size=pi, rng=rng_blk)
            halves.append((qa_blk, qb_blk))
        blocked = homomorphic_matmul_blocked(
            [h[0] for h in halves], [h[1] for h in halves]
        )
        # Same partition boundaries but independent stochastic draws, so
        # compare against the blocked operands' own dequantized product.
        expected = sum(
            dequantize(qa) @ dequantize(qb) for qa, qb in halves
        )
        np.testing.assert_allclose(blocked, expected, atol=1e-9)
        assert blocked.shape == full.shape

    def test_blocked_identity_with_nearest_rounding(self):
        """With deterministic rounding, blocked == unblocked exactly."""
        rng = make_rng(12)
        a = rng.normal(size=(4, 32))
        b = rng.normal(size=(32, 4))
        pi = 8
        qa = quantize(a, 8, axis=1, partition_size=pi, rounding="nearest")
        qb = quantize(b, 2, axis=0, partition_size=pi, rounding="nearest")
        full = homomorphic_matmul(qa, qb)

        blocks_a, blocks_b = [], []
        for lo, hi in ((0, 16), (16, 32)):
            blocks_a.append(
                quantize(a[:, lo:hi], 8, axis=1, partition_size=pi, rounding="nearest")
            )
            blocks_b.append(
                quantize(b[lo:hi, :], 2, axis=0, partition_size=pi, rounding="nearest")
            )
        blocked = homomorphic_matmul_blocked(blocks_a, blocks_b)
        np.testing.assert_allclose(blocked, full, atol=1e-9)

    def test_blocked_validation(self):
        x = quantize(np.zeros((2, 4)), 2, axis=1, partition_size=4)
        y = quantize(np.zeros((4, 2)), 2, axis=0, partition_size=4)
        with pytest.raises(ValueError):
            homomorphic_matmul_blocked([x], [y, y])
        with pytest.raises(ValueError):
            homomorphic_matmul_blocked([], [])


class TestOperandValidation:
    def test_rejects_wrong_axes(self):
        a = quantize(np.zeros((2, 4)), 2, axis=0, partition_size=4)
        b = quantize(np.zeros((4, 2)), 2, axis=0, partition_size=4)
        with pytest.raises(ValueError):
            homomorphic_matmul(a, b)

    def test_rejects_mismatched_inner_dim(self):
        a = quantize(np.zeros((2, 4)), 2, axis=1, partition_size=4)
        b = quantize(np.zeros((8, 2)), 2, axis=0, partition_size=4)
        with pytest.raises(ValueError):
            homomorphic_matmul(a, b)

    def test_rejects_mismatched_partition_size(self):
        a = quantize(np.zeros((2, 8)), 2, axis=1, partition_size=4)
        b = quantize(np.zeros((8, 2)), 2, axis=0, partition_size=8)
        with pytest.raises(ValueError):
            homomorphic_matmul(a, b)


@given(
    hnp.arrays(np.float64, st.tuples(st.integers(1, 6), st.integers(1, 24)),
               elements=st.floats(-50, 50, allow_nan=False, width=32)),
    hnp.arrays(np.float64, st.tuples(st.integers(1, 6),),
               elements=st.floats(-50, 50, allow_nan=False, width=32)),
    st.integers(1, 8),
    st.sampled_from([2, 8]),
)
@settings(max_examples=60, deadline=None)
def test_homomorphism_property(a, b_col, pi, bits):
    """Property: Eq. 4 equals dequantize-then-multiply for any shapes."""
    z = a.shape[1]
    b = np.outer(
        np.resize(b_col, z), np.ones(3)
    ) + np.arange(3)  # (z, 3) with varied columns
    qa = quantize(a, 8, axis=1, partition_size=pi, rng=make_rng(0))
    qb = quantize(b, bits, axis=0, partition_size=pi, rng=make_rng(1))
    got = homomorphic_matmul(qa, qb)
    expected = dequantize(qa) @ dequantize(qb)
    np.testing.assert_allclose(got, expected, atol=1e-6)
