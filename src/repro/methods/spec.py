"""Open, serializable, sweepable method definitions: the :class:`MethodSpec`.

A :class:`MethodSpec` is a declarative description of one system under
comparison — a **family** name plus keyword parameters::

    MethodSpec.of("hack", partition_size=128, bits=4,
                  summation_elimination=False)

It is JSON-serializable (``{"family": "hack", "partition_size": 128,
…}``), has a compact string grammar for CLIs and sweep axes
(``hack?pi=128,bits=4,se=off``), and resolves through a *single* path
into both sides of the comparison:

* :meth:`MethodSpec.build_method` — the performance-model
  :class:`~repro.methods.base.Method` (byte counts, per-iteration
  flags);
* :meth:`MethodSpec.build_compressors` — the accuracy-side
  :class:`~repro.quant.base.KVCompressor` pair (K plane, V plane);
* :meth:`MethodSpec.attention_output` — the accuracy harness's
  attention replay (homomorphic for HACK, compress→decompress→attend
  for dequantize-first systems).

Because both sides are materialized from the same parameters by the
same :class:`MethodFamily`, the perf model and the accuracy harness can
never silently disagree about what e.g. ``hack?pi=128`` means.

Families are registered with the :func:`register_family` decorator and
the registry is *open*: user code can add families (see
``examples/custom_method.py``) and sweep their parameters exactly like
the built-in ones (``Sweep`` axes named ``method.<param>``).

The paper's historical method names (``baseline``, ``hack_pi128``, …)
are **legacy aliases**: each maps to a MethodSpec (plus purely cosmetic
``name``/``display_name`` overrides) and resolves to a Method
bit-for-bit identical to the pre-spec registry entry, so existing
scenario JSON, artifact files and slugs are untouched.

String grammar
--------------

::

    method      = legacy-name | family [ "?" param ("," param)* ]
    param       = key "=" value
    value       = int | float | "on" | "off" | "true" | "false" | word

Keys may use the family's short aliases (``pi`` for
``partition_size``, ``se`` for ``summation_elimination``, …).  In a
comma-separated method *list* (``--methods``), a ``key=value`` token
following a ``family?…`` token belongs to that spec: ``baseline,
hack?pi=128,bits=4`` is two methods, not three.
"""

from __future__ import annotations

import dataclasses
import difflib
import re
from dataclasses import dataclass

from .base import Method

__all__ = [
    "MethodSpec",
    "MethodFamily",
    "ParamDef",
    "register_family",
    "get_family",
    "method_families",
    "register_legacy_alias",
    "legacy_names",
    "method_spec",
    "resolve_method",
    "canonical_method",
    "parse_method",
    "split_method_list",
    "apply_method_params",
]

_TRUE_TOKENS = frozenset({"on", "true", "yes", "1"})
_FALSE_TOKENS = frozenset({"off", "false", "no", "0"})

_FAMILY_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


@dataclass(frozen=True)
class ParamDef:
    """One family parameter: its default (which fixes the type), an
    optional short alias for the string grammar, and optional allowed
    values."""

    default: object
    alias: str | None = None
    choices: tuple | None = None
    doc: str = ""


class MethodFamily:
    """Base class for method families (subclass + :func:`register_family`).

    A family turns a parameter assignment into every runtime view of a
    method.  Subclasses set :attr:`params` and implement
    :meth:`build_method`; quantizing families additionally implement
    :meth:`build_compressors` (and may override :meth:`attention_output`
    when their accuracy path is not dequantize-first).
    """

    #: Registry key; also the prefix of the string grammar.
    name: str = "abstract"
    #: One-line summary shown by ``cli list``.
    description: str = ""
    #: Parameter table: long name -> :class:`ParamDef`.
    params: dict[str, ParamDef] = {}
    #: True for methods that introduce no quantization error (baseline).
    exact: bool = False

    def build_method(self, **params) -> Method:
        """The performance-model :class:`Method` for this assignment."""
        raise NotImplementedError

    def build_compressors(self, **params):
        """``(K-plane, V-plane)`` compressors, or None if the family
        has no accuracy-side codec."""
        return None

    def attention_output(self, params: dict, q, k, v, rng):
        """One attention replay through the method's quantization path.

        The default models dequantize-first systems: round-trip K/V
        through :meth:`build_compressors` and attend exactly.  Families
        whose kernels compute on quantized operands (HACK) override
        this.
        """
        pair = self.build_compressors(**params)
        if pair is None:
            raise ValueError(
                f"method family {self.name!r} defines no accuracy path "
                "(no compressors); override attention_output or "
                "build_compressors"
            )
        from ..core.attention import attention_reference

        k_hat, _ = pair[0].roundtrip(k)
        v_hat, _ = pair[1].roundtrip(v)
        return attention_reference(q, k_hat, v_hat, causal=False)

    # -- derived views --------------------------------------------------------

    @property
    def alias_map(self) -> dict[str, str]:
        """Short alias -> long parameter name."""
        return {pd.alias: name for name, pd in self.params.items()
                if pd.alias is not None}

    def signature(self) -> str:
        """Grammar template with defaults, e.g. ``hack?pi=64,bits=2,…``."""
        if not self.params:
            return self.name
        parts = [f"{pd.alias or name}={_format_value(pd.default)}"
                 for name, pd in self.params.items()]
        return f"{self.name}?{','.join(parts)}"


# -- family registry ----------------------------------------------------------

_FAMILIES: dict[str, MethodFamily] = {}


def register_family(name: str | None = None, *, replace: bool = False):
    """Class decorator registering a :class:`MethodFamily` subclass.

    ::

        @register_family("toy")
        class ToyFamily(MethodFamily):
            params = {"knob": ParamDef(1.0)}
            def build_method(self, *, knob): ...

    ``name`` overrides the class's ``name`` attribute.  Registering an
    existing name raises unless ``replace=True``.

    Registration is per-process: worker processes must import the
    registering module before resolving the family's specs.  The
    fork-based ``Runner(workers=N)`` pool inherits registrations; on
    platforms without fork (spawn-based multiprocessing), put the
    ``@register_family`` in a module the workers import.
    """

    def decorator(obj):
        family = obj() if isinstance(obj, type) else obj
        if name is not None:
            family.name = name
        if not _FAMILY_NAME_RE.match(family.name or ""):
            raise ValueError(
                f"family name {family.name!r} must match "
                f"{_FAMILY_NAME_RE.pattern}"
            )
        if family.name in _FAMILIES and not replace:
            raise ValueError(
                f"method family {family.name!r} is already registered; "
                "pass register_family(..., replace=True) to override"
            )
        seen_aliases: dict[str, str] = {}
        for pname, pd in family.params.items():
            if pname == "family":
                raise ValueError("'family' is a reserved parameter name")
            if not isinstance(pd.default, (bool, int, float, str)):
                raise ValueError(
                    f"parameter {pname!r} default must be a JSON scalar, "
                    f"got {type(pd.default).__name__}"
                )
            if pd.alias is not None:
                if pd.alias in family.params or pd.alias in seen_aliases:
                    raise ValueError(
                        f"alias {pd.alias!r} of parameter {pname!r} "
                        "collides with another parameter"
                    )
                seen_aliases[pd.alias] = pname
        _FAMILIES[family.name] = family
        return obj

    return decorator


def get_family(name: str) -> MethodFamily:
    """Look up a registered family, with typo suggestions."""
    try:
        return _FAMILIES[name]
    except KeyError:
        raise ValueError(
            f"unknown method family {name!r}{_suggest(name, _FAMILIES)}"
        ) from None


def method_families() -> dict[str, MethodFamily]:
    """All registered families (a copy; registration order preserved)."""
    return dict(_FAMILIES)


def _suggest(name: str, candidates) -> str:
    candidates = list(dict.fromkeys(candidates))
    matches = difflib.get_close_matches(name, candidates, n=3)
    if matches:
        return "; did you mean " + " or ".join(repr(m) for m in matches) + "?"
    return f"; choose from {', '.join(sorted(candidates))}"


# -- the spec -----------------------------------------------------------------

def _coerce_value(family: str, name: str, pd: ParamDef, value):
    """Coerce ``value`` to the parameter's type (set by its default)."""
    where = f"parameter {name!r} of family {family!r}"
    if isinstance(pd.default, bool):
        if isinstance(value, str):
            token = value.lower()
            if token in _TRUE_TOKENS:
                value = True
            elif token in _FALSE_TOKENS:
                value = False
            else:
                raise ValueError(
                    f"{where} expects on/off (or true/false), got {value!r}"
                )
        elif isinstance(value, int) and value in (0, 1):
            # The grammar's 1/0 spellings arrive as ints from sweep
            # axes (the CLI coerces numeric tokens before we see them).
            value = bool(value)
        if not isinstance(value, bool):
            raise ValueError(f"{where} expects a boolean, got {value!r}")
    elif isinstance(pd.default, int):
        if isinstance(value, bool) or \
                (isinstance(value, float) and not value.is_integer()):
            raise ValueError(f"{where} expects an integer, got {value!r}")
        try:
            value = int(value)
        except (TypeError, ValueError):
            raise ValueError(
                f"{where} expects an integer, got {value!r}"
            ) from None
    elif isinstance(pd.default, float):
        if isinstance(value, bool):
            raise ValueError(f"{where} expects a number, got {value!r}")
        try:
            value = float(value)
        except (TypeError, ValueError):
            raise ValueError(
                f"{where} expects a number, got {value!r}"
            ) from None
    elif not isinstance(value, str):
        raise ValueError(f"{where} expects a string, got {value!r}")
    elif not value or any(c in value for c in ",=?+ "):
        # These are spec-grammar metacharacters: a value containing
        # them would canonicalize to a string that cannot re-parse.
        raise ValueError(
            f"{where} string values must be non-empty and free of "
            f"',', '=', '?', '+' and spaces; got {value!r}"
        )
    if pd.choices is not None and value not in pd.choices:
        raise ValueError(
            f"{where} must be one of "
            f"{', '.join(str(c) for c in pd.choices)}; got {value!r}"
        )
    return value


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "on" if value else "off"
    if isinstance(value, float):
        # repr is the shortest *exact* round-trip: %g's 6 significant
        # digits would collapse distinct values (e.g. two keep=0.333…
        # sweeps) into one canonical string and one scenario slug.
        return repr(value)
    return str(value)


@dataclass(frozen=True)
class MethodSpec:
    """A declarative method definition: family + parameters.

    ``params`` holds only the parameters given explicitly (family
    defaults fill the rest at build time), normalized to long names,
    coerced to the family's declared types and sorted — different
    spellings of the same parameters (aliases, string booleans,
    parameter order) compare and hash equal.  An explicitly-given
    default is *kept*, not dropped: ``hack?pi=64`` stays distinct from
    ``hack`` (they build equivalent Methods but serialize, key and
    slug as written — what you write is what you get).
    """

    family: str
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        family = get_family(self.family)
        items = self.params.items() if isinstance(self.params, dict) \
            else self.params
        aliases = family.alias_map
        normalized: dict[str, object] = {}
        for key, value in items:
            long = aliases.get(key, key)
            if long not in family.params:
                raise ValueError(
                    f"family {self.family!r} has no parameter {key!r}"
                    f"{_suggest(key, [*family.params, *aliases])}"
                )
            if long in normalized:
                raise ValueError(
                    f"parameter {long!r} given twice for family "
                    f"{self.family!r}"
                )
            normalized[long] = _coerce_value(self.family, long,
                                             family.params[long], value)
        object.__setattr__(self, "params", tuple(sorted(normalized.items())))

    @classmethod
    def of(cls, family: str, **params) -> "MethodSpec":
        """Keyword-style constructor: ``MethodSpec.of("hack", bits=4)``."""
        return cls(family, tuple(params.items()))

    # -- derived views --------------------------------------------------------

    def resolved_params(self) -> dict:
        """Family defaults overlaid with this spec's parameters."""
        family = get_family(self.family)
        out = {name: pd.default for name, pd in family.params.items()}
        out.update(self.params)
        return out

    def with_params(self, **changes) -> "MethodSpec":
        """A copy with parameters changed (aliases accepted; a value of
        ``None`` drops the parameter back to its family default)."""
        aliases = get_family(self.family).alias_map
        merged = dict(self.params)
        for key, value in changes.items():
            long = aliases.get(key, key)
            if value is None:
                merged.pop(long, None)
            else:
                merged[long] = value
        return MethodSpec(self.family, tuple(merged.items()))

    @property
    def is_exact(self) -> bool:
        return get_family(self.family).exact

    # -- resolution -----------------------------------------------------------

    def build_method(self) -> Method:
        """Materialize the performance-model :class:`Method`."""
        return get_family(self.family).build_method(**self.resolved_params())

    def build_compressors(self):
        """Materialize the ``(K, V)`` accuracy compressors (or None)."""
        return get_family(self.family).build_compressors(
            **self.resolved_params())

    def attention_output(self, q, k, v, rng):
        """One accuracy-harness attention replay (see
        :meth:`MethodFamily.attention_output`)."""
        return get_family(self.family).attention_output(
            self.resolved_params(), q, k, v, rng)

    # -- (de)serialization ----------------------------------------------------

    def canonical(self) -> str:
        """Compact string form, e.g. ``hack?bits=4,pi=128``."""
        if not self.params:
            return self.family
        family = get_family(self.family)
        parts = [f"{family.params[k].alias or k}={_format_value(v)}"
                 for k, v in self.params]
        return f"{self.family}?{','.join(parts)}"

    def to_dict(self) -> dict:
        """Flat JSON form: ``{"family": …, <param>: <value>, …}``."""
        return {"family": self.family, **dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "MethodSpec":
        if "family" not in data:
            raise ValueError(
                f"method spec dict needs a 'family' key, got "
                f"{sorted(data)}"
            )
        params = {k: v for k, v in data.items() if k != "family"}
        return cls(data["family"], tuple(params.items()))

    def __str__(self) -> str:
        return self.canonical()


# -- string grammar -----------------------------------------------------------

def parse_method(text: str) -> MethodSpec:
    """Parse ``family[?key=value,…]`` into a :class:`MethodSpec`.

    Legacy alias names are resolved to their underlying spec (cosmetic
    name overrides drop; use :func:`resolve_method` to keep them).
    """
    text = text.strip()
    if text in _LEGACY:
        return _LEGACY[text].spec
    family, sep, rest = text.partition("?")
    family = family.strip()
    if family not in _FAMILIES:
        raise ValueError(
            f"unknown method {family!r}"
            f"{_suggest(family, [*_FAMILIES, *_LEGACY])}"
        )
    if not sep:
        return MethodSpec(family)
    pairs = []
    for item in rest.split(","):
        key, eq, value = item.partition("=")
        key, value = key.strip(), value.strip()
        if not eq or not key or not value:
            raise ValueError(
                f"bad method parameter {item!r} in {text!r}; the grammar "
                "is family?key=value,key=value"
            )
        pairs.append((key, value))
    return MethodSpec(family, tuple(pairs))


def split_method_list(text: str) -> list[str]:
    """Split a comma-separated method list, keeping spec parameters
    attached: ``"baseline,hack?pi=128,bits=4"`` → ``["baseline",
    "hack?pi=128,bits=4"]`` (a ``key=value`` token after a ``?`` spec
    continues that spec).  Entries may be ``+``-joined method *sets*
    (the CLI's sweep-axis values): only the set's last member can have
    an open ``?`` clause, so ``"baseline+hack?pi=128,bits=4,kvquant"``
    → ``["baseline+hack?pi=128,bits=4", "kvquant"]``."""
    parts: list[str] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if parts and "=" in token and "?" not in token \
                and "?" in parts[-1].rsplit("+", 1)[-1]:
            parts[-1] += "," + token
        else:
            parts.append(token)
    return parts


# -- legacy aliases -----------------------------------------------------------

@dataclass(frozen=True)
class _LegacyAlias:
    spec: MethodSpec
    #: Cosmetic Method-field overrides (name, display_name).
    overrides: tuple[tuple[str, str], ...] = ()


_LEGACY: dict[str, _LegacyAlias] = {}


def register_legacy_alias(alias: str, spec: MethodSpec, *,
                          name: str | None = None,
                          display_name: str | None = None) -> None:
    """Map a historical registry name to a spec (plus cosmetic
    ``name``/``display_name`` overrides applied to the built Method)."""
    if alias in _LEGACY:
        raise ValueError(f"legacy method name {alias!r} already registered")
    overrides = {k: v for k, v in
                 (("name", name), ("display_name", display_name))
                 if v is not None}
    _LEGACY[alias] = _LegacyAlias(spec, tuple(sorted(overrides.items())))


def legacy_names() -> tuple[str, ...]:
    """The historical method names, in registration order."""
    return tuple(_LEGACY)


# -- resolution entry points --------------------------------------------------

def has_registered_family(method: str) -> bool:
    """True when a string method reference names a legacy alias or a
    family registered in this process (its parameters may still be
    invalid — this only answers "could anyone here resolve it?")."""
    method = method.strip()
    return method in _LEGACY or \
        method.partition("?")[0].strip() in _FAMILIES


def method_spec(method) -> MethodSpec:
    """The :class:`MethodSpec` behind any method reference: a spec, a
    flat JSON dict, a legacy name, or a grammar string."""
    if isinstance(method, MethodSpec):
        return method
    if isinstance(method, dict):
        return MethodSpec.from_dict(method)
    if isinstance(method, str):
        return parse_method(method)
    raise TypeError(
        f"expected a MethodSpec, dict or string, got "
        f"{type(method).__name__}"
    )


def resolve_method(method) -> Method:
    """Materialize the performance-model :class:`Method` for any method
    reference.  Legacy names keep their historical ``name`` and
    ``display_name``, so they resolve bit-for-bit as they always have."""
    if isinstance(method, str):
        alias = _LEGACY.get(method.strip())
        if alias is not None:
            built = alias.spec.build_method()
            if alias.overrides:
                built = dataclasses.replace(built, **dict(alias.overrides))
            return built
    return method_spec(method).build_method()


def canonical_method(method) -> str:
    """The canonical string form of a method reference.  Legacy names
    canonicalize to themselves, so pre-spec scenarios serialize and
    slug exactly as before."""
    if isinstance(method, str):
        method = method.strip()
        if method in _LEGACY:
            return method
    return method_spec(method).canonical()


def apply_method_params(method, changes: dict) -> tuple[str, set]:
    """Apply sweep-axis parameter ``changes`` to one method reference.

    Returns ``(canonical string, applied)`` where ``applied`` holds the
    ``changes`` keys (as given, aliases included) that the method's
    family defines; the rest pass through unchanged — e.g. ``baseline``
    in a ``method.partition_size`` sweep over ``baseline,hack`` comes
    back verbatim with an empty set."""
    spec = method_spec(method)
    family = get_family(spec.family)
    aliases = family.alias_map
    applicable = {k: v for k, v in changes.items()
                  if aliases.get(k, k) in family.params}
    if not applicable:
        return canonical_method(method), set()
    return spec.with_params(**applicable).canonical(), set(applicable)
