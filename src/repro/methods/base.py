"""End-to-end method descriptors.

A :class:`Method` bundles everything the performance model and the
simulator need to know about one system under comparison:

* how many bytes per KV scalar cross the wire and sit in decode memory,
* whether every decode iteration pays a full-cache dequantization
  (CacheGen / KVQuant / FP-format conversion on pre-H100 GPUs),
* whether attention matmuls run on integer tensor cores (HACK),
* whether the Eq. 4 correction terms are paid per iteration, and with
  which partition size / SE setting,
* whether the one-time KV quantization cost applies.

The registry in :mod:`repro.methods.registry` instantiates the paper's
method set from these knobs — no method-specific branches exist in the
performance model itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.quantize import sum_storage_bits

__all__ = ["Method", "quantized_bytes_per_value", "FP16_BYTES"]

FP16_BYTES = 2.0


def quantized_bytes_per_value(bits: int, partition_size: int,
                              include_sums: bool = False) -> float:
    """Stored bytes per KV scalar for partitioned asymmetric quantization.

    Codes (``bits``/8) plus FP16 min+scale per partition (4/Π) plus,
    optionally, the SE sum storage (§5.3/§6 width rules).
    """
    per_value = bits / 8.0 + 4.0 / partition_size
    if include_sums:
        per_value += sum_storage_bits(bits, partition_size) / 8.0 / partition_size
    return per_value


@dataclass(frozen=True)
class Method:
    """One system under comparison (see module docstring)."""

    name: str
    display_name: str
    #: Bytes per KV scalar sent prefill → decode.
    kv_wire_bytes_per_value: float
    #: Bytes per KV scalar resident in decode memory (incl. SE sums).
    kv_mem_bytes_per_value: float
    #: Full-cache dequantization every decode iteration (§2.2).
    dequant_per_iter: bool = False
    #: Relative cost of that dequantization pass (KVQuant's nuq codebook
    #: gather plus sparse-outlier scatter is costlier than CacheGen's
    #: dense-grid decode, which is why Fig. 9/11/12 show KVQuant
    #: consistently a few percent behind CacheGen).
    dequant_traffic_scale: float = 1.0
    #: Attention matmuls run on INT8 tensor cores where available.
    int8_attention: bool = False
    #: Additional integer-compute gain over the INT8 path (the §8
    #: future-work CUDA INT4 kernel: 2-bit codes computed at INT4 rates
    #: instead of being widened to INT8 first).  1.0 = plain INT8.
    int_compute_gain: float = 1.0
    #: Simulated FP8 attention (§3: matmul time halved), no INT8 path.
    fp8_attention_sim: bool = False
    #: Eq. 4 correction terms paid per decode iteration.
    approx_per_iter: bool = False
    #: One-time KV quantization cost on the prefill instance.
    quantize_cost: bool = False
    #: HACK knobs (ignored unless ``approx_per_iter``).
    partition_size: int = 64
    summation_elimination: bool = True
    requant_elimination: bool = True

    @property
    def compression_ratio(self) -> float:
        """Wire-size reduction vs FP16, in [0, 1)."""
        return 1.0 - self.kv_wire_bytes_per_value / FP16_BYTES

    @property
    def is_quantized(self) -> bool:
        return self.kv_wire_bytes_per_value < FP16_BYTES

    def __post_init__(self) -> None:
        if self.kv_wire_bytes_per_value <= 0:
            raise ValueError("kv_wire_bytes_per_value must be positive")
        if self.kv_mem_bytes_per_value < self.kv_wire_bytes_per_value:
            raise ValueError(
                "resident KV cannot be smaller than wire KV (sums and "
                "buffers only add bytes)"
            )
        if self.int8_attention and self.fp8_attention_sim:
            raise ValueError("choose at most one attention acceleration")
