"""Built-in method families and the paper's legacy method names.

Each family materializes **both** runtime views of a method from one
parameter assignment — the perf-model :class:`~repro.methods.base.Method`
and the accuracy-side :class:`~repro.quant.base.KVCompressor` pair — so
the byte accounting can never diverge between the two (the HACK wire
and resident sizes, for example, both come from
:func:`~repro.methods.base.quantized_bytes_per_value` with the same
``bits``/``partition_size``/SE setting the compressor quantizes with).

Families:

* ``baseline`` — uncompressed FP16 KV (exact);
* ``hack`` — the paper's homomorphic partitioned quantization, with
  Π / bits / SE / RQE / integer-kernel gain as open parameters;
* ``cachegen`` / ``kvquant`` — the §7 comparators (wire size is the
  paper-credited ~86% constant; the codec parameters drive the
  accuracy-side compressors);
* ``fp`` — the §3 FP4/FP6/FP8 minifloat formats (OCP-MX block scales);
* ``quant`` — a generic dequantize-first partitioned integer
  quantizer (the "what if CacheGen used plain INT4" family sketched
  by §8's discussion of variant kernels).

The module registers the 13 historical registry names as legacy
aliases of these families; :mod:`repro.methods.registry` rebuilds its
``METHODS`` dict from them.
"""

from __future__ import annotations

from .base import FP16_BYTES, Method, quantized_bytes_per_value
from .spec import (
    MethodFamily,
    MethodSpec,
    ParamDef,
    register_family,
    register_legacy_alias,
)

__all__ = [
    "BaselineFamily",
    "CacheGenFamily",
    "KVQuantFamily",
    "HackFamily",
    "FpFormatFamily",
    "GenericQuantFamily",
    "COMPARATOR_BYTES",
]

#: ~86% compression credited to CacheGen/KVQuant in §2.2.
COMPARATOR_BYTES = 0.28


def _check_quant_params(partition_size: int, bits: int) -> None:
    """Guard the open Π/bits parameters (reachable from any CLI string
    or sweep axis) before they hit the byte-accounting arithmetic."""
    if partition_size < 1:
        raise ValueError(
            f"partition_size must be a positive partition length, "
            f"got {partition_size}"
        )
    if not 1 <= bits <= 8:
        raise ValueError(f"bits must be in [1, 8], got {bits}")


@register_family("baseline")
class BaselineFamily(MethodFamily):
    description = "uncompressed FP16 KV cache"
    params: dict[str, ParamDef] = {}
    exact = True

    def build_method(self) -> Method:
        return Method(
            name="baseline",
            display_name="Baseline",
            kv_wire_bytes_per_value=FP16_BYTES,
            kv_mem_bytes_per_value=FP16_BYTES,
        )


@register_family("hack")
class HackFamily(MethodFamily):
    description = "homomorphic partitioned quantization (the paper)"
    params = {
        "partition_size": ParamDef(64, alias="pi", doc="Π partition size"),
        "bits": ParamDef(2, doc="code width (§8 sketches an INT4 path)"),
        "summation_elimination": ParamDef(True, alias="se"),
        "requant_elimination": ParamDef(True, alias="rqe"),
        "int_compute_gain": ParamDef(
            1.0, alias="gain",
            doc="integer-kernel gain over plain INT8 (hack_int4: 1.6)"),
    }

    def build_method(self, *, partition_size, bits, summation_elimination,
                     requant_elimination, int_compute_gain) -> Method:
        _check_quant_params(partition_size, bits)
        if int_compute_gain <= 0:
            raise ValueError(
                f"int_compute_gain must be positive, got {int_compute_gain}"
            )
        wire = quantized_bytes_per_value(bits, partition_size,
                                         include_sums=False)
        mem = quantized_bytes_per_value(bits, partition_size,
                                        include_sums=summation_elimination)
        name = "hack" + ("" if bits == 2 else f"{bits}b")
        name += f"_pi{partition_size}"
        if not summation_elimination:
            name += "_nose"
        if not requant_elimination:
            name += "_norqe"
        if int_compute_gain != 1.0:
            name += f"_gain{format(int_compute_gain, 'g')}"
        display = f"HACK (Π={partition_size})" if bits == 2 \
            else f"HACK ({bits}-bit, Π={partition_size})"
        return Method(
            name=name,
            display_name=display,
            kv_wire_bytes_per_value=wire,
            kv_mem_bytes_per_value=mem,
            dequant_per_iter=False,
            int8_attention=True,
            int_compute_gain=int_compute_gain,
            approx_per_iter=True,
            quantize_cost=True,
            partition_size=partition_size,
            summation_elimination=summation_elimination,
            requant_elimination=requant_elimination,
        )

    def build_compressors(self, *, partition_size, bits,
                          summation_elimination, **_ignored):
        from ..quant.hack_adapter import HackCompressor

        return tuple(
            HackCompressor(partition_size=partition_size, bits=bits,
                           plane_kind=kind,
                           include_sums=summation_elimination)
            for kind in ("k", "v")
        )

    def attention_output(self, params, q, k, v, rng):
        """The homomorphic path: both attention matmuls on quantized
        operands (no dequantize-first round trip)."""
        from ..core.attention import HackConfig, attention_hack

        config = HackConfig(
            partition_size=min(params["partition_size"], q.shape[1]),
            kv_bits=params["bits"],
            use_se=params["summation_elimination"],
        )
        return attention_hack(q, k, v, config, rng=rng, causal=False)


class _ComparatorFamily(MethodFamily):
    """Shared perf shape of the §7 comparators: ~86% wire compression
    (the paper-credited constant, independent of codec parameters) and
    a full-cache dequantization every decode iteration."""

    display_name = "?"
    dequant_traffic_scale = 1.0

    def build_method(self, **_params) -> Method:
        return Method(
            name=self.name,
            display_name=self.display_name,
            kv_wire_bytes_per_value=COMPARATOR_BYTES,
            kv_mem_bytes_per_value=COMPARATOR_BYTES,
            dequant_per_iter=True,
            dequant_traffic_scale=self.dequant_traffic_scale,
            quantize_cost=True,
        )


@register_family("cachegen")
class CacheGenFamily(_ComparatorFamily):
    description = "CacheGen-like anchor+delta codec (§2.2 comparator)"
    display_name = "CacheGen"
    params = {
        "chunk_size": ParamDef(16),
        "anchor_bits": ParamDef(8),
        "delta_bits": ParamDef(3),
        "delta_gain": ParamDef(16.0),
    }

    def build_compressors(self, **params):
        from ..quant.cachegen import CacheGenCompressor

        return (CacheGenCompressor(**params), CacheGenCompressor(**params))


@register_family("kvquant")
class KVQuantFamily(_ComparatorFamily):
    description = "KVQuant-like nuq codec (§2.2 comparator)"
    display_name = "KVQuant"
    #: KVQuant's nuq codebook gather + sparse-outlier scatter costs more
    #: per dequantization pass than CacheGen's dense-grid decode.
    dequant_traffic_scale = 1.25
    params = {
        "bits": ParamDef(2),
    }

    def build_compressors(self, *, bits):
        from ..quant.kvquant import KVQuantCompressor

        return (KVQuantCompressor(bits=bits, axis="channel"),
                KVQuantCompressor(bits=bits, axis="token"))


@register_family("fp")
class FpFormatFamily(MethodFamily):
    description = "FP4/FP6/FP8 minifloat KV storage (§3)"
    params = {
        "bits": ParamDef(8, choices=(4, 6, 8)),
    }

    _DISPLAY = {4: "FP4 (E2M1)", 6: "FP6 (E3M2)", 8: "FP8 (E4M3)"}

    def build_method(self, *, bits) -> Method:
        per_value = bits / 8.0 + 1.0 / 32.0  # MX scale byte per 32 values
        return Method(
            name=f"fp{bits}",
            display_name=self._DISPLAY[bits],
            kv_wire_bytes_per_value=per_value,
            kv_mem_bytes_per_value=per_value,
            # Pre-H100 GPUs must convert FPx to FP16 before compute (§3)
            # — the same per-iteration materialization cost as
            # dequantization.
            dequant_per_iter=True,
            fp8_attention_sim=(bits == 8),
            quantize_cost=True,
        )

    def build_compressors(self, *, bits):
        from ..quant.fp_formats import (
            FP4_E2M1,
            FP6_E3M2,
            FP8_E4M3,
            FpCastCompressor,
        )

        fmt = {4: FP4_E2M1, 6: FP6_E3M2, 8: FP8_E4M3}[bits]
        return (FpCastCompressor(fmt), FpCastCompressor(fmt))


@register_family("quant")
class GenericQuantFamily(MethodFamily):
    description = "generic dequantize-first partitioned INT quantizer"
    params = {
        "bits": ParamDef(4),
        "partition_size": ParamDef(64, alias="pi"),
        "dequant": ParamDef("per_iter", choices=("per_iter", "once"),
                            doc="per_iter: full-cache dequantization "
                                "every decode iteration; once: "
                                "materialized once on arrival"),
    }

    def build_method(self, *, bits, partition_size, dequant) -> Method:
        _check_quant_params(partition_size, bits)
        per_value = quantized_bytes_per_value(bits, partition_size,
                                              include_sums=False)
        once = dequant == "once"
        return Method(
            name=f"int{bits}_pi{partition_size}" + ("_once" if once else ""),
            display_name=(f"INT{bits} (Π={partition_size}, dequant once)"
                          if once else f"INT{bits} (Π={partition_size})"),
            kv_wire_bytes_per_value=per_value,
            kv_mem_bytes_per_value=per_value,
            dequant_per_iter=(dequant == "per_iter"),
            quantize_cost=True,
        )

    def build_compressors(self, *, bits, partition_size, **_ignored):
        from ..quant.hack_adapter import HackCompressor

        return tuple(
            HackCompressor(partition_size=partition_size, bits=bits,
                           plane_kind=kind, include_sums=False)
            for kind in ("k", "v")
        )


# -- the paper's method set as legacy aliases ---------------------------------

def _register_paper_methods() -> None:
    spec = MethodSpec.of
    register_legacy_alias("baseline", spec("baseline"))
    register_legacy_alias("cachegen", spec("cachegen"))
    register_legacy_alias("kvquant", spec("kvquant"))
    register_legacy_alias("hack", spec("hack"),
                          name="hack", display_name="HACK")
    register_legacy_alias("hack_pi32", spec("hack", partition_size=32))
    register_legacy_alias("hack_pi64", spec("hack", partition_size=64))
    register_legacy_alias("hack_pi128", spec("hack", partition_size=128))
    register_legacy_alias("hack_nose",
                          spec("hack", summation_elimination=False),
                          name="hack_nose", display_name="HACK/SE")
    register_legacy_alias("hack_norqe",
                          spec("hack", requant_elimination=False),
                          name="hack_norqe", display_name="HACK/RQE")
    # §8 future work: a CUDA INT4 kernel computing directly on the
    # 2-bit codes at INT4 tensor rates (2x INT8 throughput; realized
    # gain capped by the unchanged correction-term work).
    register_legacy_alias("hack_int4", spec("hack", int_compute_gain=1.6),
                          name="hack_int4",
                          display_name="HACK (INT4 kernel)")
    register_legacy_alias("fp4", spec("fp", bits=4))
    register_legacy_alias("fp6", spec("fp", bits=6))
    register_legacy_alias("fp8", spec("fp", bits=8))


_register_paper_methods()
