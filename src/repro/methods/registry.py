"""The paper's method set (§7: baseline, CacheGen, KVQuant, HACK + ablations).

Since the :class:`~repro.methods.spec.MethodSpec` redesign this module
no longer hard-codes :class:`~repro.methods.base.Method` instances: the
13 historical names are **legacy aliases** registered by
:mod:`repro.methods.families`, each backed by a family spec, and
``METHODS`` is materialized from them through the same resolution path
any spec takes (``resolve_method``).  The resulting Method objects are
bit-for-bit identical to the pre-spec registry (asserted by the golden
test in ``tests/methods/test_spec.py``).

Byte counts per KV scalar:

* baseline — FP16, 2 bytes;
* CacheGen / KVQuant — the paper credits both with ~86% compression
  (§2.2), i.e. 0.28 bytes/value including metadata;
* HACK — derived from its own layout: 2-bit codes + FP16 min/scale per
  Π-partition (+ SE sums resident on the decode side), giving 84.4%
  wire compression at Π=64 — the "approximately 15% of its original
  size" of §7.2;
* FP4/6/8 — format bits plus one OCP-MX scale byte per 32 values
  (73.4% / 60.9% / 48.4% compression, the §3 premise).
"""

from __future__ import annotations

import dataclasses

from . import families as _families  # noqa: F401  (registers the families)
from .base import Method
from .spec import MethodSpec, _suggest, legacy_names, resolve_method

__all__ = ["METHODS", "get_method", "hack_method", "PAPER_COMPARISON",
           "ABLATIONS", "FP_FORMAT_METHODS"]


def hack_method(
    partition_size: int = 64,
    summation_elimination: bool = True,
    requant_elimination: bool = True,
    name: str | None = None,
    display_name: str | None = None,
    int_compute_gain: float = 1.0,
) -> Method:
    """Build a HACK method variant (used for Π sensitivity and ablations).

    A thin wrapper over the ``hack`` family — kept for callers that
    want a Method directly rather than a :class:`MethodSpec`.
    """
    built = MethodSpec.of(
        "hack",
        partition_size=partition_size,
        summation_elimination=summation_elimination,
        requant_elimination=requant_elimination,
        int_compute_gain=int_compute_gain,
    ).build_method()
    overrides = {}
    if name is not None:
        overrides["name"] = name
    if display_name is not None:
        overrides["display_name"] = display_name
    return dataclasses.replace(built, **overrides) if overrides else built


#: name → Method for the paper's 13 methods, resolved through the spec
#: path (legacy aliases keep their historical names and display names).
METHODS: dict[str, Method] = {
    name: resolve_method(name) for name in legacy_names()
}

#: The four-way comparison of Figs. 9–12.
PAPER_COMPARISON = ("baseline", "cachegen", "kvquant", "hack")

#: The §7.4 ablation set (Fig. 13).
ABLATIONS = ("hack", "hack_nose", "hack_norqe")

#: The §3 low-precision floating-point study.
FP_FORMAT_METHODS = ("fp4", "fp6", "fp8")


def get_method(name: str) -> Method:
    """Look up a method by registry name.

    Raises :class:`ValueError` with close-match suggestions for typos
    (``hack_pi_64`` → "did you mean 'hack_pi64'?").  Parameterized
    specs (``hack?pi=256``) resolve through
    :func:`repro.methods.spec.resolve_method` instead — this lookup is
    the fixed paper set only.
    """
    try:
        return METHODS[name]
    except KeyError:
        raise ValueError(
            f"unknown method {name!r}{_suggest(name, METHODS)}"
        ) from None
