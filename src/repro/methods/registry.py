"""The paper's method set (§7: baseline, CacheGen, KVQuant, HACK + ablations).

Byte counts per KV scalar:

* baseline — FP16, 2 bytes;
* CacheGen / KVQuant — the paper credits both with ~86% compression
  (§2.2), i.e. 0.28 bytes/value including metadata;
* HACK — derived from its own layout: 2-bit codes + FP16 min/scale per
  Π-partition (+ SE sums resident on the decode side), giving 84.4%
  wire compression at Π=64 — the "approximately 15% of its original
  size" of §7.2;
* FP4/6/8 — format bits plus one OCP-MX scale byte per 32 values
  (73.4% / 60.9% / 48.4% compression, the §3 premise).
"""

from __future__ import annotations

from .base import FP16_BYTES, Method, quantized_bytes_per_value

__all__ = ["METHODS", "get_method", "hack_method", "PAPER_COMPARISON",
           "ABLATIONS", "FP_FORMAT_METHODS"]

#: ~86% compression credited to CacheGen/KVQuant in §2.2.
_COMPARATOR_BYTES = 0.28


def hack_method(
    partition_size: int = 64,
    summation_elimination: bool = True,
    requant_elimination: bool = True,
    name: str | None = None,
    display_name: str | None = None,
    int_compute_gain: float = 1.0,
) -> Method:
    """Build a HACK method variant (used for Π sensitivity and ablations)."""
    wire = quantized_bytes_per_value(2, partition_size, include_sums=False)
    mem = quantized_bytes_per_value(2, partition_size,
                                    include_sums=summation_elimination)
    if name is None:
        name = f"hack_pi{partition_size}"
        if not summation_elimination:
            name += "_nose"
        if not requant_elimination:
            name += "_norqe"
    if display_name is None:
        display_name = f"HACK (Π={partition_size})"
    return Method(
        name=name,
        display_name=display_name,
        kv_wire_bytes_per_value=wire,
        kv_mem_bytes_per_value=mem,
        dequant_per_iter=False,
        int8_attention=True,
        int_compute_gain=int_compute_gain,
        approx_per_iter=True,
        quantize_cost=True,
        partition_size=partition_size,
        summation_elimination=summation_elimination,
        requant_elimination=requant_elimination,
    )


def _fp_method(name: str, display: str, bits: int) -> Method:
    per_value = bits / 8.0 + 1.0 / 32.0  # MX scale byte per 32 values
    return Method(
        name=name,
        display_name=display,
        kv_wire_bytes_per_value=per_value,
        kv_mem_bytes_per_value=per_value,
        # Pre-H100 GPUs must convert FPx to FP16 before compute (§3) —
        # the same per-iteration materialization cost as dequantization.
        dequant_per_iter=True,
        fp8_attention_sim=(bits == 8),
        quantize_cost=True,
    )


METHODS: dict[str, Method] = {
    "baseline": Method(
        name="baseline",
        display_name="Baseline",
        kv_wire_bytes_per_value=FP16_BYTES,
        kv_mem_bytes_per_value=FP16_BYTES,
    ),
    "cachegen": Method(
        name="cachegen",
        display_name="CacheGen",
        kv_wire_bytes_per_value=_COMPARATOR_BYTES,
        kv_mem_bytes_per_value=_COMPARATOR_BYTES,
        dequant_per_iter=True,
        quantize_cost=True,
    ),
    "kvquant": Method(
        name="kvquant",
        display_name="KVQuant",
        kv_wire_bytes_per_value=_COMPARATOR_BYTES,
        kv_mem_bytes_per_value=_COMPARATOR_BYTES,
        dequant_per_iter=True,
        dequant_traffic_scale=1.25,
        quantize_cost=True,
    ),
    "hack": hack_method(64, name="hack", display_name="HACK"),
    "hack_pi32": hack_method(32),
    "hack_pi64": hack_method(64),   # alias of "hack" with explicit Π
    "hack_pi128": hack_method(128),
    "hack_nose": hack_method(64, summation_elimination=False,
                             name="hack_nose", display_name="HACK/SE"),
    "hack_norqe": hack_method(64, requant_elimination=False,
                              name="hack_norqe", display_name="HACK/RQE"),
    # §8 future work: a CUDA INT4 kernel computing directly on the
    # 2-bit codes at INT4 tensor rates (2x INT8 throughput; realized
    # gain capped by the unchanged correction-term work).
    "hack_int4": hack_method(64, name="hack_int4",
                             display_name="HACK (INT4 kernel)",
                             int_compute_gain=1.6),
    "fp4": _fp_method("fp4", "FP4 (E2M1)", 4),
    "fp6": _fp_method("fp6", "FP6 (E3M2)", 6),
    "fp8": _fp_method("fp8", "FP8 (E4M3)", 8),
}

#: The four-way comparison of Figs. 9–12.
PAPER_COMPARISON = ("baseline", "cachegen", "kvquant", "hack")

#: The §7.4 ablation set (Fig. 13).
ABLATIONS = ("hack", "hack_nose", "hack_norqe")

#: The §3 low-precision floating-point study.
FP_FORMAT_METHODS = ("fp4", "fp6", "fp8")


def get_method(name: str) -> Method:
    """Look up a method by registry name."""
    if name not in METHODS:
        raise KeyError(f"unknown method {name!r}; choose from {sorted(METHODS)}")
    return METHODS[name]
