"""Method descriptors wiring quantizers into the performance model.

Two layers:

* :class:`MethodSpec` (:mod:`repro.methods.spec`) — the open,
  serializable, sweepable method-definition API: families registered
  with :func:`register_family`, parameterized specs, a compact string
  grammar, and one resolution path producing both the perf-model
  :class:`Method` and the accuracy-side compressors;
* :mod:`repro.methods.registry` — the paper's 13 historical names,
  materialized through that same path as legacy aliases.
"""

from . import families  # noqa: F401  (registers built-in families/aliases)
from .base import FP16_BYTES, Method, quantized_bytes_per_value
from .registry import (
    ABLATIONS,
    FP_FORMAT_METHODS,
    METHODS,
    PAPER_COMPARISON,
    get_method,
    hack_method,
)
from .spec import (
    MethodFamily,
    MethodSpec,
    ParamDef,
    apply_method_params,
    canonical_method,
    get_family,
    has_registered_family,
    legacy_names,
    method_families,
    method_spec,
    parse_method,
    register_family,
    resolve_method,
    split_method_list,
)

__all__ = [
    "Method",
    "FP16_BYTES",
    "quantized_bytes_per_value",
    "METHODS",
    "get_method",
    "hack_method",
    "PAPER_COMPARISON",
    "ABLATIONS",
    "FP_FORMAT_METHODS",
    "MethodSpec",
    "MethodFamily",
    "ParamDef",
    "register_family",
    "get_family",
    "method_families",
    "method_spec",
    "parse_method",
    "resolve_method",
    "canonical_method",
    "split_method_list",
    "apply_method_params",
    "has_registered_family",
    "legacy_names",
]
