"""Method descriptors wiring quantizers into the performance model."""

from .base import FP16_BYTES, Method, quantized_bytes_per_value
from .registry import (
    ABLATIONS,
    FP_FORMAT_METHODS,
    METHODS,
    PAPER_COMPARISON,
    get_method,
    hack_method,
)

__all__ = [
    "Method",
    "FP16_BYTES",
    "quantized_bytes_per_value",
    "METHODS",
    "get_method",
    "hack_method",
    "PAPER_COMPARISON",
    "ABLATIONS",
    "FP_FORMAT_METHODS",
]
