"""Shared experiment machinery (§7.1 defaults).

Every experiment module calls :func:`run_methods` with the paper's
deployment (Table 2/3 fleets, A100 decode) and workload (Table 4
traces at the baseline system's capacity — "RPS set to the maximum
processing capacity").  ``scale`` shrinks the trace for quick benchmark
runs without changing the regime.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..methods.registry import get_method
from ..model.config import ModelSpec, get_model
from ..perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from ..sim.capacity import experiment_rps
from ..sim.engine import SimulationResult, default_cluster, simulate
from ..workload.datasets import get_dataset
from ..workload.traces import generate_trace

__all__ = ["ExperimentDefaults", "DEFAULTS", "run_methods", "jct_reduction",
           "model_dataset"]

#: §7.1 operating point: the cluster is loaded slightly past the
#: baseline's bottleneck capacity, the regime where the paper's JCT
#: gaps appear (the baseline queues; compressed methods keep headroom).
_LOAD_FACTOR = 1.05


@dataclass(frozen=True)
class ExperimentDefaults:
    """Trace size and load shared by the JCT experiments."""

    n_requests: int = 120
    load_factor: float = _LOAD_FACTOR
    seed: int = 1


DEFAULTS = ExperimentDefaults()


def model_dataset(model: ModelSpec, dataset_name: str) -> tuple[str, int | None]:
    """Resolve the paper's model↔dataset pairing quirks.

    Falcon-180B cannot process Cocktail (2K context); the paper
    substitutes arXiv capped to Falcon's window ("F-arXiv").  Returns
    ``(dataset_name, max_context)``.
    """
    ds = get_dataset(dataset_name)
    if ds.input_len.minimum >= model.max_context:
        return "arxiv", model.max_context
    if ds.input_len.maximum > model.max_context:
        return dataset_name, model.max_context
    return dataset_name, None


def run_methods(
    methods: tuple[str, ...],
    model: str | ModelSpec = "L",
    prefill_gpu: str = "A10G",
    dataset: str = "cocktail",
    n_requests: int | None = None,
    load_factor: float | None = None,
    seed: int | None = None,
    pipelining: bool = False,
    calib: Calibration = DEFAULT_CALIBRATION,
    rps: float | None = None,
    scale: float = 1.0,
) -> dict[str, SimulationResult]:
    """Simulate one (model, GPU, dataset) cell for several methods.

    All methods replay the *same trace* at the *baseline's* capacity
    rate, exactly as the paper compares them.  ``scale`` multiplies the
    trace length (use < 1 for quick runs).
    """
    spec = model if isinstance(model, ModelSpec) else get_model(model)
    dataset_name, max_context = model_dataset(spec, dataset)
    lf = DEFAULTS.load_factor if load_factor is None else load_factor
    sd = DEFAULTS.seed if seed is None else seed
    if rps is None:
        rps = experiment_rps(spec, prefill_gpu, dataset_name, calib=calib,
                             load_factor=lf)
    if n_requests is None:
        # Cover a comparable wall-clock horizon for every dataset: fast
        # workloads (short prompts at tens of RPS) need more requests
        # for queues at the bottleneck stage to become visible.
        n_requests = int(max(DEFAULTS.n_requests, min(600, rps * 30)))
    n = max(10, int(n_requests * scale))
    trace = generate_trace(dataset_name, rps, n, seed=sd,
                           max_context=max_context)
    results = {}
    for name in methods:
        config = default_cluster(spec, get_method(name), prefill_gpu,
                                 calib=calib, pipelining=pipelining)
        results[name] = simulate(config, trace)
    return results


def jct_reduction(results: dict[str, SimulationResult], method: str,
                  versus: str) -> float:
    """Fractional JCT reduction of ``method`` relative to ``versus``."""
    return 1.0 - results[method].avg_jct() / results[versus].avg_jct()
