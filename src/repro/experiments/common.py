"""Shared experiment machinery (§7.1 defaults) — now a thin layer over
:mod:`repro.api`.

Every experiment module expresses its grid as declarative
:class:`~repro.api.Scenario` / :class:`~repro.api.Sweep` definitions and
runs them through a :class:`~repro.api.Runner`.  The historical
:func:`run_methods` keyword interface is kept for tests, benchmarks and
notebooks; it simply builds a Scenario and returns the simulation
results from its artifact.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..api.artifact import RunArtifact
from ..api.runner import Runner
from ..api.scenario import (
    DEFAULT_LOAD_FACTOR,
    DEFAULT_N_REQUESTS,
    DEFAULT_SEED,
    Scenario,
    model_dataset,
)
from ..api.sweep import Sweep
from ..model.config import MODEL_LETTERS as MODEL_REGISTRY, ModelSpec
from ..perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from ..sim.engine import SimulationResult

__all__ = ["ExperimentDefaults", "DEFAULTS", "run_methods", "jct_reduction",
           "model_dataset", "make_scenario", "run_grid"]


@dataclass(frozen=True)
class ExperimentDefaults:
    """Trace size and load shared by the JCT experiments."""

    n_requests: int = DEFAULT_N_REQUESTS
    load_factor: float = DEFAULT_LOAD_FACTOR
    seed: int = DEFAULT_SEED


DEFAULTS = ExperimentDefaults()


def make_scenario(
    methods: tuple[str, ...],
    model: str | ModelSpec = "L",
    prefill_gpu: str = "A10G",
    dataset: str = "cocktail",
    n_requests: int | None = None,
    load_factor: float | None = None,
    seed: int | None = None,
    pipelining: bool = False,
    calib: Calibration = DEFAULT_CALIBRATION,
    rps: float | None = None,
    scale: float = 1.0,
) -> Scenario:
    """Build a Scenario from the historical ``run_methods`` keywords."""
    if isinstance(model, ModelSpec):
        # Scenarios are JSON-serializable, so they reference models by
        # registry name; an unregistered or modified spec cannot be
        # expressed and must not be silently swapped for the stock one.
        registered = MODEL_REGISTRY.get(model.letter)
        if registered != model:
            raise ValueError(
                f"model spec {model.name!r} is not the registry entry for "
                f"letter {model.letter!r}; scenarios reference models by "
                "registry name — register the spec or pass its name"
            )
        model_name = model.letter
    else:
        model_name = model
    overrides = None
    if calib != DEFAULT_CALIBRATION:
        defaults = dataclasses.asdict(DEFAULT_CALIBRATION)
        overrides = tuple(
            (k, v) for k, v in sorted(dataclasses.asdict(calib).items())
            if v != defaults[k]
        )
    return Scenario(model=model_name, methods=tuple(methods),
                    dataset=dataset, prefill_gpu=prefill_gpu,
                    n_requests=n_requests, load_factor=load_factor,
                    seed=seed, pipelining=pipelining, rps=rps, scale=scale,
                    calibration=overrides)


def run_methods(
    methods: tuple[str, ...],
    model: str | ModelSpec = "L",
    prefill_gpu: str = "A10G",
    dataset: str = "cocktail",
    n_requests: int | None = None,
    load_factor: float | None = None,
    seed: int | None = None,
    pipelining: bool = False,
    calib: Calibration = DEFAULT_CALIBRATION,
    rps: float | None = None,
    scale: float = 1.0,
) -> dict[str, SimulationResult]:
    """Simulate one (model, GPU, dataset) cell for several methods.

    All methods replay the *same trace* at the *baseline's* capacity
    rate, exactly as the paper compares them.  ``scale`` multiplies the
    trace length (use < 1 for quick runs).
    """
    scenario = make_scenario(methods, model=model, prefill_gpu=prefill_gpu,
                             dataset=dataset, n_requests=n_requests,
                             load_factor=load_factor, seed=seed,
                             pipelining=pipelining, calib=calib, rps=rps,
                             scale=scale)
    return Runner().run(scenario).results


def run_grid(sweep: Sweep, scale: float = 1.0,
             runner: Runner | None = None) -> list[RunArtifact]:
    """Run a sweep at ``scale`` (the experiment modules' entry path)."""
    runner = runner or Runner()
    return runner.run_sweep(sweep.override(scale=scale))


def jct_reduction(results: dict[str, SimulationResult], method: str,
                  versus: str) -> float:
    """Fractional JCT reduction of ``method`` relative to ``versus``."""
    return 1.0 - results[method].avg_jct() / results[versus].avg_jct()
