"""Figs. 9–12 — end-to-end JCT comparison (§7.2).

* Fig. 9: average JCT by dataset (Llama-70B, A10G prefill).
* Fig. 10: the Fig. 9 runs decomposed into prefill / quant / comm /
  dequant-or-approx / decode buckets.
* Fig. 11: average JCT by model (Cocktail; Falcon on capped arXiv).
* Fig. 12: average JCT by prefill GPU (Llama-70B, Cocktail).

Shapes: HACK < CacheGen ≤ KVQuant < Baseline everywhere; HACK's gain
over the baseline peaks on the lowest-bandwidth instance (V100) and its
gain over the quantization comparators is smallest there (no INT8).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import SeriesFigure, Table
from ..methods.registry import PAPER_COMPARISON
from ..model.config import get_model
from ..sim.engine import SimulationResult
from .common import jct_reduction, run_methods
from .fig1_motivation import DATASETS, GPUS, MODEL_LETTERS

__all__ = ["JctByDataset", "JctByModel", "JctByGpu", "run_fig9_fig10",
           "run_fig11", "run_fig12"]

_BUCKETS = ("prefill", "quant", "comm", "dequant_or_approx", "decode", "queue")


@dataclass
class JctByDataset:
    """Figs. 9 and 10 combined (same simulations)."""

    jct: SeriesFigure
    decomposition: dict[str, Table]
    results: dict[str, dict[str, SimulationResult]]

    def reduction(self, dataset: str, method: str, versus: str) -> float:
        return jct_reduction(self.results[dataset], method, versus)

    def render(self) -> str:
        parts = [self.jct.render()]
        parts.extend(t.render() for t in self.decomposition.values())
        return "\n\n".join(parts)


def run_fig9_fig10(scale: float = 1.0) -> JctByDataset:
    """Average JCT and its decomposition across datasets."""
    jct = SeriesFigure("Fig 9: average JCT (s) by dataset "
                       "(Llama-70B, A10G prefill)", "method",
                       list(PAPER_COMPARISON))
    decomposition = {}
    results = {}
    for dataset in DATASETS:
        res = run_methods(PAPER_COMPARISON, dataset=dataset, scale=scale)
        results[dataset] = res
        jct.add_series(dataset, [res[m].avg_jct() for m in PAPER_COMPARISON])
        table = Table(f"Fig 10: JCT decomposition (s) — {dataset}",
                      ["method", *_BUCKETS])
        for method in PAPER_COMPARISON:
            decomp = res[method].mean_decomposition()
            table.add_row(method, *(decomp[b] for b in _BUCKETS))
        decomposition[dataset] = table
    return JctByDataset(jct=jct, decomposition=decomposition, results=results)


@dataclass
class JctByModel:
    jct: SeriesFigure
    results: dict[str, dict[str, SimulationResult]]

    def reduction(self, label: str, method: str, versus: str) -> float:
        return jct_reduction(self.results[label], method, versus)

    def render(self) -> str:
        return self.jct.render()


def run_fig11(scale: float = 1.0) -> JctByModel:
    """Average JCT across models (Cocktail / F-arXiv, A10G prefill)."""
    jct = SeriesFigure("Fig 11: average JCT (s) by model (A10G prefill)",
                       "method", list(PAPER_COMPARISON))
    results = {}
    for letter in MODEL_LETTERS:
        label = "F-arXiv" if letter == "F" else letter
        res = run_methods(PAPER_COMPARISON, model=get_model(letter),
                          scale=scale)
        results[label] = res
        jct.add_series(label, [res[m].avg_jct() for m in PAPER_COMPARISON])
    return JctByModel(jct=jct, results=results)


@dataclass
class JctByGpu:
    jct: SeriesFigure
    results: dict[str, dict[str, SimulationResult]]

    def reduction(self, gpu: str, method: str, versus: str) -> float:
        return jct_reduction(self.results[gpu], method, versus)

    def render(self) -> str:
        return self.jct.render()


def run_fig12(scale: float = 1.0) -> JctByGpu:
    """Average JCT across prefill GPUs (Llama-70B, Cocktail)."""
    jct = SeriesFigure("Fig 12: average JCT (s) by prefill instance "
                       "(Llama-70B, Cocktail)", "method",
                       list(PAPER_COMPARISON))
    results = {}
    for gpu in GPUS:
        res = run_methods(PAPER_COMPARISON, prefill_gpu=gpu, scale=scale)
        results[gpu] = res
        jct.add_series(gpu, [res[m].avg_jct() for m in PAPER_COMPARISON])
    return JctByGpu(jct=jct, results=results)
