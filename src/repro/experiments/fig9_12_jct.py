"""Figs. 9–12 — end-to-end JCT comparison (§7.2).

* Fig. 9: average JCT by dataset (Llama-70B, A10G prefill).
* Fig. 10: the Fig. 9 runs decomposed into prefill / quant / comm /
  dequant-or-approx / decode buckets.
* Fig. 11: average JCT by model (Cocktail; Falcon on capped arXiv).
* Fig. 12: average JCT by prefill GPU (Llama-70B, Cocktail).

Each figure is one declarative :class:`~repro.api.Sweep` of the paper's
four-way comparison scenario over a single axis.

Shapes: HACK < CacheGen ≤ KVQuant < Baseline everywhere; HACK's gain
over the baseline peaks on the lowest-bandwidth instance (V100) and its
gain over the quantization comparators is smallest there (no INT8).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import SeriesFigure, Table
from ..api import Runner, Scenario, Sweep
from ..methods.registry import PAPER_COMPARISON
from ..sim.engine import SimulationResult
from .common import jct_reduction, run_grid
from .fig1_motivation import DATASETS, GPUS, MODEL_LETTERS, model_label

__all__ = ["JctByDataset", "JctByModel", "JctByGpu", "run_fig9_fig10",
           "run_fig11", "run_fig12", "FIG9_SWEEP", "FIG11_SWEEP",
           "FIG12_SWEEP"]

_BUCKETS = ("prefill", "quant", "comm", "dequant_or_approx", "decode", "queue")

_COMPARISON = Scenario(methods=PAPER_COMPARISON)
FIG9_SWEEP = Sweep(_COMPARISON, axes={"dataset": DATASETS})
FIG11_SWEEP = Sweep(_COMPARISON, axes={"model": MODEL_LETTERS})
FIG12_SWEEP = Sweep(_COMPARISON, axes={"prefill_gpu": GPUS})


@dataclass
class JctByDataset:
    """Figs. 9 and 10 combined (same simulations)."""

    jct: SeriesFigure
    decomposition: dict[str, Table]
    results: dict[str, dict[str, SimulationResult]]

    def reduction(self, dataset: str, method: str, versus: str) -> float:
        return jct_reduction(self.results[dataset], method, versus)

    def render(self) -> str:
        parts = [self.jct.render()]
        parts.extend(t.render() for t in self.decomposition.values())
        return "\n\n".join(parts)


def run_fig9_fig10(scale: float = 1.0,
                   runner: Runner | None = None) -> JctByDataset:
    """Average JCT and its decomposition across datasets."""
    jct = SeriesFigure("Fig 9: average JCT (s) by dataset "
                       "(Llama-70B, A10G prefill)", "method",
                       list(PAPER_COMPARISON))
    decomposition = {}
    results = {}
    for art in run_grid(FIG9_SWEEP, scale, runner):
        dataset, res = art.scenario.dataset, art.results
        results[dataset] = res
        jct.add_series(dataset, [res[m].avg_jct() for m in PAPER_COMPARISON])
        table = Table(f"Fig 10: JCT decomposition (s) — {dataset}",
                      ["method", *_BUCKETS])
        for method in PAPER_COMPARISON:
            decomp = res[method].mean_decomposition()
            table.add_row(method, *(decomp[b] for b in _BUCKETS))
        decomposition[dataset] = table
    return JctByDataset(jct=jct, decomposition=decomposition, results=results)


@dataclass
class JctByModel:
    jct: SeriesFigure
    results: dict[str, dict[str, SimulationResult]]

    def reduction(self, label: str, method: str, versus: str) -> float:
        return jct_reduction(self.results[label], method, versus)

    def render(self) -> str:
        return self.jct.render()


def run_fig11(scale: float = 1.0, runner: Runner | None = None) -> JctByModel:
    """Average JCT across models (Cocktail / F-arXiv, A10G prefill)."""
    jct = SeriesFigure("Fig 11: average JCT (s) by model (A10G prefill)",
                       "method", list(PAPER_COMPARISON))
    results = {}
    for art in run_grid(FIG11_SWEEP, scale, runner):
        label, res = model_label(art.scenario.model), art.results
        results[label] = res
        jct.add_series(label, [res[m].avg_jct() for m in PAPER_COMPARISON])
    return JctByModel(jct=jct, results=results)


@dataclass
class JctByGpu:
    jct: SeriesFigure
    results: dict[str, dict[str, SimulationResult]]

    def reduction(self, gpu: str, method: str, versus: str) -> float:
        return jct_reduction(self.results[gpu], method, versus)

    def render(self) -> str:
        return self.jct.render()


def run_fig12(scale: float = 1.0, runner: Runner | None = None) -> JctByGpu:
    """Average JCT across prefill GPUs (Llama-70B, Cocktail)."""
    jct = SeriesFigure("Fig 12: average JCT (s) by prefill instance "
                       "(Llama-70B, Cocktail)", "method",
                       list(PAPER_COMPARISON))
    results = {}
    for art in run_grid(FIG12_SWEEP, scale, runner):
        gpu, res = art.scenario.prefill_gpu, art.results
        results[gpu] = res
        jct.add_series(gpu, [res[m].avg_jct() for m in PAPER_COMPARISON])
    return JctByGpu(jct=jct, results=results)
