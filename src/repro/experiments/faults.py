"""Fault-injection study: failures × recovery policies (beyond the
paper).

The paper's evaluation assumes a healthy cluster; production
disaggregated serving must survive replica crashes, NIC brownouts,
flaky KV transfers and cache-tier outages.  This experiment runs the
shipped fault families against each recovery policy, for both the
baseline and HACK methods, under bursty (MMPP) traffic with a warm KV
store — so the KV-aided recovery path (re-fetching a crashed request's
prefix from the store instead of recomputing it) is exercised.

Reported per cell: availability (fraction of requests that reached a
terminal ``finished`` state), failed/recovered counts, the wasted-work
fraction (compute thrown away by crashes and re-execution), goodput
under faults, and mean JCT.  Shapes: ``none`` recovery converts every
fault into a failed request (availability drops, wasted work stays
low); ``retry`` recovers most requests at the cost of wasted compute
and inflated tail JCT; crashes hurt more than NIC brownouts, which
only stretch transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import Table
from ..api import Runner, Scenario, Sweep
from ..sim.engine import SimulationResult
from .common import run_grid

__all__ = ["FaultStudy", "run", "FAULT_SWEEP", "BASELINE_SWEEP",
           "FAULT_PLANS", "RECOVERIES", "BURSTY_ARRIVAL"]

#: The fault axis: one entry per shipped family, timed so each fires
#: well inside the experiment horizon, plus a compound plan.
FAULT_PLANS = (
    "replica_crash?mttf=120.0,mttr=15.0",
    "nic_degrade?factor=0.25,start=30.0,duration=90.0",
    "transfer_flap?p_fail=0.05",
    "kvstore_outage?tier=dram,start=30.0,duration=90.0",
    "replica_crash?mttf=180.0,mttr=20.0+transfer_flap?p_fail=0.02",
)

#: The recovery axis: fail-fast, exponential backoff, immediate migrate.
RECOVERIES = ("none", "retry?max=3.0,base_s=0.5,cap_s=8.0", "migrate")

#: Bursty arrivals make capacity loss visible: a crash during a burst
#: backs up the queue far more than one during a lull.
BURSTY_ARRIVAL = "mmpp?burst=4.0,duty=0.1,dwell=20.0"

_BASE = Scenario(methods=("baseline", "hack"), arrival=BURSTY_ARRIVAL,
                 kvstore="tiered?dram_gb=8.0")

FAULT_SWEEP = Sweep(_BASE, axes={"faults": FAULT_PLANS,
                                 "recovery": RECOVERIES})

#: The healthy-cluster reference row (no faults, recovery irrelevant).
BASELINE_SWEEP = Sweep(_BASE, axes={"faults": (None,)})


@dataclass
class FaultStudy:
    """Fault × recovery grid plus the live results."""

    table: Table
    #: ``results[(faults, recovery, method)]`` — axis values as the
    #: Scenario canonicalized them (``(None, None, m)`` for the
    #: healthy-cluster rows).
    results: dict[tuple[str | None, str | None, str], SimulationResult]

    def render(self) -> str:
        return self.table.render()

    def healthy(self, method: str = "hack") -> SimulationResult:
        """The no-fault reference row for ``method``."""
        return self.results[(None, None, method)]


def _add_rows(table: Table, results: dict, artifacts) -> None:
    for art in artifacts:
        scn = art.scenario
        for method, res in art.results.items():
            results[(scn.faults, scn.recovery, method)] = res
            summ = res.summary()
            table.add_row(
                scn.faults or "(none)", scn.recovery or "-", method,
                res.availability(), summ["n_failed"],
                sum(1 for r in res.requests if r.recovered),
                res.wasted_work_fraction(),
                res.goodput_under_faults_rps(), summ["avg_jct_s"],
                summ["p99_ttft_s"])


def run(scale: float = 1.0, runner: Runner | None = None) -> FaultStudy:
    """Fault-family × recovery-policy grid under bursty traffic."""
    table = Table(
        "Fault injection × recovery (Llama-70B, A10G, Cocktail, MMPP)",
        ["faults", "recovery", "method", "availability", "failed",
         "recovered", "wasted_frac", "goodput_rps", "avg_jct_s",
         "p99_ttft_s"],
    )
    results: dict[tuple[str | None, str | None, str],
                  SimulationResult] = {}
    _add_rows(table, results, run_grid(BASELINE_SWEEP, scale, runner))
    _add_rows(table, results, run_grid(FAULT_SWEEP, scale, runner))
    return FaultStudy(table=table, results=results)
