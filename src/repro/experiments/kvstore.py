"""Tiered KV-store study: prefix caching × compression selection
(beyond the paper).

The paper ships every request's KV from prefill to decode and forgets
it.  Production disaggregated stacks (Mooncake, CachedAttention,
KVServe-style pools) interpose a storage tier: multi-turn sessions
re-prefill a growing shared prefix on every turn, so caching the
compressed KV in a GPU→DRAM→pool hierarchy converts that repeated
prefill compute into a tier read.  This experiment runs a multi-turn
session workload (``sessions`` arrival family, per-session SLO classes)
over a grid of store configurations × compression-selection policies
and reports what the store buys: prefix hit rate, prefill tokens
skipped, TTFT (the metric prefix caching moves), JCT, SLO goodput,
eviction churn, and which method each service class ended up on.

Shapes: any warm store slashes mean TTFT versus the cold baseline (the
first row) because turn *t* re-prefills only its new tokens; the tiny
``ttl``-evicting store shows eviction churn and a lower hit rate;
``slo_tier`` selection moves premium traffic to heavier-accuracy
methods at some wire-bytes cost; ``congestion`` selection only departs
from the scenario method when the pool/NIC signal trips.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import Table
from ..api import Runner, Scenario, Sweep
from ..sim.engine import SimulationResult
from .common import run_grid

__all__ = ["KVStoreStudy", "run", "KVSTORE_SWEEP", "KVSTORES",
           "SELECTIONS", "SESSION_ARRIVAL"]

#: The store axis: cold (no store — the historical engine path), the
#: default hierarchy, an LFU variant, and a deliberately undersized
#: TTL-evicting store whose churn halves the hit rate.  ``None`` means
#: "no kvstore", exactly as the Scenario field spells it.
KVSTORES = (
    None,
    "tiered?dram_gb=8.0",
    "tiered?dram_gb=8.0+lfu",
    "tiered?hbm_gb=0.1,dram_gb=1.0,pool_gb=4.0+ttl?seconds=120.0",
)

#: The selection axis: one method for everyone (None), per-SLO-class
#: methods, and congestion-triggered escalation.
SELECTIONS = (None, "slo_tier", "congestion?hi=0.75,lo=0.5")

#: Multi-turn sessions with three service classes: ~4 turns each, 30 s
#: think time, each turn's prompt ~30% new tokens on top of the shared
#: conversation prefix.
SESSION_ARRIVAL = "sessions?turns=4.0,think_time=30.0,prefix_growth=0.3,tiers=3.0"

KVSTORE_SWEEP = Sweep(
    Scenario(methods=("hack",), arrival=SESSION_ARRIVAL),
    axes={"kvstore": KVSTORES, "selection": SELECTIONS},
)


@dataclass
class KVStoreStudy:
    """Store × selection grid plus the live results."""

    table: Table
    #: ``results[(kvstore, selection)]`` — axis values as the Scenario
    #: canonicalized them (``None`` for the cold / static rows).
    results: dict[tuple[str | None, str | None], SimulationResult]

    def render(self) -> str:
        return self.table.render()

    def cold(self) -> SimulationResult:
        """The no-store, no-selection baseline row."""
        return self.results[(None, None)]


def _mix_label(mix: dict | None) -> str:
    """Compact per-tier dominant-method label, e.g. ``0:bl 1:hack``."""
    if not mix:
        return "-"
    parts = []
    for tier, counts in sorted(mix.items()):
        best = max(sorted(counts), key=lambda m: counts[m])
        parts.append(f"{tier}:{best}")
    return " ".join(parts)


def run(scale: float = 1.0, runner: Runner | None = None) -> KVStoreStudy:
    """Store-config × selection-policy grid on a session workload."""
    table = Table(
        "Tiered KV store × compression selection (Llama-70B, A10G, "
        "Cocktail sessions)",
        ["kvstore", "selection", "hit_rate", "skipped_ktok", "mean_ttft_s",
         "p99_ttft_s", "avg_jct_s", "goodput_rps", "evictions",
         "method_by_tier"],
    )
    results: dict[tuple[str | None, str | None], SimulationResult] = {}
    for art in run_grid(KVSTORE_SWEEP, scale, runner):
        scn = art.scenario
        res = art.results["hack"]
        results[(scn.kvstore, scn.selection)] = res
        stats = res.kvstore_stats
        hit_rate = stats["hit_rate"] if stats else 0.0
        skipped = stats["prefill_tokens_skipped"] / 1e3 if stats else 0.0
        evictions = sum(t["evictions"] for t in stats["tiers"].values()) \
            if stats else 0
        summ = res.summary()
        table.add_row(scn.kvstore or "(none)", scn.selection or "(static)",
                      hit_rate, skipped, summ["mean_ttft_s"],
                      summ["p99_ttft_s"], summ["avg_jct_s"],
                      summ["slo_goodput_rps"], evictions,
                      _mix_label(res.selection_mix))
    return KVStoreStudy(table=table, results=results)
