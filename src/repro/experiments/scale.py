"""Elastic-cluster study: autoscaling × admission over a diurnal day
(beyond the paper).

The paper sizes fleets for peak load; a production cluster sees a
diurnal arrival curve and pays for every provisioned GPU-hour whether
it serves traffic or idles.  This experiment runs a sinusoidal
(diurnal) arrival process — one full period of high amplitude, so the
trough sits far below peak — against each shipped autoscaler, with and
without queue-cap admission control.

Reported per cell: goodput per GPU-hour (the headline efficiency
metric), total GPU-hours billed, mean/peak prefill replicas, scale-up
and scale-down counts, shed requests, p99 TTFT and SLO goodput.
Shapes: the peak-sized ``static`` fleet posts the best tail latency
but burns GPU-hours through the trough, so ``reactive`` (and a
well-tuned ``schedule``) beat it on goodput per GPU-hour; queue-cap
``shed`` admission bounds p99 TTFT during the ramp at the cost of a
few rejected requests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import Table
from ..api import Runner, Scenario, Sweep
from ..sim.engine import SimulationResult
from .common import run_grid

__all__ = ["ScaleStudy", "run", "SCALE_SWEEP", "AUTOSCALERS",
           "ADMISSIONS", "ARRIVALS"]

#: The arrival axis: one diurnal day at two amplitudes.  ``amp=0.95``
#: drops the trough to 5% of peak — the regime where elasticity pays.
ARRIVALS = (
    "diurnal?amp=0.6,period=900.0",
    "diurnal?amp=0.95,period=900.0",
)

#: The autoscaler axis: peak-sized static fleet (the paper's implicit
#: baseline), backlog-reactive scaling, and a clairvoyant schedule
#: that halves the fleet for the second half of the period.
AUTOSCALERS = (
    "static",
    "reactive?queue_hi=6.0,queue_lo=1.0,cooldown_s=45.0,"
    "interval_s=5.0,cold_start_s=20.0",
    "schedule?plan=0:1.0|450:0.35,period_s=900.0,"
    "interval_s=5.0,cold_start_s=20.0",
)

#: The admission axis: accept everything vs. a queue cap that sheds
#: arrivals once the prefill backlog passes 48 requests.
ADMISSIONS = (None, "shed?queue_max=48.0")

#: Mild average load (the diurnal peak still saturates): elasticity is
#: about the trough, not the peak.
_BASE = Scenario(methods=("hack",), load_factor=0.55,
                 n_prefill_replicas=4)

SCALE_SWEEP = Sweep(_BASE, axes={"arrival": ARRIVALS,
                                 "autoscaler": AUTOSCALERS,
                                 "admission": ADMISSIONS})


@dataclass
class ScaleStudy:
    """Arrival × autoscaler × admission grid plus the live results."""

    table: Table
    #: ``results[(arrival, autoscaler, admission, method)]`` — axis
    #: values as the Scenario canonicalized them (``admission`` is
    #: None for the accept-all cells).
    results: dict[tuple[str, str | None, str | None, str],
                  SimulationResult]

    def render(self) -> str:
        return self.table.render()

    def static_reference(self, arrival: str = ARRIVALS[0],
                         method: str = "hack") -> SimulationResult:
        """The peak-sized static fleet cell for ``arrival``."""
        return self.results[(arrival, "static", None, method)]


def _add_rows(table: Table, results: dict, artifacts) -> None:
    for art in artifacts:
        scn = art.scenario
        for method, res in art.results.items():
            results[(scn.arrival, scn.autoscaler, scn.admission,
                     method)] = res
            summ = res.summary()
            elastic = summ.get("elastic", {})
            table.add_row(
                scn.arrival, scn.autoscaler or "static",
                scn.admission or "-", method,
                summ["goodput_per_gpu_hour"], summ["gpu_hours"],
                elastic.get("mean_prefill_replicas", float("nan")),
                elastic.get("peak_prefill_replicas", float("nan")),
                elastic.get("n_scale_ups", 0),
                elastic.get("n_scale_downs", 0),
                elastic.get("n_shed", 0),
                summ["p99_ttft_s"], summ["slo_goodput_rps"])


def run(scale: float = 1.0, runner: Runner | None = None) -> ScaleStudy:
    """Autoscaler × admission grid over a diurnal arrival day."""
    table = Table(
        "Elastic scaling × admission (Llama-70B, A10G, Cocktail, "
        "diurnal)",
        ["arrival", "autoscaler", "admission", "method",
         "goodput_per_gpuh", "gpu_hours", "mean_prefill",
         "peak_prefill", "ups", "downs", "shed", "p99_ttft_s",
         "slo_goodput_rps"],
    )
    results: dict[tuple[str, str | None, str | None, str],
                  SimulationResult] = {}
    _add_rows(table, results, run_grid(SCALE_SWEEP, scale, runner))
    return ScaleStudy(table=table, results=results)
