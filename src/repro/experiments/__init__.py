"""One module per paper artifact (see DESIGN.md §4 for the index)."""

from . import (
    fig1_motivation,
    fig2_4_quant_overhead,
    fig9_12_jct,
    fig13_ablation,
    fig14_scalability,
    faults,
    kvstore,
    scale,
    scheduling,
    sec3_fp_formats,
    slo_goodput,
    table5_memory,
    table6_accuracy,
    table8_sensitivity,
)

__all__ = [
    "fig1_motivation",
    "fig2_4_quant_overhead",
    "fig9_12_jct",
    "fig13_ablation",
    "fig14_scalability",
    "faults",
    "kvstore",
    "scale",
    "scheduling",
    "sec3_fp_formats",
    "slo_goodput",
    "table5_memory",
    "table6_accuracy",
    "table8_sensitivity",
]
