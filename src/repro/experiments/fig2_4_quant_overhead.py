"""Figs. 2–4 — CacheGen/KVQuant inside the disaggregated pipeline (§2.2).

Repeats the Fig. 1 sweeps with the two KV-quantization comparators:
communication shrinks dramatically, but a new dequantization bucket
appears at 15–38% of JCT — the overhead HACK exists to remove.

Shapes: comm ratio far below the baseline's on every axis; the dequant
ratio largest on long-sequence datasets (12–25× the short ones).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import SeriesFigure
from ..model.config import get_model
from .common import run_methods
from .fig1_motivation import DATASETS, GPUS, MODEL_LETTERS

__all__ = ["QuantOverheadResult", "run"]

_RATIO_KEYS = ("prefill", "comm", "dequant", "decode")
METHODS = ("cachegen", "kvquant")


@dataclass
class QuantOverheadResult:
    """One panel set per comparator method."""

    by_gpu: dict[str, SeriesFigure]
    by_model: dict[str, SeriesFigure]
    by_dataset: dict[str, SeriesFigure]

    def render(self) -> str:
        parts = []
        for group in (self.by_gpu, self.by_model, self.by_dataset):
            parts.extend(fig.render() for fig in group.values())
        return "\n\n".join(parts)


def _ratios(result) -> list[float]:
    ratios = result.mean_ratios(include_queue=False)
    return [
        100 * (ratios["prefill"] + ratios["quant"]),
        100 * ratios["comm"],
        100 * ratios["dequant_or_approx"],
        100 * ratios["decode"],
    ]


def run(scale: float = 1.0) -> QuantOverheadResult:
    """Reproduce Figs. 2 (by GPU), 3 (by model) and 4 (by dataset)."""
    by_gpu, by_model, by_dataset = {}, {}, {}
    for method in METHODS:
        fig = SeriesFigure(f"Fig 2: {method} time ratios by prefill GPU",
                           "bucket", list(_RATIO_KEYS))
        for gpu in GPUS:
            res = run_methods((method,), prefill_gpu=gpu, scale=scale)
            fig.add_series(gpu, _ratios(res[method]))
        by_gpu[method] = fig

        fig = SeriesFigure(f"Fig 3: {method} time ratios by model",
                           "bucket", list(_RATIO_KEYS))
        for letter in MODEL_LETTERS:
            label = "F-arXiv" if letter == "F" else letter
            res = run_methods((method,), model=get_model(letter), scale=scale)
            fig.add_series(label, _ratios(res[method]))
        by_model[method] = fig

        fig = SeriesFigure(f"Fig 4: {method} time ratios by dataset",
                           "bucket", list(_RATIO_KEYS))
        for dataset in DATASETS:
            res = run_methods((method,), dataset=dataset, scale=scale)
            fig.add_series(dataset, _ratios(res[method]))
        by_dataset[method] = fig

    return QuantOverheadResult(by_gpu=by_gpu, by_model=by_model,
                               by_dataset=by_dataset)
