"""Figs. 2–4 — CacheGen/KVQuant inside the disaggregated pipeline (§2.2).

Repeats the Fig. 1 sweeps with the two KV-quantization comparators:
communication shrinks dramatically, but a new dequantization bucket
appears at 15–38% of JCT — the overhead HACK exists to remove.

The grids are declarative :class:`~repro.api.Sweep` definitions with a
``methods`` axis (each method is its own scenario, replaying the same
per-cell trace, exactly as the paper compares them).

Shapes: comm ratio far below the baseline's on every axis; the dequant
ratio largest on long-sequence datasets (12–25× the short ones).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import SeriesFigure
from ..api import Runner, Scenario, Sweep
from .common import run_grid
from .fig1_motivation import DATASETS, GPUS, MODEL_LETTERS, model_label

__all__ = ["QuantOverheadResult", "run", "METHODS", "BY_GPU_SWEEP",
           "BY_MODEL_SWEEP", "BY_DATASET_SWEEP"]

_RATIO_KEYS = ("prefill", "comm", "dequant", "decode")
METHODS = ("cachegen", "kvquant")

_METHOD_AXIS = {"methods": [(m,) for m in METHODS]}
BY_GPU_SWEEP = Sweep(Scenario(), axes={**_METHOD_AXIS, "prefill_gpu": GPUS})
BY_MODEL_SWEEP = Sweep(Scenario(), axes={**_METHOD_AXIS,
                                         "model": MODEL_LETTERS})
BY_DATASET_SWEEP = Sweep(Scenario(), axes={**_METHOD_AXIS,
                                           "dataset": DATASETS})


@dataclass
class QuantOverheadResult:
    """One panel set per comparator method."""

    by_gpu: dict[str, SeriesFigure]
    by_model: dict[str, SeriesFigure]
    by_dataset: dict[str, SeriesFigure]

    def render(self) -> str:
        parts = []
        for group in (self.by_gpu, self.by_model, self.by_dataset):
            parts.extend(fig.render() for fig in group.values())
        return "\n\n".join(parts)


def _ratios(result) -> list[float]:
    ratios = result.mean_ratios(include_queue=False)
    return [
        100 * (ratios["prefill"] + ratios["quant"]),
        100 * ratios["comm"],
        100 * ratios["dequant_or_approx"],
        100 * ratios["decode"],
    ]


def _panels(sweep: Sweep, title: str, series_of, scale: float,
            runner: Runner | None) -> dict[str, SeriesFigure]:
    figures = {
        m: SeriesFigure(title.format(method=m), "bucket", list(_RATIO_KEYS))
        for m in METHODS
    }
    for art in run_grid(sweep, scale, runner):
        method = art.scenario.methods[0]
        figures[method].add_series(series_of(art.scenario),
                                   _ratios(art.results[method]))
    return figures


def run(scale: float = 1.0,
        runner: Runner | None = None) -> QuantOverheadResult:
    """Reproduce Figs. 2 (by GPU), 3 (by model) and 4 (by dataset)."""
    by_gpu = _panels(BY_GPU_SWEEP,
                     "Fig 2: {method} time ratios by prefill GPU",
                     lambda s: s.prefill_gpu, scale, runner)
    by_model = _panels(BY_MODEL_SWEEP,
                       "Fig 3: {method} time ratios by model",
                       lambda s: model_label(s.model), scale, runner)
    by_dataset = _panels(BY_DATASET_SWEEP,
                         "Fig 4: {method} time ratios by dataset",
                         lambda s: s.dataset, scale, runner)
    return QuantOverheadResult(by_gpu=by_gpu, by_model=by_model,
                               by_dataset=by_dataset)
