"""Fig. 14 — scalability with the prefill:decode replica ratio p (§7.6).

One Llama-70B decode replica on half an A100 instance (4 GPUs,
200 Gbps); ``p`` A10G prefill replicas; arrival rate proportional to
``p``.  As ``p`` grows, the baseline's FP16 KV traffic and memory
pressure pile onto the single decode replica while quantized methods
barely notice.

The grid is a list of declarative scenarios (one per ``p``) built by
:func:`scenarios` — the arrival rate is *coupled* to ``p``, which a
plain cartesian sweep cannot express, so this experiment demonstrates
the API's escape hatch: hand ``Runner.run_many`` an explicit scenario
list.

Shape: baseline JCT grows steeply (the paper: +127% from p=1→8) while
CacheGen/KVQuant/HACK grow only ~30–45%.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import SeriesFigure
from ..api import Runner, Scenario
from ..methods.registry import PAPER_COMPARISON, get_method
from ..model.config import get_model
from ..perfmodel.calibration import DEFAULT_CALIBRATION
from ..sim.capacity import stage_capacities
from ..sim.engine import ClusterConfig, SimulationResult
from ..workload.datasets import get_dataset

__all__ = ["ScalabilityResult", "run", "scenarios", "P_VALUES"]

P_VALUES = (1, 2, 3, 4, 5, 6, 7, 8)


def _probe_config() -> ClusterConfig:
    """The single-replica baseline cluster used to size the load."""
    return ClusterConfig(
        model=get_model("L"),
        method=get_method("baseline"),
        prefill_gpu="A10G",
        n_prefill_replicas=1,
        n_decode_replicas=1,
        calib=DEFAULT_CALIBRATION,
    )


def rps_per_p(p_values: tuple[int, ...] = P_VALUES) -> float:
    """Arrival-rate slope: p=max loads the single baseline decode
    replica at ~90% of its capacity (the paper's "RPS = 0.02p" scaled
    to this calibration)."""
    _, _, decode_rps = stage_capacities(_probe_config(),
                                        get_dataset("cocktail"))
    return 0.9 * decode_rps / max(p_values)


def scenarios(scale: float = 1.0, p_values: tuple[int, ...] = P_VALUES,
              n_requests: int = 96, seed: int = 2,
              slope: float | None = None) -> list[Scenario]:
    """One scenario per ``p``, with RPS ∝ p (``slope`` per unit p)."""
    if slope is None:
        slope = rps_per_p(p_values)
    return [
        Scenario(model="L", methods=PAPER_COMPARISON, dataset="cocktail",
                 prefill_gpu="A10G", n_prefill_replicas=p,
                 n_decode_replicas=1, rps=slope * p, n_requests=n_requests,
                 seed=seed, scale=scale, name=f"p={p}")
        for p in p_values
    ]


@dataclass
class ScalabilityResult:
    jct: SeriesFigure
    results: dict[int, dict[str, SimulationResult]]
    rps_per_p: float

    def growth(self, method: str) -> float:
        """Fractional JCT growth from p=1 to the largest p."""
        p_lo, p_hi = min(self.results), max(self.results)
        return (self.results[p_hi][method].avg_jct()
                / self.results[p_lo][method].avg_jct() - 1.0)

    def render(self) -> str:
        return self.jct.render()


def run(scale: float = 1.0, p_values: tuple[int, ...] = P_VALUES,
        n_requests: int = 96, seed: int = 2,
        runner: Runner | None = None) -> ScalabilityResult:
    """Reproduce Fig. 14 over ``p_values``."""
    slope = rps_per_p(p_values)
    grid = scenarios(scale=scale, p_values=p_values, n_requests=n_requests,
                     seed=seed, slope=slope)
    artifacts = (runner or Runner()).run_many(grid)

    jct = SeriesFigure("Fig 14: average JCT (s) vs prefill:decode ratio p",
                       "p", list(p_values))
    results: dict[int, dict[str, SimulationResult]] = {}
    series: dict[str, list[float]] = {m: [] for m in PAPER_COMPARISON}
    for p, art in zip(p_values, artifacts):
        results[p] = art.results
        for method in PAPER_COMPARISON:
            series[method].append(art.results[method].avg_jct())
    for method in PAPER_COMPARISON:
        jct.add_series(method, series[method])
    return ScalabilityResult(jct=jct, results=results, rps_per_p=slope)
