"""Fig. 14 — scalability with the prefill:decode replica ratio p (§7.6).

One Llama-70B decode replica on half an A100 instance (4 GPUs,
200 Gbps); ``p`` A10G prefill replicas; arrival rate proportional to
``p``.  As ``p`` grows, the baseline's FP16 KV traffic and memory
pressure pile onto the single decode replica while quantized methods
barely notice.

Shape: baseline JCT grows steeply (the paper: +127% from p=1→8) while
CacheGen/KVQuant/HACK grow only ~30–45%.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import SeriesFigure
from ..methods.registry import PAPER_COMPARISON, get_method
from ..model.config import get_model
from ..perfmodel.calibration import DEFAULT_CALIBRATION
from ..sim.capacity import stage_capacities
from ..sim.engine import ClusterConfig, SimulationResult, simulate
from ..workload.datasets import get_dataset
from ..workload.traces import generate_trace

__all__ = ["ScalabilityResult", "run", "P_VALUES"]

P_VALUES = (1, 2, 3, 4, 5, 6, 7, 8)


def _config(method_name: str, p: int) -> ClusterConfig:
    return ClusterConfig(
        model=get_model("L"),
        method=get_method(method_name),
        prefill_gpu="A10G",
        n_prefill_replicas=p,
        n_decode_replicas=1,
        calib=DEFAULT_CALIBRATION,
    )


@dataclass
class ScalabilityResult:
    jct: SeriesFigure
    results: dict[int, dict[str, SimulationResult]]
    rps_per_p: float

    def growth(self, method: str) -> float:
        """Fractional JCT growth from p=1 to the largest p."""
        p_lo, p_hi = min(self.results), max(self.results)
        return (self.results[p_hi][method].avg_jct()
                / self.results[p_lo][method].avg_jct() - 1.0)

    def render(self) -> str:
        return self.jct.render()


def run(scale: float = 1.0, p_values: tuple[int, ...] = P_VALUES,
        n_requests: int = 96, seed: int = 2) -> ScalabilityResult:
    """Reproduce Fig. 14 over ``p_values``.

    The per-p arrival rate is chosen so that p=max loads the single
    baseline decode replica at ~90% of its capacity (the paper's
    "RPS = 0.02p" scaled to this calibration).
    """
    _, _, decode_rps = stage_capacities(_config("baseline", 1),
                                        get_dataset("cocktail"))
    rps_per_p = 0.9 * decode_rps / max(p_values)

    jct = SeriesFigure("Fig 14: average JCT (s) vs prefill:decode ratio p",
                       "p", list(p_values))
    results: dict[int, dict[str, SimulationResult]] = {}
    series: dict[str, list[float]] = {m: [] for m in PAPER_COMPARISON}
    for p in p_values:
        trace = generate_trace("cocktail", rps_per_p * p,
                               max(10, int(n_requests * scale)), seed=seed)
        results[p] = {}
        for method in PAPER_COMPARISON:
            res = simulate(_config(method, p), trace)
            results[p][method] = res
            series[method].append(res.avg_jct())
    for method in PAPER_COMPARISON:
        jct.add_series(method, series[method])
    return ScalabilityResult(jct=jct, results=results, rps_per_p=rps_per_p)
