"""Scheduling-policy study on a heterogeneous prefill fleet (beyond the
paper).

The paper fixes the §7.1 policy pair (SplitWise shortest-token-queue
dispatch, shortest-queue-with-room placement with DéjàVu swap); FlowKV
(arXiv:2504.03775) shows load-aware KV-transfer scheduling changes the
disaggregated-serving picture materially once the baseline saturates.
This experiment crosses scheduler pairs × bursty arrival processes ×
methods on a *mixed* A10G+T4 prefill fleet — real asymmetry for the
dispatch policies to exploit — and reports the serving metrics each
policy trades off: JCT, TTFT/TBT tails, SLO goodput, swap and rejection
counts.

Shapes: queue-aware dispatch (``splitwise``, ``least_work``) beats
blind ``random`` on the mixed fleet, most visibly in the TTFT tail
(random occasionally stacks bursts on the slow T4 fleet); ``no_swap``
converts swap storms into rejections (the ``rejected`` column) instead
of long-tail JCTs; and HACK's lead over the baseline persists under
every policy pair — scheduling does not explain the compression gap
away.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import Table
from ..api import Runner, Scenario, Sweep
from ..sim.engine import SimulationResult
from .common import run_grid

__all__ = ["SchedulingStudy", "run", "SCHED_SWEEP", "SCHEDULERS",
           "ARRIVALS", "METHODS", "PREFILL_FLEET"]

#: The scheduler axis: the paper's default pair plus blind, load- and
#: NIC-aware dispatch and the rejecting placement variant.
#: (Written pre-canonicalized — float params as floats — so these
#: strings match the ``Scenario.scheduler`` keys of the results.)
SCHEDULERS = (
    "splitwise+shortest_queue",
    "round_robin",
    "random?seed=7.0",
    "least_work+best_fit",
    "nic_aware",
    "splitwise+no_swap",
)

#: Bursty (MMPP) and compressed-diurnal arrivals — the PR 4 processes
#: under which queueing policy actually matters.
ARRIVALS = (
    "mmpp?burst=4.0,duty=0.1,dwell=30.0",
    "diurnal?amp=0.8,period=300.0",
)

METHODS = ("baseline", "hack")

#: Mixed prefill fleet: five Llama-70B replicas on A10G and four on T4
#: (each fleet at its §7.1 default size).
PREFILL_FLEET = "A10G+T4"

SCHED_SWEEP = Sweep(
    Scenario(methods=METHODS, prefill_gpu=PREFILL_FLEET),
    axes={"scheduler": SCHEDULERS, "arrival": ARRIVALS},
)


@dataclass
class SchedulingStudy:
    """Policy × arrival × method grid plus the live results."""

    table: Table
    #: ``results[(scheduler, arrival)][method]``
    results: dict[tuple[str, str], dict[str, SimulationResult]]

    def render(self) -> str:
        return self.table.render()


def run(scale: float = 1.0, runner: Runner | None = None) -> SchedulingStudy:
    """Scheduler × arrival-process × method serving-metric grid."""
    table = Table(
        "Scheduling policies × arrivals (Llama-70B, A10G+T4 prefill, "
        "Cocktail)",
        ["scheduler", "arrival", "method", "avg_jct_s", "p99_ttft_s",
         "p99_tbt_s", "slo_attain", "goodput_rps", "swaps", "rejected"],
    )
    results: dict[tuple[str, str], dict[str, SimulationResult]] = {}
    for art in run_grid(SCHED_SWEEP, scale, runner):
        key = (art.scenario.scheduler, art.scenario.arrival)
        results[key] = art.results
        for method in METHODS:
            res = art.results[method]
            table.add_row(art.scenario.scheduler, art.scenario.arrival,
                          method, res.avg_jct(), res.ttft_percentile(99),
                          res.tbt_percentile(99), res.slo_attainment(),
                          res.slo_goodput_rps(), res.n_swapped,
                          res.n_rejected)
    return SchedulingStudy(table=table, results=results)
