"""SLO goodput under realistic arrival processes (beyond the paper).

The paper reports JCT aggregates over Poisson traces (§7.2); serving
systems are judged on TTFT/TBT tails and SLO goodput under bursty,
diurnal and multi-tenant load — the KVServe/FlowKV framing.  This
experiment runs the paper's four-way method comparison on the main
Cocktail/Llama-70B/A10G cell across four arrival processes and
evaluates every run at three SLO tiers (tight / default / loose
multiples of the engine's default TTFT+TBT SLOs).

Shapes: HACK's smaller transfers and cheaper decode lift attainment at
every tier; burstier processes (Gamma cv=3, MMPP) widen the gap to the
baseline because queueing spikes blow the TTFT budget first.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import Table
from ..api import Runner, Scenario, Sweep
from ..methods.registry import PAPER_COMPARISON
from ..sim.engine import DEFAULT_TBT_SLO_S, DEFAULT_TTFT_SLO_S, \
    SimulationResult
from .common import run_grid

__all__ = ["SloGoodput", "run", "SLO_SWEEP", "ARRIVALS", "SLO_TIERS"]

#: The arrival-process axis: the paper's Poisson default plus bursty,
#: Markov-modulated and diurnal processes at the same long-run rate.
ARRIVALS = (
    "poisson",
    "gamma?cv=3.0",
    "mmpp?burst=4.0,duty=0.1,dwell=30.0",
    "diurnal?amp=0.8,period=300.0",
)

#: SLO tiers as multiples of the engine defaults (TTFT and TBT scale
#: together, the DistServe "SLO scale" convention).
SLO_TIERS = (("tight", 0.5), ("default", 1.0), ("loose", 2.0))

SLO_SWEEP = Sweep(Scenario(methods=PAPER_COMPARISON),
                  axes={"arrival": ARRIVALS})


@dataclass
class SloGoodput:
    """Attainment/goodput grid plus the live simulation results."""

    table: Table
    results: dict[str, dict[str, SimulationResult]]

    def attainment(self, arrival: str, method: str,
                   scale: float = 1.0) -> float:
        """SLO attainment at ``scale``× the default SLO point."""
        return self.results[arrival][method].slo_attainment(
            DEFAULT_TTFT_SLO_S * scale, DEFAULT_TBT_SLO_S * scale)

    def render(self) -> str:
        return self.table.render()


def run(scale: float = 1.0, runner: Runner | None = None) -> SloGoodput:
    """Method × arrival-process × SLO-tier goodput grid."""
    tier_cols = [f"att@{name}" for name, _ in SLO_TIERS]
    table = Table(
        "SLO goodput by arrival process (Llama-70B, A10G prefill, "
        f"Cocktail; SLO default = TTFT<{DEFAULT_TTFT_SLO_S:g}s ∧ "
        f"TBT<{DEFAULT_TBT_SLO_S:g}s)",
        ["arrival", "method", "p99_ttft_s", "p99_tbt_s", *tier_cols,
         "goodput_rps"],
    )
    results: dict[str, dict[str, SimulationResult]] = {}
    for art in run_grid(SLO_SWEEP, scale, runner):
        arrival = art.scenario.arrival
        results[arrival] = art.results
        for method in PAPER_COMPARISON:
            res = art.results[method]
            attains = [res.slo_attainment(DEFAULT_TTFT_SLO_S * mult,
                                          DEFAULT_TBT_SLO_S * mult)
                       for _, mult in SLO_TIERS]
            table.add_row(arrival, method,
                          res.ttft_percentile(99), res.tbt_percentile(99),
                          *attains, res.slo_goodput_rps())
    return SloGoodput(table=table, results=results)
