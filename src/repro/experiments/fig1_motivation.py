"""Fig. 1 — bottlenecks in baseline disaggregated inference (§2.1).

Four panels:

* (a) average prefill/comm/decode time ratios for Llama-3.1 70B +
  Cocktail across the five prefill GPUs;
* (b) the same across models (M, P, Y, L on Cocktail; Falcon on arXiv
  capped to its 2K window — "F-arXiv");
* (c) the same across the four datasets on A10G;
* (d) the communication ratio under layer-wise pipelining as RPS grows
  (0.06–0.18), across the five prefill GPUs.

Each panel is a declarative :class:`~repro.api.Sweep` over the baseline
scenario; see the module-level ``*_SWEEP`` constants.

Shapes to reproduce: A100's comm ratio is small (<10%) while 10–50 Gbps
instances sit in the tens of percent; long-sequence datasets dominate
short ones in both comm and compute; pipelining helps only while comm
fits under prefill and decode memory lasts (V100 deteriorates fastest).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import SeriesFigure
from ..api import Runner, Scenario, Sweep
from .common import run_grid

__all__ = ["MotivationResult", "run", "GPUS", "MODEL_LETTERS", "DATASETS",
           "BY_GPU_SWEEP", "BY_MODEL_SWEEP", "BY_DATASET_SWEEP",
           "PIPELINE_SWEEP"]

GPUS = ("A10G", "V100", "T4", "L4", "A100")
MODEL_LETTERS = ("M", "P", "Y", "L", "F")
DATASETS = ("imdb", "arxiv", "cocktail", "humaneval")
PIPELINE_RPS = (0.06, 0.10, 0.14, 0.18)

_RATIO_KEYS = ("prefill", "comm", "decode")

_BASELINE = Scenario(methods=("baseline",))
BY_GPU_SWEEP = Sweep(_BASELINE, axes={"prefill_gpu": GPUS})
BY_MODEL_SWEEP = Sweep(_BASELINE, axes={"model": MODEL_LETTERS})
BY_DATASET_SWEEP = Sweep(_BASELINE, axes={"dataset": DATASETS})
PIPELINE_SWEEP = Sweep(_BASELINE.replace(pipelining=True),
                       axes={"prefill_gpu": GPUS, "rps": PIPELINE_RPS})


def model_label(letter: str) -> str:
    """Falcon runs on capped arXiv (the F-arXiv substitution)."""
    return "F-arXiv" if letter == "F" else letter


@dataclass
class MotivationResult:
    """The four panels as figure series (ratios in percent)."""

    by_gpu: SeriesFigure
    by_model: SeriesFigure
    by_dataset: SeriesFigure
    pipelining: SeriesFigure

    def render(self) -> str:
        return "\n\n".join(f.render() for f in (
            self.by_gpu, self.by_model, self.by_dataset, self.pipelining
        ))


def _ratios(result) -> dict[str, float]:
    ratios = result.mean_ratios(include_queue=False)
    # Fold the quantization bucket (zero for the baseline) into prefill.
    return {
        "prefill": 100 * (ratios["prefill"] + ratios["quant"]),
        "comm": 100 * ratios["comm"],
        "decode": 100 * (ratios["decode"] + ratios["dequant_or_approx"]),
    }


def run(scale: float = 1.0, runner: Runner | None = None) -> MotivationResult:
    """Reproduce all four panels of Fig. 1."""
    by_gpu = SeriesFigure("Fig 1(a): baseline time ratios by prefill GPU "
                          "(Llama-70B, Cocktail)", "bucket", list(_RATIO_KEYS))
    for art in run_grid(BY_GPU_SWEEP, scale, runner):
        ratios = _ratios(art.results["baseline"])
        by_gpu.add_series(art.scenario.prefill_gpu,
                          [ratios[k] for k in _RATIO_KEYS])

    by_model = SeriesFigure("Fig 1(b): baseline time ratios by model "
                            "(A10G prefill)", "bucket", list(_RATIO_KEYS))
    for art in run_grid(BY_MODEL_SWEEP, scale, runner):
        ratios = _ratios(art.results["baseline"])
        by_model.add_series(model_label(art.scenario.model),
                            [ratios[k] for k in _RATIO_KEYS])

    by_dataset = SeriesFigure("Fig 1(c): baseline time ratios by dataset "
                              "(Llama-70B, A10G)", "bucket", list(_RATIO_KEYS))
    for art in run_grid(BY_DATASET_SWEEP, scale, runner):
        ratios = _ratios(art.results["baseline"])
        by_dataset.add_series(art.scenario.dataset,
                              [ratios[k] for k in _RATIO_KEYS])

    pipelining = SeriesFigure("Fig 1(d): comm ratio with pipelining vs RPS "
                              "(Llama-70B, Cocktail)", "RPS",
                              list(PIPELINE_RPS))
    comm: dict[str, list[float]] = {gpu: [] for gpu in GPUS}
    for art in run_grid(PIPELINE_SWEEP, scale, runner):
        comm[art.scenario.prefill_gpu].append(
            _ratios(art.results["baseline"])["comm"])
    for gpu in GPUS:
        pipelining.add_series(gpu, comm[gpu])

    return MotivationResult(by_gpu=by_gpu, by_model=by_model,
                            by_dataset=by_dataset, pipelining=pipelining)
