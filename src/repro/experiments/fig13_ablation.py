"""Fig. 13 + Table 7 — the SE and RQE ablations (§7.4).

Fig. 13: average JCT of HACK vs HACK/SE (no summation elimination) vs
HACK/RQE (no requantization elimination) across the four datasets.

Table 7: the accuracy *drop* of HACK/RQE relative to HACK — the cost of
repeatedly requantizing V's last block — measured on the real decode
path (:func:`repro.accuracy.harness.rqe_extra_error`) and anchored the
same way as Table 6.

Shapes: HACK/SE hurts long-sequence datasets most (recomputing Σb' over
a long context); HACK/RQE hurts *short*-sequence datasets most (large
batches of short requests multiply the per-iteration requantization)
while long datasets barely notice; the RQE accuracy drop is a fraction
of a percent and smallest on IMDb (shortest outputs).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accuracy.anchor import calibrate_kappa, dataset_sensitivity
from ..accuracy.harness import attention_error, rqe_extra_error
from ..analysis.tables import SeriesFigure, Table
from ..api import Runner, Scenario, Sweep
from ..methods.registry import ABLATIONS
from ..sim.engine import SimulationResult
from .common import run_grid
from .fig1_motivation import DATASETS

__all__ = ["AblationResult", "RqeAccuracyResult", "run_fig13", "run_table7",
           "FIG13_SWEEP"]

#: The ablation grid.  ``hack_nose``/``hack_norqe`` are the paper's
#: figure labels — legacy aliases of ``hack?se=off`` / ``hack?rqe=off``
#: specs (see :mod:`repro.methods.families`), not bespoke registry
#: entries.
FIG13_SWEEP = Sweep(Scenario(methods=ABLATIONS), axes={"dataset": DATASETS})


@dataclass
class AblationResult:
    jct: SeriesFigure
    results: dict[str, dict[str, SimulationResult]]

    def overhead(self, dataset: str, variant: str) -> float:
        """Fractional JCT increase of ``variant`` over full HACK."""
        full = self.results[dataset]["hack"].avg_jct()
        return self.results[dataset][variant].avg_jct() / full - 1.0

    def render(self) -> str:
        return self.jct.render()


def run_fig13(scale: float = 1.0,
              runner: Runner | None = None) -> AblationResult:
    """Fig. 13: JCT of HACK, HACK/SE, HACK/RQE by dataset."""
    jct = SeriesFigure("Fig 13: average JCT (s), SE/RQE ablations "
                       "(Llama-70B, A10G)", "method", list(ABLATIONS))
    results = {}
    for art in run_grid(FIG13_SWEEP, scale, runner):
        dataset, res = art.scenario.dataset, art.results
        results[dataset] = res
        jct.add_series(dataset, [res[m].avg_jct() for m in ABLATIONS])
    return AblationResult(jct=jct, results=results)


@dataclass
class RqeAccuracyResult:
    table: Table
    drops: dict[str, float]   # dataset -> accuracy drop (percentage points)

    def render(self) -> str:
        return self.table.render()


def run_table7(n_trials: int = 4, seed: int = 0) -> RqeAccuracyResult:
    """Table 7: accuracy decrease of HACK/RQE vs HACK per dataset.

    The decode-path harness measures the extra attention error the
    no-RQE cache accumulates; the Table 6 κ converts it into accuracy
    points, scaled by each dataset's output-length sensitivity (the
    requantization error only accumulates during decode, §7.4).
    """
    kappa = calibrate_kappa(attention_error("hack_pi64", n_trials=n_trials,
                                            seed=100))
    extra = rqe_extra_error(n_trials=n_trials, seed=seed)
    drops = {}
    for dataset in DATASETS:
        drops[dataset] = -100.0 * kappa * extra * dataset_sensitivity(dataset)
    table = Table("Table 7: accuracy decrease of HACK/RQE vs HACK (points)",
                  ["dataset", "drop"])
    for dataset in DATASETS:
        table.add_row(dataset, drops[dataset])
    return RqeAccuracyResult(table=table, drops=drops)
