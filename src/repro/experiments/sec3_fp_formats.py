"""§3 — the low-precision floating-point study (FP4/FP6/FP8).

Replays the paper's simulation: KV stored in FP4/6/8 (MX block scales),
converted to FP16 before attention on pre-H100 GPUs (a per-iteration
materialization cost), with FP8's matmul time halved to *simulate* FP8
compute.  Measures the average communication time ratio and the KV
memory-access ratio for Llama-70B + Cocktail across prefill instances
— one declarative sweep of the FP-format scenario over the GPU axis.

Shape: comm ratio ordering FP4 < FP6 < FP8, all far above the 2-bit
methods — FP formats cannot compress enough to fix the transfer
bottleneck (the §3 conclusion).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import SeriesFigure
from ..api import Runner, Scenario, Sweep
from ..methods import MethodSpec, resolve_method
from ..sim.engine import SimulationResult
from .common import run_grid
from .fig1_motivation import GPUS

__all__ = ["FpFormatsResult", "run", "FP_SWEEP"]

#: The FP grid as parameterized specs of the one ``fp`` family (plus
#: HACK for contrast); row labels are the resolved Method names
#: (fp4/fp6/fp8/hack), identical to the historical registry spelling.
_SPECS = tuple(MethodSpec.of("fp", bits=b) for b in (4, 6, 8))
_METHODS = (*(s.canonical() for s in _SPECS), "hack")
_LABELS = [resolve_method(m).name for m in _METHODS]
FP_SWEEP = Sweep(Scenario(methods=_METHODS), axes={"prefill_gpu": GPUS})


@dataclass
class FpFormatsResult:
    comm: SeriesFigure
    kv_access: SeriesFigure
    results: dict[str, dict[str, SimulationResult]]

    def render(self) -> str:
        return "\n\n".join((self.comm.render(), self.kv_access.render()))


def run(scale: float = 1.0, runner: Runner | None = None) -> FpFormatsResult:
    """Reproduce the §3 FP4/6/8 ratios (plus HACK for contrast)."""
    comm = SeriesFigure("Sec 3: average comm time ratio (%) by prefill GPU",
                        "method", _LABELS)
    kv_access = SeriesFigure("Sec 3: KV memory access ratio of JCT (%)",
                             "method", _LABELS)
    results: dict[str, dict[str, SimulationResult]] = {}
    for art in run_grid(FP_SWEEP, scale, runner):
        gpu = art.scenario.prefill_gpu
        res = art.results
        results[gpu] = res
        comm.add_series(gpu, [
            100 * res[m].mean_ratios()["comm"] for m in _METHODS
        ])
        kv_access.add_series(gpu, [
            100 * res[m].mean_kv_access_ratio() for m in _METHODS
        ])
    return FpFormatsResult(comm=comm, kv_access=kv_access, results=results)
