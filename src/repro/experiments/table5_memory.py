"""Table 5 — peak decode-GPU memory usage (§7.2, §7.4).

Peak memory fraction on the decode replicas for each method × dataset,
from the same runs as Fig. 9, plus the §7.4 overhead accounting for
HACK's SE sums and RQE FP16 tail (computed from the method byte layout
on the workload's mean context).

Shapes: quantized methods cut peak usage substantially (the paper
reports 14–34%, most on long-sequence datasets); HACK sits slightly
above CacheGen/KVQuant because it also stores the SE sums and the FP16
tail; long-sequence datasets dominate short ones for every method.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import Table
from ..api import Runner, Scenario, Sweep
from ..core.quantize import sum_storage_bits
from ..methods.registry import PAPER_COMPARISON, get_method
from ..model.config import get_model
from ..workload.datasets import get_dataset
from .common import run_grid
from .fig1_motivation import DATASETS

__all__ = ["MemoryResult", "run", "se_overhead_fraction",
           "rqe_tail_fraction", "TABLE5_SWEEP"]

TABLE5_SWEEP = Sweep(Scenario(methods=PAPER_COMPARISON),
                     axes={"dataset": DATASETS})


def se_overhead_fraction(dataset: str, model: str = "L",
                         replica_mem_gb: float = 320.0,
                         n_requests: int = 20) -> float:
    """SE sum storage as a fraction of replica memory (§7.4: 2.2–2.7%)."""
    spec = get_model(model)
    method = get_method("hack")
    ds = get_dataset(dataset)
    ctx = ds.mean_total_len()
    per_value = sum_storage_bits(2, method.partition_size) / 8.0 \
        / method.partition_size
    sums_bytes = n_requests * ctx * spec.kv_bytes_per_token(per_value)
    return sums_bytes / (replica_mem_gb * 1e9)


def rqe_tail_fraction(model: str = "L", replica_mem_gb: float = 320.0,
                      n_requests: int = 20) -> float:
    """RQE FP16 tail buffer fraction (§7.4: 0.24–0.51%)."""
    spec = get_model(model)
    pi = get_method("hack").partition_size
    # Expected tail occupancy Π/2 tokens of V per (layer, kv head).
    tail_bytes = (n_requests * (pi / 2) * spec.n_layers * spec.n_kv_heads
                  * spec.head_dim * 2)
    return tail_bytes / (replica_mem_gb * 1e9)


@dataclass
class MemoryResult:
    table: Table
    peaks: dict[str, dict[str, float]]   # dataset -> method -> fraction
    se_fraction: dict[str, float]
    rqe_fraction: float

    def render(self) -> str:
        lines = [self.table.render(), ""]
        for dataset, frac in self.se_fraction.items():
            lines.append(f"SE sum storage ({dataset}): {frac:.2%} of replica memory")
        lines.append(f"RQE FP16 tail buffer: {self.rqe_fraction:.2%} of replica memory")
        return "\n".join(lines)


def run(scale: float = 1.0, runner: Runner | None = None) -> MemoryResult:
    """Reproduce Table 5 plus the §7.4 overhead numbers."""
    table = Table("Table 5: peak decode GPU memory usage (%)",
                  ["method", *DATASETS])
    peaks: dict[str, dict[str, float]] = {d: {} for d in DATASETS}
    for art in run_grid(TABLE5_SWEEP, scale, runner):
        for method in PAPER_COMPARISON:
            peaks[art.scenario.dataset][method] = \
                art.results[method].peak_memory_fraction
    for method in PAPER_COMPARISON:
        table.add_row(method,
                      *(100 * peaks[d][method] for d in DATASETS))
    se_fraction = {d: se_overhead_fraction(d) for d in DATASETS}
    return MemoryResult(table=table, peaks=peaks, se_fraction=se_fraction,
                        rqe_fraction=rqe_tail_fraction())
