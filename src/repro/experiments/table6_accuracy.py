"""Table 6 — accuracy across methods, models and datasets (§7.3).

Per-cell errors are *measured* on realistic synthetic KV with the
model's actual head dimension and a context length scaled to the
dataset; the error→accuracy anchoring is described in
:mod:`repro.accuracy.anchor`.

Shapes: every 2-bit method loses only a fraction of a percent to a few
percent; within HACK the Π ordering (32 best, 128 worst) emerges from
the measured errors; Π=128 is the weakest method in the comparison.
(Note recorded in EXPERIMENTS.md: the paper's 0.2–0.8% edge of HACK
Π=64 *over* CacheGen/KVQuant is finer than this substrate resolves —
our measured errors put them in the same band, ordered the other way.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accuracy.anchor import (
    PAPER_BASELINE_ACCURACY,
    TABLE6_CELLS,
    accuracy_table,
    calibrate_kappa,
)
from ..accuracy.harness import attention_error
from ..analysis.tables import Table
from ..model.config import get_model

__all__ = ["AccuracyResult", "run", "METHOD_ORDER"]

METHOD_ORDER = ("baseline", "hack_pi32", "hack_pi64", "cachegen", "kvquant",
                "hack_pi128")

#: Context length used for error measurement, per dataset (scaled-down
#: representatives; error saturates well below real lengths).
_CONTEXT = {"imdb": 128, "arxiv": 320, "cocktail": 384, "humaneval": 128}


@dataclass
class AccuracyResult:
    table: Table
    accuracies: dict[str, dict[tuple[str, str], float]]
    errors: dict[str, dict[str, float]]   # dataset -> method -> error

    def mean_loss(self, method: str) -> float:
        """Mean fractional loss vs the baseline across all 19 cells."""
        total = 0.0
        for cell in TABLE6_CELLS:
            base = PAPER_BASELINE_ACCURACY[cell]
            total += 1 - self.accuracies[method][cell] / base
        return total / len(TABLE6_CELLS)

    def render(self) -> str:
        return self.table.render()


def run(n_trials: int = 4, seed: int = 100) -> AccuracyResult:
    """Reproduce Table 6 (all 19 cells × 6 method rows).

    This experiment measures quantization error on the numpy accuracy
    harness — there is no serving trace, so it takes no ``scale`` (the
    CLI rejects ``--scale`` for it); the declarative grid is the
    :data:`repro.accuracy.anchor.TABLE6_CELLS` cell list × the
    :data:`METHOD_ORDER` method rows.
    """
    # Measure per (dataset, head_dim) — Falcon's 64-wide heads get their
    # own measurements; everyone else shares head_dim=128.
    errors: dict[str, dict[str, float]] = {}
    per_dim_cache: dict[tuple[str, int, str], float] = {}

    def error_for(method: str, dataset: str, head_dim: int) -> float:
        key = (dataset, head_dim, method)
        if key not in per_dim_cache:
            per_dim_cache[key] = attention_error(
                method, n_tokens=_CONTEXT[dataset], head_dim=head_dim,
                n_trials=n_trials, seed=seed,
            )
        return per_dim_cache[key]

    # κ anchored on HACK Π=64 at the standard configuration.
    kappa = calibrate_kappa(error_for("hack_pi64", "cocktail", 128))

    accuracies: dict[str, dict[tuple[str, str], float]] = {
        m: {} for m in METHOD_ORDER
    }
    for dataset, letter in TABLE6_CELLS:
        head_dim = get_model(letter).head_dim
        errors.setdefault(dataset, {})
        for method in METHOD_ORDER:
            err = error_for(method, dataset, head_dim)
            errors[dataset][method] = err
            cell_table = accuracy_table({method: err}, kappa=kappa)[method]
            accuracies[method][(dataset, letter)] = cell_table[(dataset, letter)]

    table = Table("Table 6: accuracy (%)",
                  ["method", *(f"{d[:4]}-{m}" for d, m in TABLE6_CELLS)])
    for method in METHOD_ORDER:
        table.add_row(method,
                      *(accuracies[method][cell] for cell in TABLE6_CELLS))
    return AccuracyResult(table=table, accuracies=accuracies, errors=errors)
