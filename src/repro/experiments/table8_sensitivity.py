"""Table 8 — partition-size sensitivity (§7.5).

For Π ∈ {32, 64} versus Π=128: the accuracy *increase* (from the
measured errors, anchored as in Table 6) and the JCT *increase* (from
simulation — smaller partitions mean more metadata on the wire, more
correction work and a less efficient fused kernel).

Shape: Π=32 buys the most accuracy but costs the most JCT (the paper
reports up to +28% on Cocktail); Π=64 sits between — the trade-off that
makes it the default.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accuracy.anchor import calibrate_kappa, dataset_sensitivity
from ..accuracy.harness import attention_error
from ..analysis.tables import Table
from ..api import Runner, Scenario, Sweep
from ..methods import MethodSpec
from .common import run_grid
from .fig1_motivation import DATASETS

__all__ = ["SensitivityResult", "run", "TABLE8_SWEEP"]

_PI_VALUES = (32, 64, 128)
#: The Π grid as parameterized specs of the one HACK family — the
#: perf-model Methods and the accuracy path both materialize from
#: these (no per-Π registry entries).
_SPECS = {pi: MethodSpec.of("hack", partition_size=pi) for pi in _PI_VALUES}
_METHODS = tuple(s.canonical() for s in _SPECS.values())

TABLE8_SWEEP = Sweep(Scenario(methods=_METHODS), axes={"dataset": DATASETS})


@dataclass
class SensitivityResult:
    table: Table
    #: dataset -> Π -> fractional JCT increase vs Π=128.
    jct_increase: dict[str, dict[int, float]]
    #: dataset -> Π -> accuracy-point increase vs Π=128.
    accuracy_increase: dict[str, dict[int, float]]

    def render(self) -> str:
        return self.table.render()


def run(scale: float = 1.0, n_trials: int = 4,
        runner: Runner | None = None) -> SensitivityResult:
    """Reproduce Table 8 across the four datasets."""
    kappa = calibrate_kappa(attention_error(_SPECS[64], n_trials=n_trials,
                                            seed=100))
    jct_increase: dict[str, dict[int, float]] = {}
    accuracy_increase: dict[str, dict[int, float]] = {}

    for art in run_grid(TABLE8_SWEEP, scale, runner):
        dataset, res = art.scenario.dataset, art.results
        base_jct = res[_SPECS[128].canonical()].avg_jct()
        errors = {
            pi: attention_error(_SPECS[pi], n_trials=n_trials, seed=100)
            for pi in _PI_VALUES
        }
        sens = dataset_sensitivity(dataset)
        jct_increase[dataset] = {}
        accuracy_increase[dataset] = {}
        for pi in (32, 64):
            jct_increase[dataset][pi] = (
                res[_SPECS[pi].canonical()].avg_jct() / base_jct - 1.0
            )
            accuracy_increase[dataset][pi] = (
                100.0 * kappa * sens * (errors[128] - errors[pi])
            )

    table = Table("Table 8: Π=32 / Π=64 vs Π=128 (accuracy points, JCT %)",
                  ["dataset", "acc+ (Π=32)", "jct+ (Π=32)",
                   "acc+ (Π=64)", "jct+ (Π=64)"])
    for dataset in DATASETS:
        table.add_row(
            dataset,
            accuracy_increase[dataset][32],
            100 * jct_increase[dataset][32],
            accuracy_increase[dataset][64],
            100 * jct_increase[dataset][64],
        )
    return SensitivityResult(table=table, jct_increase=jct_increase,
                             accuracy_increase=accuracy_increase)
