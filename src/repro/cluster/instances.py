"""AWS GPU instance catalogue (paper Table 2).

The experiments pick prefill fleets from the four cheap-GPU instance
types and run decode on ``p4de.24xlarge`` (8×A100, 400 Gbps).  The
instance's network bandwidth is the quantity the KV-transfer bottleneck
analysis revolves around: 10–50 Gbps for the cheap instances versus
400 Gbps for the A100 boxes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .gpu import GPUS, GPUSpec

__all__ = ["InstanceSpec", "INSTANCES", "get_instance", "instance_for_gpu",
           "DEFAULT_PREFILL_FLEETS", "DECODE_INSTANCE", "parse_fleet_spec",
           "canonical_fleet"]


@dataclass(frozen=True)
class InstanceSpec:
    """One cloud instance type."""

    name: str
    gpu: GPUSpec
    n_gpus: int
    network_gbps: float
    vcpus: int
    ram_gib: int

    @property
    def total_gpu_mem_gb(self) -> float:
        return self.gpu.mem_gb * self.n_gpus

    def network_bytes_per_s(self, efficiency: float = 1.0) -> float:
        """Achievable NIC goodput in bytes/second."""
        return self.network_gbps / 8.0 * 1e9 * efficiency


#: Table 2 verbatim.
INSTANCES: dict[str, InstanceSpec] = {
    "g5.12xlarge": InstanceSpec("g5.12xlarge", GPUS["A10G"], 4, 40.0, 48, 192),
    "p3.8xlarge": InstanceSpec("p3.8xlarge", GPUS["V100"], 4, 10.0, 32, 244),
    "g4dn.12xlarge": InstanceSpec("g4dn.12xlarge", GPUS["T4"], 4, 50.0, 48, 192),
    "g6.12xlarge": InstanceSpec("g6.12xlarge", GPUS["L4"], 4, 40.0, 48, 192),
    "p4de.24xlarge": InstanceSpec("p4de.24xlarge", GPUS["A100"], 8, 400.0, 96, 1152),
}

#: GPU name → the instance type that carries it in the paper.
_GPU_TO_INSTANCE = {
    "A10G": "g5.12xlarge",
    "V100": "p3.8xlarge",
    "T4": "g4dn.12xlarge",
    "L4": "g6.12xlarge",
    "A100": "p4de.24xlarge",
}

#: Fleet sizes from §7.1: "ten g5.12xlarge, sixteen p3.8xlarge, sixteen
#: g4dn.12xlarge, ten g6.12xlarge, or two p4de.24xlarge for prefill".
DEFAULT_PREFILL_FLEETS: dict[str, int] = {
    "A10G": 10,
    "V100": 16,
    "T4": 16,
    "L4": 10,
    "A100": 2,
}

#: Decode always runs on "two p4de.24xlarge" (§7.1).
DECODE_INSTANCE = "p4de.24xlarge"
DEFAULT_DECODE_COUNT = 2


def get_instance(name: str) -> InstanceSpec:
    """Look up an instance type by its AWS name."""
    if name not in INSTANCES:
        raise KeyError(f"unknown instance {name!r}; choose from {sorted(INSTANCES)}")
    return INSTANCES[name]


def instance_for_gpu(gpu_name: str) -> InstanceSpec:
    """The instance type the paper uses for a given GPU."""
    key = gpu_name.upper()
    if key not in _GPU_TO_INSTANCE:
        raise KeyError(f"no instance mapped for GPU {gpu_name!r}")
    return INSTANCES[_GPU_TO_INSTANCE[key]]


def parse_fleet_spec(text: str) -> tuple[tuple[str, int | None], ...]:
    """Parse a prefill-fleet reference into ``(gpu, replicas)`` pairs.

    The grammar extends a plain GPU name to heterogeneous fleets::

        A10G            # one fleet, §7.1 default replica count
        A10G+T4         # two fleets, each at its default count
        A10G:2+T4:4     # explicit per-fleet *replica* counts

    GPU names uppercase; a count (after ``:``) must be a positive
    integer; ``None`` means "derive from the paper's default instance
    fleet".  Repeating a GPU type is rejected (merge the counts
    instead).
    """
    fleets: list[tuple[str, int | None]] = []
    seen: set[str] = set()
    for part in text.strip().split("+"):
        part = part.strip()
        gpu, sep, count_text = part.partition(":")
        gpu = gpu.strip().upper()
        if not gpu:
            raise ValueError(
                f"bad fleet spec {text!r}; the grammar is "
                "GPU[:replicas][+GPU[:replicas]…]"
            )
        if gpu in seen:
            raise ValueError(
                f"fleet spec {text!r} repeats GPU {gpu!r}; merge the "
                "replica counts instead"
            )
        seen.add(gpu)
        count: int | None = None
        if sep:
            try:
                count = int(count_text.strip())
            except ValueError:
                raise ValueError(
                    f"bad replica count {count_text.strip()!r} for GPU "
                    f"{gpu!r} in fleet spec {text!r}"
                ) from None
            if count < 1:
                raise ValueError(
                    f"fleet replica count must be >= 1, got {count} for "
                    f"GPU {gpu!r}"
                )
        fleets.append((gpu, count))
    return tuple(fleets)


def canonical_fleet(fleets: tuple[tuple[str, int], ...]) -> str:
    """The canonical string of resolved ``(gpu, replicas)`` fleets,
    e.g. ``"A10G:5+T4:4"``."""
    return "+".join(f"{gpu}:{count}" for gpu, count in fleets)
