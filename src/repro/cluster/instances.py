"""AWS GPU instance catalogue (paper Table 2).

The experiments pick prefill fleets from the four cheap-GPU instance
types and run decode on ``p4de.24xlarge`` (8×A100, 400 Gbps).  The
instance's network bandwidth is the quantity the KV-transfer bottleneck
analysis revolves around: 10–50 Gbps for the cheap instances versus
400 Gbps for the A100 boxes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .gpu import GPUS, GPUSpec

__all__ = ["InstanceSpec", "INSTANCES", "get_instance", "instance_for_gpu",
           "DEFAULT_PREFILL_FLEETS", "DECODE_INSTANCE"]


@dataclass(frozen=True)
class InstanceSpec:
    """One cloud instance type."""

    name: str
    gpu: GPUSpec
    n_gpus: int
    network_gbps: float
    vcpus: int
    ram_gib: int

    @property
    def total_gpu_mem_gb(self) -> float:
        return self.gpu.mem_gb * self.n_gpus

    def network_bytes_per_s(self, efficiency: float = 1.0) -> float:
        """Achievable NIC goodput in bytes/second."""
        return self.network_gbps / 8.0 * 1e9 * efficiency


#: Table 2 verbatim.
INSTANCES: dict[str, InstanceSpec] = {
    "g5.12xlarge": InstanceSpec("g5.12xlarge", GPUS["A10G"], 4, 40.0, 48, 192),
    "p3.8xlarge": InstanceSpec("p3.8xlarge", GPUS["V100"], 4, 10.0, 32, 244),
    "g4dn.12xlarge": InstanceSpec("g4dn.12xlarge", GPUS["T4"], 4, 50.0, 48, 192),
    "g6.12xlarge": InstanceSpec("g6.12xlarge", GPUS["L4"], 4, 40.0, 48, 192),
    "p4de.24xlarge": InstanceSpec("p4de.24xlarge", GPUS["A100"], 8, 400.0, 96, 1152),
}

#: GPU name → the instance type that carries it in the paper.
_GPU_TO_INSTANCE = {
    "A10G": "g5.12xlarge",
    "V100": "p3.8xlarge",
    "T4": "g4dn.12xlarge",
    "L4": "g6.12xlarge",
    "A100": "p4de.24xlarge",
}

#: Fleet sizes from §7.1: "ten g5.12xlarge, sixteen p3.8xlarge, sixteen
#: g4dn.12xlarge, ten g6.12xlarge, or two p4de.24xlarge for prefill".
DEFAULT_PREFILL_FLEETS: dict[str, int] = {
    "A10G": 10,
    "V100": 16,
    "T4": 16,
    "L4": 10,
    "A100": 2,
}

#: Decode always runs on "two p4de.24xlarge" (§7.1).
DECODE_INSTANCE = "p4de.24xlarge"
DEFAULT_DECODE_COUNT = 2


def get_instance(name: str) -> InstanceSpec:
    """Look up an instance type by its AWS name."""
    if name not in INSTANCES:
        raise KeyError(f"unknown instance {name!r}; choose from {sorted(INSTANCES)}")
    return INSTANCES[name]


def instance_for_gpu(gpu_name: str) -> InstanceSpec:
    """The instance type the paper uses for a given GPU."""
    key = gpu_name.upper()
    if key not in _GPU_TO_INSTANCE:
        raise KeyError(f"no instance mapped for GPU {gpu_name!r}")
    return INSTANCES[_GPU_TO_INSTANCE[key]]
