"""GPU specifications for the paper's testbed (Table 2 hardware).

Peak rates are the published tensor-core numbers (dense FP16 / INT8)
and HBM/GDDR bandwidths.  Two properties matter to the experiments:

* ``supports_int8_matmul`` — the V100's tensor cores predate INT8
  matmul support, which is why HACK's compute acceleration vanishes on
  V100 prefill instances (Fig. 12 discussion);
* ``supports_fp8`` — pre-H100 GPUs lack FP8 compute, the §3 limitation
  of low-precision FP formats.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec", "GPUS", "get_gpu"]


@dataclass(frozen=True)
class GPUSpec:
    """Peak capability numbers for one GPU model."""

    name: str
    fp16_tflops: float          # dense FP16 tensor throughput
    int8_tops: float            # dense INT8 tensor throughput (0 if absent)
    mem_gb: float               # usable device memory
    mem_bw_gbps: float          # device memory bandwidth, GB/s
    supports_fp8: bool = False

    @property
    def supports_int8_matmul(self) -> bool:
        """Whether tensor cores accelerate INT8 matmul (V100: no)."""
        return self.int8_tops > 0

    def int8_speedup(self) -> float:
        """Matmul speedup of INT8 over FP16 (1.0 when unsupported)."""
        if not self.supports_int8_matmul:
            return 1.0
        return self.int8_tops / self.fp16_tflops


#: The five GPU models of Table 2.
GPUS: dict[str, GPUSpec] = {
    "A10G": GPUSpec("A10G", fp16_tflops=125.0, int8_tops=250.0,
                    mem_gb=24.0, mem_bw_gbps=600.0),
    "V100": GPUSpec("V100", fp16_tflops=112.0, int8_tops=0.0,
                    mem_gb=16.0, mem_bw_gbps=900.0),
    "T4": GPUSpec("T4", fp16_tflops=65.0, int8_tops=130.0,
                  mem_gb=16.0, mem_bw_gbps=300.0),
    "L4": GPUSpec("L4", fp16_tflops=121.0, int8_tops=242.0,
                  mem_gb=24.0, mem_bw_gbps=300.0),
    "A100": GPUSpec("A100", fp16_tflops=312.0, int8_tops=624.0,
                    mem_gb=80.0, mem_bw_gbps=2039.0),
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU by name (case-insensitive)."""
    key = name.upper()
    if key not in GPUS:
        raise KeyError(f"unknown GPU {name!r}; choose from {sorted(GPUS)}")
    return GPUS[key]
