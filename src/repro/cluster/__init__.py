"""Cluster substrate: GPUs, instances, parallelism, network, memory."""

from .gpu import GPUS, GPUSpec, get_gpu
from .instances import (
    DECODE_INSTANCE,
    DEFAULT_DECODE_COUNT,
    DEFAULT_PREFILL_FLEETS,
    INSTANCES,
    InstanceSpec,
    canonical_fleet,
    get_instance,
    instance_for_gpu,
    parse_fleet_spec,
)
from .memory import MemoryBreakdown, MemoryModel
from .network import NetworkModel, TransferResult
from .parallelism import (
    ParallelismConfig,
    ReplicaResources,
    get_parallelism,
    replica_resources,
)

__all__ = [
    "GPUSpec",
    "GPUS",
    "get_gpu",
    "InstanceSpec",
    "INSTANCES",
    "get_instance",
    "instance_for_gpu",
    "DEFAULT_PREFILL_FLEETS",
    "DECODE_INSTANCE",
    "DEFAULT_DECODE_COUNT",
    "parse_fleet_spec",
    "canonical_fleet",
    "NetworkModel",
    "TransferResult",
    "MemoryModel",
    "MemoryBreakdown",
    "ParallelismConfig",
    "ReplicaResources",
    "get_parallelism",
    "replica_resources",
]
