"""Tensor/pipeline parallelism registry (paper Table 3).

Each (model, GPU) pair maps to the TP and PP degrees the paper uses so
replicas have enough aggregate memory.  A model *replica* occupies
``tp * pp`` GPUs, possibly spanning multiple instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..model.config import ModelSpec, get_model
from .instances import InstanceSpec, instance_for_gpu

__all__ = ["ParallelismConfig", "get_parallelism", "replica_resources",
           "ReplicaResources"]


@dataclass(frozen=True)
class ParallelismConfig:
    """Tensor-parallel and pipeline-parallel degrees for one replica."""

    tp: int
    pp: int

    @property
    def n_gpus(self) -> int:
        return self.tp * self.pp

    def __post_init__(self) -> None:
        if self.tp < 1 or self.pp < 1:
            raise ValueError(f"degrees must be >= 1, got tp={self.tp} pp={self.pp}")


#: Table 3 verbatim.  Columns collapse identical entries: (A10G, L4)
#: share a config, as do (V100, T4).
_TABLE3: dict[tuple[str, str], ParallelismConfig] = {}


def _fill(letter: str, a10g_l4, v100_t4, a100) -> None:
    for gpu, cfg in (("A10G", a10g_l4), ("L4", a10g_l4),
                     ("V100", v100_t4), ("T4", v100_t4), ("A100", a100)):
        _TABLE3[(letter, gpu)] = ParallelismConfig(*cfg)


_fill("M", (4, 1), (4, 1), (1, 1))
_fill("P", (2, 2), (2, 2), (1, 1))
_fill("Y", (4, 2), (4, 2), (4, 1))
_fill("L", (4, 2), (4, 4), (4, 1))
_fill("F", (4, 5), (4, 8), (4, 2))


def get_parallelism(model: str | ModelSpec, gpu_name: str) -> ParallelismConfig:
    """TP/PP degrees for running ``model`` on ``gpu_name`` (Table 3)."""
    spec = model if isinstance(model, ModelSpec) else get_model(model)
    key = (spec.letter, gpu_name.upper())
    if key not in _TABLE3:
        raise KeyError(f"no Table 3 entry for model {spec.letter!r} on "
                       f"{gpu_name!r}")
    return _TABLE3[key]


@dataclass(frozen=True)
class ReplicaResources:
    """Aggregate capability of one model replica."""

    parallelism: ParallelismConfig
    instance: InstanceSpec
    n_instances: int
    fp16_tflops: float       # aggregate FP16 tensor compute
    int8_tops: float         # aggregate INT8 tensor compute (0 on V100)
    mem_gb: float            # aggregate device memory
    mem_bw_gbps: float       # aggregate device memory bandwidth
    network_gbps: float      # NIC bandwidth available to this replica

    @property
    def supports_int8(self) -> bool:
        return self.int8_tops > 0


def replica_resources(model: str | ModelSpec, gpu_name: str) -> ReplicaResources:
    """Resources of one replica of ``model`` on the paper's instance for
    ``gpu_name``.

    The replica's KV-transfer bandwidth is *funneled through a single
    instance's NIC*: NCCL point-to-point sends originate from one rank,
    so a replica spanning several instances still moves its KV at one
    NIC's rate.  A replica occupying a fraction of an instance gets a
    proportional NIC share (the §7.6 convention: half a p4de replica
    gets 200 Gbps).
    """
    spec = model if isinstance(model, ModelSpec) else get_model(model)
    cfg = get_parallelism(spec, gpu_name)
    inst = instance_for_gpu(gpu_name)
    n_gpus = cfg.n_gpus
    n_instances = max(1, math.ceil(n_gpus / inst.n_gpus))
    network = inst.network_gbps * min(1.0, n_gpus / inst.n_gpus)
    gpu = inst.gpu
    return ReplicaResources(
        parallelism=cfg,
        instance=inst,
        n_instances=n_instances,
        fp16_tflops=gpu.fp16_tflops * n_gpus,
        int8_tops=gpu.int8_tops * n_gpus,
        mem_gb=gpu.mem_gb * n_gpus,
        mem_bw_gbps=gpu.mem_bw_gbps * n_gpus,
        network_gbps=network,
    )
