"""Decode-instance GPU memory model (paper Table 5, §7.4).

Peak decode memory is parameters + cached KV + activations.  The KV
term depends on the compression method: FP16 for the baseline, ~14–15%
of FP16 for the 2-bit schemes, plus HACK's two small extras — the SE
sum store and the RQE FP16 tail buffer (§7.4 quotes 2.2–2.7% and
0.24–0.51% of GPU memory respectively).

The same model drives the simulator's admission control: a decode
replica only accepts a request if its projected peak footprint fits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model.config import ModelSpec

__all__ = ["MemoryModel", "MemoryBreakdown"]

_FP16_BYTES = 2.0
_GB = 1e9


@dataclass(frozen=True)
class MemoryBreakdown:
    """Peak decode memory decomposition, in bytes."""

    params: float
    kv: float
    sums: float
    fp16_tail: float
    activations: float

    @property
    def total(self) -> float:
        return self.params + self.kv + self.sums + self.fp16_tail + self.activations

    def fraction_of(self, capacity_bytes: float) -> float:
        """Peak usage as a fraction of ``capacity_bytes``."""
        return self.total / capacity_bytes


class MemoryModel:
    """Computes decode-replica memory footprints for one model.

    Parameters
    ----------
    spec:
        Model architecture.
    kv_bytes_per_value:
        Effective bytes per stored KV scalar: 2.0 for FP16, ~0.29 for
        2-bit-plus-metadata (codes + min/scale at Π=64).
    sum_overhead:
        SE sum bytes as a fraction of the quantized KV bytes (≈5%, §6).
    fp16_tail_tokens:
        Tokens of V kept in FP16 per (layer, kv-head) under RQE — at
        most Π-1, Π/2 in expectation.
    activation_overhead:
        Activation/workspace reservation as a fraction of parameter
        bytes (serving engines preallocate buffers alongside weights).
    """

    def __init__(self, spec: ModelSpec, kv_bytes_per_value: float = _FP16_BYTES,
                 sum_overhead: float = 0.0, fp16_tail_tokens: float = 0.0,
                 activation_overhead: float = 0.45) -> None:
        if kv_bytes_per_value <= 0:
            raise ValueError("kv_bytes_per_value must be positive")
        if not 0 <= sum_overhead < 1:
            raise ValueError("sum_overhead must be in [0, 1)")
        self.spec = spec
        self.kv_bytes_per_value = kv_bytes_per_value
        self.sum_overhead = sum_overhead
        self.fp16_tail_tokens = fp16_tail_tokens
        self.activation_overhead = activation_overhead

    def kv_bytes_per_token(self) -> float:
        """Stored KV bytes one token adds across all layers."""
        return self.spec.kv_bytes_per_token(self.kv_bytes_per_value)

    def request_kv_bytes(self, seq_len: int) -> float:
        """KV bytes a request with ``seq_len`` cached tokens occupies."""
        return seq_len * self.kv_bytes_per_token()

    def breakdown(self, n_requests: int, avg_seq_len: float,
                  tp: int = 1, pp: int = 1) -> MemoryBreakdown:
        """Peak footprint of a decode replica shard group.

        ``n_requests`` concurrent requests of ``avg_seq_len`` cached
        tokens each; parameters are sharded across the whole replica
        (tp·pp GPUs) but KV for all in-flight requests lives on it.
        """
        spec = self.spec
        params = spec.param_bytes()
        kv = n_requests * self.request_kv_bytes(avg_seq_len)
        sums = kv * self.sum_overhead
        tail = (
            n_requests * 2 * self.fp16_tail_tokens
            * spec.n_layers * spec.n_kv_heads * spec.head_dim * _FP16_BYTES
        ) / 2.0  # only V has a tail buffer; /2 removes the K half
        activations = self.activation_overhead * params
        return MemoryBreakdown(params=params, kv=kv, sums=sums,
                               fp16_tail=tail, activations=activations)

    def max_concurrent_requests(self, capacity_gb: float, avg_seq_len: float,
                                reserve_fraction: float = 0.05) -> int:
        """Requests that fit a replica of ``capacity_gb`` device memory."""
        capacity = capacity_gb * _GB * (1.0 - reserve_fraction)
        base = self.breakdown(0, avg_seq_len)
        free = capacity - base.total
        per_request = self.breakdown(1, avg_seq_len).total - base.total
        if per_request <= 0:
            raise ValueError("per-request footprint must be positive")
        return max(0, int(free / per_request))
