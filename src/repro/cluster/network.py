"""Network transfer model for the prefill → decode KV handoff (§6).

The paper ships KV over NCCL between instances; we model a transfer as
fixed setup latency plus bytes over the bottleneck goodput — the
minimum of the sender's and receiver's NIC shares, derated by a
protocol-efficiency factor.  The CPU-swap detour (§5.1 step 6: when no
decode instance has memory, KV is staged in prefill CPU memory first)
adds a PCIe store-and-forward leg.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkModel", "TransferResult"]

_DEFAULT_EFFICIENCY = 0.8
_DEFAULT_LATENCY_S = 0.002
_PCIE_BYTES_PER_S = 24e9  # ~PCIe 4.0 x16 effective


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one modelled transfer."""

    seconds: float
    bytes_moved: int
    via_cpu: bool


class NetworkModel:
    """Point-to-point transfer timing between instances.

    Parameters
    ----------
    efficiency:
        Fraction of nominal NIC bandwidth achievable as goodput.
    latency_s:
        Per-transfer setup latency (connection + NCCL ring setup).
    pcie_bytes_per_s:
        Host staging bandwidth used by the CPU-swap path.
    """

    def __init__(self, efficiency: float = _DEFAULT_EFFICIENCY,
                 latency_s: float = _DEFAULT_LATENCY_S,
                 pcie_bytes_per_s: float = _PCIE_BYTES_PER_S) -> None:
        if not 0 < efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        if latency_s < 0:
            raise ValueError(f"latency must be non-negative, got {latency_s}")
        self.efficiency = efficiency
        self.latency_s = latency_s
        self.pcie_bytes_per_s = pcie_bytes_per_s

    def goodput(self, sender_gbps: float, receiver_gbps: float) -> float:
        """Achievable bytes/second between two NIC shares."""
        bottleneck_gbps = min(sender_gbps, receiver_gbps)
        if bottleneck_gbps <= 0:
            raise ValueError("link bandwidth must be positive")
        return bottleneck_gbps / 8.0 * 1e9 * self.efficiency

    def transfer_time(self, nbytes: float, sender_gbps: float,
                      receiver_gbps: float, via_cpu: bool = False) -> TransferResult:
        """Seconds to move ``nbytes`` from sender to receiver.

        ``via_cpu`` models the §5.1 swap path: the payload first crosses
        PCIe into host memory and later crosses it back, serialized with
        the network leg (store-and-forward, the pipelining-infeasible
        case of §2.1).
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        seconds = self.latency_s + nbytes / self.goodput(sender_gbps,
                                                         receiver_gbps)
        if via_cpu:
            seconds += 2.0 * nbytes / self.pcie_bytes_per_s
        return TransferResult(seconds=seconds, bytes_moved=int(nbytes),
                              via_cpu=via_cpu)

    def pipelined_exposed_time(self, nbytes: float, sender_gbps: float,
                               receiver_gbps: float, compute_s: float,
                               n_stages: int) -> float:
        """Transfer time left *exposed* when overlapped with compute (§2.1).

        Layer-wise pipelining overlaps the transfer of finished layers
        with the computation of remaining ones: with ``n_stages`` layers,
        only the final layer's transfer plus whatever exceeds the
        remaining compute is exposed.
        """
        if n_stages < 1:
            raise ValueError(f"n_stages must be >= 1, got {n_stages}")
        total = self.transfer_time(nbytes, sender_gbps, receiver_gbps).seconds
        tail = total / n_stages
        overlappable = compute_s * (1.0 - 1.0 / n_stages)
        return max(tail, total - overlappable)
