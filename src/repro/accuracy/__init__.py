"""Accuracy substrate: metrics, KV distributions, error harness, anchoring."""

from .anchor import (
    PAPER_BASELINE_ACCURACY,
    TABLE6_CELLS,
    accuracy_from_error,
    accuracy_table,
    calibrate_kappa,
    dataset_sensitivity,
)
from .edit_sim import edit_similarity, levenshtein
from .generation import GenerationAgreement, cache_factories, generation_agreement
from .harness import (
    ACCURACY_METHODS,
    attention_error,
    decode_path_error,
    measure_errors,
    rqe_extra_error,
)
from .kv_distributions import (
    K_DISTRIBUTION,
    KVDistribution,
    Q_DISTRIBUTION,
    V_DISTRIBUTION,
    synthetic_attention_inputs,
    synthetic_plane,
)
from .rouge import RougeScore, rouge1

__all__ = [
    "rouge1",
    "RougeScore",
    "levenshtein",
    "edit_similarity",
    "KVDistribution",
    "K_DISTRIBUTION",
    "V_DISTRIBUTION",
    "Q_DISTRIBUTION",
    "synthetic_plane",
    "synthetic_attention_inputs",
    "ACCURACY_METHODS",
    "attention_error",
    "measure_errors",
    "decode_path_error",
    "rqe_extra_error",
    "PAPER_BASELINE_ACCURACY",
    "TABLE6_CELLS",
    "dataset_sensitivity",
    "calibrate_kappa",
    "accuracy_from_error",
    "accuracy_table",
    "GenerationAgreement",
    "cache_factories",
    "generation_agreement",
]
