"""Synthetic KV planes with the statistics of real LLM caches.

Published KV-cache studies (KVQuant, KIVI, CacheGen) consistently report
three structural properties that quantizers live or die by:

* **K planes have strong per-channel structure** — channel means and
  scales vary over an order of magnitude, and a small set of outlier
  channels carries much larger magnitudes (RoPE bands, attention sinks).
* **V planes are flatter across channels** but show occasional token
  outliers.
* **Neighbouring tokens are similar** — the token dimension is highly
  correlated (the locality CacheGen's delta coding exploits).

The generator reproduces those properties with controllable knobs, so
the accuracy harness measures quantizer error on inputs that behave
like the real thing rather than i.i.d. noise.  (The runnable tiny
transformer provides an alternative, fully end-to-end source of planes;
its random weights however produce nearly unstructured KV, which is
*harder* than reality for every 2-bit method.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KVDistribution", "K_DISTRIBUTION", "V_DISTRIBUTION",
           "Q_DISTRIBUTION", "synthetic_plane", "synthetic_attention_inputs"]


@dataclass(frozen=True)
class KVDistribution:
    """Statistical profile of one plane family."""

    channel_mean_scale: float    # spread of per-channel means
    channel_scale_sigma: float   # lognormal sigma of per-channel scales
    outlier_channel_frac: float  # fraction of high-magnitude channels
    outlier_channel_gain: float  # magnitude multiplier for those channels
    token_smoothness: float      # AR(1) coefficient along tokens
    token_outlier_frac: float    # fraction of outlier tokens
    token_outlier_gain: float
    #: Share of per-token variation carried by a factor common to all
    #: channels.  Real K/V vectors concentrate around a token-dependent
    #: direction (norm concentration / low intrinsic dimensionality), so
    #: within one token the channels cluster far more tightly than
    #: independent noise would — the property per-token quantization
    #: (KIVI, HACK) relies on.
    cross_channel_coupling: float = 0.0


#: K: channel-structured with occasional outlier channels.  These are
#: *within-head, post-RoPE* statistics: the order-of-magnitude channel
#: outliers reported by KVQuant live in the full pre-RoPE hidden
#: dimension; inside one rotated head the spread is much milder (RoPE
#: mixes channel pairs), with roughly one moderately hot channel per
#: head.
K_DISTRIBUTION = KVDistribution(
    channel_mean_scale=0.3, channel_scale_sigma=0.25,
    outlier_channel_frac=0.008, outlier_channel_gain=3.0,
    token_smoothness=0.95, token_outlier_frac=0.0, token_outlier_gain=1.0,
    cross_channel_coupling=0.85,
)

#: V: flat channels, occasional token outliers.
V_DISTRIBUTION = KVDistribution(
    channel_mean_scale=0.2, channel_scale_sigma=0.2,
    outlier_channel_frac=0.0, outlier_channel_gain=1.0,
    token_smoothness=0.90, token_outlier_frac=0.005, token_outlier_gain=4.0,
    cross_channel_coupling=0.7,
)

#: Q: similar within-head structure to K (they meet in a dot product).
Q_DISTRIBUTION = KVDistribution(
    channel_mean_scale=0.3, channel_scale_sigma=0.25,
    outlier_channel_frac=0.008, outlier_channel_gain=3.0,
    token_smoothness=0.5, token_outlier_frac=0.0, token_outlier_gain=1.0,
    cross_channel_coupling=0.8,
)


def synthetic_plane(n_tokens: int, n_channels: int, dist: KVDistribution,
                    rng: np.random.Generator) -> np.ndarray:
    """Draw one ``(n_tokens, n_channels)`` plane from ``dist``."""
    if n_tokens < 1 or n_channels < 1:
        raise ValueError("plane dimensions must be positive")
    means = rng.normal(scale=dist.channel_mean_scale, size=n_channels)
    scales = rng.lognormal(mean=0.0, sigma=dist.channel_scale_sigma,
                           size=n_channels)
    n_out_ch = int(round(dist.outlier_channel_frac * n_channels))
    if n_out_ch:
        idx = rng.choice(n_channels, size=n_out_ch, replace=False)
        scales[idx] *= dist.outlier_channel_gain

    # AR(1) token processes: one factor shared by all channels plus a
    # per-channel idiosyncratic component, mixed by the coupling.
    rho = dist.token_smoothness
    scale_in = np.sqrt(1.0 - rho ** 2)

    def ar1(shape):
        innovations = rng.normal(size=shape)
        series = np.empty_like(innovations)
        series[0] = innovations[0]
        for t in range(1, shape[0]):
            series[t] = rho * series[t - 1] + scale_in * innovations[t]
        return series

    alpha = dist.cross_channel_coupling
    shared = ar1((n_tokens, 1))
    own = ar1((n_tokens, n_channels))
    series = alpha * shared + np.sqrt(1.0 - alpha ** 2) * own

    plane = means[None, :] + scales[None, :] * series
    n_out_tok = int(round(dist.token_outlier_frac * n_tokens))
    if n_out_tok:
        idx = rng.choice(n_tokens, size=n_out_tok, replace=False)
        plane[idx] *= dist.token_outlier_gain
    return plane


def synthetic_attention_inputs(
    n_tokens: int, head_dim: int, rng: np.random.Generator,
    l_q: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(Q, K, V) for one attention head with realistic statistics."""
    if l_q is None:
        l_q = n_tokens
    q = synthetic_plane(l_q, head_dim, Q_DISTRIBUTION, rng)
    k = synthetic_plane(n_tokens, head_dim, K_DISTRIBUTION, rng)
    v = synthetic_plane(n_tokens, head_dim, V_DISTRIBUTION, rng)
    return q, k, v
