"""ROUGE-1 (unigram overlap), the paper's arXiv-summarization metric.

Implements the standard clipped-unigram-count formulation of Lin (2004):
precision and recall over unigram multiset intersection, combined into
an F1.  Operates on token sequences (strings or integers alike).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Sequence

__all__ = ["RougeScore", "rouge1"]


@dataclass(frozen=True)
class RougeScore:
    """Precision / recall / F1 triple."""

    precision: float
    recall: float
    f1: float


def rouge1(candidate: Sequence[Hashable], reference: Sequence[Hashable]) -> RougeScore:
    """ROUGE-1 of ``candidate`` against ``reference``.

    Both sequences may be empty; an empty pair scores 1.0 (nothing to
    miss), while one empty side scores 0.0.
    """
    cand_counts = Counter(candidate)
    ref_counts = Counter(reference)
    if not cand_counts and not ref_counts:
        return RougeScore(1.0, 1.0, 1.0)
    if not cand_counts or not ref_counts:
        return RougeScore(0.0, 0.0, 0.0)
    overlap = sum((cand_counts & ref_counts).values())
    precision = overlap / sum(cand_counts.values())
    recall = overlap / sum(ref_counts.values())
    if precision + recall == 0:
        return RougeScore(0.0, 0.0, 0.0)
    f1 = 2 * precision * recall / (precision + recall)
    return RougeScore(precision, recall, f1)
