"""Error → accuracy anchoring for the Table 6 reproduction.

Absolute task accuracies (ROUGE-1 on arXiv, classification on
IMDb/Cocktail, edit similarity on HumanEval) cannot be reproduced
without the real model checkpoints, so the reproduction anchors on the
paper's *baseline* accuracy for every (dataset, model) cell and derives
each quantized method's accuracy as

    accuracy = baseline · (1 − κ · error · dataset_sensitivity)

where ``error`` is the *measured* attention-output error of the method
(:mod:`repro.accuracy.harness`), ``dataset_sensitivity`` grows mildly
with the dataset's output length (quantization error accumulates over
generated tokens — the paper's own Table 7 discussion), and κ is a
single global constant calibrated once so that HACK Π=64's mean loss
matches the middle of its paper band (0.76–1.56%).  Every *relative*
statement in the reproduced table — the Π ordering, which methods sit
in which band — comes from measured errors, never from the anchor.
"""

from __future__ import annotations

from ..workload.datasets import get_dataset

__all__ = ["PAPER_BASELINE_ACCURACY", "TABLE6_CELLS", "dataset_sensitivity",
           "calibrate_kappa", "accuracy_from_error", "accuracy_table"]

#: Table 6 baseline row, verbatim: (dataset, model letter) → accuracy %.
PAPER_BASELINE_ACCURACY: dict[tuple[str, str], float] = {
    ("imdb", "M"): 84.81, ("imdb", "P"): 87.84, ("imdb", "Y"): 93.87,
    ("imdb", "L"): 95.73, ("imdb", "F"): 85.63,
    ("arxiv", "M"): 79.40, ("arxiv", "P"): 86.35, ("arxiv", "Y"): 87.75,
    ("arxiv", "L"): 83.79, ("arxiv", "F"): 79.42,
    ("cocktail", "M"): 75.18, ("cocktail", "P"): 83.92,
    ("cocktail", "Y"): 85.25, ("cocktail", "L"): 86.39,
    ("humaneval", "M"): 89.37, ("humaneval", "P"): 91.62,
    ("humaneval", "Y"): 90.79, ("humaneval", "L"): 92.45,
    ("humaneval", "F"): 85.21,
}

#: The 19 table cells in paper order (Cocktail has no Falcon column —
#: its prompts exceed Falcon's 2K context).
TABLE6_CELLS: tuple[tuple[str, str], ...] = tuple(PAPER_BASELINE_ACCURACY)

#: HACK Π=64 target loss used to calibrate κ: middle of the paper's
#: 0.76–1.56% band.
_HACK64_TARGET_LOSS = 0.0116

#: Output length anchoring the sensitivity exponent (Cocktail's mean).
_REFERENCE_OUTPUT_LEN = 159.0


def dataset_sensitivity(dataset: str) -> float:
    """Mild growth of accumulated loss with mean output length."""
    out_len = get_dataset(dataset).output_len.mean
    return float((out_len / _REFERENCE_OUTPUT_LEN) ** 0.15)


def calibrate_kappa(hack64_error: float,
                    target_loss: float = _HACK64_TARGET_LOSS) -> float:
    """The single global κ: maps HACK Π=64's error to its paper loss."""
    if hack64_error <= 0:
        raise ValueError("hack64_error must be positive")
    return target_loss / hack64_error


def accuracy_from_error(dataset: str, model_letter: str, error: float,
                        kappa: float) -> float:
    """One reproduced Table 6 cell, in percent."""
    key = (dataset, model_letter)
    if key not in PAPER_BASELINE_ACCURACY:
        raise KeyError(f"no Table 6 cell for {key}")
    base = PAPER_BASELINE_ACCURACY[key]
    loss = kappa * error * dataset_sensitivity(dataset)
    return base * max(0.0, 1.0 - loss)


def accuracy_table(errors: dict[str, float],
                   kappa: float | None = None) -> dict[str, dict[tuple[str, str], float]]:
    """Reproduced Table 6: method → cell → accuracy %.

    ``errors`` maps method names to measured attention errors and must
    include ``hack_pi64`` (the κ anchor) unless ``kappa`` is given.
    """
    if kappa is None:
        if "hack_pi64" not in errors:
            raise ValueError("errors must include 'hack_pi64' to calibrate κ")
        kappa = calibrate_kappa(errors["hack_pi64"])
    table = {}
    for method, err in errors.items():
        table[method] = {
            cell: accuracy_from_error(cell[0], cell[1], err, kappa)
            for cell in TABLE6_CELLS
        }
    return table
