"""End-to-end generation agreement on the runnable numpy transformer.

A secondary, fully end-to-end accuracy instrument: generate greedily
with the exact FP16 decode path and with a quantized cache, then score
the *agreement* between the two outputs with the paper's own metrics
(ROUGE-1 for summarization-style evaluation, edit similarity for
code-style evaluation).  Quantization-induced prediction flips lower
the agreement; a perfect cache scores 1.0.

Random-weight models make poor text but perfectly good *error
amplifiers*: both runs share weights and inputs, so any divergence is
attributable to the cache's quantization alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.kv_cache import DequantizingKVCache, Fp16KVCache, HackKVCache
from ..core.rounding import make_rng
from ..model.config import ModelSpec, tiny_spec
from ..model.transformer import Transformer
from .edit_sim import edit_similarity
from .rouge import rouge1

__all__ = ["GenerationAgreement", "cache_factories", "generation_agreement"]


@dataclass(frozen=True)
class GenerationAgreement:
    """Agreement between a quantized and the exact generation."""

    method: str
    exact_match: float      # fraction of identical positions
    rouge1_f1: float
    edit_sim: float
    n_tokens: int


def cache_factories(spec: ModelSpec, seed: int = 0) -> dict[str, Callable]:
    """Decode-cache constructors per method for ``spec``."""
    d = spec.head_dim
    pi = min(16, d)

    def hack(enable_rqe=True, enable_se=True):
        counter = [0]

        def make():
            counter[0] += 1
            return HackKVCache(d, partition_size=pi, enable_rqe=enable_rqe,
                               enable_se=enable_se,
                               rng=make_rng(seed + counter[0]))
        return make

    def dequant():
        counter = [0]

        def make():
            counter[0] += 1
            return DequantizingKVCache(d, partition_size=pi,
                                       rng=make_rng(seed + counter[0]))
        return make

    return {
        "baseline": lambda: Fp16KVCache(d),
        "hack": hack(),
        "hack_norqe": hack(enable_rqe=False),
        "dequant2bit": dequant(),
    }


def generation_agreement(
    method: str,
    spec: ModelSpec | None = None,
    prompt_len: int = 48,
    max_new_tokens: int = 24,
    n_prompts: int = 3,
    seed: int = 0,
) -> GenerationAgreement:
    """Generate with ``method``'s cache and score agreement vs exact."""
    spec = spec or tiny_spec()
    model = Transformer(spec, backend="reference", seed=7)
    factories = cache_factories(spec, seed=seed)
    if method not in factories:
        raise KeyError(
            f"unknown generation method {method!r}; choose from "
            f"{sorted(factories)}"
        )

    rng = make_rng(seed)
    matches, rouges, edits, total = [], [], [], 0
    for _ in range(n_prompts):
        prompt = list(rng.integers(0, spec.vocab_size, size=prompt_len))
        exact = model.generate(prompt, max_new_tokens)
        quantized = model.generate(prompt, max_new_tokens,
                                   cache_factory=factories[method])
        matches.append(np.mean([a == b for a, b in zip(exact, quantized)]))
        rouges.append(rouge1(quantized, exact).f1)
        edits.append(edit_similarity(quantized, exact))
        total += len(exact)
    return GenerationAgreement(
        method=method,
        exact_match=float(np.mean(matches)),
        rouge1_f1=float(np.mean(rouges)),
        edit_sim=float(np.mean(edits)),
        n_tokens=total,
    )
