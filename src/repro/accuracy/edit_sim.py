"""Edit similarity (normalized Levenshtein), the HumanEval metric.

``edit_similarity(a, b) = 1 - levenshtein(a, b) / max(len(a), len(b))``
— the convention the paper cites for code-completion quality.
"""

from __future__ import annotations

from typing import Hashable, Sequence

__all__ = ["levenshtein", "edit_similarity"]


def levenshtein(a: Sequence[Hashable], b: Sequence[Hashable]) -> int:
    """Minimum number of insertions/deletions/substitutions a → b."""
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, item_a in enumerate(a, start=1):
        current = [i]
        for j, item_b in enumerate(b, start=1):
            cost = 0 if item_a == item_b else 1
            current.append(min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost,  # substitution
            ))
        previous = current
    return previous[-1]


def edit_similarity(a: Sequence[Hashable], b: Sequence[Hashable]) -> float:
    """Normalized similarity in [0, 1]; identical sequences score 1."""
    if not a and not b:
        return 1.0
    return 1.0 - levenshtein(a, b) / max(len(a), len(b))
