"""Quantization-error measurement harness.

Two instruments:

* :func:`attention_error` — replay one attention head on realistic
  synthetic Q/K/V (see :mod:`repro.accuracy.kv_distributions`) through a
  method's *actual* quantization path and measure the relative error of
  the attention output against the exact computation.  This is the
  primary signal behind the Table 6 reproduction.

* :func:`decode_path_error` — drive the real :class:`HackKVCache`
  decode path token by token, with and without RQE, and measure the
  attention-output error against an exact FP16 cache.  The *extra*
  error of the no-RQE variant is what Table 7 reports.

Methods are referenced by :class:`~repro.methods.spec.MethodSpec` (or
any spelling it accepts: legacy names, ``family?k=v`` strings, flat
dicts).  The spec's family supplies the whole accuracy path — HACK
variants run the homomorphic attention, dequantize-first families
round-trip K/V through their compressors and attend exactly — so the
harness has no per-method branches and user-registered families are
measured exactly like the built-in ones.
"""

from __future__ import annotations

import numpy as np

from ..core.attention import attention_reference
from ..core.kv_cache import Fp16KVCache, HackKVCache
from ..core.rounding import make_rng
from ..methods.spec import canonical_method, method_spec
from .kv_distributions import (
    K_DISTRIBUTION,
    Q_DISTRIBUTION,
    V_DISTRIBUTION,
    synthetic_plane,
)

__all__ = ["ACCURACY_METHODS", "attention_error", "measure_errors",
           "decode_path_error", "rqe_extra_error"]

#: Methods the accuracy experiments compare (Table 6 rows + §3 formats).
ACCURACY_METHODS = (
    "baseline", "hack_pi32", "hack_pi64", "hack_pi128",
    "cachegen", "kvquant", "fp4", "fp6", "fp8",
)


def attention_error(
    method,
    n_tokens: int = 256,
    head_dim: int = 128,
    l_q: int = 32,
    n_trials: int = 6,
    seed: int = 100,
) -> float:
    """Mean relative attention-output error of ``method``.

    ``method`` is any :class:`MethodSpec` spelling.  Exact families
    (``baseline``) return 0.  HACK variants run the full homomorphic
    path (8-bit Q, quantized K/V, 8-bit P, stochastic rounding);
    dequantize-first families quantize K/V through their codec and
    attend exactly, which is what their systems compute.
    """
    spec = method_spec(method)
    if spec.is_exact:
        return 0.0
    errors = []
    for trial in range(n_trials):
        rng = make_rng(seed + trial)
        q = synthetic_plane(l_q, head_dim, Q_DISTRIBUTION, rng)
        k = synthetic_plane(n_tokens, head_dim, K_DISTRIBUTION, rng)
        v = synthetic_plane(n_tokens, head_dim, V_DISTRIBUTION, rng)
        ref = attention_reference(q, k, v, causal=False)
        out = spec.attention_output(q, k, v, rng=make_rng(seed + trial))
        errors.append(np.linalg.norm(out - ref) / np.linalg.norm(ref))
    return float(np.mean(errors))


def measure_errors(
    methods: tuple = ACCURACY_METHODS,
    n_tokens: int = 256,
    head_dim: int = 128,
    n_trials: int = 6,
    seed: int = 100,
) -> dict:
    """Attention errors for a set of methods under one configuration.

    Keys are the method references as given (strings stay strings,
    specs stay specs) so callers index results with what they passed;
    flat spec dicts, being unhashable, are keyed by their canonical
    string.
    """
    return {
        (canonical_method(m) if isinstance(m, dict) else m):
            attention_error(m, n_tokens=n_tokens, head_dim=head_dim,
                            n_trials=n_trials, seed=seed)
        for m in methods
    }


def decode_path_error(
    enable_rqe: bool,
    n_prefill: int = 48,
    n_decode: int = 48,
    head_dim: int = 64,
    partition_size: int = 16,
    seed: int = 0,
) -> float:
    """Mean decode-step attention error of :class:`HackKVCache`.

    Appends ``n_prefill`` tokens in bulk (the prefill handoff), then
    decodes ``n_decode`` steps, comparing every step's attention output
    against an exact FP16 cache fed the same values.  The no-RQE cache
    requantizes V's partial block on every append (Fig. 8), so its
    error accumulates with output length — exactly the effect the
    Table 7 ablation quantifies.
    """
    rng = make_rng(seed)
    k_all = synthetic_plane(n_prefill + n_decode, head_dim, K_DISTRIBUTION, rng)
    v_all = synthetic_plane(n_prefill + n_decode, head_dim, V_DISTRIBUTION, rng)
    q_all = synthetic_plane(n_decode, head_dim, Q_DISTRIBUTION, rng)

    hack_cache = HackKVCache(head_dim, partition_size=partition_size,
                             enable_rqe=enable_rqe, rng=make_rng(seed + 1))
    exact_cache = Fp16KVCache(head_dim)
    hack_cache.append_bulk(k_all[:n_prefill], v_all[:n_prefill])
    exact_cache.append_bulk(k_all[:n_prefill], v_all[:n_prefill])

    errors = []
    for step in range(n_decode):
        idx = n_prefill + step
        hack_cache.append(k_all[idx], v_all[idx])
        exact_cache.append(k_all[idx], v_all[idx])
        out = hack_cache.attention(q_all[step])
        ref = exact_cache.attention(q_all[step])
        errors.append(np.linalg.norm(out - ref) / np.linalg.norm(ref))
    return float(np.mean(errors))


def rqe_extra_error(
    n_prefill: int = 48,
    n_decode: int = 48,
    head_dim: int = 64,
    partition_size: int = 16,
    n_trials: int = 4,
    seed: int = 0,
) -> float:
    """Mean extra decode error of HACK/RQE over HACK (Table 7 signal)."""
    deltas = []
    for trial in range(n_trials):
        with_rqe = decode_path_error(True, n_prefill, n_decode, head_dim,
                                     partition_size, seed=seed + trial)
        without = decode_path_error(False, n_prefill, n_decode, head_dim,
                                    partition_size, seed=seed + trial)
        deltas.append(without - with_rqe)
    return float(np.mean(deltas))
