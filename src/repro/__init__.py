"""Reproduction of HACK (SIGCOMM 2025): homomorphic KV-cache quantization
for disaggregated LLM inference.

Subpackages
-----------
core
    The paper's contribution: partitioned asymmetric stochastic
    quantization, the Eq. 4 homomorphic matmul, HACK attention and the
    quantized KV cache with the SE/RQE optimizations.
quant
    Comparator compressors: CacheGen-like, KVQuant-like, FP4/6/8.
model
    Model-spec registry and a runnable numpy transformer.
cluster
    GPU/instance specs, parallelism configs, network and memory models.
perfmodel
    Analytic roofline performance model for prefill/decode/(de)quant.
sim
    Discrete-event simulator of the disaggregated serving cluster.
workload
    Dataset length models and trace generation.
methods
    End-to-end method descriptors (baseline, CacheGen, KVQuant, HACK…).
accuracy
    ROUGE-1, edit similarity, and the quantization-accuracy harness.
analysis
    Table/figure rendering helpers.
api
    The unified front door: declarative Scenario/Sweep definitions, a
    serial/multiprocessing Runner, and schema-versioned RunArtifacts.
experiments
    One module per table/figure in the paper's evaluation, expressed as
    Scenario/Sweep definitions over :mod:`repro.api`.
"""

from . import core

__version__ = "1.0.0"

__all__ = ["core", "__version__"]
