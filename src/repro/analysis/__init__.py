"""Reporting helpers: ASCII/markdown tables and figure series."""

from .tables import SeriesFigure, Table, format_value

__all__ = ["Table", "SeriesFigure", "format_value"]
