"""Plain-text rendering for reproduced tables and figure series.

Benchmarks and the CLI print every artifact as an aligned ASCII table
(the terminal stand-in for the paper's plots); ``to_markdown`` emits
the same content for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table", "SeriesFigure", "format_value"]


def format_value(value) -> str:
    """Human-friendly cell formatting."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """A titled grid of rows."""

    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        cells = [[format_value(c) for c in row] for row in self.rows]
        widths = [
            max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
            for i, h in enumerate(self.headers)
        ]

        def line(parts):
            return "  ".join(p.ljust(w) for p, w in zip(parts, widths)).rstrip()

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        body = [line(row) for row in cells]
        return "\n".join([self.title, rule, line(self.headers), rule, *body,
                          rule])

    def to_markdown(self) -> str:
        head = "| " + " | ".join(self.headers) + " |"
        sep = "|" + "|".join("---" for _ in self.headers) + "|"
        body = [
            "| " + " | ".join(format_value(c) for c in row) + " |"
            for row in self.rows
        ]
        return "\n".join([f"**{self.title}**", "", head, sep, *body])


@dataclass
class SeriesFigure:
    """A figure as named series over shared x values."""

    title: str
    x_label: str
    x_values: list
    series: dict[str, list[float]] = field(default_factory=dict)

    def add_series(self, name: str, values: list[float]) -> None:
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, expected "
                f"{len(self.x_values)}"
            )
        self.series[name] = list(values)

    def as_table(self) -> Table:
        table = Table(self.title, [self.x_label, *self.series.keys()])
        for i, x in enumerate(self.x_values):
            table.add_row(x, *(vals[i] for vals in self.series.values()))
        return table

    def render(self) -> str:
        return self.as_table().render()

    def to_markdown(self) -> str:
        return self.as_table().to_markdown()
