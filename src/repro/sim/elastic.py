"""Elastic cluster control: autoscaling and admission policies.

The paper evaluates fixed prefill/decode fleets; production serving
must track demand.  This module adds two open registries in the
established ``family?k=v`` grammar (mirroring
:mod:`repro.sim.scheduling` / :mod:`repro.sim.recovery`):

* **Autoscalers** decide, at a fixed evaluation interval, how many of
  the *provisioned* replicas should be powered.  The engine reconciles
  toward the target: scale-up boots powered-off replicas with a
  cold-start latency; scale-down drains replicas (no new work) and
  retires them only once idle — in-flight work is never killed, and
  the lifecycle composes with the fault machinery's crash epochs.

      static                                 (default; never evaluates)
      reactive?queue_hi=8.0,queue_lo=1.0,cooldown_s=60.0
      slo?target=0.9,window_s=120.0
      schedule?plan=0:1.0|450:0.5,period_s=900.0

* **Admission policies** see every fresh arrival and may accept it,
  shed it (a rejected terminal state), or *degrade* it — stamp a
  cheaper compression method the prefill stage will honor instead of
  the scenario method, reusing the KVServe service-tier framing the
  selection policies established:

      accept_all                             (default)
      shed?queue_max=64.0,tier=0.0
      degrade?tier=1.0,method=hack_int4

Both registries are open: subclass :class:`AutoscalerPolicy` /
:class:`AdmissionPolicy` and decorate with :func:`register_autoscaler`
/ :func:`register_admission`.  The ``static`` autoscaler plus
``accept_all`` admission is byte-identical to an unarmed engine — the
elastic path adds zero events and changes no hot-path decision.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass

__all__ = [
    "DEFAULT_AUTOSCALER",
    "DEFAULT_ADMISSION",
    "ElasticParam",
    "AutoscalerPolicy",
    "AdmissionPolicy",
    "AutoscalerSpec",
    "AdmissionSpec",
    "register_autoscaler",
    "register_admission",
    "get_autoscaler",
    "get_admission",
    "autoscaler_policies",
    "admission_policies",
    "has_autoscaler_policy",
    "has_admission_policy",
    "autoscaler_spec",
    "admission_spec",
    "parse_autoscaler",
    "parse_admission",
    "canonical_autoscaler",
    "canonical_admission",
    "split_autoscaler_list",
    "split_admission_list",
]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: The do-nothing defaults an armed engine falls back to.
DEFAULT_AUTOSCALER = "static"
DEFAULT_ADMISSION = "accept_all"


@dataclass(frozen=True)
class ElasticParam:
    """One policy parameter: the default fixes the type (float, or a
    word-safe string — e.g. a method name or a ``t:frac|t:frac``
    schedule plan)."""

    default: object
    doc: str = ""


def _suggest(name: str, candidates) -> str:
    matches = difflib.get_close_matches(name, list(candidates), n=3)
    if matches:
        return "; did you mean " + " or ".join(repr(m) for m in matches) + "?"
    return f"; choose from {', '.join(sorted(candidates))}"


def _coerce(role: str, kind: str, name: str, pd: ElasticParam, value):
    where = f"parameter {name!r} of {role} policy {kind!r}"
    if isinstance(pd.default, str):
        if not isinstance(value, str):
            raise ValueError(f"{where} expects a string, got {value!r}")
        if not value or any(c in value for c in ",=?+ "):
            raise ValueError(
                f"{where} string values must be non-empty and free of "
                f"',', '=', '?', '+' and spaces; got {value!r}"
            )
        return value
    if isinstance(value, bool):
        raise ValueError(f"{where} expects a number, got {value!r}")
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"{where} expects a number, got {value!r}"
        ) from None


# -- policy base classes ------------------------------------------------------

class AutoscalerPolicy:
    """Decides how many provisioned replicas should be powered.

    Subclasses set :attr:`name`, :attr:`description`, :attr:`params`
    and are registered with :func:`register_autoscaler`.  Instances
    receive their resolved parameters as the ``p`` mapping.  The engine
    calls :meth:`desired` every :meth:`interval_s` seconds while
    requests are outstanding and reconciles the fleet toward the
    returned ``(n_prefill, n_decode)`` target (clamped to
    ``[1, provisioned]`` per role).  Useful signals on the simulator:

    * ``sim.prefill_backlog()`` — queued + in-service + parked requests;
    * ``sim.recent_ttft_attainment(now, window_s, ttft_slo_s)`` — the
      sliding-window TTFT SLO attainment over recent finishes.
    """

    #: Registry key; also the prefix of the string grammar.
    name: str = "abstract"
    #: One-line summary shown by ``cli list``.
    description: str = ""
    #: Parameter table: name -> :class:`ElasticParam`.
    params: dict[str, ElasticParam] = {}
    #: ``False`` opts out of evaluation events entirely (``static``):
    #: an armed-but-idle engine stays byte-identical to an unarmed one.
    evaluates: bool = True

    def __init__(self, **params) -> None:
        self.p = params

    def bind(self, sim) -> None:
        """Called once with the simulator before the run starts."""

    def interval_s(self) -> float:
        """Seconds between evaluations (``interval_s`` param)."""
        return float(self.p.get("interval_s", 10.0))

    def cold_start_s(self) -> float:
        """Boot latency for a powered-off replica (``cold_start_s``)."""
        return float(self.p.get("cold_start_s", 30.0))

    def initial(self, n_prefill: int, n_decode: int) -> tuple[int, int]:
        """Replica counts powered at t=0 (default: everything)."""
        return n_prefill, n_decode

    def desired(self, now: float, sim, n_prefill: int, n_decode: int,
                cur_prefill: int, cur_decode: int) -> tuple[int, int]:
        """The powered-replica target given provisioned and current
        counts (current = the engine's reconciliation target, which
        counts booting replicas but not draining ones)."""
        raise NotImplementedError

    @staticmethod
    def proportional(target_prefill: int, n_prefill: int,
                     n_decode: int) -> int:
        """A decode count keeping the provisioned prefill:decode ratio."""
        return max(1, round(target_prefill * n_decode / max(1, n_prefill)))

    @classmethod
    def validate(cls, **params) -> None:
        """Raise ``ValueError`` for out-of-range parameter values."""

    @classmethod
    def signature(cls) -> str:
        """Grammar template with defaults."""
        if not cls.params:
            return cls.name
        parts = [f"{name}={pd.default}" for name, pd in cls.params.items()]
        return f"{cls.name}?{','.join(parts)}"


class AdmissionPolicy:
    """Decides the fate of every fresh arrival.

    :meth:`admit` returns ``None`` to accept, the string ``"shed"`` to
    reject the request outright (a terminal ``rejected`` state, counted
    as ``n_shed``), or a resolved :class:`~repro.methods.base.Method`
    to accept the request degraded — the prefill stage runs the request
    with that method instead of the scenario one.  Crash re-dispatches
    and retries bypass admission: a request is judged once, at arrival.
    """

    #: Registry key; also the prefix of the string grammar.
    name: str = "abstract"
    #: One-line summary shown by ``cli list``.
    description: str = ""
    #: Parameter table: name -> :class:`ElasticParam`.
    params: dict[str, ElasticParam] = {}
    #: ``True`` when :meth:`admit` may return a Method; the engine then
    #: routes prefill through the per-request method path.
    may_degrade: bool = False

    def __init__(self, **params) -> None:
        self.p = params

    def bind(self, sim) -> None:
        """Called once with the simulator before the run starts."""

    def admit(self, now: float, req, sim):
        """``None`` (accept), ``"shed"``, or a Method (degrade)."""
        return None

    @classmethod
    def validate(cls, **params) -> None:
        """Raise ``ValueError`` for out-of-range parameter values."""

    @classmethod
    def signature(cls) -> str:
        """Grammar template with defaults."""
        if not cls.params:
            return cls.name
        parts = [f"{name}={pd.default}" for name, pd in cls.params.items()]
        return f"{cls.name}?{','.join(parts)}"


# -- registries ---------------------------------------------------------------

_AUTOSCALERS: dict[str, type] = {}
_ADMISSIONS: dict[str, type] = {}


def _register(registry: dict, base: type, role: str, replace: bool):
    def decorator(obj):
        if not (isinstance(obj, type) and issubclass(obj, base)):
            raise TypeError(
                f"{getattr(obj, '__name__', obj)!r} must subclass "
                f"{base.__name__}"
            )
        if not _NAME_RE.match(obj.name or ""):
            raise ValueError(
                f"{role} policy name {obj.name!r} must match "
                f"{_NAME_RE.pattern}"
            )
        if obj.name in registry and not replace:
            raise ValueError(
                f"{role} policy {obj.name!r} is already registered; pass "
                f"register_{role}(replace=True) to override"
            )
        for pname, pd in obj.params.items():
            ok_float = isinstance(pd.default, (int, float)) \
                and not isinstance(pd.default, bool)
            ok_str = isinstance(pd.default, str) and pd.default
            if not (ok_float or ok_str):
                raise ValueError(
                    f"parameter {pname!r} default must be a number or a "
                    f"non-empty string, got {pd.default!r}"
                )
        registry[obj.name] = obj
        return obj
    return decorator


def register_autoscaler(cls=None, *, replace: bool = False):
    """Class decorator registering an autoscaler policy."""
    decorator = _register(_AUTOSCALERS, AutoscalerPolicy, "autoscaler",
                          replace)
    return decorator(cls) if cls is not None else decorator


def register_admission(cls=None, *, replace: bool = False):
    """Class decorator registering an admission policy."""
    decorator = _register(_ADMISSIONS, AdmissionPolicy, "admission",
                          replace)
    return decorator(cls) if cls is not None else decorator


def get_autoscaler(name: str) -> type:
    """Look up an autoscaler policy, with typo suggestions."""
    try:
        return _AUTOSCALERS[name]
    except KeyError:
        raise ValueError(
            f"unknown autoscaler policy {name!r}"
            f"{_suggest(name, _AUTOSCALERS)}"
        ) from None


def get_admission(name: str) -> type:
    """Look up an admission policy, with typo suggestions."""
    try:
        return _ADMISSIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown admission policy {name!r}"
            f"{_suggest(name, _ADMISSIONS)}"
        ) from None


def autoscaler_policies() -> dict[str, type]:
    """All registered autoscalers (a copy, registration order)."""
    return dict(_AUTOSCALERS)


def admission_policies() -> dict[str, type]:
    """All registered admission policies (a copy, registration order)."""
    return dict(_ADMISSIONS)


def has_autoscaler_policy(reference: str) -> bool:
    """True when the string reference names a registered autoscaler
    (parameters may still be invalid)."""
    return reference.strip().partition("?")[0].strip() in _AUTOSCALERS


def has_admission_policy(reference: str) -> bool:
    """True when the string reference names a registered admission
    policy (parameters may still be invalid)."""
    return reference.strip().partition("?")[0].strip() in _ADMISSIONS


# -- the specs ----------------------------------------------------------------

class _ElasticSpecMixin:
    """Shared spec behavior; subclasses set ``_role``/``_get``."""

    def _normalize(self) -> None:
        policy = self._get(self.kind)
        items = self.params.items() if isinstance(self.params, dict) \
            else self.params
        normalized: dict[str, object] = {}
        for key, value in items:
            if key not in policy.params:
                raise ValueError(
                    f"{self._role} policy {self.kind!r} has no parameter "
                    f"{key!r}{_suggest(key, policy.params)}"
                )
            if key in normalized:
                raise ValueError(
                    f"parameter {key!r} given twice for {self._role} "
                    f"policy {self.kind!r}"
                )
            normalized[key] = _coerce(self._role, self.kind, key,
                                      policy.params[key], value)
        object.__setattr__(self, "params", tuple(sorted(normalized.items())))
        policy.validate(**self.resolved_params())

    def resolved_params(self) -> dict:
        """Policy defaults overlaid with this spec's parameters."""
        policy = self._get(self.kind)
        out = {name: pd.default for name, pd in policy.params.items()}
        out.update(self.params)
        return out

    def build(self):
        """A fresh policy instance."""
        return self._get(self.kind)(**self.resolved_params())

    def canonical(self) -> str:
        """Compact string form, e.g. ``reactive?queue_hi=8.0``."""
        if not self.params:
            return self.kind
        parts = []
        for k, v in self.params:
            parts.append(f"{k}={v!r}" if isinstance(v, float)
                         else f"{k}={v}")
        return f"{self.kind}?{','.join(parts)}"

    def __str__(self) -> str:
        return self.canonical()


@dataclass(frozen=True)
class AutoscalerSpec(_ElasticSpecMixin):
    """One declarative autoscaler reference: policy + parameters.

    ``params`` holds only the parameters given explicitly, coerced to
    the policy's declared types and sorted; an explicitly-given default
    is kept (``reactive?queue_hi=8.0`` stays distinct from
    ``reactive``)."""

    kind: str
    params: tuple[tuple[str, object], ...] = ()

    _role = "autoscaler"
    _get = staticmethod(get_autoscaler)

    def __post_init__(self) -> None:
        self._normalize()

    @classmethod
    def of(cls, kind: str, **params) -> "AutoscalerSpec":
        return cls(kind, tuple(params.items()))


@dataclass(frozen=True)
class AdmissionSpec(_ElasticSpecMixin):
    """One declarative admission reference: policy + parameters."""

    kind: str
    params: tuple[tuple[str, object], ...] = ()

    _role = "admission"
    _get = staticmethod(get_admission)

    def __post_init__(self) -> None:
        self._normalize()

    @classmethod
    def of(cls, kind: str, **params) -> "AdmissionSpec":
        return cls(kind, tuple(params.items()))


# -- string grammar -----------------------------------------------------------

def _parse(text: str, registry: dict, spec_cls, role: str):
    part = text.strip()
    kind, sep, rest = part.partition("?")
    kind = kind.strip()
    if not kind or kind not in registry:
        raise ValueError(
            f"unknown {role} policy {kind!r}{_suggest(kind, registry)}"
        )
    pairs = []
    if sep:
        for item in rest.split(","):
            key, eq, value = item.partition("=")
            key, value = key.strip(), value.strip()
            if not eq or not key or not value:
                raise ValueError(
                    f"bad {role} parameter {item!r} in {text!r}; the "
                    "grammar is family?key=value,key=value"
                )
            pairs.append((key, value))
    return spec_cls(kind, tuple(pairs))


def parse_autoscaler(text: str) -> AutoscalerSpec:
    """Parse ``family[?key=value,…]`` into an :class:`AutoscalerSpec`."""
    return _parse(text, _AUTOSCALERS, AutoscalerSpec, "autoscaler")


def parse_admission(text: str) -> AdmissionSpec:
    """Parse ``family[?key=value,…]`` into an :class:`AdmissionSpec`."""
    return _parse(text, _ADMISSIONS, AdmissionSpec, "admission")


def autoscaler_spec(reference) -> AutoscalerSpec:
    """The :class:`AutoscalerSpec` behind any autoscaler reference."""
    if isinstance(reference, AutoscalerSpec):
        return reference
    if isinstance(reference, str):
        return parse_autoscaler(reference)
    raise TypeError(
        f"expected an AutoscalerSpec or string, got "
        f"{type(reference).__name__}"
    )


def admission_spec(reference) -> AdmissionSpec:
    """The :class:`AdmissionSpec` behind any admission reference."""
    if isinstance(reference, AdmissionSpec):
        return reference
    if isinstance(reference, str):
        return parse_admission(reference)
    raise TypeError(
        f"expected an AdmissionSpec or string, got "
        f"{type(reference).__name__}"
    )


def canonical_autoscaler(reference) -> str:
    """The canonical string form of an autoscaler reference."""
    return autoscaler_spec(reference).canonical()


def canonical_admission(reference) -> str:
    """The canonical string form of an admission reference."""
    return admission_spec(reference).canonical()


def _split_list(text: str) -> list[str]:
    parts: list[str] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if parts and "=" in token and "?" not in token \
                and "?" in parts[-1]:
            parts[-1] += "," + token
        else:
            parts.append(token)
    return parts


def split_autoscaler_list(text: str) -> list[str]:
    """Split a comma-separated autoscaler list, keeping parameters
    attached: ``"static,reactive?queue_hi=6,queue_lo=1"`` splits after
    ``static`` only (a ``key=value`` token following an open ``?``
    clause continues that clause)."""
    return _split_list(text)


def split_admission_list(text: str) -> list[str]:
    """Split a comma-separated admission list, keeping parameters
    attached (same continuation rule as autoscaler lists)."""
    return _split_list(text)


# -- built-in autoscalers -----------------------------------------------------

@register_autoscaler
class StaticAutoscaler(AutoscalerPolicy):
    name = "static"
    description = ("fixed fleet: every provisioned replica stays "
                   "powered (the do-nothing default)")
    params: dict[str, ElasticParam] = {}
    evaluates = False

    def desired(self, now, sim, n_prefill, n_decode, cur_prefill,
                cur_decode):
        return n_prefill, n_decode


@register_autoscaler
class ReactiveAutoscaler(AutoscalerPolicy):
    name = "reactive"
    description = ("queue-depth hysteresis: step one prefill replica "
                   "up/down when backlog per powered replica crosses "
                   "queue_hi/queue_lo (decode follows proportionally)")
    params = {
        "queue_hi": ElasticParam(
            8.0, "scale up when backlog per powered prefill replica "
                 "exceeds this"),
        "queue_lo": ElasticParam(
            1.0, "scale down when backlog per powered prefill replica "
                 "falls below this"),
        "cooldown_s": ElasticParam(
            60.0, "minimum seconds between scaling actions"),
        "interval_s": ElasticParam(10.0, "evaluation period, seconds"),
        "cold_start_s": ElasticParam(
            30.0, "boot latency for a powered-off replica, seconds"),
    }

    @classmethod
    def validate(cls, *, queue_hi, queue_lo, cooldown_s, interval_s,
                 cold_start_s):
        if queue_lo < 0:
            raise ValueError(
                f"reactive queue_lo must be >= 0, got {queue_lo}")
        if queue_hi <= queue_lo:
            raise ValueError(
                f"reactive queue_hi must exceed queue_lo, got "
                f"hi={queue_hi} lo={queue_lo}")
        if cooldown_s < 0:
            raise ValueError(
                f"reactive cooldown_s must be >= 0, got {cooldown_s}")
        if interval_s <= 0:
            raise ValueError(
                f"reactive interval_s must be > 0, got {interval_s}")
        if cold_start_s < 0:
            raise ValueError(
                f"reactive cold_start_s must be >= 0, got {cold_start_s}")

    def bind(self, sim):
        self._last_action = -float("inf")

    def desired(self, now, sim, n_prefill, n_decode, cur_prefill,
                cur_decode):
        if now - self._last_action < self.p["cooldown_s"]:
            return cur_prefill, cur_decode
        per_replica = sim.prefill_backlog() / max(1, cur_prefill)
        if per_replica > self.p["queue_hi"] and cur_prefill < n_prefill:
            self._last_action = now
            target = cur_prefill + 1
        elif per_replica < self.p["queue_lo"] and cur_prefill > 1:
            self._last_action = now
            target = cur_prefill - 1
        else:
            return cur_prefill, cur_decode
        return target, self.proportional(target, n_prefill, n_decode)


@register_autoscaler
class SLOAutoscaler(AutoscalerPolicy):
    name = "slo"
    description = ("SLO feedback: scale up when sliding-window TTFT "
                   "attainment drops below target, down when it is "
                   "comfortably met and the backlog is empty")
    params = {
        "target": ElasticParam(
            0.9, "TTFT attainment to defend, in (0, 1]"),
        "window_s": ElasticParam(
            120.0, "attainment window over recent finishes, seconds"),
        "ttft_s": ElasticParam(20.0, "TTFT SLO threshold, seconds"),
        "cooldown_s": ElasticParam(
            60.0, "minimum seconds between scaling actions"),
        "interval_s": ElasticParam(10.0, "evaluation period, seconds"),
        "cold_start_s": ElasticParam(
            30.0, "boot latency for a powered-off replica, seconds"),
    }

    @classmethod
    def validate(cls, *, target, window_s, ttft_s, cooldown_s, interval_s,
                 cold_start_s):
        if not 0 < target <= 1:
            raise ValueError(f"slo target must be in (0, 1], got {target}")
        if window_s <= 0:
            raise ValueError(f"slo window_s must be > 0, got {window_s}")
        if ttft_s <= 0:
            raise ValueError(f"slo ttft_s must be > 0, got {ttft_s}")
        if cooldown_s < 0:
            raise ValueError(
                f"slo cooldown_s must be >= 0, got {cooldown_s}")
        if interval_s <= 0:
            raise ValueError(
                f"slo interval_s must be > 0, got {interval_s}")
        if cold_start_s < 0:
            raise ValueError(
                f"slo cold_start_s must be >= 0, got {cold_start_s}")

    def bind(self, sim):
        self._last_action = -float("inf")

    def desired(self, now, sim, n_prefill, n_decode, cur_prefill,
                cur_decode):
        if now - self._last_action < self.p["cooldown_s"]:
            return cur_prefill, cur_decode
        attainment, n = sim.recent_ttft_attainment(
            now, self.p["window_s"], self.p["ttft_s"])
        backlog = sim.prefill_backlog()
        if n == 0:
            # Nothing finished recently: a growing queue with nothing
            # coming out the other end is the strongest up-signal there
            # is; an idle cluster is not a signal at all.
            if backlog > 0 and cur_prefill < n_prefill:
                self._last_action = now
                target = cur_prefill + 1
                return target, self.proportional(target, n_prefill,
                                                 n_decode)
            return cur_prefill, cur_decode
        if attainment < self.p["target"] and cur_prefill < n_prefill:
            self._last_action = now
            target = cur_prefill + 1
        elif attainment >= min(1.0, self.p["target"]
                               + 0.5 * (1.0 - self.p["target"])) \
                and backlog == 0 and cur_prefill > 1:
            self._last_action = now
            target = cur_prefill - 1
        else:
            return cur_prefill, cur_decode
        return target, self.proportional(target, n_prefill, n_decode)


def _parse_plan(plan: str) -> list[tuple[float, float]]:
    """Parse a ``t:frac|t:frac`` time-of-day plan into sorted points."""
    points = []
    for piece in plan.split("|"):
        t_text, sep, frac_text = piece.partition(":")
        if not sep:
            raise ValueError(
                f"bad schedule plan point {piece!r}; the grammar is "
                "t:fraction|t:fraction"
            )
        try:
            t, frac = float(t_text), float(frac_text)
        except ValueError:
            raise ValueError(
                f"bad schedule plan point {piece!r}; times and "
                "fractions must be numbers"
            ) from None
        if t < 0:
            raise ValueError(
                f"schedule plan times must be >= 0, got {t}")
        if not 0 < frac <= 1:
            raise ValueError(
                f"schedule plan fractions must be in (0, 1], got {frac}")
        points.append((t, frac))
    if points[0][0] != 0:
        raise ValueError(
            f"schedule plan must start at time 0, got {points[0][0]}")
    for (a, _), (b, _) in zip(points, points[1:]):
        if b <= a:
            raise ValueError(
                "schedule plan times must be strictly increasing, got "
                f"{a} then {b}")
    return points


@register_autoscaler
class ScheduleAutoscaler(AutoscalerPolicy):
    name = "schedule"
    description = ("time-of-day plan: pipe-separated t:fraction points "
                   "set the powered fraction of each fleet, optionally "
                   "wrapping every period_s seconds")
    params = {
        "plan": ElasticParam(
            "0:1.0", "pipe-separated t:fraction points, e.g. "
                     "0:1.0|450:0.5 (fraction of provisioned replicas)"),
        "period_s": ElasticParam(
            0.0, "wrap plan time modulo this (0 = no wrap)"),
        "interval_s": ElasticParam(10.0, "evaluation period, seconds"),
        "cold_start_s": ElasticParam(
            30.0, "boot latency for a powered-off replica, seconds"),
    }

    @classmethod
    def validate(cls, *, plan, period_s, interval_s, cold_start_s):
        points = _parse_plan(plan)
        if period_s < 0:
            raise ValueError(
                f"schedule period_s must be >= 0, got {period_s}")
        if period_s and points[-1][0] >= period_s:
            raise ValueError(
                f"schedule plan times must fall inside period_s="
                f"{period_s}, got {points[-1][0]}")
        if interval_s <= 0:
            raise ValueError(
                f"schedule interval_s must be > 0, got {interval_s}")
        if cold_start_s < 0:
            raise ValueError(
                f"schedule cold_start_s must be >= 0, got {cold_start_s}")

    def __init__(self, **params):
        super().__init__(**params)
        self._points = _parse_plan(self.p["plan"])

    def _fraction(self, now: float) -> float:
        t = now % self.p["period_s"] if self.p["period_s"] > 0 else now
        frac = self._points[0][1]
        for point_t, point_frac in self._points:
            if point_t <= t:
                frac = point_frac
            else:
                break
        return frac

    def initial(self, n_prefill, n_decode):
        frac = self._fraction(0.0)
        return (max(1, round(frac * n_prefill)),
                max(1, round(frac * n_decode)))

    def desired(self, now, sim, n_prefill, n_decode, cur_prefill,
                cur_decode):
        frac = self._fraction(now)
        return (max(1, round(frac * n_prefill)),
                max(1, round(frac * n_decode)))


# -- built-in admission policies ----------------------------------------------

@register_admission
class AcceptAllAdmission(AdmissionPolicy):
    name = "accept_all"
    description = "every arrival is accepted unchanged (the default)"
    params: dict[str, ElasticParam] = {}


@register_admission
class ShedAdmission(AdmissionPolicy):
    name = "shed"
    description = ("queue-cap load shedding: reject arrivals of "
                   "slo_tier >= tier while the prefill backlog is at "
                   "queue_max or above")
    params = {
        "queue_max": ElasticParam(
            64.0, "shed while the prefill backlog (queued + in-service "
                  "+ parked requests) is at or above this"),
        "tier": ElasticParam(
            0.0, "only requests with slo_tier >= tier are shed "
                 "(0 sheds everything)"),
    }

    @classmethod
    def validate(cls, *, queue_max, tier):
        if queue_max < 1:
            raise ValueError(f"shed queue_max must be >= 1, got {queue_max}")
        if tier != int(tier) or tier < 0:
            raise ValueError(
                f"shed tier must be a non-negative integer, got {tier}")

    def admit(self, now, req, sim):
        if req.trace.slo_tier >= int(self.p["tier"]) \
                and sim.prefill_backlog() >= self.p["queue_max"]:
            return "shed"
        return None


@register_admission
class DegradeAdmission(AdmissionPolicy):
    name = "degrade"
    description = ("tier-aware degrade: requests of slo_tier >= tier "
                   "run a cheaper method instead of being served at "
                   "full quality (queue_min gates on backlog)")
    may_degrade = True
    params = {
        "tier": ElasticParam(
            1.0, "degrade requests with slo_tier >= this"),
        "method": ElasticParam(
            "hack_int4", "registered method degraded requests run"),
        "queue_min": ElasticParam(
            0.0, "only degrade while the prefill backlog is at least "
                 "this (0 = always)"),
    }

    @classmethod
    def validate(cls, *, tier, method, queue_min):
        if tier != int(tier) or tier < 0:
            raise ValueError(
                f"degrade tier must be a non-negative integer, got {tier}")
        if queue_min < 0:
            raise ValueError(
                f"degrade queue_min must be >= 0, got {queue_min}")
        from ..methods.spec import resolve_method
        resolve_method(method)

    def bind(self, sim):
        from ..methods.spec import resolve_method
        self._method = resolve_method(self.p["method"])

    def admit(self, now, req, sim):
        if req.trace.slo_tier >= int(self.p["tier"]) \
                and sim.prefill_backlog() >= self.p["queue_min"]:
            return self._method
        return None
