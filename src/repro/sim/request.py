"""Request lifecycle bookkeeping for the serving simulator.

A :class:`SimRequest` tracks one request from arrival to completion and
accumulates the JCT decomposition the paper reports (Fig. 10): queueing,
prefill compute, quantization, KV communication, decode, per-iteration
dequantization (comparators) and Eq. 4 approximation (HACK), plus the
KV-memory-access time inside decode (§2.1's 16–33% metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workload.traces import TraceRequest

__all__ = ["SimRequest", "BUCKETS"]

#: Decomposition bucket names, in the paper's Fig. 10 order.
BUCKETS = ("queue", "prefill", "quant", "comm", "dequant_or_approx", "decode")


@dataclass
class SimRequest:
    """One in-flight request and its accumulated time decomposition."""

    trace: TraceRequest
    prefill_replica: int = -1
    decode_replica: int = -1

    # Timeline markers (absolute simulation seconds).
    prefill_start: float = -1.0
    prefill_end: float = -1.0
    transfer_end: float = -1.0
    decode_start: float = -1.0
    finish: float = -1.0

    # Accumulated buckets (seconds).
    prefill_s: float = 0.0
    quant_s: float = 0.0
    comm_s: float = 0.0
    decode_s: float = 0.0
    dequant_s: float = 0.0
    approx_s: float = 0.0
    kv_access_s: float = 0.0   # subset of decode_s: KV reads over HBM

    #: Whether the KV took the CPU-swap detour (§5.1 step 6).
    swapped: bool = False
    tokens_generated: int = 0
    #: Decode-memory bytes reserved for this request.
    reserved_bytes: float = 0.0
    #: Memoized decomposition — buckets are final once ``finish`` is
    #: set, so the first post-completion call caches for all aggregate
    #: consumers (mean decomposition/ratios, summary, records).
    _decomposition: dict | None = field(
        default=None, repr=False, compare=False)

    @property
    def request_id(self) -> int:
        return self.trace.request_id

    @property
    def arrival(self) -> float:
        return self.trace.arrival_s

    @property
    def done(self) -> bool:
        return self.finish >= 0.0

    @property
    def jct(self) -> float:
        """Job completion time: arrival → last token."""
        if not self.done:
            raise ValueError(f"request {self.request_id} has not finished")
        return self.finish - self.arrival

    @property
    def queue_s(self) -> float:
        """Time not attributable to any processing bucket."""
        busy = (self.prefill_s + self.quant_s + self.comm_s + self.decode_s
                + self.dequant_s + self.approx_s)
        return max(0.0, self.jct - busy)

    def accrue_decode(self, decode_s: float, dequant_s: float,
                      approx_s: float, kv_read_s: float,
                      tokens: int = 1) -> None:
        """Credit ``tokens`` decode iterations' batch-wide bucket sums.

        Every request in a batch waits through the whole batch's
        iteration, so batch totals — not per-request shares — are what
        accumulate.  The token path passes one iteration's sums;
        the span fast path passes a whole span's closed-form totals.
        """
        self.decode_s += decode_s
        self.dequant_s += dequant_s
        self.approx_s += approx_s
        self.kv_access_s += kv_read_s
        self.tokens_generated += tokens

    def decomposition(self) -> dict[str, float]:
        """Bucket → seconds (the Fig. 10 stacked bars).

        Computed once per finished request; returns a fresh copy each
        call (callers mutate it, e.g. :meth:`ratios`).
        """
        if self._decomposition is None:
            self._decomposition = {
                "queue": self.queue_s,
                "prefill": self.prefill_s,
                "quant": self.quant_s,
                "comm": self.comm_s,
                "dequant_or_approx": self.dequant_s + self.approx_s,
                "decode": self.decode_s,
            }
        return dict(self._decomposition)

    def record(self) -> dict:
        """Flat JSON-ready record of this request (artifact schema v1).

        Keys are stable: downstream tooling (``repro.api.artifact``,
        ``repro.cli export``) depends on them.
        """
        return {
            "request_id": self.request_id,
            "arrival_s": self.arrival,
            "input_len": self.trace.input_len,
            "output_len": self.trace.output_len,
            "prefill_replica": self.prefill_replica,
            "decode_replica": self.decode_replica,
            "swapped": self.swapped,
            "jct_s": self.jct,
            "decomposition_s": self.decomposition(),
            "kv_access_s": self.kv_access_s,
        }

    def ratios(self, include_queue: bool = False) -> dict[str, float]:
        """Bucket → fraction.

        With ``include_queue=False`` (the paper's Fig. 1–4 convention,
        where stacked ratios fill to 100%), fractions are of the summed
        processing buckets; otherwise of the full JCT.
        """
        decomp = self.decomposition()
        if not include_queue:
            del decomp["queue"]
        total = sum(decomp.values())
        if total <= 0:
            return {k: 0.0 for k in decomp}
        return {k: v / total for k, v in decomp.items()}
