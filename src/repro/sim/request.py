"""Request lifecycle bookkeeping for the serving simulator.

A :class:`SimRequest` tracks one request from arrival to completion and
accumulates the JCT decomposition the paper reports (Fig. 10): queueing,
prefill compute, quantization, KV communication, decode, per-iteration
dequantization (comparators) and Eq. 4 approximation (HACK), plus the
KV-memory-access time inside decode (§2.1's 16–33% metric).

It also carries the serving-metric substrate: the first output token is
produced by prefill (``prefill_end``), and every decode token's
completion time is recorded — per iteration on the token path, as a
shared closed-form time vector per span on the fast path — so TTFT and
time-between-tokens (TBT) statistics are derivable identically in both
step modes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..methods.base import Method
from ..workload.traces import TraceRequest

__all__ = ["SimRequest", "BUCKETS", "nearest_rank"]

#: Decomposition bucket names, in the paper's Fig. 10 order.
BUCKETS = ("queue", "prefill", "quant", "comm", "dequant_or_approx", "decode")


def nearest_rank(values_sorted, p: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0 when empty)."""
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    n = len(values_sorted)
    if n == 0:
        return 0.0
    rank = max(0, math.ceil(p / 100.0 * n) - 1)
    return float(values_sorted[rank])


@dataclass
class SimRequest:
    """One in-flight request and its accumulated time decomposition."""

    trace: TraceRequest
    prefill_replica: int = -1
    decode_replica: int = -1

    # Timeline markers (absolute simulation seconds).
    prefill_start: float = -1.0
    prefill_end: float = -1.0
    transfer_end: float = -1.0
    decode_start: float = -1.0
    finish: float = -1.0

    # Accumulated buckets (seconds).
    prefill_s: float = 0.0
    quant_s: float = 0.0
    comm_s: float = 0.0
    decode_s: float = 0.0
    dequant_s: float = 0.0
    approx_s: float = 0.0
    kv_access_s: float = 0.0   # subset of decode_s: KV reads over HBM

    #: KV-store integration (set only when the simulator runs with a
    #: kvstore and/or selection policy configured; ``method`` is the
    #: per-request compression method the selection layer chose — the
    #: scenario method when no selection policy is active).
    method: Method | None = None
    #: Method the admission layer degraded this request to at arrival
    #: (elastic admission control; ``None`` when admitted at full
    #: quality).  Judged once — it survives crash retries, overriding
    #: any selection policy on the re-prefill too.
    admitted_method: Method | None = None
    #: Prompt tokens whose KV the prefix cache served (prefill skipped).
    prefix_hit_tokens: int = 0
    #: Time spent reading the cached prefix out of its tier (accrues to
    #: the ``comm`` bucket).
    cache_read_s: float = 0.0
    #: Tier name the prefix hit landed in (None on miss / no store).
    cache_tier: str | None = None

    #: Whether the KV took the CPU-swap detour (§5.1 step 6).
    swapped: bool = False
    #: Whether a non-swapping placement policy refused admission (the
    #: request prefilled but never decoded; it carries no completion).
    rejected: bool = False
    #: Whether the recovery policy gave up on this request (fault
    #: injection only; the request carries no completion).
    failed: bool = False
    #: Times this request re-entered the serving path after a fault.
    n_retries: int = 0
    #: Processing seconds thrown away by faults (crashed prefill work,
    #: flapped transfers, lost decode progress).
    wasted_compute_s: float = 0.0
    #: Monotonic attempt counter guarding stale per-request events
    #: (``transfer_done`` from before a crash must not land).
    attempt: int = 0
    #: Set on lost-KV recovery when a KV store is configured: the next
    #: prefill probes the store for the *whole* prompt (the crashed
    #: attempt's writeback may serve it), not just the session prefix.
    kv_refetch: bool = False
    tokens_generated: int = 0
    #: Decode-memory bytes reserved for this request.
    reserved_bytes: float = 0.0
    #: Decode-token completion times, as appended chunks: floats on the
    #: token path, per-span closed-form arrays (shared across the span's
    #: batch, never mutated) on the span path.
    _token_chunks: list = field(default_factory=list, repr=False,
                                compare=False)
    _token_times: np.ndarray | None = field(
        default=None, repr=False, compare=False)
    _tbt_gaps: np.ndarray | None = field(
        default=None, repr=False, compare=False)
    #: Memoized decomposition — buckets are final once ``finish`` is
    #: set, so the first post-completion call caches for all aggregate
    #: consumers (mean decomposition/ratios, summary, records).
    _decomposition: dict | None = field(
        default=None, repr=False, compare=False)

    @property
    def request_id(self) -> int:
        return self.trace.request_id

    @property
    def arrival(self) -> float:
        return self.trace.arrival_s

    @property
    def done(self) -> bool:
        return self.finish >= 0.0

    @property
    def jct(self) -> float:
        """Job completion time: arrival → last token."""
        if not self.done:
            raise ValueError(f"request {self.request_id} has not finished")
        return self.finish - self.arrival

    def busy_s(self) -> float:
        """Processing seconds accrued so far (every bucket but queue)."""
        return (self.prefill_s + self.quant_s + self.comm_s + self.decode_s
                + self.dequant_s + self.approx_s)

    @property
    def queue_s(self) -> float:
        """Time not attributable to any processing bucket.

        Under fault injection this also absorbs retry backoff waits and
        any earlier attempts' processing time (attempts wiped by
        :meth:`reset_for_retry` re-land here; their cost is tracked
        separately in ``wasted_compute_s``).
        """
        return max(0.0, self.jct - self.busy_s())

    @property
    def recovered(self) -> bool:
        """Finished, but only after at least one fault retry."""
        return self.done and self.n_retries > 0

    @property
    def terminal(self) -> str:
        """The request's terminal state: ``finished`` / ``rejected`` /
        ``failed`` (``in_flight`` while the simulation still runs)."""
        if self.done:
            return "finished"
        if self.failed:
            return "failed"
        if self.rejected:
            return "rejected"
        return "in_flight"

    def reset_for_retry(self, wasted_s: float | None = None) -> None:
        """Wipe all progress before a from-scratch retry (lost KV).

        ``wasted_s`` overrides the wasted-work charge for this attempt
        (a mid-prefill crash prorates the batch's planned time, since
        the buckets hold the full batch duration up front); by default
        the attempt's accrued processing time is charged.
        """
        self.wasted_compute_s += self.busy_s() if wasted_s is None \
            else wasted_s
        self.prefill_replica = -1
        self.decode_replica = -1
        self.prefill_start = -1.0
        self.prefill_end = -1.0
        self.transfer_end = -1.0
        self.decode_start = -1.0
        self.prefill_s = 0.0
        self.quant_s = 0.0
        self.comm_s = 0.0
        self.decode_s = 0.0
        self.dequant_s = 0.0
        self.approx_s = 0.0
        self.kv_access_s = 0.0
        self.prefix_hit_tokens = 0
        self.cache_read_s = 0.0
        self.cache_tier = None
        self.swapped = False
        self.tokens_generated = 0
        self.reserved_bytes = 0.0
        self._token_chunks = []
        self._token_times = None
        self._tbt_gaps = None
        self._decomposition = None

    # -- serving metrics (TTFT / TBT) -----------------------------------------

    @property
    def first_token_s(self) -> float:
        """Absolute time of the first output token (prefill produces it)."""
        return self.prefill_end

    @property
    def ttft(self) -> float:
        """Time to first token: arrival → end of the prefill pass."""
        if self.prefill_end < 0.0:
            raise ValueError(f"request {self.request_id} has not prefilled")
        return self.prefill_end - self.arrival

    def add_token_time(self, t: float) -> None:
        """Record one decode token's completion (token-path step)."""
        self._token_chunks.append(t)

    def add_token_times(self, times: np.ndarray) -> None:
        """Record a span of decode token completions (fast-path step).

        ``times`` is shared across the span's batch and must not be
        mutated by any holder.
        """
        self._token_chunks.append(times)

    def token_times(self) -> np.ndarray:
        """Absolute completion times of the decode tokens (length
        ``output_len - 1``; the first token is prefill's)."""
        if self._token_times is None:
            parts = [np.atleast_1d(np.asarray(c, dtype=np.float64))
                     for c in self._token_chunks]
            joined = np.concatenate(parts) if parts \
                else np.empty(0, dtype=np.float64)
            if not self.done:
                return joined
            self._token_times = joined
        return self._token_times

    def tbt_gaps(self) -> np.ndarray:
        """Inter-token gaps after the first token (length
        ``output_len - 1``).

        The gap between prefill's first token and the first decode
        token includes the KV transfer and any batching wait — exactly
        the stall a user of a disaggregated deployment observes, and
        the one KV compression shrinks.  Memoized once finished (the
        aggregate consumers — summary, records — hit it repeatedly).
        """
        if self._tbt_gaps is not None:
            return self._tbt_gaps
        times = self.token_times()
        if times.size == 0:
            gaps = times
        else:
            gaps = np.diff(np.concatenate(([self.first_token_s], times)))
        if self.done:
            self._tbt_gaps = gaps
        return gaps

    def mean_tbt(self) -> float:
        """Mean inter-token gap (0 for single-token requests)."""
        gaps = self.tbt_gaps()
        return float(gaps.mean()) if gaps.size else 0.0

    def tbt_percentile(self, p: float) -> float:
        """Nearest-rank percentile of this request's inter-token gaps."""
        return nearest_rank(np.sort(self.tbt_gaps()), p)

    @property
    def normalized_latency(self) -> float:
        """JCT per output token (the DistServe/vLLM normalized metric)."""
        return self.jct / self.trace.output_len

    def accrue_decode(self, decode_s: float, dequant_s: float,
                      approx_s: float, kv_read_s: float,
                      tokens: int = 1) -> None:
        """Credit ``tokens`` decode iterations' batch-wide bucket sums.

        Every request in a batch waits through the whole batch's
        iteration, so batch totals — not per-request shares — are what
        accumulate.  The token path passes one iteration's sums;
        the span fast path passes a whole span's closed-form totals.
        """
        self.decode_s += decode_s
        self.dequant_s += dequant_s
        self.approx_s += approx_s
        self.kv_access_s += kv_read_s
        self.tokens_generated += tokens

    def decomposition(self) -> dict[str, float]:
        """Bucket → seconds (the Fig. 10 stacked bars).

        Computed once per finished request; returns a fresh copy each
        call (callers mutate it, e.g. :meth:`ratios`).
        """
        if self._decomposition is None:
            self._decomposition = {
                "queue": self.queue_s,
                "prefill": self.prefill_s,
                "quant": self.quant_s,
                "comm": self.comm_s,
                "dequant_or_approx": self.dequant_s + self.approx_s,
                "decode": self.decode_s,
            }
        return dict(self._decomposition)

    def record(self) -> dict:
        """Flat JSON-ready record of this request (artifact schema v4).

        Keys are stable: downstream tooling (``repro.api.artifact``,
        ``repro.cli export``) depends on them.  Schema v2 added the
        serving metrics (``ttft_s``, ``tbt_*``, ``normalized_latency_s``)
        on top of the v1 keys.  When the simulator runs with a KV store
        / selection policy (schema v3 runs), four extra keys appear —
        ``method_selected``, ``prefix_hit_tokens``, ``cache_read_s``,
        ``cache_tier`` — on every record (the engine stamps ``method``
        on all requests in that mode, so record shape stays uniform
        within a run).  Schema v4 records *every* terminal request —
        finished, rejected and failed — with a ``terminal`` key plus
        reliability accounting (``n_retries``, ``wasted_compute_s``,
        ``recovered``); the completion-dependent keys (``jct_s``,
        ``decomposition_s``, ``tbt_*``, …) appear only on finished
        records, and ``ttft_s`` on any record that prefilled.
        """
        rec = {
            "request_id": self.request_id,
            "arrival_s": self.arrival,
            "input_len": self.trace.input_len,
            "output_len": self.trace.output_len,
            "prefill_replica": self.prefill_replica,
            "decode_replica": self.decode_replica,
            "swapped": self.swapped,
            "terminal": self.terminal,
            "n_retries": self.n_retries,
            "wasted_compute_s": self.wasted_compute_s,
            "recovered": self.recovered,
        }
        if self.done:
            rec.update({
                "jct_s": self.jct,
                "decomposition_s": self.decomposition(),
                "kv_access_s": self.kv_access_s,
                "ttft_s": self.ttft,
                "tbt_mean_s": self.mean_tbt(),
                "tbt_p99_s": self.tbt_percentile(99),
                "tbt_max_s": float(self.tbt_gaps().max())
                if self.tbt_gaps().size else 0.0,
                "normalized_latency_s": self.normalized_latency,
            })
        elif self.prefill_end >= 0.0:
            rec["ttft_s"] = self.ttft
        if self.method is not None:
            rec["method_selected"] = self.method.name
            rec["prefix_hit_tokens"] = self.prefix_hit_tokens
            rec["cache_read_s"] = self.cache_read_s
            rec["cache_tier"] = self.cache_tier
        return rec

    def ratios(self, include_queue: bool = False) -> dict[str, float]:
        """Bucket → fraction.

        With ``include_queue=False`` (the paper's Fig. 1–4 convention,
        where stacked ratios fill to 100%), fractions are of the summed
        processing buckets; otherwise of the full JCT.
        """
        decomp = self.decomposition()
        if not include_queue:
            del decomp["queue"]
        total = sum(decomp.values())
        if total <= 0:
            return {k: 0.0 for k in decomp}
        return {k: v / total for k, v in decomp.items()}
