"""Discrete-event simulator of disaggregated LLM serving (§7.1 setup).

Faithfully implements the paper's serving policy (by default — both
scheduling decisions are pluggable, see :mod:`repro.sim.scheduling`):

* requests arrive (Poisson trace) and are dispatched to a prefill
  replica by the configured :class:`~repro.sim.scheduling
  .PrefillDispatchPolicy` — default: shortest queue in tokens
  [SplitWise].  Prefill fleets may be *heterogeneous* (mixed GPU types
  with per-fleet replica counts, ``ClusterConfig.prefill_fleets``), in
  which case each replica prefills and transfers at its own fleet's
  speed;
* a prefill replica serves one request at a time (long-prompt prefill
  saturates the replica's compute);
* finished KV is shipped to the decode replica chosen by the configured
  :class:`~repro.sim.scheduling.DecodePlacementPolicy` — default: the
  shortest queue *that has enough free memory for the request's full
  context*; when no replica has room, the KV is swapped to prefill CPU
  memory [DéjàVu] and transferred once memory frees (§5.1 step 6) — or
  rejected outright under a ``no_swap`` placement — each prefill
  replica's NIC serializes its outgoing transfers;
* decode replicas run continuous batching: each iteration produces one
  token per active request, with latency from
  :class:`repro.perfmodel.decode.BatchCostModel`; requests join at
  iteration boundaries and leave when their output length is reached;
* optional layer-wise pipelining overlaps a request's KV transfer with
  its own prefill (§2.1, Fig. 1(d)) — infeasible for swapped requests.

Per-iteration wall-clock is attributed to the Fig. 10 buckets
proportionally to the batch's component sums, so a request's "dequant"
share reflects the dequantization phases it actually waits through.

Decode stepping runs in one of two modes (``ClusterConfig.step_mode``):

* ``"span"`` (default) — *event-to-event fast-forwarding*: between
  batch-composition changes (a join via ``transfer_done``, the earliest
  finishing request, or swapped-KV admission) the engine advances all
  ``k`` iterations in a single heap event, using the closed-form span
  sums of :meth:`~repro.perfmodel.decode.BatchCostModel.span`.  A
  request joining mid-span truncates the span at the end of the
  iteration in progress — exactly where the token path would have
  admitted it — so the two modes agree to floating-point rounding.
* ``"token"`` — the legacy one-heap-event-per-token path, kept for
  differential testing.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..cluster.instances import DEFAULT_DECODE_COUNT, DEFAULT_PREFILL_FLEETS, \
    canonical_fleet, instance_for_gpu, parse_fleet_spec
from ..cluster.parallelism import ReplicaResources, replica_resources
from ..kvstore.selection import SelectionSpec, selection_spec
from ..kvstore.spec import KVStoreSpec, kvstore_spec
from ..methods.base import Method
from ..model.config import ModelSpec
from ..perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from ..perfmodel.decode import BatchCostModel
from ..perfmodel.prefill import prefill_time
from ..perfmodel.transfer import DEFAULT_PIPELINE_STAGES, kv_wire_bytes, \
    make_network_model
from ..workload.traces import TraceRequest
from .elastic import AdmissionSpec, AutoscalerSpec, DEFAULT_AUTOSCALER, \
    admission_spec, autoscaler_spec
from .faults import FaultPlan, faults_spec
from .recovery import DEFAULT_RECOVERY, RecoverySpec, recovery_spec
from .request import BUCKETS, SimRequest, nearest_rank
from .scheduling import SchedulerSpec, scheduler_spec

__all__ = ["ClusterConfig", "SimulationResult", "Simulator", "simulate",
           "default_cluster", "DEFAULT_TTFT_SLO_S", "DEFAULT_TBT_SLO_S"]

_GB = 1e9

#: Default service-level objectives for :meth:`SimulationResult.summary`.
#: TTFT covers queueing + a long-prompt prefill pass on the §7.1
#: clusters; TBT bounds the steady decode cadence.  Both are
#: recomputable at any other point from the per-request records.
DEFAULT_TTFT_SLO_S = 20.0
DEFAULT_TBT_SLO_S = 0.5


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the simulated deployment."""

    model: ModelSpec
    method: Method
    prefill_gpu: str
    n_prefill_replicas: int
    n_decode_replicas: int
    calib: Calibration = DEFAULT_CALIBRATION
    pipelining: bool = False
    decode_gpu: str = "A100"
    #: Activation/workspace reservation as a fraction of parameter
    #: bytes.  Serving engines preallocate activation buffers, CUDA
    #: graphs and scratch alongside the weights; ~45% of parameter
    #: bytes reproduces Table 5's ~65% idle floor on the decode GPUs.
    activation_overhead: float = 0.45
    mem_reserve_fraction: float = 0.03
    #: Prompt tokens a prefill replica batches into one forward pass
    #: (vLLM's batched prefill).  Long prompts run alone; short prompts
    #: share a pass, which is what gives short-prompt datasets their
    #: high prefill throughput.
    prefill_token_budget: int = 16384
    #: Granularity of transfer/compute overlap under pipelining: KV is
    #: shipped per pipeline stage, not per layer, so roughly 1/8 of the
    #: transfer stays exposed even under perfect overlap.  Shared with
    #: :func:`repro.perfmodel.transfer.transfer_time` so the analytic
    #: model and the engine agree on the overlap granularity.
    pipeline_stages: int = DEFAULT_PIPELINE_STAGES
    #: Decode stepping: ``"span"`` fast-forwards whole runs of
    #: iterations between batch-composition changes in one heap event
    #: (closed-form latency sums); ``"token"`` is the legacy
    #: one-event-per-token path kept for differential testing.
    step_mode: str = "span"
    #: Heterogeneous prefill fleets as resolved ``(gpu, replicas)``
    #: pairs; ``None`` means one homogeneous fleet of
    #: ``n_prefill_replicas`` × ``prefill_gpu`` (the historical,
    #: paper-faithful shape).  When set, ``n_prefill_replicas`` must
    #: equal the summed per-fleet counts.
    prefill_fleets: tuple[tuple[str, int], ...] | None = None
    #: Dispatch/placement policy pair; ``None`` keeps the paper's
    #: §7.1 pair (``splitwise`` + ``shortest_queue``).
    scheduler: SchedulerSpec | None = None
    #: Tiered KV store for prefix caching (``None`` — the default — is
    #: no store at all: the engine takes the historical code path and
    #: produces byte-identical results).  Accepts a
    #: :class:`~repro.kvstore.KVStoreSpec` or grammar string
    #: (``"tiered?dram_gb=8.0+lfu"``).
    kvstore: KVStoreSpec | None = None
    #: Per-request compression-selection policy; ``None`` keeps the
    #: scenario's single method for every request.  Accepts a
    #: :class:`~repro.kvstore.SelectionSpec` or grammar string
    #: (``"slo_tier?tier2=hack_int4"``).  Configuring either ``kvstore``
    #: or ``selection`` switches the engine to the KV-store-aware
    #: prefill path (per-request methods stamped on records).
    selection: SelectionSpec | None = None
    #: Fault-injection plan (``None`` — the default — injects nothing:
    #: every hot path takes its historical branch and results are
    #: byte-identical).  Accepts a :class:`~repro.sim.faults.FaultPlan`,
    #: a :class:`~repro.sim.faults.FaultSpec` or a grammar string
    #: (``"replica_crash?mttf=600+transfer_flap?p_fail=0.05"``).
    faults: FaultPlan | None = None
    #: Recovery policy for fault-interrupted requests; only meaningful
    #: when ``faults`` is set (``None`` then means the default
    #: ``retry`` policy).  Accepts a
    #: :class:`~repro.sim.recovery.RecoverySpec` or grammar string.
    recovery: RecoverySpec | None = None
    #: Autoscaler powering provisioned replicas up and down (``None``
    #: — the default — keeps the historical fixed fleet and
    #: byte-identical results; so does the explicit ``static``
    #: policy).  Accepts an :class:`~repro.sim.elastic.AutoscalerSpec`
    #: or grammar string (``"reactive?queue_hi=6.0"``).
    autoscaler: AutoscalerSpec | None = None
    #: Admission policy judging every fresh arrival (``None`` — the
    #: default — accepts everything, as does the explicit
    #: ``accept_all``).  Accepts an
    #: :class:`~repro.sim.elastic.AdmissionSpec` or grammar string
    #: (``"shed?queue_max=48.0"``).
    admission: AdmissionSpec | None = None

    def __post_init__(self) -> None:
        if self.step_mode not in ("span", "token"):
            raise ValueError(
                f"step_mode must be 'span' or 'token', got "
                f"{self.step_mode!r}"
            )
        if self.scheduler is not None \
                and not isinstance(self.scheduler, SchedulerSpec):
            # Accept the grammar string every adjacent API takes
            # (fails fast on bad policies instead of at Simulator
            # construction).
            object.__setattr__(self, "scheduler",
                               scheduler_spec(self.scheduler))
        if self.kvstore is not None \
                and not isinstance(self.kvstore, KVStoreSpec):
            object.__setattr__(self, "kvstore",
                               kvstore_spec(self.kvstore))
        if self.selection is not None \
                and not isinstance(self.selection, SelectionSpec):
            object.__setattr__(self, "selection",
                               selection_spec(self.selection))
        if self.faults is not None \
                and not isinstance(self.faults, FaultPlan):
            object.__setattr__(self, "faults", faults_spec(self.faults))
        if self.recovery is not None \
                and not isinstance(self.recovery, RecoverySpec):
            object.__setattr__(self, "recovery",
                               recovery_spec(self.recovery))
        if self.autoscaler is not None \
                and not isinstance(self.autoscaler, AutoscalerSpec):
            object.__setattr__(self, "autoscaler",
                               autoscaler_spec(self.autoscaler))
        if self.admission is not None \
                and not isinstance(self.admission, AdmissionSpec):
            object.__setattr__(self, "admission",
                               admission_spec(self.admission))
        if self.prefill_fleets is not None:
            if not self.prefill_fleets:
                raise ValueError("prefill_fleets must name >= 1 fleet")
            for gpu, count in self.prefill_fleets:
                if count < 1:
                    raise ValueError(
                        f"fleet replica count must be >= 1, got {count} "
                        f"for GPU {gpu!r}"
                    )
            total = sum(count for _, count in self.prefill_fleets)
            if total != self.n_prefill_replicas:
                raise ValueError(
                    f"n_prefill_replicas={self.n_prefill_replicas} does "
                    f"not match the summed fleet counts ({total}); "
                    "replica-count overrides do not compose with an "
                    "explicit heterogeneous fleet"
                )

    def fleet_list(self) -> tuple[tuple[str, int], ...]:
        """Resolved prefill fleets: ``(gpu, replicas)`` per fleet."""
        if self.prefill_fleets is not None:
            return self.prefill_fleets
        return ((self.prefill_gpu, self.n_prefill_replicas),)

    def prefill_replica(self) -> ReplicaResources:
        """Resources of one prefill replica.

        Only meaningful for a homogeneous fleet; a heterogeneous config
        has no single answer, so this raises — resolve per fleet via
        :meth:`fleet_list` + :func:`repro.cluster.replica_resources`
        instead (as the engine and capacity model do).
        """
        if self.prefill_fleets is not None:
            raise ValueError(
                "prefill_replica() is ambiguous for a heterogeneous "
                f"fleet ({self.prefill_gpu}); resolve per fleet via "
                "fleet_list()"
            )
        return replica_resources(self.model, self.prefill_gpu)

    def decode_replica(self) -> ReplicaResources:
        return replica_resources(self.model, self.decode_gpu)


def _default_fleet_replicas(model: ModelSpec, gpu: str) -> int:
    """§7.1 replica count of ``gpu``'s default instance fleet."""
    n_instances = DEFAULT_PREFILL_FLEETS[gpu]
    pre = replica_resources(model, gpu)
    inst = instance_for_gpu(gpu)
    return max(1, n_instances * inst.n_gpus // pre.parallelism.n_gpus)


def default_cluster(model: ModelSpec, method: Method, prefill_gpu: str,
                    calib: Calibration = DEFAULT_CALIBRATION,
                    pipelining: bool = False,
                    n_prefill_instances: int | None = None,
                    n_decode_instances: int = DEFAULT_DECODE_COUNT,
                    decode_gpu: str = "A100",
                    activation_overhead: float | None = None,
                    step_mode: str | None = None,
                    scheduler=None,
                    kvstore=None,
                    selection=None,
                    faults=None,
                    recovery=None,
                    autoscaler=None,
                    admission=None,
                    ) -> ClusterConfig:
    """The paper's §7.1 deployment for ``model`` on ``prefill_gpu``.

    Replica counts derive from the instance fleets (e.g. ten
    g5.12xlarge = 40 A10G = 5 Llama-70B replicas at TP4·PP2) and two
    p4de.24xlarge for decode.  ``decode_gpu`` swaps the decode fleet's
    GPU (default A100, the paper's setup); ``activation_overhead=None``
    keeps the :class:`ClusterConfig` default.

    ``prefill_gpu`` accepts the heterogeneous-fleet grammar of
    :func:`repro.cluster.parse_fleet_spec` — ``"A10G+T4"`` (each fleet
    at its §7.1 default replica count) or ``"A10G:2+T4:4"`` (explicit
    per-fleet replica counts).  ``n_prefill_instances`` only applies to
    a single plain-GPU fleet.  ``scheduler`` is a
    :class:`~repro.sim.scheduling.SchedulerSpec` or grammar string
    (``"round_robin+best_fit"``); ``None`` keeps the paper's pair.
    ``kvstore``/``selection`` plumb straight through to the matching
    :class:`ClusterConfig` fields (spec objects or grammar strings;
    ``None`` keeps the historical no-KV-store path), as do
    ``faults``/``recovery`` (``None`` injects nothing).
    """
    fleets = parse_fleet_spec(prefill_gpu)
    dec_gpu = decode_gpu.upper()
    if n_prefill_instances is not None and (
        len(fleets) > 1 or fleets[0][1] is not None
    ):
        raise ValueError(
            "n_prefill_instances only applies to a single plain-GPU "
            f"fleet, not {prefill_gpu!r}; give per-fleet replica counts "
            "as GPU:replicas instead"
        )
    resolved: list[tuple[str, int]] = []
    for gpu, count in fleets:
        if count is None:
            if n_prefill_instances is not None:
                pre = replica_resources(model, gpu)
                inst = instance_for_gpu(gpu)
                count = max(1, n_prefill_instances * inst.n_gpus
                            // pre.parallelism.n_gpus)
            else:
                count = _default_fleet_replicas(model, gpu)
        resolved.append((gpu, count))
    dec = replica_resources(model, dec_gpu)
    dec_inst = instance_for_gpu(dec_gpu)
    n_decode = max(1, n_decode_instances * dec_inst.n_gpus
                   // dec.parallelism.n_gpus)
    extra = {} if activation_overhead is None else {
        "activation_overhead": activation_overhead
    }
    if step_mode is not None:
        extra["step_mode"] = step_mode
    if scheduler is not None:
        extra["scheduler"] = scheduler_spec(scheduler)
    if kvstore is not None:
        extra["kvstore"] = kvstore_spec(kvstore)
    if selection is not None:
        extra["selection"] = selection_spec(selection)
    if faults is not None:
        extra["faults"] = faults_spec(faults)
    if recovery is not None:
        extra["recovery"] = recovery_spec(recovery)
    if autoscaler is not None:
        extra["autoscaler"] = autoscaler_spec(autoscaler)
    if admission is not None:
        extra["admission"] = admission_spec(admission)
    if len(resolved) > 1:
        extra["prefill_fleets"] = tuple(resolved)
        gpu_label = canonical_fleet(tuple(resolved))
    else:
        gpu_label = resolved[0][0]
    n_prefill = sum(count for _, count in resolved)
    return ClusterConfig(model=model, method=method, prefill_gpu=gpu_label,
                         n_prefill_replicas=n_prefill,
                         n_decode_replicas=n_decode, calib=calib,
                         pipelining=pipelining, decode_gpu=dec_gpu,
                         **extra)


@dataclass
class _PrefillReplica:
    #: GPU type and per-replica resources — these differ across fleets
    #: under heterogeneous prefill (``ClusterConfig.prefill_fleets``)
    #: and are what dispatch policies exploit.
    gpu: str = ""
    res: ReplicaResources | None = None
    queue: deque = field(default_factory=deque)
    queued_tokens: int = 0
    current: SimRequest | None = None
    nic_free_at: float = 0.0
    assigned: int = 0
    # Fault-injection state (inert without a fault plan).
    up: bool = True
    #: Overlapping crash specs stack; the replica is up when this is 0.
    down_count: int = 0
    #: Stale-event guard: bumped on every crash, stamped into this
    #: replica's in-flight event payloads.
    epoch: int = 0
    # Elastic-lifecycle state (inert without an autoscaler): a replica
    # serves only while "on"; "starting" is a boot with cold-start
    # latency pending, "draining" takes no new work and retires to
    # "off" once idle.
    state: str = "on"
    #: Stale-boot guard: bumped when a boot starts or is canceled.
    lifecycle: int = 0
    #: When the current powered stretch began (GPU-hour accrual).
    on_since: float = 0.0
    #: Accumulated powered GPU-seconds from *retired* stretches.
    gpu_s: float = 0.0


@dataclass
class _DecodeReplica:
    capacity_bytes: float
    base_bytes: float              # params + activations
    used_bytes: float = 0.0
    peak_bytes: float = 0.0
    active: list = field(default_factory=list)   # [request, remaining]
    queued_tokens: int = 0
    iteration_scheduled: bool = False
    assigned: int = 0
    # Span-mode state (valid while a span event is in flight).
    span_id: int = 0               # stale-event guard; bumped per span
    span_start: float = 0.0
    span_k: int = 0
    span_snapshot: list = field(default_factory=list)
    span_ctx0: np.ndarray | None = None
    #: A truncated span settled early; its boundary event will take a
    #: fresh batch snapshot, so later joins need no further interrupt.
    boundary_pending: bool = False
    #: The boundary iteration :meth:`Simulator._interrupt_span` settled
    #: through (a crash before the boundary event must un-credit it).
    boundary_k: int = 0
    # Fault-injection state (inert without a fault plan).
    up: bool = True
    down_count: int = 0
    epoch: int = 0
    # Elastic-lifecycle state (inert without an autoscaler).
    state: str = "on"
    lifecycle: int = 0
    on_since: float = 0.0
    gpu_s: float = 0.0

    def free_bytes(self) -> float:
        # A crashed (or draining / powered-off) replica reports
        # negative free space so every placement policy's room check
        # excludes it without needing to know about faults or scaling.
        if not self.up or self.state != "on":
            return -1.0
        return self.capacity_bytes - self.used_bytes


@dataclass
class SimulationResult:
    """Finished requests plus cluster-level statistics.

    ``requests`` may be empty (a ``no_swap`` placement can reject every
    request of a trace); all aggregates degrade to empty/zero values
    rather than raising, so summaries stay JSON-serializable.
    """

    requests: list[SimRequest]
    peak_memory_fraction: float
    n_swapped: int
    config: ClusterConfig
    #: Requests refused admission by a non-swapping placement policy
    #: (they prefill but never decode and are absent from ``requests``).
    n_rejected: int = 0
    #: KV-store counters (:meth:`repro.kvstore.TieredKVStore.stats`):
    #: hit rate, prefill tokens skipped, per-tier occupancy/bytes/
    #: evictions.  ``None`` unless the run had a ``kvstore`` configured.
    kvstore_stats: dict | None = None
    #: ``{slo_tier: {method_name: n_requests}}`` — which compression
    #: method the selection policy chose, per service class.  ``None``
    #: unless the run had a ``selection`` policy configured.
    selection_mix: dict | None = None
    #: The rejected requests themselves (``n_rejected`` == their count;
    #: they appear in :meth:`to_records` with terminal ``rejected``).
    rejected_requests: list = field(default_factory=list)
    #: Requests the recovery policy gave up on (fault injection only;
    #: terminal ``failed``).
    failed_requests: list = field(default_factory=list)
    #: Whether the run had a fault plan configured (drives the
    #: ``faults`` summary block even when nothing happened to fail).
    faulted: bool = False
    #: Elastic-cluster statistics: scaling-event counts, mean/peak
    #: powered replicas, accrued GPU-hours, shed/degraded counts plus
    #: the live ``events``/``timeseries`` lists (those two stay out of
    #: the summary).  ``None`` unless the run configured an
    #: ``autoscaler`` or ``admission`` policy.
    elastic_stats: dict | None = None

    def avg_jct(self) -> float:
        """Mean job completion time across all requests (Fig. 9 metric)."""
        if not self.requests:
            return 0.0
        return sum(r.jct for r in self.requests) / len(self.requests)

    def generated_tokens(self) -> int:
        """Decode tokens produced across all requests (the unit of the
        simulator-throughput benchmark)."""
        return sum(r.tokens_generated for r in self.requests)

    def mean_decomposition(self) -> dict[str, float]:
        """Mean seconds per bucket (Fig. 10 bars); all-zero when no
        request finished."""
        if not self.requests:
            return {k: 0.0 for k in BUCKETS}
        decomps = [r.decomposition() for r in self.requests]
        n = len(decomps)
        return {k: sum(d[k] for d in decomps) / n for k in decomps[0]}

    def mean_ratios(self, include_queue: bool = False) -> dict[str, float]:
        """Mean per-request bucket ratios (the Fig. 1–4 metric)."""
        if not self.requests:
            keys = BUCKETS if include_queue else \
                tuple(k for k in BUCKETS if k != "queue")
            return {k: 0.0 for k in keys}
        ratio_dicts = [r.ratios(include_queue) for r in self.requests]
        keys = ratio_dicts[0].keys()
        n = len(ratio_dicts)
        return {k: sum(d[k] for d in ratio_dicts) / n for k in keys}

    def mean_kv_access_ratio(self) -> float:
        """KV HBM read time as a fraction of JCT (§2.1's 16–33% metric)."""
        if not self.requests:
            return 0.0
        return sum(r.kv_access_s / r.jct for r in self.requests) / len(
            self.requests
        )

    @staticmethod
    def _nearest_rank(values_sorted, p: float) -> float:
        return nearest_rank(values_sorted, p)

    def jct_percentile(self, p: float) -> float:
        """JCT at percentile ``p`` (nearest-rank over finished requests)."""
        return self._nearest_rank(sorted(r.jct for r in self.requests), p)

    # -- serving metrics (TTFT / TBT / SLO) -----------------------------------

    def ttfts(self) -> list[float]:
        """Per-request time to first token (arrival → prefill end)."""
        return [r.ttft for r in self.requests]

    def ttft_percentile(self, p: float) -> float:
        """TTFT at percentile ``p`` (nearest-rank)."""
        return self._nearest_rank(sorted(self.ttfts()), p)

    def tbt_gaps(self) -> np.ndarray:
        """All inter-token gaps, pooled across requests (ascending)."""
        parts = [r.tbt_gaps() for r in self.requests]
        parts = [p for p in parts if p.size]
        if not parts:
            return np.empty(0, dtype=np.float64)
        return np.sort(np.concatenate(parts))

    def tbt_percentile(self, p: float) -> float:
        """Pooled time-between-tokens at percentile ``p`` (nearest-rank)."""
        return self._nearest_rank(self.tbt_gaps(), p)

    def mean_normalized_latency(self) -> float:
        """Mean JCT per output token (DistServe's normalized latency)."""
        if not self.requests:
            return 0.0
        return sum(r.normalized_latency for r in self.requests) / len(
            self.requests
        )

    def makespan_s(self) -> float:
        """First arrival → last completion (0 when nothing finished)."""
        if not self.requests:
            return 0.0
        return (max(r.finish for r in self.requests)
                - min(r.arrival for r in self.requests))

    def slo_attainment(self, ttft_slo_s: float = DEFAULT_TTFT_SLO_S,
                       tbt_slo_s: float = DEFAULT_TBT_SLO_S) -> float:
        """Fraction of requests meeting both SLOs.

        A request attains when its TTFT is within ``ttft_slo_s`` *and*
        its own p99 inter-token gap is within ``tbt_slo_s`` (the
        KVServe/DistServe-style joint criterion; single-token requests
        have no gaps and attain on TTFT alone).
        """
        if not self.requests:
            return 0.0
        met = sum(1 for r in self.requests
                  if r.ttft <= ttft_slo_s
                  and r.tbt_percentile(99) <= tbt_slo_s)
        return met / len(self.requests)

    def slo_goodput_rps(self, ttft_slo_s: float = DEFAULT_TTFT_SLO_S,
                        tbt_slo_s: float = DEFAULT_TBT_SLO_S) -> float:
        """SLO-attaining requests served per second of makespan."""
        return self._goodput(self.slo_attainment(ttft_slo_s, tbt_slo_s))

    def _goodput(self, attainment: float) -> float:
        # A zero-width makespan (degenerate single-instant run, or no
        # finished requests at all) is zero goodput, not infinite: a
        # float("inf") here used to leak non-compliant ``Infinity``
        # tokens into artifact JSON via json.dump.
        span = self.makespan_s()
        if span <= 0:
            return 0.0
        return attainment * len(self.requests) / span

    # -- cost-efficiency metrics (GPU-hours) ----------------------------------

    def gpu_hours(self) -> float:
        """GPU-hours the run consumed.

        Elastic runs accrue this exactly from the replica lifecycle
        (powered stretches × GPUs per replica, cold starts and drains
        included).  Static fleets backfill the same quantity as every
        provisioned GPU powered from t=0 to the last terminal event —
        the same window the elastic accrual covers — so elastic and
        static runs compare directly.
        """
        if self.elastic_stats is not None:
            return self.elastic_stats["gpu_hours"]
        n_gpus = sum(
            replica_resources(self.config.model, gpu).parallelism.n_gpus
            * count for gpu, count in self.config.fleet_list())
        n_gpus += (self.config.n_decode_replicas
                   * self.config.decode_replica().parallelism.n_gpus)
        end = max((r.finish for r in self.requests), default=0.0)
        return n_gpus * end / 3600.0

    def goodput_per_gpu_hour(
            self, ttft_slo_s: float = DEFAULT_TTFT_SLO_S,
            tbt_slo_s: float = DEFAULT_TBT_SLO_S) -> float:
        """SLO-attaining requests served per GPU-hour consumed — the
        cost-efficiency metric elastic scaling optimizes."""
        hours = self.gpu_hours()
        if hours <= 0:
            return 0.0
        return self.slo_attainment(ttft_slo_s, tbt_slo_s) \
            * len(self.requests) / hours

    def terminal_requests(self) -> list:
        """Every request that reached a terminal state — finished,
        rejected or failed — in request-id order."""
        out = [*self.requests, *self.rejected_requests,
               *self.failed_requests]
        out.sort(key=lambda r: r.request_id)
        return out

    # -- reliability metrics (fault injection) ---------------------------------

    def availability(self) -> float:
        """Fraction of terminal requests that finished (1.0 when
        nothing was rejected or failed)."""
        total = (len(self.requests) + len(self.rejected_requests)
                 + len(self.failed_requests))
        if total == 0:
            return 0.0
        return len(self.requests) / total

    def wasted_compute_s(self) -> float:
        """Processing seconds faults threw away, over all requests."""
        return sum(r.wasted_compute_s for r in self.terminal_requests())

    def wasted_work_fraction(self) -> float:
        """Wasted seconds over all processing seconds spent (useful +
        wasted); 0 when the cluster did no work at all."""
        wasted = self.wasted_compute_s()
        useful = sum(r.busy_s() for r in self.requests)
        total = wasted + useful
        return wasted / total if total > 0 else 0.0

    def goodput_under_faults_rps(
            self, ttft_slo_s: float = DEFAULT_TTFT_SLO_S,
            tbt_slo_s: float = DEFAULT_TBT_SLO_S) -> float:
        """SLO-attaining *finished* requests per second of the offered
        period — first arrival of any terminal request to the last
        completion — so shed and failed load drags goodput down instead
        of silently shrinking the denominator."""
        if not self.requests:
            return 0.0
        terminal = self.terminal_requests()
        span = (max(r.finish for r in self.requests)
                - min(r.arrival for r in terminal))
        if span <= 0:
            return 0.0
        met = self.slo_attainment(ttft_slo_s, tbt_slo_s) \
            * len(self.requests)
        return met / span

    def to_records(self) -> list[dict]:
        """Per-request JSON-ready records (artifact schema v4): every
        terminal request — finished, rejected and failed — in
        request-id order, each carrying its ``terminal`` state."""
        return [r.record() for r in self.terminal_requests()]

    def summary(self, ttft_slo_s: float = DEFAULT_TTFT_SLO_S,
                tbt_slo_s: float = DEFAULT_TBT_SLO_S) -> dict:
        """Cluster-level statistics as a flat JSON-ready mapping.

        Schema v2: the v1 keys are unchanged; TTFT/TBT percentiles,
        normalized latency and SLO attainment/goodput (evaluated at the
        given SLO point) are appended.  Schema v3 appends ``kvstore``
        and/or ``selection_mix`` — but only when the run configured
        those layers, so every pre-existing summary is unchanged.
        Schema v4 appends ``n_failed`` (always) and a ``faults`` block
        with the reliability metrics — availability, retry counts,
        wasted work, goodput under faults — when the run had a fault
        plan configured.  Schema v5 appends the cost-efficiency pair
        ``gpu_hours`` / ``goodput_per_gpu_hour`` (always — static
        fleets backfill replicas × makespan) and an ``elastic`` block
        when the run configured an autoscaler or admission policy.
        """
        jcts = sorted(r.jct for r in self.requests)
        ttfts = sorted(self.ttfts())
        gaps = self.tbt_gaps()
        attainment = self.slo_attainment(ttft_slo_s, tbt_slo_s)
        out = {
            "n_requests": len(jcts),
            "avg_jct_s": self.avg_jct(),
            "p50_jct_s": self._nearest_rank(jcts, 50),
            "p95_jct_s": self._nearest_rank(jcts, 95),
            "p99_jct_s": self._nearest_rank(jcts, 99),
            "max_jct_s": jcts[-1] if jcts else 0.0,
            "mean_decomposition_s": self.mean_decomposition(),
            "peak_memory_fraction": self.peak_memory_fraction,
            "n_swapped": self.n_swapped,
            "n_rejected": self.n_rejected,
            "n_failed": len(self.failed_requests),
            "mean_ttft_s": sum(ttfts) / len(ttfts) if ttfts else 0.0,
            "p50_ttft_s": self._nearest_rank(ttfts, 50),
            "p95_ttft_s": self._nearest_rank(ttfts, 95),
            "p99_ttft_s": self._nearest_rank(ttfts, 99),
            "mean_tbt_s": float(gaps.mean()) if gaps.size else 0.0,
            "p50_tbt_s": self._nearest_rank(gaps, 50),
            "p95_tbt_s": self._nearest_rank(gaps, 95),
            "p99_tbt_s": self._nearest_rank(gaps, 99),
            "mean_normalized_latency_s": self.mean_normalized_latency(),
            "slo_ttft_s": ttft_slo_s,
            "slo_tbt_s": tbt_slo_s,
            "slo_attainment": attainment,
            "slo_goodput_rps": self._goodput(attainment),
            "gpu_hours": self.gpu_hours(),
            "goodput_per_gpu_hour":
                self.goodput_per_gpu_hour(ttft_slo_s, tbt_slo_s),
        }
        if self.kvstore_stats is not None:
            out["kvstore"] = self.kvstore_stats
        if self.selection_mix is not None:
            out["selection_mix"] = self.selection_mix
        if self.faulted:
            terminal = self.terminal_requests()
            out["faults"] = {
                "availability": self.availability(),
                "n_failed": len(self.failed_requests),
                "n_recovered": sum(1 for r in self.requests
                                   if r.recovered),
                "n_retries": sum(r.n_retries for r in terminal),
                "wasted_compute_s": self.wasted_compute_s(),
                "wasted_work_fraction": self.wasted_work_fraction(),
                "goodput_under_faults_rps":
                    self.goodput_under_faults_rps(ttft_slo_s, tbt_slo_s),
            }
        if self.elastic_stats is not None:
            block = {k: v for k, v in self.elastic_stats.items()
                     if k not in ("events", "timeseries")}
            block["goodput_per_gpu_hour"] = \
                self.goodput_per_gpu_hour(ttft_slo_s, tbt_slo_s)
            out["elastic"] = block
        return out


class Simulator:
    """Event-driven simulation of one cluster serving one trace."""

    def __init__(self, config: ClusterConfig, trace: list[TraceRequest]) -> None:
        if not trace:
            raise ValueError("trace must contain at least one request")
        for tr in trace:
            if tr.input_len < 1 or tr.output_len < 1:
                raise ValueError(
                    f"request {tr.request_id} needs input_len >= 1 and "
                    f"output_len >= 1, got ({tr.input_len}, "
                    f"{tr.output_len})"
                )
        self.config = config
        self.trace = trace
        self.calib = config.calib
        self.spec = config.model
        self.method = config.method
        self.dec_res = config.decode_replica()
        self.net = make_network_model(self.calib)
        self.step_mode = config.step_mode
        self.cost_model = BatchCostModel(self.spec, self.dec_res,
                                         self.method, self.calib)

        self._events: list = []
        self._seq = itertools.count()
        self._prefill = []
        for gpu, count in config.fleet_list():
            res = replica_resources(self.spec, gpu)
            self._prefill.extend(_PrefillReplica(gpu=gpu, res=res)
                                 for _ in range(count))
        params = self.spec.param_bytes()
        base = params * (1.0 + config.activation_overhead)
        capacity = (self.dec_res.mem_gb * _GB
                    * (1.0 - config.mem_reserve_fraction) - base)
        if capacity <= 0:
            raise ValueError(
                f"decode replica memory too small for {self.spec.name}"
            )
        self._decode = [
            _DecodeReplica(capacity_bytes=capacity, base_bytes=base)
            for _ in range(config.n_decode_replicas)
        ]
        self._pending_swap: deque = deque()
        self._finished: list[SimRequest] = []
        self._rejected: list[SimRequest] = []
        self._n_swapped = 0

        sched = config.scheduler or SchedulerSpec()
        self.dispatch = sched.build_dispatch()
        self.placement = sched.build_placement()
        self.dispatch.bind(self)
        self.placement.bind(self)

        # KV-store / compression-selection layer.  When neither is
        # configured, ``_kv_enabled`` is False and every hot-path method
        # below takes its historical branch — byte-identical results.
        self.kvstore = config.kvstore.build() \
            if config.kvstore is not None else None
        self.selection = config.selection.build() \
            if config.selection is not None else None
        self._kv_enabled = (self.kvstore is not None
                            or self.selection is not None)
        self._selection_mix: dict[str, dict[str, int]] = {}
        if self.selection is not None:
            self.selection.bind(self)

        # Fault injection / recovery.  Without a fault plan
        # ``_faults_enabled`` is False and every hot-path method below
        # takes its historical branch — byte-identical results.
        self.faults = config.faults
        self._faults_enabled = config.faults is not None
        self.recovery = None
        self._fault_rng: np.random.Generator | None = None
        self._fault_timeline: list = []
        self._transfer_fail_p = 0.0
        self._nic_factors: list[float] = []
        self._failed: list[SimRequest] = []
        #: Requests with no up prefill replica to dispatch to; drained
        #: when a prefill replica is repaired.
        self._pending_dispatch: deque = deque()
        #: request_id -> (request, comm seconds accrued at transfer
        #: start) for every in-flight KV transfer; lets a crash or flap
        #: un-credit the wire time it threw away.
        self._inflight: dict[int, tuple[SimRequest, float]] = {}
        if self._faults_enabled:
            for spec in self.faults.faults:
                if spec.kind != "kvstore_outage":
                    continue
                if self.kvstore is None:
                    raise ValueError(
                        "kvstore_outage faults need a kvstore "
                        "configured on the cluster"
                    )
                tier = spec.resolved_params()["tier"]
                names = [t.spec.name for t in self.kvstore.tiers]
                if tier not in names:
                    raise ValueError(
                        f"kvstore_outage tier {tier!r} is not in the "
                        f"configured store (tiers: {', '.join(names)})"
                    )
            rspec = config.recovery if config.recovery is not None \
                else RecoverySpec(DEFAULT_RECOVERY)
            self.recovery = rspec.build()
            self.recovery.bind(self)
            # The plan-derived seed (not the trace seed) makes the
            # stream re-derivable inside parallel sweep workers: the
            # timeline draws first, then runtime draws (transfer flaps,
            # retry jitter) consume the stream in event order.
            self._fault_rng = np.random.default_rng(self.faults.rng_seed())
            self._transfer_fail_p = self.faults.transfer_fail_prob()
            horizon = 2.0 * max(tr.arrival_s for tr in trace) + 3600.0
            self._fault_timeline = self.faults.timeline(
                self._fault_rng, horizon, len(self._prefill),
                len(self._decode))

        # Elastic cluster: autoscaling + admission.  Without either,
        # ``_elastic_enabled`` is False and every hot-path method below
        # takes its historical branch — byte-identical results.  The
        # provisioned fleet is the *maximum*: the autoscaler powers
        # replicas on and off within it, so a ``static`` run is exactly
        # the peak-sized fleet.
        self._elastic_enabled = (config.autoscaler is not None
                                 or config.admission is not None)
        self.autoscaler = None
        self.admission = None
        self._n_shed = 0
        self._n_degraded = 0
        #: ``(time, role, action, index)`` scaling events.
        self._scale_events: list = []
        #: ``(time, powered_prefill, powered_decode)`` step timeseries.
        self._replica_timeseries: list = []
        self._last_terminal_t = 0.0
        if self._elastic_enabled:
            aspec = config.autoscaler if config.autoscaler is not None \
                else AutoscalerSpec(DEFAULT_AUTOSCALER)
            self.autoscaler = aspec.build()
            self.autoscaler.bind(self)
            if config.admission is not None:
                self.admission = config.admission.build()
                self.admission.bind(self)
                if self.admission.may_degrade:
                    # Degraded requests carry their own method, so
                    # prefill must run the per-request-method path.
                    self._kv_enabled = True
            n_p, n_d = len(self._prefill), len(self._decode)
            init_p, init_d = self.autoscaler.initial(n_p, n_d)
            self._target_p = min(max(1, int(init_p)), n_p)
            self._target_d = min(max(1, int(init_d)), n_d)
            # The un-powered tail starts off — initial state, no events.
            for r in self._prefill[self._target_p:]:
                r.state = "off"
            for d in self._decode[self._target_d:]:
                d.state = "off"
            self._record_replicas(0.0)

    # -- public API ----------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run to completion and return the results."""
        # Fault events go on the heap first: at equal timestamps the
        # lower sequence number wins, so a crash always preempts the
        # sim event it coincides with (matching the stale-event guards,
        # which discard exactly the events a crash raced).
        for t, kind, payload in self._fault_timeline:
            self._push(t, "fault", (kind, payload))
        # The autoscaler's evaluation loop starts one interval in and
        # re-arms itself while requests are outstanding; ``static``
        # opts out entirely, so an armed-but-idle run replays the exact
        # event sequence of an unarmed one.
        if self._elastic_enabled and self.autoscaler.evaluates:
            self._push(self.autoscaler.interval_s(), "elastic_eval", None)
        for tr in self.trace:
            self._push(tr.arrival_s, "arrival", SimRequest(trace=tr))
        while self._events:
            time, _, kind, payload = heapq.heappop(self._events)
            getattr(self, f"_on_{kind}")(time, payload)
        peak = max(
            (d.peak_bytes + d.base_bytes) / (self.dec_res.mem_gb * _GB)
            for d in self._decode
        )
        self._finished.sort(key=lambda r: r.request_id)
        self._rejected.sort(key=lambda r: r.request_id)
        self._failed.sort(key=lambda r: r.request_id)
        kv_stats = self.kvstore.stats() if self.kvstore is not None else None
        mix = None
        if self.selection is not None:
            mix = {tier: dict(sorted(counts.items()))
                   for tier, counts in sorted(self._selection_mix.items())}
        elastic = self._elastic_stats() if self._elastic_enabled else None
        return SimulationResult(requests=self._finished,
                                elastic_stats=elastic,
                                peak_memory_fraction=peak,
                                n_swapped=self._n_swapped,
                                config=self.config,
                                n_rejected=len(self._rejected),
                                kvstore_stats=kv_stats,
                                selection_mix=mix,
                                rejected_requests=self._rejected,
                                failed_requests=self._failed,
                                faulted=self._faults_enabled)

    # -- event handlers --------------------------------------------------------

    def _on_arrival(self, now: float, req: SimRequest) -> None:
        # Admission judges every fresh arrival exactly once; crash
        # re-dispatches and retries bypass it (the request was already
        # admitted).
        if self.admission is not None:
            verdict = self.admission.admit(now, req, self)
            if verdict == "shed":
                req.rejected = True
                self._n_shed += 1
                self._rejected.append(req)
                self._last_terminal_t = max(self._last_terminal_t, now)
                return
            if verdict is not None:
                if verdict.name != self.method.name:
                    self._n_degraded += 1
                req.admitted_method = verdict
        self._dispatch_to_prefill(now, req)

    def _dispatch_to_prefill(self, now: float, req: SimRequest) -> None:
        replicas = self._prefill
        mapping = None
        if self._faults_enabled or self._elastic_enabled:
            up = [i for i, r in enumerate(self._prefill)
                  if r.up and r.state == "on"]
            if not up:
                # Whole prefill fleet down (or booting): park the
                # request until a repair or boot completes (never
                # silently dropped).
                self._pending_dispatch.append(req)
                return
            if len(up) < len(self._prefill):
                # Dispatch sees only the live replicas; indices map
                # back to fleet positions afterwards.
                replicas = [self._prefill[i] for i in up]
                mapping = up
        idx = self.dispatch.choose(now, req, replicas)
        if not 0 <= idx < len(replicas):
            raise ValueError(
                f"dispatch policy {self.dispatch.name!r} chose replica "
                f"{idx} of {len(replicas)}"
            )
        if mapping is not None:
            idx = mapping[idx]
        replica = self._prefill[idx]
        req.prefill_replica = idx
        replica.queued_tokens += req.trace.input_len
        replica.assigned += 1
        replica.queue.append(req)
        if replica.current is None:
            self._start_prefill(now, idx)

    def _start_prefill(self, now: float, idx: int) -> None:
        """Serve a batch of queued prompts in one forward pass.

        Requests are taken FIFO while their summed prompt length fits
        the token budget (a long prompt always runs alone).  The pass
        costs the linear-layer time of the *summed* tokens plus each
        request's own quadratic attention term — the vLLM batched-
        prefill cost model.
        """
        replica = self._prefill[idx]
        batch = [replica.queue.popleft()]
        total_tokens = batch[0].trace.input_len
        budget = self.config.prefill_token_budget
        while replica.queue and (
            total_tokens + replica.queue[0].trace.input_len <= budget
        ):
            nxt = replica.queue.popleft()
            batch.append(nxt)
            total_tokens += nxt.trace.input_len

        replica.current = batch
        if self._kv_enabled:
            batch_s = self._kv_prefill_batch(now, replica, batch)
        else:
            joint = prefill_time(self.spec, replica.res, total_tokens,
                                 self.method, self.calib)
            per_request = [
                prefill_time(self.spec, replica.res, req.trace.input_len,
                             self.method, self.calib)
                for req in batch
            ]
            batch_s = (joint.linear_s + joint.quantize_s
                       + sum(b.attention_s for b in per_request))
            for req, own in zip(batch, per_request):
                req.prefill_start = now
                # Each request experiences the whole pass; the
                # quantization share is its own (it is per-token work).
                req.prefill_s = batch_s - own.quantize_s
                req.quant_s = own.quantize_s
        self._push(now + batch_s, "prefill_done",
                   (idx, replica.epoch, batch))

    def _kv_prefill_batch(self, now: float, replica: _PrefillReplica,
                          batch: list) -> float:
        """KV-store-aware prefill pass: select, look up, skip, charge.

        Per request: the selection policy (or the scenario method)
        fixes its compression method; the prefix cache is probed for
        the request's shareable prefix (clamped so at least one prompt
        token always prefills), and the matched fraction of prefill
        compute is *skipped* — replaced by the owning tier's read time.
        The pass then costs the joint linear time of the summed
        *effective* (uncached) tokens, each request's own attention and
        quantization on its effective tokens, plus the tier reads.  A
        request's own read accrues to its ``comm`` bucket; everything
        else it waits through is ``prefill`` (same convention as the
        historical path).  Note the decode-side batch cost model keeps
        the scenario method (see :mod:`repro.kvstore.selection`).
        """
        plan = []
        total_eff = 0
        for req in batch:
            if req.admitted_method is not None:
                # Elastic admission degraded this request at arrival;
                # overload control outranks per-request selection.
                method = req.admitted_method
            elif self.selection is not None:
                method = self.selection.choose(now, req, self)
            else:
                method = self.method
            req.method = method
            if self.selection is not None:
                tier_key = str(req.trace.slo_tier)
                counts = self._selection_mix.setdefault(tier_key, {})
                counts[method.name] = counts.get(method.name, 0) + 1
            if self.kvstore is not None:
                limit = req.trace.input_len - 1
                if req.kv_refetch:
                    # Recovering a crash-lost KV: the previous
                    # attempt's writeback (or the session entry) may
                    # cover the whole prompt, not just the session
                    # prefix — probe for all of it.
                    prefix = limit
                    req.kv_refetch = False
                else:
                    prefix = min(req.trace.prefix_len, limit)
                hit = self.kvstore.lookup(self._cache_key(req), prefix, now)
                req.prefix_hit_tokens = hit.tokens
                req.cache_read_s = hit.read_s
                req.cache_tier = hit.tier
            eff = req.trace.input_len - req.prefix_hit_tokens
            total_eff += eff
            plan.append((req, method, eff))
        joint = prefill_time(self.spec, replica.res, total_eff,
                             self.method, self.calib)
        per_request = [
            prefill_time(self.spec, replica.res, eff, method, self.calib)
            for _, method, eff in plan
        ]
        batch_s = (joint.linear_s
                   + sum(b.quantize_s for b in per_request)
                   + sum(b.attention_s for b in per_request)
                   + sum(req.cache_read_s for req, _, _ in plan))
        for (req, _, _), own in zip(plan, per_request):
            req.prefill_start = now
            req.prefill_s = batch_s - own.quantize_s - req.cache_read_s
            req.quant_s = own.quantize_s
            req.comm_s += req.cache_read_s
        return batch_s

    def _cache_key(self, req: SimRequest):
        """Prefix-cache key: the session for multi-turn requests (turns
        of one conversation share and extend one entry), else a
        per-request key — never hit, but it occupies capacity and
        churns eviction exactly like a real single-shot tenant."""
        sid = req.trace.session_id
        return sid if sid >= 0 else ("r", req.trace.request_id)

    def _on_prefill_done(self, now: float, payload) -> None:
        idx, epoch, batch = payload
        replica = self._prefill[idx]
        if epoch != replica.epoch:
            return                       # the replica crashed mid-pass
        replica.current = None
        for req in batch:
            replica.queued_tokens -= req.trace.input_len
            req.prefill_end = now
        if self.kvstore is not None:
            # Write back the freshly computed (compressed) prompt KV —
            # before any same-instant next batch probes the cache, so a
            # follow-up session turn already queued here can hit it.
            for req in batch:
                self.kvstore.put(
                    self._cache_key(req), req.trace.input_len,
                    self.spec.kv_bytes_per_token(
                        req.method.kv_wire_bytes_per_value),
                    req.method.name, now)
        if replica.queue:
            self._start_prefill(now, idx)
        elif self._elastic_enabled:
            self._maybe_retire(now, "prefill", idx)
        for req in batch:
            self._dispatch_to_decode(now, req)

    def _choose_placement(self, now: float, req: SimRequest,
                          reserve: float) -> int | None:
        """Run the placement policy and validate its answer: the chosen
        replica must exist and actually have room (a policy returning a
        sentinel like -1, or ignoring ``reserve``, would otherwise
        silently over-commit memory via negative indexing)."""
        target = self.placement.choose(now, req, self._decode, reserve)
        if target is None:
            return None
        if not 0 <= target < len(self._decode):
            raise ValueError(
                f"placement policy {self.placement.name!r} chose replica "
                f"{target} of {len(self._decode)} (return None when no "
                "replica fits)"
            )
        if self._decode[target].free_bytes() < reserve:
            raise ValueError(
                f"placement policy {self.placement.name!r} chose replica "
                f"{target} without room for the request "
                f"({self._decode[target].free_bytes():.0f} bytes free, "
                f"{reserve:.0f} needed)"
            )
        return target

    def _dispatch_to_decode(self, now: float, req: SimRequest) -> None:
        reserve = self._request_bytes(req)
        target = self._choose_placement(now, req, reserve)
        if target is None:
            if self.placement.swap_on_full:
                # §5.1 step 6: stage the quantized KV in prefill CPU
                # memory until a decode replica frees enough room.
                req.swapped = True
                self._n_swapped += 1
                self._pending_swap.append(req)
            else:
                # Admission control (no_swap placement): the request is
                # dropped after prefill and never reaches decode.
                req.rejected = True
                self._rejected.append(req)
                if self._elastic_enabled:
                    self._last_terminal_t = max(self._last_terminal_t,
                                                now)
            return
        self._begin_transfer(now, req, target)

    def _begin_transfer(self, now: float, req: SimRequest, target: int) -> None:
        decode = self._decode[target]
        reserve = self._request_bytes(req)
        decode.used_bytes += reserve
        decode.peak_bytes = max(decode.peak_bytes, decode.used_bytes)
        decode.queued_tokens += req.trace.total_len
        decode.assigned += 1
        req.decode_replica = target
        req.reserved_bytes = reserve

        # A prefix hit already paid its tier's read bandwidth; only the
        # newly computed tokens' KV crosses the prefill NIC.
        nbytes = kv_wire_bytes(self.spec, req.method or self.method,
                               req.trace.input_len - req.prefix_hit_tokens)
        nic = self._prefill[req.prefill_replica]
        start = max(now, nic.nic_free_at)
        # Time spent waiting for the replica's NIC is KV-transmission
        # delay: it accrues to the comm bucket (this is what makes the
        # comm ratio climb with RPS in Fig. 1(d)).
        nic_wait = start - now
        src_gbps = nic.res.network_gbps
        dst_gbps = self.dec_res.network_gbps
        if self._faults_enabled:
            # An active NIC brownout scales both endpoints' bandwidth
            # for the whole transfer (the factor at transfer start
            # applies end to end — a documented simplification).
            factor = self._nic_factor()
            if factor != 1.0:
                src_gbps *= factor
                dst_gbps *= factor
        full = self.net.transfer_time(nbytes, src_gbps, dst_gbps,
                                      via_cpu=req.swapped).seconds
        nic.nic_free_at = start + full
        if self.config.pipelining and not req.swapped:
            exposed = self.net.pipelined_exposed_time(
                nbytes, src_gbps, dst_gbps,
                compute_s=req.prefill_s,
                n_stages=self.config.pipeline_stages,
            )
            # Overlapped portion hides inside prefill; only the exposed
            # tail delays the request.
            done = start + exposed
            comm_added = nic_wait + exposed
        else:
            done = start + full
            comm_added = nic_wait + full
        req.comm_s += comm_added
        if self._faults_enabled:
            self._inflight[req.request_id] = (req, comm_added)
            if self._transfer_fail_p > 0.0 and float(
                    self._fault_rng.random()) < self._transfer_fail_p:
                # The flap surfaces when the transfer would have landed
                # (the failed attempt held the NIC either way).
                self._push(done, "transfer_fail", (req, req.attempt))
                return
        self._push(done, "transfer_done", (req, req.attempt))

    def _on_transfer_done(self, now: float, payload) -> None:
        req, attempt = payload
        if req.attempt != attempt:
            return             # a crash already recovered this attempt
        if self._faults_enabled:
            self._inflight.pop(req.request_id, None)
        req.transfer_end = now
        req.decode_start = now
        idx = req.decode_replica
        decode = self._decode[idx]
        # The prefill stage already produced the first output token.
        remaining = req.trace.output_len - 1
        if remaining == 0:
            # Single-token request: its only token exists already, so it
            # finishes here without a decode iteration.  (A former
            # ``max(1, …)`` off-by-one ran one spurious iteration,
            # over-counting tokens_generated and decode time.)
            self._finish_request(now, decode, req)
            self._admit_pending(now)
            return
        decode.active.append([req, remaining])
        if not decode.iteration_scheduled:
            self._schedule_decode(now, idx)
        elif self.step_mode == "span" and not decode.boundary_pending:
            # A span is in flight; the join takes effect at the end of
            # the iteration currently in progress.
            self._interrupt_span(now, idx)

    def _schedule_decode(self, now: float, idx: int) -> None:
        if self.step_mode == "span":
            self._schedule_span(now, idx)
        else:
            self._schedule_iteration(now, idx)

    # -- token stepping (legacy path) ------------------------------------------

    def _schedule_iteration(self, now: float, idx: int) -> None:
        decode = self._decode[idx]
        if not decode.active:
            decode.iteration_scheduled = False
            return
        ctxs = [entry[0].trace.input_len + entry[0].tokens_generated + 1
                for entry in decode.active]
        timing = self.cost_model.iteration(ctxs)
        snapshot = list(decode.active)
        decode.iteration_scheduled = True
        self._push(now + timing.latency_s, "decode_iter",
                   (idx, decode.epoch, snapshot, timing))

    def _on_decode_iter(self, now: float, payload) -> None:
        idx, epoch, snapshot, timing = payload
        decode = self._decode[idx]
        if epoch != decode.epoch:
            return          # the replica crashed before this iteration

        kv_sum = sum(c.kv_read_s for c in timing.per_request)
        compute_sum = sum(c.compute_s for c in timing.per_request)
        requant_sum = sum(c.requant_s for c in timing.per_request)
        dequant_sum = sum(c.dequant_s for c in timing.per_request)
        approx_sum = sum(c.approx_s for c in timing.per_request)
        decode_share = timing.shared_s + kv_sum + compute_sum + requant_sum

        finished_entries = []
        for entry in snapshot:
            entry[0].accrue_decode(decode_share, dequant_sum, approx_sum,
                                   kv_sum)
            entry[0].add_token_time(now)
            entry[1] -= 1
            if entry[1] <= 0:
                finished_entries.append(entry)

        if finished_entries:
            # One-pass rebuild instead of per-entry list.remove() — that
            # was O(batch) per finishing request, quadratic per event.
            decode.active = [e for e in decode.active if e[1] > 0]
            for entry in finished_entries:
                self._finish_request(now, decode, entry[0])
            self._admit_pending(now)
        self._schedule_iteration(now, idx)

    # -- span stepping (fast-forward path) -------------------------------------

    def _schedule_span(self, now: float, idx: int) -> None:
        """Start a span covering every iteration until the batch next
        changes on its own: ``k`` = the earliest finisher's remaining
        tokens.  Joins arriving mid-span truncate it via
        :meth:`_interrupt_span`."""
        decode = self._decode[idx]
        decode.span_id += 1
        if not decode.active:
            decode.iteration_scheduled = False
            return
        snapshot = list(decode.active)
        ctx0 = np.array([e[0].trace.input_len + e[0].tokens_generated + 1
                         for e in snapshot], dtype=np.int64)
        k = min(e[1] for e in snapshot)
        totals = self.cost_model.span(ctx0, k)
        decode.span_start = now
        decode.span_k = k
        decode.span_snapshot = snapshot
        decode.span_ctx0 = ctx0
        decode.iteration_scheduled = True
        self._push(now + totals.latency_s, "decode_span",
                   (idx, decode.span_id, totals))

    def _settle_span(self, decode: _DecodeReplica, totals) -> None:
        """Credit ``totals.k`` iterations to every span participant.

        Each request accrues the *batch-wide* bucket sums (it waits
        through the whole batch's iteration), exactly as the token path
        accrues them one iteration at a time.  Token completion times
        come from the closed-form cumulative latencies — one shared
        vector per span whose last element is bitwise identical to the
        span event's timestamp.
        """
        k = totals.k
        token_times = decode.span_start + self.cost_model.span_cumlat(
            decode.span_ctx0, k)
        for entry in decode.span_snapshot:
            entry[0].accrue_decode(totals.decode_s, totals.dequant_s,
                                   totals.approx_s, totals.kv_read_s,
                                   tokens=k)
            entry[0].add_token_times(token_times)
            entry[1] -= k

    def _on_decode_span(self, now: float, payload) -> None:
        idx, span_id, totals = payload
        decode = self._decode[idx]
        if span_id != decode.span_id:
            return                        # span was truncated by a join
        self._settle_span(decode, totals)
        finished_entries = [e for e in decode.span_snapshot if e[1] <= 0]
        if finished_entries:
            decode.active = [e for e in decode.active if e[1] > 0]
            for entry in finished_entries:
                self._finish_request(now, decode, entry[0])
            self._admit_pending(now)
        self._schedule_span(now, idx)

    def _interrupt_span(self, now: float, idx: int) -> None:
        """Truncate the in-flight span because a request joined at ``now``.

        The join takes effect at the end of the iteration in progress —
        boundary ``j``.  The first ``j`` iterations are settled with
        their closed-form totals and a zero-state boundary event is
        pushed at that instant; it re-snapshots the batch, so any
        further joins before the boundary ride along for free.
        """
        decode = self._decode[idx]
        elapsed = now - decode.span_start
        j = self.cost_model.find_boundary(decode.span_ctx0, decode.span_k,
                                          elapsed)
        if j >= decode.span_k:
            # Joined during the span's last iteration: the natural span
            # end is the join boundary; nothing to truncate.
            return
        totals = self.cost_model.span(decode.span_ctx0, j)
        self._settle_span(decode, totals)
        # No request can finish here: j < k = min(remaining) over the span.
        decode.span_id += 1               # drop the in-flight span event
        decode.boundary_pending = True
        decode.boundary_k = j
        self._push(decode.span_start + totals.latency_s, "span_boundary",
                   (idx, decode.epoch))

    def _on_span_boundary(self, now: float, payload) -> None:
        idx, epoch = payload
        decode = self._decode[idx]
        if epoch != decode.epoch:
            return         # the replica crashed before the boundary
        decode.boundary_pending = False
        self._schedule_span(now, idx)

    # -- shared decode bookkeeping ---------------------------------------------

    def _finish_request(self, now: float, decode: _DecodeReplica,
                        req: SimRequest) -> None:
        req.finish = now
        decode.used_bytes -= req.reserved_bytes
        decode.queued_tokens -= req.trace.total_len
        if self.kvstore is not None:
            # Extend the session's entry with the generated tokens: the
            # next turn's prompt embeds this whole conversation, so its
            # shareable prefix is the full context, not just the prompt.
            self.kvstore.put(
                self._cache_key(req), req.trace.total_len,
                self.spec.kv_bytes_per_token(
                    req.method.kv_wire_bytes_per_value),
                req.method.name, now)
        self._finished.append(req)
        if self._elastic_enabled:
            self._last_terminal_t = max(self._last_terminal_t, now)
            if req.decode_replica >= 0:
                self._maybe_retire(now, "decode", req.decode_replica)

    def _admit_pending(self, now: float) -> None:
        still_waiting: deque = deque()
        while self._pending_swap:
            req = self._pending_swap.popleft()
            reserve = self._request_bytes(req)
            target = self._choose_placement(now, req, reserve)
            if target is not None:
                self._begin_transfer(now, req, target)
            else:
                still_waiting.append(req)
        self._pending_swap = still_waiting

    # -- fault injection and recovery ------------------------------------------

    def _on_fault(self, now: float, payload) -> None:
        kind, data = payload
        if kind == "replica_down":
            role, idx = data
            if role == "prefill":
                self._prefill_down(now, idx)
            else:
                self._decode_down(now, idx)
        elif kind == "replica_up":
            role, idx = data
            if role == "prefill":
                self._prefill_up(now, idx)
            else:
                self._decode_up(now, idx)
        elif kind == "nic_on":
            self._nic_factors.append(data)
        elif kind == "nic_off":
            self._nic_factors.remove(data)
        elif kind == "kv_dark":
            tier, dark = data
            self.kvstore.set_dark(tier, dark)
        else:
            raise ValueError(f"unknown fault event kind {kind!r}")

    def _nic_factor(self) -> float:
        """Product of active NIC brownout factors (1.0 = healthy)."""
        factor = 1.0
        for f in self._nic_factors:
            factor *= f
        return factor

    def fault_capacity_signal(self) -> float:
        """Fraction of decode replicas currently down (0.0 unfaulted).

        The ``congestion`` selection policy folds this into its
        congestion signal, so fault-driven capacity loss degrades
        requests to the cheaper compression method exactly like
        store/NIC pressure does (graceful degradation).
        """
        if not self._faults_enabled or not self._decode:
            return 0.0
        down = sum(1 for d in self._decode if not d.up)
        return down / len(self._decode)

    def _prefill_down(self, now: float, idx: int) -> None:
        replica = self._prefill[idx]
        replica.down_count += 1
        if replica.down_count > 1:
            return                # already down via an overlapping spec
        replica.up = False
        replica.epoch += 1        # discard the in-flight prefill_done
        batch = replica.current or []
        queued = list(replica.queue)
        replica.current = None
        replica.queue.clear()
        replica.queued_tokens = 0
        # In-flight transfers sourced from this replica's GPU memory
        # die with it; swapped-KV transfers stream from host memory and
        # survive the crash (a documented simplification).
        dead = [(rid, req, comm) for rid, (req, comm)
                in self._inflight.items()
                if req.prefill_replica == idx and not req.swapped]
        for rid, req, comm in dead:
            del self._inflight[rid]
            decode = self._decode[req.decode_replica]
            decode.used_bytes -= req.reserved_bytes
            decode.queued_tokens -= req.trace.total_len
            req.reserved_bytes = 0.0
            req.decode_replica = -1
            self._recover(now, req, lost_kv=True)
        for req in batch:
            # The buckets were charged the full planned pass up front;
            # only the elapsed share was actually burned.
            self._recover(now, req, lost_kv=True,
                          wasted_s=max(0.0, now - req.prefill_start))
        for req in queued:
            # Queued requests lost nothing — re-dispatch silently.
            self._dispatch_to_prefill(now, req)
        if dead:
            self._admit_pending(now)

    def _prefill_up(self, now: float, idx: int) -> None:
        replica = self._prefill[idx]
        replica.down_count -= 1
        if replica.down_count > 0:
            return
        replica.up = True
        pending = self._pending_dispatch
        self._pending_dispatch = deque()
        for req in pending:
            self._dispatch_to_prefill(now, req)
        if self._elastic_enabled:
            # A crash emptied this replica; if it was draining it can
            # retire now that it is repaired-and-idle.
            self._maybe_retire(now, "prefill", idx)

    def _decode_down(self, now: float, idx: int) -> None:
        decode = self._decode[idx]
        decode.down_count += 1
        if decode.down_count > 1:
            return
        decode.up = False
        decode.epoch += 1    # discard in-flight iteration/boundary events
        if self.step_mode == "span" and decode.iteration_scheduled:
            if decode.boundary_pending:
                self._unsettle_boundary_iteration(decode)
            else:
                # Credit only the iterations that fully completed
                # strictly before the crash — exactly the events the
                # token path would have fired (a tie goes to the crash,
                # which was pushed first).
                elapsed = now - decode.span_start
                cum = self.cost_model.span_cumlat(decode.span_ctx0,
                                                  decode.span_k)
                done = int(np.searchsorted(cum, elapsed, side="left"))
                if done > 0:
                    self._settle_span(
                        decode, self.cost_model.span(decode.span_ctx0,
                                                     done))
        decode.span_id += 1           # drop the in-flight span event
        decode.boundary_pending = False
        decode.iteration_scheduled = False
        victims = [entry[0] for entry in decode.active]
        decode.active = []
        decode.span_snapshot = []
        decode.span_ctx0 = None
        decode.used_bytes = 0.0
        decode.queued_tokens = 0
        transfer_victims = [
            (rid, req, comm) for rid, (req, comm) in self._inflight.items()
            if req.decode_replica == idx
        ]
        for rid, req, comm in transfer_victims:
            del self._inflight[rid]
        for req in victims:
            req.reserved_bytes = 0.0
            req.decode_replica = -1
            self._recover(now, req, lost_kv=True)
        for rid, req, comm in transfer_victims:
            # The KV still sits at the source; only the wire time was
            # wasted.  It re-lands in the queue bucket.
            req.comm_s -= comm
            req.wasted_compute_s += comm
            req.reserved_bytes = 0.0
            req.decode_replica = -1
            self._recover(now, req, lost_kv=False)

    def _decode_up(self, now: float, idx: int) -> None:
        decode = self._decode[idx]
        decode.down_count -= 1
        if decode.down_count > 0:
            return
        decode.up = True
        self._admit_pending(now)
        if self._elastic_enabled:
            self._maybe_retire(now, "decode", idx)

    def _unsettle_boundary_iteration(self, decode: _DecodeReplica) -> None:
        """Un-credit the boundary iteration a crash interrupted.

        :meth:`_interrupt_span` settles *through* the iteration in
        progress (where a join lands); a crash striking before the
        boundary event kills that iteration mid-flight, and the token
        path would never have credited it — its event had not fired.
        Subtract the settled span's last iteration so both step modes
        account the lost work identically.
        """
        j = decode.boundary_k
        tj = self.cost_model.span(decode.span_ctx0, j)
        if j > 1:
            tp = self.cost_model.span(decode.span_ctx0, j - 1)
            deltas = (tj.decode_s - tp.decode_s,
                      tj.dequant_s - tp.dequant_s,
                      tj.approx_s - tp.approx_s,
                      tj.kv_read_s - tp.kv_read_s)
        else:
            deltas = (tj.decode_s, tj.dequant_s, tj.approx_s,
                      tj.kv_read_s)
        for entry in decode.span_snapshot:
            entry[0].accrue_decode(-deltas[0], -deltas[1], -deltas[2],
                                   -deltas[3], tokens=-1)
            entry[1] += 1

    def _on_transfer_fail(self, now: float, payload) -> None:
        req, attempt = payload
        if req.attempt != attempt:
            return             # a crash already recovered this attempt
        _, comm = self._inflight.pop(req.request_id)
        target = req.decode_replica
        decode = self._decode[target]
        decode.used_bytes -= req.reserved_bytes
        decode.queued_tokens -= req.trace.total_len
        req.reserved_bytes = 0.0
        req.decode_replica = -1
        # The flapped attempt's wire time is wasted work, not KV
        # communication the request benefited from.
        req.comm_s -= comm
        req.wasted_compute_s += comm
        self._recover(now, req, lost_kv=False)
        self._admit_pending(now)
        if self._elastic_enabled:
            # The flap may have freed a draining replica's last bytes.
            self._maybe_retire(now, "decode", target)

    def _recover(self, now: float, req: SimRequest, lost_kv: bool,
                 wasted_s: float | None = None) -> None:
        """Route one fault-interrupted request through the recovery
        policy: schedule a retry, or fail it when the policy gives up.

        ``lost_kv`` — the KV no longer exists anywhere reachable (the
        request must re-prefill; a configured KV store is probed for a
        surviving cached prefix on the next pass).  Otherwise the KV
        still sits at the prefill side and only the decode dispatch is
        redone.
        """
        req.attempt += 1          # invalidate in-flight events
        if lost_kv:
            req.reset_for_retry(wasted_s)
            if self.kvstore is not None:
                req.kv_refetch = True
        attempt = req.n_retries + 1
        delay = self.recovery.delay(req, attempt, self._fault_rng)
        if delay is None:
            req.failed = True
            self._failed.append(req)
            if self._elastic_enabled:
                self._last_terminal_t = max(self._last_terminal_t, now)
            return
        req.n_retries = attempt
        self._push(now + delay, "retry", (req, req.attempt, lost_kv))

    def _on_retry(self, now: float, payload) -> None:
        req, attempt, lost_kv = payload
        if req.attempt != attempt or req.failed or req.done:
            return
        if lost_kv:
            self._dispatch_to_prefill(now, req)
        else:
            self._dispatch_to_decode(now, req)

    # -- elastic scaling (autoscaler + admission) ------------------------------

    def prefill_backlog(self) -> int:
        """Requests waiting on or inside the prefill stage: queued,
        in-service and parked (the autoscaler/admission load signal)."""
        backlog = len(self._pending_dispatch)
        for replica in self._prefill:
            backlog += len(replica.queue)
            if replica.current is not None:
                backlog += len(replica.current)
        return backlog

    def recent_ttft_attainment(self, now: float, window_s: float,
                               ttft_slo_s: float) -> tuple[float, int]:
        """TTFT SLO attainment over requests finishing in the last
        ``window_s`` seconds: ``(attainment, n_finished)`` —
        ``(0.0, 0)`` when nothing finished in the window."""
        met = n = 0
        cutoff = now - window_s
        # ``_finished`` is appended in completion order; walk back
        # until the window's edge.
        for req in reversed(self._finished):
            if req.finish < cutoff:
                break
            n += 1
            if req.ttft <= ttft_slo_s:
                met += 1
        if n == 0:
            return 0.0, 0
        return met / n, n

    def _outstanding(self) -> int:
        """Trace requests not yet in a terminal state."""
        return (len(self.trace) - len(self._finished)
                - len(self._rejected) - len(self._failed))

    def _record_replicas(self, now: float) -> None:
        p = sum(1 for r in self._prefill if r.state != "off")
        d = sum(1 for r in self._decode if r.state != "off")
        ts = self._replica_timeseries
        if ts and ts[-1][0] == now:
            ts[-1] = (now, p, d)
        else:
            ts.append((now, p, d))

    def _on_elastic_eval(self, now, payload) -> None:
        n_p, n_d = len(self._prefill), len(self._decode)
        want_p, want_d = self.autoscaler.desired(
            now, self, n_p, n_d, self._target_p, self._target_d)
        want_p = min(max(1, int(want_p)), n_p)
        want_d = min(max(1, int(want_d)), n_d)
        if want_p != self._target_p:
            self._retarget(now, "prefill", want_p)
            self._target_p = want_p
        if want_d != self._target_d:
            self._retarget(now, "decode", want_d)
            self._target_d = want_d
        # Re-arm only while work remains, so the run still terminates.
        if self._outstanding() > 0:
            self._push(now + self.autoscaler.interval_s(),
                       "elastic_eval", None)

    def _retarget(self, now: float, role: str, want: int) -> None:
        """Reconcile one fleet toward ``want`` powered replicas.

        Scale-up resurrects draining replicas first (still warm — no
        cold start), then boots powered-off ones with the policy's
        cold-start latency.  Scale-down cancels pending boots first,
        then drains the highest-index serving replicas: they take no
        new work and retire once idle — in-flight work is never killed.
        """
        replicas = self._prefill if role == "prefill" else self._decode
        cur = sum(1 for r in replicas if r.state in ("on", "starting"))
        undrained = False
        if want > cur:
            for idx, r in enumerate(replicas):
                if cur >= want:
                    break
                if r.state == "draining":
                    r.state = "on"
                    cur += 1
                    undrained = True
                    self._scale_events.append((now, role, "undrain", idx))
            for idx, r in enumerate(replicas):
                if cur >= want:
                    break
                if r.state == "off":
                    r.state = "starting"
                    r.lifecycle += 1
                    r.on_since = now
                    cur += 1
                    self._scale_events.append((now, role, "boot", idx))
                    self._push(now + self.autoscaler.cold_start_s(),
                               "elastic_boot", (role, idx, r.lifecycle))
        elif want < cur:
            for idx in range(len(replicas) - 1, -1, -1):
                if cur <= want:
                    break
                r = replicas[idx]
                if r.state == "starting":
                    r.gpu_s += self._replica_gpus(role, idx) \
                        * (now - r.on_since)
                    r.state = "off"
                    r.lifecycle += 1   # cancel the in-flight boot event
                    cur -= 1
                    self._scale_events.append((now, role, "cancel", idx))
            for idx in range(len(replicas) - 1, -1, -1):
                if cur <= want:
                    break
                r = replicas[idx]
                if r.state == "on":
                    r.state = "draining"
                    cur -= 1
                    self._scale_events.append((now, role, "drain", idx))
                    self._maybe_retire(now, role, idx)
        self._record_replicas(now)
        if undrained:
            # A resurrected replica can serve again: drain whatever
            # parked while the fleet had no serving capacity.
            if role == "prefill":
                pending = self._pending_dispatch
                self._pending_dispatch = deque()
                for req in pending:
                    self._dispatch_to_prefill(now, req)
            else:
                self._admit_pending(now)

    def _on_elastic_boot(self, now: float, payload) -> None:
        role, idx, lifecycle = payload
        replicas = self._prefill if role == "prefill" else self._decode
        r = replicas[idx]
        if r.state != "starting" or r.lifecycle != lifecycle:
            return              # the boot was canceled by a scale-down
        r.state = "on"
        self._scale_events.append((now, role, "up", idx))
        self._record_replicas(now)
        if role == "prefill":
            pending = self._pending_dispatch
            self._pending_dispatch = deque()
            for req in pending:
                self._dispatch_to_prefill(now, req)
        else:
            self._admit_pending(now)

    def _replica_gpus(self, role: str, idx: int) -> int:
        if role == "prefill":
            return self._prefill[idx].res.parallelism.n_gpus
        return self.dec_res.parallelism.n_gpus

    def _maybe_retire(self, now: float, role: str, idx: int) -> None:
        """Power off a draining replica once it is idle and healthy.

        A crashed replica stays powered while down (a crash is not a
        power-off); the repair handlers re-check retirement.
        """
        if role == "prefill":
            r = self._prefill[idx]
            if not (r.state == "draining" and r.up
                    and r.current is None and not r.queue):
                return
        else:
            r = self._decode[idx]
            # Inbound transfers hold ``used_bytes``; wait them out.
            if not (r.state == "draining" and r.up
                    and not r.active and r.used_bytes <= 1e-9):
                return
        r.gpu_s += self._replica_gpus(role, idx) * (now - r.on_since)
        r.state = "off"
        self._scale_events.append((now, role, "down", idx))
        self._record_replicas(now)

    def _elastic_stats(self) -> dict:
        """The elastic summary block plus the live events/timeseries."""
        end = self._last_terminal_t
        gpu_hours = {"prefill": 0.0, "decode": 0.0}
        for role, replicas in (("prefill", self._prefill),
                               ("decode", self._decode)):
            for idx, r in enumerate(replicas):
                accrued = r.gpu_s
                if r.state != "off":
                    accrued += self._replica_gpus(role, idx) \
                        * max(0.0, end - r.on_since)
                gpu_hours[role] += accrued / 3600.0
        ts = self._replica_timeseries
        if not ts or end > ts[-1][0]:
            self._record_replicas(end)
            ts = self._replica_timeseries
        mean_p = mean_d = 0.0
        peak_p = peak_d = 0
        if end > 0:
            # Time-weighted means over [0, end]; a retirement landing
            # past the last terminal instant (a post-work repair) is
            # clamped out of the window.
            for (t0, p, d), (t1, _, _) in zip(ts, ts[1:]):
                dt = min(t1, end) - min(t0, end)
                mean_p += p * dt
                mean_d += d * dt
            mean_p /= end
            mean_d /= end
        elif ts:
            mean_p, mean_d = ts[0][1], ts[0][2]
        for _, p, d in ts:
            peak_p = max(peak_p, p)
            peak_d = max(peak_d, d)
        n_p, n_d = len(self._prefill), len(self._decode)
        return {
            "autoscaler": self.config.autoscaler.canonical()
            if self.config.autoscaler is not None else DEFAULT_AUTOSCALER,
            "admission": self.config.admission.canonical()
            if self.config.admission is not None else "accept_all",
            "n_scale_ups": sum(1 for ev in self._scale_events
                               if ev[2] in ("boot", "undrain")),
            "n_scale_downs": sum(1 for ev in self._scale_events
                                 if ev[2] in ("drain", "cancel")),
            "scaling_events": len(self._scale_events),
            "mean_prefill_replicas": mean_p,
            "peak_prefill_replicas": peak_p,
            "mean_decode_replicas": mean_d,
            "peak_decode_replicas": peak_d,
            "mean_utilization": (mean_p + mean_d) / (n_p + n_d),
            "gpu_hours": gpu_hours["prefill"] + gpu_hours["decode"],
            "prefill_gpu_hours": gpu_hours["prefill"],
            "decode_gpu_hours": gpu_hours["decode"],
            "n_shed": self._n_shed,
            "n_degraded": self._n_degraded,
            "events": [list(ev) for ev in self._scale_events],
            "timeseries": [list(pt) for pt in ts],
        }

    # -- helpers ----------------------------------------------------------------

    def _request_bytes(self, req: SimRequest) -> float:
        """Decode-memory reservation: KV for the request's full context
        (at the request's own selected method when one was chosen)."""
        method = req.method or self.method
        return req.trace.total_len * self.spec.kv_bytes_per_token(
            method.kv_mem_bytes_per_value
        )

    def _push(self, time: float, kind: str, payload) -> None:
        heapq.heappush(self._events, (time, next(self._seq), kind, payload))


def simulate(config: ClusterConfig, trace: list[TraceRequest]) -> SimulationResult:
    """Convenience: build a :class:`Simulator` and run it."""
    return Simulator(config, trace).run()
