"""Capacity estimation: "RPS set to the maximum processing capacity" (§7.1).

The experiments load the cluster at (a fraction of) the *baseline*
system's sustainable rate, so that the baseline saturates while better
methods retain headroom — the regime in which the paper's JCT gaps
appear.  Capacity is the minimum of the prefill-stage and decode-stage
service rates for the given workload.
"""

from __future__ import annotations

from ..cluster.parallelism import replica_resources
from ..methods.registry import get_method
from ..model.config import ModelSpec
from ..perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from ..perfmodel.decode import iteration_latency
from ..perfmodel.prefill import prefill_time
from ..perfmodel.transfer import transfer_time
from ..workload.datasets import DatasetSpec, get_dataset
from .engine import ClusterConfig, default_cluster

__all__ = ["stage_capacities", "capacity_rps", "experiment_rps",
           "clipped_mean_lengths"]


def clipped_mean_lengths(dataset: DatasetSpec, max_context: int,
                         ) -> tuple[int, int]:
    """Mean (input, output) lengths under the model's context window.

    Mirrors the clipping :func:`repro.workload.generate_trace` applies
    per request: outputs are truncated to ``max_context - 1`` first,
    then inputs so ``input + output <= max_context``.  Capacity used to
    cap inputs at ``max_context - 1`` alone, sizing the cluster for
    requests longer than the trace actually replays on context-limited
    models (Falcon's 2K window on arXiv) and skewing
    :func:`experiment_rps`.
    """
    mean_out = int(round(min(dataset.output_len.mean, max_context - 1)))
    mean_in = int(round(min(dataset.input_len.mean, max_context - mean_out)))
    return max(1, mean_in), max(1, mean_out)


def stage_capacities(config: ClusterConfig, dataset: DatasetSpec,
                     ) -> tuple[float, float, float]:
    """(prefill_rps, nic_rps, decode_rps) sustainable by the cluster.

    Prefill: one request at a time per replica at the mean prompt
    length.  NIC: each prefill replica's NIC serializes its outgoing KV
    transfers.  Decode: each replica runs a memory-capped batch; its
    rate is ``batch / (output_len · iteration_latency)``.  Prefill and
    NIC rates sum over the (possibly heterogeneous) prefill fleets.
    """
    spec = config.model
    calib = config.calib
    mean_in, mean_out = clipped_mean_lengths(dataset, spec.max_context)

    dec = config.decode_replica()
    # Batched prefill: short prompts share a forward pass up to the
    # token budget; the pass pays the joint linear time plus each
    # request's own quadratic attention.
    per_batch = max(1, config.prefill_token_budget // mean_in)
    prefill_rps = 0.0
    nic_rps = 0.0
    for gpu, count in config.fleet_list():
        pre = replica_resources(spec, gpu)
        own = prefill_time(spec, pre, mean_in, config.method, calib)
        joint = prefill_time(spec, pre, per_batch * mean_in, config.method,
                             calib)
        batch_s = (joint.linear_s + joint.quantize_s
                   + per_batch * own.attention_s)
        prefill_rps += count * per_batch / batch_s
        # NIC occupancy is the *full* transfer time even under
        # pipelining — overlap hides latency from the request, not load
        # from the NIC — so the capacity bound deliberately never
        # passes ``pipelined=True`` (it forwards the engine's stage
        # count only for signature parity).
        comm_s = transfer_time(spec, config.method, mean_in, pre, dec, calib,
                               n_stages=config.pipeline_stages)
        nic_rps += count / comm_s
    params = spec.param_bytes()
    capacity = (dec.mem_gb * 1e9 * (1 - config.mem_reserve_fraction)
                - params * (1 + config.activation_overhead))
    per_request = (mean_in + mean_out) * spec.kv_bytes_per_token(
        config.method.kv_mem_bytes_per_value
    )
    batch = max(1, int(capacity / per_request))
    timing = iteration_latency(spec, dec, config.method,
                               [mean_in + mean_out // 2] * batch, calib)
    decode_time = mean_out * timing.latency_s
    decode_rps = config.n_decode_replicas * batch / decode_time
    return prefill_rps, nic_rps, decode_rps


def capacity_rps(config: ClusterConfig, dataset: DatasetSpec) -> float:
    """Bottleneck-stage capacity of ``config`` on ``dataset``."""
    return min(stage_capacities(config, dataset))


def experiment_rps(model: ModelSpec, prefill_gpu: str, dataset: str | DatasetSpec,
                   calib: Calibration = DEFAULT_CALIBRATION,
                   load_factor: float = 1.0) -> float:
    """The trace rate used by the JCT experiments.

    ``load_factor`` scales the *baseline* system's capacity; 1.0 loads
    the cluster exactly at the baseline's sustainable rate — the
    paper's "maximum processing capacity" convention — so the baseline
    queues while compressed methods keep headroom.
    """
    spec = dataset if isinstance(dataset, DatasetSpec) else get_dataset(dataset)
    config = default_cluster(model, get_method("baseline"), prefill_gpu, calib)
    return capacity_rps(config, spec) * load_factor
