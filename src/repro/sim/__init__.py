"""Discrete-event serving simulator for disaggregated LLM inference."""

from .capacity import capacity_rps, experiment_rps, stage_capacities
from .engine import (
    ClusterConfig,
    SimulationResult,
    Simulator,
    default_cluster,
    simulate,
)
from .request import BUCKETS, SimRequest

__all__ = [
    "ClusterConfig",
    "SimulationResult",
    "Simulator",
    "default_cluster",
    "simulate",
    "SimRequest",
    "BUCKETS",
    "capacity_rps",
    "experiment_rps",
    "stage_capacities",
]
