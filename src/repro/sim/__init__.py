"""Discrete-event serving simulator for disaggregated LLM inference."""

from .capacity import capacity_rps, experiment_rps, stage_capacities
from .engine import (
    ClusterConfig,
    SimulationResult,
    Simulator,
    default_cluster,
    simulate,
)
from .request import BUCKETS, SimRequest
from .scheduling import (
    DecodePlacementPolicy,
    PolicySpec,
    PrefillDispatchPolicy,
    SchedulerSpec,
    canonical_scheduler,
    dispatch_policies,
    parse_scheduler,
    placement_policies,
    register_policy,
    scheduler_spec,
    split_scheduler_list,
)

__all__ = [
    "ClusterConfig",
    "SimulationResult",
    "Simulator",
    "default_cluster",
    "simulate",
    "SimRequest",
    "BUCKETS",
    "capacity_rps",
    "experiment_rps",
    "stage_capacities",
    "PrefillDispatchPolicy",
    "DecodePlacementPolicy",
    "PolicySpec",
    "SchedulerSpec",
    "register_policy",
    "dispatch_policies",
    "placement_policies",
    "parse_scheduler",
    "scheduler_spec",
    "canonical_scheduler",
    "split_scheduler_list",
]
