"""Fault injection for the serving simulator.

Every modeled component — prefill replicas, decode replicas, the NIC
transfer path, the tiered KV store — is perfectly reliable unless this
module says otherwise.  Fault *families* are an open registry mirroring
:mod:`repro.sim.scheduling` / :mod:`repro.kvstore.selection`, specced
with the same ``family?k=v`` grammar and composed with ``+``::

    replica_crash?mttf=600,mttr=30,role=decode
    nic_degrade?factor=0.25,start=60,duration=120
    transfer_flap?p_fail=0.02
    kvstore_outage?tier=dram,start=120,duration=120
    replica_crash?role=prefill+transfer_flap?p_fail=0.01

A :class:`FaultPlan` (the ``+``-composition; repeats of one family are
allowed, unlike scheduler pairs) deterministically **pre-materializes**
into a fault-event timeline before the first simulation event runs: all
stochastic draws come from one seeded ``numpy`` Generator whose seed
derives from the plan's canonical string, so a forked sweep worker
re-derives the exact event times a serial run sees — parallel results
stay bit-identical to serial.  Runtime draws (per-transfer flaps, retry
jitter) consume *subsequent* values from the same generator in
deterministic event order.

Timeline events are ``(time_s, kind, payload)`` tuples the engine
threads through its heap:

* ``("replica_down", (role, index))`` / ``("replica_up", (role, index))``
  — a crash/repair on a ``"prefill"`` or ``"decode"`` replica;
* ``("nic_on", factor)`` / ``("nic_off", factor)`` — a bandwidth
  brownout window opens/closes (overlapping windows multiply);
* ``("kv_dark", (tier, dark))`` — a KV-store tier goes dark / recovers
  (reads of entries it owns miss and fall through; writes land in the
  top surviving tier).
"""

from __future__ import annotations

import difflib
import hashlib
import re
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FaultParam",
    "FaultFamily",
    "FaultSpec",
    "FaultPlan",
    "register_fault",
    "get_fault_family",
    "fault_families",
    "has_fault_families",
    "faults_spec",
    "parse_faults",
    "canonical_faults",
    "split_faults_list",
]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Replica roles a crash family may target.
_ROLES = ("prefill", "decode")


@dataclass(frozen=True)
class FaultParam:
    """One fault parameter: the default fixes the type (float, or a
    word-safe string — e.g. a replica role or tier name)."""

    default: object
    doc: str = ""


class FaultFamily:
    """One kind of injected fault.

    Subclasses set :attr:`name`, :attr:`description`, :attr:`params`
    and are registered with :func:`register_fault`.  Instances receive
    their resolved parameters as the ``p`` mapping and contribute to
    the run through two hooks:

    * :meth:`events` — the pre-materialized timeline contribution
      (crash/repair instants, brownout windows, outage windows).  All
      randomness must come from the passed generator, drawn in a fixed
      order, so the timeline is a pure function of (plan, trace shape).
    * :attr:`transfer_fail_prob` — a per-transfer failure probability
      the engine evaluates at runtime (``transfer_flap``'s hook;
      families without one return 0).
    """

    #: Registry key; also the prefix of the string grammar.
    name: str = "abstract"
    #: One-line summary shown by ``cli list``.
    description: str = ""
    #: Parameter table: name -> :class:`FaultParam`.
    params: dict[str, FaultParam] = {}

    def __init__(self, **params) -> None:
        self.p = params

    def events(self, rng: np.random.Generator, horizon_s: float,
               n_prefill: int, n_decode: int) -> list:
        """Timeline contribution: ``(time_s, kind, payload)`` tuples.

        ``horizon_s`` bounds crash sampling (no *new* fault starts
        after it; repairs may land beyond it so nothing stays down
        forever).  Replica counts let per-replica families clamp their
        targets to the fleet.
        """
        return []

    def transfer_fail_prob(self) -> float:
        """Per-transfer failure probability this family contributes."""
        return 0.0

    @classmethod
    def validate(cls, **params) -> None:
        """Raise ``ValueError`` for out-of-range parameter values."""

    @classmethod
    def signature(cls) -> str:
        """Grammar template with defaults."""
        if not cls.params:
            return cls.name
        parts = [f"{name}={pd.default}" for name, pd in cls.params.items()]
        return f"{cls.name}?{','.join(parts)}"


_FAULTS: dict[str, type] = {}


def register_fault(cls=None, *, replace: bool = False):
    """Class decorator registering a fault family."""

    def decorator(obj):
        if not (isinstance(obj, type) and issubclass(obj, FaultFamily)):
            raise TypeError(
                f"{getattr(obj, '__name__', obj)!r} must subclass "
                "FaultFamily"
            )
        if not _NAME_RE.match(obj.name or ""):
            raise ValueError(
                f"fault family name {obj.name!r} must match "
                f"{_NAME_RE.pattern}"
            )
        if obj.name in _FAULTS and not replace:
            raise ValueError(
                f"fault family {obj.name!r} is already registered; pass "
                "register_fault(replace=True) to override"
            )
        for pname, pd in obj.params.items():
            ok_float = isinstance(pd.default, (int, float)) \
                and not isinstance(pd.default, bool)
            ok_str = isinstance(pd.default, str) and pd.default
            if not (ok_float or ok_str):
                raise ValueError(
                    f"parameter {pname!r} default must be a number or a "
                    f"non-empty string, got {pd.default!r}"
                )
        _FAULTS[obj.name] = obj
        return obj

    if cls is not None:
        return decorator(cls)
    return decorator


def get_fault_family(name: str) -> type:
    """Look up a fault family, with typo suggestions."""
    try:
        return _FAULTS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault family {name!r}{_suggest(name, _FAULTS)}"
        ) from None


def fault_families() -> dict[str, type]:
    """All registered families (a copy, registration order)."""
    return dict(_FAULTS)


def has_fault_families(reference: str) -> bool:
    """True when every ``+``-part of a string fault reference names a
    family registered in this process (parameters may still be
    invalid)."""
    parts = [p.strip() for p in reference.strip().split("+")]
    return bool(parts) and all(
        part.partition("?")[0].strip() in _FAULTS for part in parts
    )


def _suggest(name: str, candidates) -> str:
    matches = difflib.get_close_matches(name, list(candidates), n=3)
    if matches:
        return "; did you mean " + " or ".join(repr(m) for m in matches) + "?"
    return f"; choose from {', '.join(sorted(candidates))}"


def _coerce(kind: str, name: str, pd: FaultParam, value):
    where = f"parameter {name!r} of fault family {kind!r}"
    if isinstance(pd.default, str):
        if not isinstance(value, str):
            raise ValueError(f"{where} expects a string, got {value!r}")
        if not value or any(c in value for c in ",=?+ "):
            raise ValueError(
                f"{where} string values must be non-empty and free of "
                f"',', '=', '?', '+' and spaces; got {value!r}"
            )
        return value
    if isinstance(value, bool):
        raise ValueError(f"{where} expects a number, got {value!r}")
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"{where} expects a number, got {value!r}"
        ) from None


# -- the specs ----------------------------------------------------------------

@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault reference: family + parameters.

    ``params`` holds only the parameters given explicitly, coerced to
    the family's declared types and sorted; an explicitly-given default
    is kept (``transfer_flap?p_fail=0.05`` stays distinct from
    ``transfer_flap``)."""

    kind: str
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        family = get_fault_family(self.kind)
        items = self.params.items() if isinstance(self.params, dict) \
            else self.params
        normalized: dict[str, object] = {}
        for key, value in items:
            if key not in family.params:
                raise ValueError(
                    f"fault family {self.kind!r} has no parameter "
                    f"{key!r}{_suggest(key, family.params)}"
                )
            if key in normalized:
                raise ValueError(
                    f"parameter {key!r} given twice for fault family "
                    f"{self.kind!r}"
                )
            normalized[key] = _coerce(self.kind, key, family.params[key],
                                      value)
        object.__setattr__(self, "params", tuple(sorted(normalized.items())))
        family.validate(**self.resolved_params())

    @classmethod
    def of(cls, kind: str, **params) -> "FaultSpec":
        return cls(kind, tuple(params.items()))

    def resolved_params(self) -> dict:
        """Family defaults overlaid with this spec's parameters."""
        family = get_fault_family(self.kind)
        out = {name: pd.default for name, pd in family.params.items()}
        out.update(self.params)
        return out

    def build(self) -> FaultFamily:
        """A fresh family instance."""
        return get_fault_family(self.kind)(**self.resolved_params())

    def canonical(self) -> str:
        """Compact string form, e.g. ``transfer_flap?p_fail=0.05``."""
        if not self.params:
            return self.kind
        parts = []
        for k, v in self.params:
            parts.append(f"{k}={v!r}" if isinstance(v, float)
                         else f"{k}={v}")
        return f"{self.kind}?{','.join(parts)}"

    def __str__(self) -> str:
        return self.canonical()


@dataclass(frozen=True)
class FaultPlan:
    """A ``+``-composition of fault specs (order-preserving; one family
    may appear several times, e.g. two brownout windows)."""

    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.faults:
            raise ValueError("a fault plan needs at least one fault")
        if not all(isinstance(f, FaultSpec) for f in self.faults):
            raise TypeError("FaultPlan.faults must hold FaultSpec items")

    @classmethod
    def of(cls, *specs) -> "FaultPlan":
        return cls(tuple(faults_spec(s).faults[0] if isinstance(s, str)
                         else s for s in specs))

    def canonical(self) -> str:
        """Compact string form: specs joined by ``+``."""
        return "+".join(spec.canonical() for spec in self.faults)

    def __str__(self) -> str:
        return self.canonical()

    def rng_seed(self) -> int:
        """Deterministic seed derived from the canonical plan string —
        stable across processes, so a forked sweep worker re-derives
        the serial run's exact fault timeline."""
        digest = hashlib.md5(self.canonical().encode()).hexdigest()
        return int(digest[:8], 16)

    def build(self) -> list:
        """Fresh family instances, in plan order."""
        return [spec.build() for spec in self.faults]

    def timeline(self, rng: np.random.Generator, horizon_s: float,
                 n_prefill: int, n_decode: int) -> list:
        """The materialized fault timeline, stably sorted by time.

        Families draw from ``rng`` in plan order, so the timeline is a
        pure function of (plan canonical string, fleet shape, horizon).
        """
        events: list = []
        for family in self.build():
            events.extend(family.events(rng, horizon_s, n_prefill,
                                        n_decode))
        events.sort(key=lambda ev: ev[0])
        return events

    def transfer_fail_prob(self) -> float:
        """Combined per-transfer failure probability: independent flap
        sources compose as ``1 - prod(1 - p_i)``."""
        survive = 1.0
        for family in self.build():
            survive *= 1.0 - family.transfer_fail_prob()
        return 1.0 - survive


# -- string grammar -----------------------------------------------------------

def parse_faults(text: str) -> FaultPlan:
    """Parse ``fault[+fault]`` (each ``family[?key=value,…]``) into a
    :class:`FaultPlan`."""
    parts = [p.strip() for p in text.strip().split("+")]
    if not parts or not all(parts):
        raise ValueError(
            f"bad fault plan {text!r}; the grammar is "
            "family[?k=v,…][+family[?k=v,…]…]"
        )
    specs = []
    for part in parts:
        kind, sep, rest = part.partition("?")
        kind = kind.strip()
        if kind not in _FAULTS:
            raise ValueError(
                f"unknown fault family {kind!r}{_suggest(kind, _FAULTS)}"
            )
        pairs = []
        if sep:
            for item in rest.split(","):
                key, eq, value = item.partition("=")
                key, value = key.strip(), value.strip()
                if not eq or not key or not value:
                    raise ValueError(
                        f"bad fault parameter {item!r} in {text!r}; the "
                        "grammar is family?key=value,key=value"
                    )
                pairs.append((key, value))
        specs.append(FaultSpec(kind, tuple(pairs)))
    return FaultPlan(tuple(specs))


def faults_spec(reference) -> FaultPlan:
    """The :class:`FaultPlan` behind any fault reference: a plan, a
    single spec, or a grammar string."""
    if isinstance(reference, FaultPlan):
        return reference
    if isinstance(reference, FaultSpec):
        return FaultPlan((reference,))
    if isinstance(reference, str):
        return parse_faults(reference)
    raise TypeError(
        f"expected a FaultPlan, FaultSpec or string, got "
        f"{type(reference).__name__}"
    )


def canonical_faults(reference) -> str:
    """The canonical string form of a fault reference."""
    return faults_spec(reference).canonical()


def split_faults_list(text: str) -> list[str]:
    """Split a comma-separated fault-plan list, keeping fault
    parameters attached:
    ``"transfer_flap,replica_crash?mttf=300,mttr=20+nic_degrade"``
    splits after ``transfer_flap`` only (a ``key=value`` token
    following an open ``?`` clause continues that clause)."""
    parts: list[str] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if parts and "=" in token and "?" not in token \
                and "?" in parts[-1].rsplit("+", 1)[-1]:
            parts[-1] += "," + token
        else:
            parts.append(token)
    return parts


# -- built-in families --------------------------------------------------------

@register_fault
class ReplicaCrashFault(FaultFamily):
    name = "replica_crash"
    description = ("seeded exponential crash/repair cycles on prefill "
                   "or decode replicas (MTTF/MTTR in seconds)")
    params = {
        "mttf": FaultParam(600.0, "mean time to failure, seconds"),
        "mttr": FaultParam(30.0, "mean time to repair, seconds"),
        "role": FaultParam("decode", "replica role: prefill or decode"),
        "replicas": FaultParam(
            1.0, "how many replicas of the role crash (clamped to the "
                 "fleet, always leaving one replica unaffected when the "
                 "fleet has more than one)"),
    }

    @classmethod
    def validate(cls, *, mttf, mttr, role, replicas):
        if mttf <= 0:
            raise ValueError(f"replica_crash mttf must be > 0, got {mttf}")
        if mttr <= 0:
            raise ValueError(f"replica_crash mttr must be > 0, got {mttr}")
        if role not in _ROLES:
            raise ValueError(
                f"replica_crash role must be one of {_ROLES}, got {role!r}"
            )
        if replicas != int(replicas) or replicas < 1:
            raise ValueError(
                f"replica_crash replicas must be a positive integer, got "
                f"{replicas}"
            )

    def events(self, rng, horizon_s, n_prefill, n_decode):
        fleet = n_prefill if self.p["role"] == "prefill" else n_decode
        # Leave at least one replica unaffected on multi-replica fleets
        # so the cluster can always make progress between repairs.
        limit = fleet if fleet <= 1 else fleet - 1
        targets = min(int(self.p["replicas"]), limit)
        out = []
        for idx in range(targets):
            t = 0.0
            while True:
                t += float(rng.exponential(self.p["mttf"]))
                if t >= horizon_s:
                    break
                out.append((t, "replica_down", (self.p["role"], idx)))
                t += float(rng.exponential(self.p["mttr"]))
                # The repair always lands (possibly past the horizon):
                # nothing stays down forever.
                out.append((t, "replica_up", (self.p["role"], idx)))
        return out


@register_fault
class NicDegradeFault(FaultFamily):
    name = "nic_degrade"
    description = ("NIC bandwidth brownout: transfers starting inside "
                   "the window run at factor x bandwidth")
    params = {
        "factor": FaultParam(0.25, "bandwidth multiplier in (0, 1]"),
        "start": FaultParam(60.0, "window start, seconds"),
        "duration": FaultParam(60.0, "window length, seconds"),
    }

    @classmethod
    def validate(cls, *, factor, start, duration):
        if not 0 < factor <= 1:
            raise ValueError(
                f"nic_degrade factor must be in (0, 1], got {factor}"
            )
        if start < 0:
            raise ValueError(
                f"nic_degrade start must be >= 0, got {start}"
            )
        if duration <= 0:
            raise ValueError(
                f"nic_degrade duration must be > 0, got {duration}"
            )

    def events(self, rng, horizon_s, n_prefill, n_decode):
        start = self.p["start"]
        return [(start, "nic_on", self.p["factor"]),
                (start + self.p["duration"], "nic_off", self.p["factor"])]


@register_fault
class TransferFlapFault(FaultFamily):
    name = "transfer_flap"
    description = ("each KV transfer independently fails with "
                   "probability p_fail (drawn at transfer start)")
    params = {
        "p_fail": FaultParam(0.05, "per-transfer failure probability"),
    }

    @classmethod
    def validate(cls, *, p_fail):
        if not 0 <= p_fail <= 1:
            raise ValueError(
                f"transfer_flap p_fail must be in [0, 1], got {p_fail}"
            )

    def transfer_fail_prob(self):
        return self.p["p_fail"]


@register_fault
class KVStoreOutageFault(FaultFamily):
    name = "kvstore_outage"
    description = ("a KV-store tier goes dark for a window: its entries "
                   "miss (reads fall through), writes land in the top "
                   "surviving tier")
    params = {
        "tier": FaultParam("dram", "tier name (hbm, dram or pool)"),
        "start": FaultParam(120.0, "outage start, seconds"),
        "duration": FaultParam(120.0, "outage length, seconds"),
    }

    @classmethod
    def validate(cls, *, tier, start, duration):
        if start < 0:
            raise ValueError(
                f"kvstore_outage start must be >= 0, got {start}"
            )
        if duration <= 0:
            raise ValueError(
                f"kvstore_outage duration must be > 0, got {duration}"
            )

    def events(self, rng, horizon_s, n_prefill, n_decode):
        start = self.p["start"]
        tier = self.p["tier"]
        return [(start, "kv_dark", (tier, True)),
                (start + self.p["duration"], "kv_dark", (tier, False))]
