"""Recovery policies: what happens to a request a fault interrupted.

When a fault (see :mod:`repro.sim.faults`) kills a request's replica,
flaps its KV transfer or otherwise invalidates in-flight work, the
engine asks the run's :class:`RecoveryPolicy` what to do with the
request.  Policies are an open registry with the usual ``family?k=v``
grammar::

    retry?max=3,base_s=1.0,cap_s=30.0   # exponential backoff + jitter
    migrate?max=5                       # immediate re-dispatch
    none                                # fail the request outright

A policy's :meth:`delay` returns the seconds to wait before the
request re-enters the serving path (``0.0`` = immediately, through the
run's normal scheduling policies — that *is* migration, since the
crashed replica is excluded while down), or ``None`` to give up: the
request sheds as terminal state ``failed`` (admission rejection under
exhausted backoff budgets).  All jitter draws come from the engine's
fault generator, in deterministic event order, so parallel sweeps stay
bit-identical to serial.

Graceful degradation under capacity loss rides on the PR-6
compression-selection layer rather than on these policies: the
``congestion`` selection family folds the simulator's
``fault_capacity_signal()`` (fraction of decode replicas down) into
its congestion signal, so a crash trips selection to the cheaper
strong method exactly like store/NIC pressure does.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass

import numpy as np

__all__ = [
    "RecoveryParam",
    "RecoveryPolicy",
    "RecoverySpec",
    "register_recovery",
    "get_recovery_policy",
    "recovery_policies",
    "has_recovery_policy",
    "recovery_spec",
    "parse_recovery",
    "canonical_recovery",
    "split_recovery_list",
    "DEFAULT_RECOVERY",
]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: The policy a faulted run gets when none is configured explicitly.
DEFAULT_RECOVERY = "retry"


@dataclass(frozen=True)
class RecoveryParam:
    """One policy parameter: a float default plus a one-line doc."""

    default: float
    doc: str = ""


class RecoveryPolicy:
    """Decides the fate of one fault-interrupted request attempt.

    Subclasses set :attr:`name`, :attr:`description`, :attr:`params`
    and implement :meth:`delay`; they may hold per-run state and
    override :meth:`bind` to precompute from the simulator.
    """

    #: Registry key; also the prefix of the string grammar.
    name: str = "abstract"
    #: One-line summary shown by ``cli list``.
    description: str = ""
    #: Parameter table: name -> :class:`RecoveryParam` (floats only).
    params: dict[str, RecoveryParam] = {}

    def __init__(self, **params: float) -> None:
        self.p = params

    def bind(self, sim) -> None:
        """Called once before the simulation starts."""

    def delay(self, req, attempt: int,
              rng: np.random.Generator) -> float | None:
        """Seconds before attempt ``attempt`` (1 = first recovery)
        re-enters the serving path, or ``None`` to fail the request."""
        raise NotImplementedError

    @classmethod
    def validate(cls, **params: float) -> None:
        """Raise ``ValueError`` for out-of-range parameter values."""

    @classmethod
    def signature(cls) -> str:
        """Grammar template with defaults."""
        if not cls.params:
            return cls.name
        parts = [f"{name}={pd.default!r}" for name, pd in cls.params.items()]
        return f"{cls.name}?{','.join(parts)}"


_RECOVERIES: dict[str, type] = {}


def register_recovery(cls=None, *, replace: bool = False):
    """Class decorator registering a recovery-policy family."""

    def decorator(obj):
        if not (isinstance(obj, type) and issubclass(obj, RecoveryPolicy)):
            raise TypeError(
                f"{getattr(obj, '__name__', obj)!r} must subclass "
                "RecoveryPolicy"
            )
        if not _NAME_RE.match(obj.name or ""):
            raise ValueError(
                f"recovery policy name {obj.name!r} must match "
                f"{_NAME_RE.pattern}"
            )
        if obj.name in _RECOVERIES and not replace:
            raise ValueError(
                f"recovery policy {obj.name!r} is already registered; "
                "pass register_recovery(replace=True) to override"
            )
        for pname, pd in obj.params.items():
            if not isinstance(pd.default, (int, float)) \
                    or isinstance(pd.default, bool):
                raise ValueError(
                    f"parameter {pname!r} default must be a number, got "
                    f"{type(pd.default).__name__}"
                )
        _RECOVERIES[obj.name] = obj
        return obj

    if cls is not None:
        return decorator(cls)
    return decorator


def get_recovery_policy(name: str) -> type:
    """Look up a recovery family, with typo suggestions."""
    try:
        return _RECOVERIES[name]
    except KeyError:
        raise ValueError(
            f"unknown recovery policy {name!r}"
            f"{_suggest(name, _RECOVERIES)}"
        ) from None


def recovery_policies() -> dict[str, type]:
    """All registered families (a copy, registration order)."""
    return dict(_RECOVERIES)


def has_recovery_policy(reference: str) -> bool:
    """True when a string recovery reference names a family registered
    in this process (parameters may still be invalid)."""
    return reference.strip().partition("?")[0].strip() in _RECOVERIES


def _suggest(name: str, candidates) -> str:
    matches = difflib.get_close_matches(name, list(candidates), n=3)
    if matches:
        return "; did you mean " + " or ".join(repr(m) for m in matches) + "?"
    return f"; choose from {', '.join(sorted(candidates))}"


# -- the spec -----------------------------------------------------------------

@dataclass(frozen=True)
class RecoverySpec:
    """A declarative recovery-policy reference: family + parameters.

    ``params`` holds only the parameters given explicitly, coerced to
    float and sorted; an explicitly-given default is kept
    (``retry?max=3.0`` stays distinct from ``retry``)."""

    kind: str
    params: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        family = get_recovery_policy(self.kind)
        items = self.params.items() if isinstance(self.params, dict) \
            else self.params
        normalized: dict[str, float] = {}
        for key, value in items:
            if key not in family.params:
                raise ValueError(
                    f"recovery policy {self.kind!r} has no parameter "
                    f"{key!r}{_suggest(key, family.params)}"
                )
            if key in normalized:
                raise ValueError(
                    f"parameter {key!r} given twice for recovery policy "
                    f"{self.kind!r}"
                )
            try:
                normalized[key] = float(value)
            except (TypeError, ValueError):
                raise ValueError(
                    f"parameter {key!r} of recovery policy {self.kind!r} "
                    f"expects a number, got {value!r}"
                ) from None
        object.__setattr__(self, "params", tuple(sorted(normalized.items())))
        family.validate(**self.resolved_params())

    @classmethod
    def of(cls, kind: str, **params) -> "RecoverySpec":
        return cls(kind, tuple(params.items()))

    def resolved_params(self) -> dict[str, float]:
        """Family defaults overlaid with this spec's parameters."""
        family = get_recovery_policy(self.kind)
        out = {name: float(pd.default)
               for name, pd in family.params.items()}
        out.update(self.params)
        return out

    def build(self) -> RecoveryPolicy:
        """A fresh policy instance (policies may hold per-run state)."""
        return get_recovery_policy(self.kind)(**self.resolved_params())

    def canonical(self) -> str:
        """Compact string form, e.g. ``retry?base_s=2.0,max=5.0``."""
        if not self.params:
            return self.kind
        parts = [f"{k}={v!r}" for k, v in self.params]
        return f"{self.kind}?{','.join(parts)}"

    def __str__(self) -> str:
        return self.canonical()


# -- string grammar -----------------------------------------------------------

def parse_recovery(text: str) -> RecoverySpec:
    """Parse ``family[?key=value,…]`` into a :class:`RecoverySpec`."""
    text = text.strip()
    kind, sep, rest = text.partition("?")
    kind = kind.strip()
    if kind not in _RECOVERIES:
        raise ValueError(
            f"unknown recovery policy {kind!r}"
            f"{_suggest(kind, _RECOVERIES)}"
        )
    if not sep:
        return RecoverySpec(kind)
    pairs = []
    for item in rest.split(","):
        key, eq, value = item.partition("=")
        key, value = key.strip(), value.strip()
        if not eq or not key or not value:
            raise ValueError(
                f"bad recovery parameter {item!r} in {text!r}; the "
                "grammar is family?key=value,key=value"
            )
        pairs.append((key, value))
    return RecoverySpec(kind, tuple(pairs))


def recovery_spec(reference) -> RecoverySpec:
    """The :class:`RecoverySpec` behind any recovery reference: a spec
    or a grammar string."""
    if isinstance(reference, RecoverySpec):
        return reference
    if isinstance(reference, str):
        return parse_recovery(reference)
    raise TypeError(
        f"expected a RecoverySpec or string, got "
        f"{type(reference).__name__}"
    )


def canonical_recovery(reference) -> str:
    """The canonical string form of a recovery reference."""
    return recovery_spec(reference).canonical()


def split_recovery_list(text: str) -> list[str]:
    """Split a comma-separated recovery list, keeping spec parameters
    attached: ``"none,retry?max=5,base_s=0.5"`` →
    ``["none", "retry?max=5,base_s=0.5"]``."""
    parts: list[str] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if parts and "=" in token and "?" not in token and "?" in parts[-1]:
            parts[-1] += "," + token
        else:
            parts.append(token)
    return parts


# -- built-in families --------------------------------------------------------

@register_recovery
class NoRecovery(RecoveryPolicy):
    name = "none"
    description = "fail the request on its first fault (no retries)"

    def delay(self, req, attempt, rng):
        return None


@register_recovery
class RetryRecovery(RecoveryPolicy):
    name = "retry"
    description = ("exponential backoff with seeded jitter; the request "
                   "fails once max attempts are exhausted")
    params = {
        "max": RecoveryParam(3.0, "retry budget (attempts before failing)"),
        "base_s": RecoveryParam(1.0, "first-retry backoff, seconds"),
        "cap_s": RecoveryParam(30.0, "backoff ceiling, seconds"),
    }

    @classmethod
    def validate(cls, *, max, base_s, cap_s):
        if max != int(max) or max < 1:
            raise ValueError(
                f"retry max must be a positive integer, got {max}"
            )
        if base_s <= 0:
            raise ValueError(f"retry base_s must be > 0, got {base_s}")
        if cap_s < base_s:
            raise ValueError(
                f"retry cap_s must be >= base_s, got cap_s={cap_s} "
                f"base_s={base_s}"
            )

    def delay(self, req, attempt, rng):
        if attempt > int(self.p["max"]):
            return None
        backoff = min(self.p["cap_s"],
                      self.p["base_s"] * 2.0 ** (attempt - 1))
        # Decorrelating jitter in [0.5, 1.5) x backoff, from the run's
        # fault generator (deterministic in event order).
        return backoff * (0.5 + float(rng.random()))


@register_recovery
class MigrateRecovery(RecoveryPolicy):
    name = "migrate"
    description = ("immediate re-dispatch through the run's scheduling "
                   "policies (the crashed replica is excluded while "
                   "down); fails after max attempts")
    params = {
        "max": RecoveryParam(5.0, "migration budget (attempts before "
                                  "failing)"),
    }

    @classmethod
    def validate(cls, *, max):
        if max != int(max) or max < 1:
            raise ValueError(
                f"migrate max must be a positive integer, got {max}"
            )

    def delay(self, req, attempt, rng):
        if attempt > int(self.p["max"]):
            return None
        return 0.0
