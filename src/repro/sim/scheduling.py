"""Pluggable scheduling & placement policies for the serving simulator.

The paper's §7.1 serving policy hard-wires two decisions: which prefill
replica a request queues on (SplitWise's shortest-token-queue) and which
decode replica receives its KV (shortest queue with room, spilling to a
DéjàVu CPU swap when none has).  Whether compression pays off at all
hinges on how load is spread once the baseline saturates — FlowKV
(arXiv:2504.03775) and KVServe-style service-aware placement change the
disaggregated-serving picture materially — so this module makes both
decisions first-class, open registries mirroring
:mod:`repro.methods.spec` and :mod:`repro.workload.arrivals`:

* :class:`PrefillDispatchPolicy` families pick a prefill replica for an
  arriving request (``splitwise``, ``round_robin``, ``random``,
  ``least_work``, ``nic_aware``);
* :class:`DecodePlacementPolicy` families pick a decode replica with
  room for the request's KV (``shortest_queue``, ``best_fit``,
  ``least_loaded``) or refuse outright (``no_swap``, which rejects
  instead of swapping and surfaces rejected-request counts);
* a frozen, JSON-friendly :class:`SchedulerSpec` pairs one of each,
  with a compact string grammar for CLIs, scenarios and sweep axes::

      splitwise                      # dispatch only, default placement
      best_fit                       # placement only, default dispatch
      round_robin+best_fit           # both
      random?seed=7+no_swap          # parameters attach with ?k=v,…

  Policy names are unique across both registries, so a single name
  resolves unambiguously to its role.

The default pair (``splitwise+shortest_queue``) reproduces the paper's
policy byte-for-byte — the fig9/fig10 golden renders are pinned
identical with and without an explicit scheduler.

Policies are *instantiated per simulation* (they may hold mutable state
— a round-robin cursor, a seeded RNG) and may override :meth:`bind` to
precompute per-replica information from the simulator (e.g.
``least_work``'s per-fleet prefill speeds on heterogeneous fleets).
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass

import numpy as np

__all__ = [
    "PolicyParam",
    "SchedulingPolicy",
    "PrefillDispatchPolicy",
    "DecodePlacementPolicy",
    "PolicySpec",
    "SchedulerSpec",
    "register_policy",
    "get_dispatch_policy",
    "get_placement_policy",
    "dispatch_policies",
    "placement_policies",
    "has_scheduler_policies",
    "scheduler_spec",
    "parse_scheduler",
    "canonical_scheduler",
    "split_scheduler_list",
    "DEFAULT_DISPATCH",
    "DEFAULT_PLACEMENT",
]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: The paper's §7.1 policy pair (the engine default).
DEFAULT_DISPATCH = "splitwise"
DEFAULT_PLACEMENT = "shortest_queue"


@dataclass(frozen=True)
class PolicyParam:
    """One policy parameter: a float default plus a one-line doc."""

    default: float
    doc: str = ""


class SchedulingPolicy:
    """Shared base of both policy roles (see subclasses).

    Subclasses set :attr:`name`, :attr:`description` and :attr:`params`
    and are registered with :func:`register_policy`.  Instances receive
    their resolved parameters as the ``p`` mapping and may override
    :meth:`bind` to precompute per-replica state from the simulator.
    """

    #: Registry key; also the prefix of the string grammar.
    name: str = "abstract"
    #: One-line summary shown by ``cli list``.
    description: str = ""
    #: Parameter table: name -> :class:`PolicyParam` (floats only).
    params: dict[str, PolicyParam] = {}

    def __init__(self, **params: float) -> None:
        self.p = params

    def bind(self, sim) -> None:
        """Called once before the simulation starts; ``sim`` is the
        :class:`~repro.sim.engine.Simulator` (its replica lists are
        built but no event has run)."""

    @classmethod
    def validate(cls, **params: float) -> None:
        """Raise ``ValueError`` for out-of-range parameter values
        (called before any instance is constructed)."""

    @classmethod
    def signature(cls) -> str:
        """Grammar template with defaults, e.g. ``random?seed=0.0``."""
        if not cls.params:
            return cls.name
        parts = [f"{name}={pd.default!r}" for name, pd in cls.params.items()]
        return f"{cls.name}?{','.join(parts)}"


class PrefillDispatchPolicy(SchedulingPolicy):
    """Picks the prefill replica an arriving request queues on.

    ``replicas`` is the simulator's live prefill-replica list; each
    exposes ``queued_tokens`` (tokens queued or in service),
    ``nic_free_at`` (when its NIC finishes its current transfer
    backlog), ``assigned`` (requests dispatched so far), ``gpu`` and
    ``res`` (the replica's :class:`~repro.cluster.parallelism
    .ReplicaResources` — heterogeneous fleets make these differ).
    """

    role = "dispatch"

    def choose(self, now: float, req, replicas) -> int:
        """Index of the chosen replica (must be in range)."""
        raise NotImplementedError


class DecodePlacementPolicy(SchedulingPolicy):
    """Picks the decode replica that receives a finished request's KV.

    ``replicas`` is the simulator's live decode-replica list; each
    exposes ``free_bytes()``, ``capacity_bytes``, ``used_bytes``,
    ``queued_tokens``, ``assigned`` and ``active`` (the running batch).
    Return ``None`` when no replica can take the request: the engine
    then swaps the KV to prefill CPU memory (§5.1 step 6) when
    :attr:`swap_on_full` is true, or *rejects* the request outright
    when false (surfaced as ``SimulationResult.n_rejected``).
    """

    role = "placement"
    #: Whether a full cluster spills to the DéjàVu CPU swap (the §5.1
    #: behaviour) or rejects the request.
    swap_on_full = True

    def choose(self, now: float, req, replicas, reserve: float) -> int | None:
        """Index of a replica with ``free_bytes() >= reserve``, or None."""
        raise NotImplementedError


_DISPATCH: dict[str, type] = {}
_PLACEMENT: dict[str, type] = {}


def register_policy(cls=None, *, replace: bool = False):
    """Class decorator registering a policy family.

    Works on subclasses of :class:`PrefillDispatchPolicy` or
    :class:`DecodePlacementPolicy`; the role is inferred from the base
    class.  Names must be unique *across both registries* so the string
    grammar can resolve a bare name to its role.  Registering an
    existing name raises unless ``replace=True``.
    """

    def decorator(obj):
        if issubclass(obj, PrefillDispatchPolicy):
            registry = _DISPATCH
        elif issubclass(obj, DecodePlacementPolicy):
            registry = _PLACEMENT
        else:
            raise TypeError(
                f"{obj.__name__} must subclass PrefillDispatchPolicy or "
                "DecodePlacementPolicy"
            )
        if not _NAME_RE.match(obj.name or ""):
            raise ValueError(
                f"policy name {obj.name!r} must match {_NAME_RE.pattern}"
            )
        taken = (obj.name in _DISPATCH or obj.name in _PLACEMENT)
        if taken and not replace:
            raise ValueError(
                f"scheduling policy {obj.name!r} is already registered; "
                "pass register_policy(replace=True) to override"
            )
        for pname, pd in obj.params.items():
            if not isinstance(pd.default, (int, float)) \
                    or isinstance(pd.default, bool):
                raise ValueError(
                    f"parameter {pname!r} default must be a number, got "
                    f"{type(pd.default).__name__}"
                )
        registry[obj.name] = obj
        return obj

    if cls is not None:
        return decorator(cls)
    return decorator


def get_dispatch_policy(name: str) -> type:
    """Look up a dispatch family, with typo suggestions."""
    try:
        return _DISPATCH[name]
    except KeyError:
        raise ValueError(
            f"unknown dispatch policy {name!r}"
            f"{_suggest(name, [*_DISPATCH, *_PLACEMENT])}"
        ) from None


def get_placement_policy(name: str) -> type:
    """Look up a placement family, with typo suggestions."""
    try:
        return _PLACEMENT[name]
    except KeyError:
        raise ValueError(
            f"unknown placement policy {name!r}"
            f"{_suggest(name, [*_DISPATCH, *_PLACEMENT])}"
        ) from None


def dispatch_policies() -> dict[str, type]:
    """All registered dispatch families (a copy, registration order)."""
    return dict(_DISPATCH)


def placement_policies() -> dict[str, type]:
    """All registered placement families (a copy, registration order)."""
    return dict(_PLACEMENT)


def has_scheduler_policies(reference: str) -> bool:
    """True when every ``+``-part of a string scheduler reference names
    a policy registered in this process (parameters may still be
    invalid)."""
    parts = [p.strip() for p in reference.strip().split("+")]
    return all(
        part.partition("?")[0].strip() in _DISPATCH
        or part.partition("?")[0].strip() in _PLACEMENT
        for part in parts
    ) and bool(parts)


def _suggest(name: str, candidates) -> str:
    candidates = list(dict.fromkeys(candidates))
    matches = difflib.get_close_matches(name, candidates, n=3)
    if matches:
        return "; did you mean " + " or ".join(repr(m) for m in matches) + "?"
    return f"; choose from {', '.join(sorted(candidates))}"


# -- the specs ----------------------------------------------------------------

@dataclass(frozen=True)
class PolicySpec:
    """One declarative policy reference: family + parameters.

    ``role`` is ``"dispatch"`` or ``"placement"`` and selects the
    registry the family is validated against.  ``params`` holds only
    the parameters given explicitly (family defaults fill the rest at
    build time), coerced to float and sorted, so different spellings
    compare and hash equal; an explicitly-given default is kept
    (``random?seed=0.0`` stays distinct from ``random``).
    """

    role: str
    kind: str
    params: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        family = self._family()
        items = self.params.items() if isinstance(self.params, dict) \
            else self.params
        normalized: dict[str, float] = {}
        for key, value in items:
            if key not in family.params:
                raise ValueError(
                    f"{self.role} policy {self.kind!r} has no parameter "
                    f"{key!r}{_suggest(key, family.params)}"
                )
            if key in normalized:
                raise ValueError(
                    f"parameter {key!r} given twice for policy "
                    f"{self.kind!r}"
                )
            try:
                normalized[key] = float(value)
            except (TypeError, ValueError):
                raise ValueError(
                    f"parameter {key!r} of policy {self.kind!r} expects "
                    f"a number, got {value!r}"
                ) from None
        object.__setattr__(self, "params", tuple(sorted(normalized.items())))
        family.validate(**self.resolved_params())

    def _family(self) -> type:
        if self.role == "dispatch":
            return get_dispatch_policy(self.kind)
        if self.role == "placement":
            return get_placement_policy(self.kind)
        raise ValueError(
            f"policy role must be 'dispatch' or 'placement', got "
            f"{self.role!r}"
        )

    @classmethod
    def of(cls, role: str, kind: str, **params) -> "PolicySpec":
        return cls(role, kind, tuple(params.items()))

    def resolved_params(self) -> dict[str, float]:
        """Family defaults overlaid with this spec's parameters."""
        family = self._family()
        out = {name: float(pd.default) for name, pd in family.params.items()}
        out.update(self.params)
        return out

    def build(self) -> SchedulingPolicy:
        """A fresh policy instance (policies may hold per-run state)."""
        return self._family()(**self.resolved_params())

    def canonical(self) -> str:
        """Compact string form, e.g. ``random?seed=7.0``."""
        if not self.params:
            return self.kind
        parts = [f"{k}={v!r}" for k, v in self.params]
        return f"{self.kind}?{','.join(parts)}"

    def __str__(self) -> str:
        return self.canonical()


@dataclass(frozen=True)
class SchedulerSpec:
    """A dispatch/placement policy pair; ``None`` keeps the §7.1
    default for that role (and canonicalizes/serializes without it,
    so what you write is what you get)."""

    dispatch: PolicySpec | None = None
    placement: PolicySpec | None = None

    def __post_init__(self) -> None:
        if self.dispatch is not None and self.dispatch.role != "dispatch":
            raise ValueError(
                f"dispatch slot holds a {self.dispatch.role} policy "
                f"({self.dispatch.kind!r})"
            )
        if self.placement is not None and self.placement.role != "placement":
            raise ValueError(
                f"placement slot holds a {self.placement.role} policy "
                f"({self.placement.kind!r})"
            )

    def build_dispatch(self) -> PrefillDispatchPolicy:
        spec = self.dispatch or PolicySpec("dispatch", DEFAULT_DISPATCH)
        return spec.build()

    def build_placement(self) -> DecodePlacementPolicy:
        spec = self.placement or PolicySpec("placement", DEFAULT_PLACEMENT)
        return spec.build()

    def canonical(self) -> str:
        """Compact string form: given parts joined by ``+`` (dispatch
        first); the fully-defaulted spec canonicalizes to the explicit
        default pair."""
        parts = [s.canonical() for s in (self.dispatch, self.placement)
                 if s is not None]
        if not parts:
            return f"{DEFAULT_DISPATCH}+{DEFAULT_PLACEMENT}"
        return "+".join(parts)

    def __str__(self) -> str:
        return self.canonical()


# -- string grammar -----------------------------------------------------------

def parse_scheduler(text: str) -> SchedulerSpec:
    """Parse ``policy[+policy]`` (each ``family[?key=value,…]``) into a
    :class:`SchedulerSpec`.  Each part's role is inferred from its
    family name; at most one part per role."""
    parts = [p.strip() for p in text.strip().split("+")]
    if not all(parts) or not parts:
        raise ValueError(
            f"bad scheduler {text!r}; the grammar is "
            "dispatch[?k=v,…][+placement[?k=v,…]] (either part may "
            "stand alone)"
        )
    dispatch = placement = None
    for part in parts:
        kind, sep, rest = part.partition("?")
        kind = kind.strip()
        if kind in _DISPATCH:
            role = "dispatch"
        elif kind in _PLACEMENT:
            role = "placement"
        else:
            raise ValueError(
                f"unknown scheduling policy {kind!r}"
                f"{_suggest(kind, [*_DISPATCH, *_PLACEMENT])}"
            )
        pairs = []
        if sep:
            for item in rest.split(","):
                key, eq, value = item.partition("=")
                key, value = key.strip(), value.strip()
                if not eq or not key or not value:
                    raise ValueError(
                        f"bad policy parameter {item!r} in {text!r}; the "
                        "grammar is family?key=value,key=value"
                    )
                pairs.append((key, value))
        spec = PolicySpec(role, kind, tuple(pairs))
        if role == "dispatch":
            if dispatch is not None:
                raise ValueError(
                    f"scheduler {text!r} names two dispatch policies "
                    f"({dispatch.kind!r} and {kind!r})"
                )
            dispatch = spec
        else:
            if placement is not None:
                raise ValueError(
                    f"scheduler {text!r} names two placement policies "
                    f"({placement.kind!r} and {kind!r})"
                )
            placement = spec
    return SchedulerSpec(dispatch=dispatch, placement=placement)


def scheduler_spec(reference) -> SchedulerSpec:
    """The :class:`SchedulerSpec` behind any scheduler reference: a
    spec or a grammar string."""
    if isinstance(reference, SchedulerSpec):
        return reference
    if isinstance(reference, str):
        return parse_scheduler(reference)
    raise TypeError(
        f"expected a SchedulerSpec or string, got "
        f"{type(reference).__name__}"
    )


def canonical_scheduler(reference) -> str:
    """The canonical string form of a scheduler reference."""
    return scheduler_spec(reference).canonical()


def split_scheduler_list(text: str) -> list[str]:
    """Split a comma-separated scheduler list, keeping policy
    parameters attached: ``"splitwise,random?seed=3,burst=4+no_swap"``
    splits after ``splitwise`` only (a ``key=value`` token following an
    open ``?`` clause continues that clause)."""
    parts: list[str] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if parts and "=" in token and "?" not in token \
                and "?" in parts[-1].rsplit("+", 1)[-1]:
            parts[-1] += "," + token
        else:
            parts.append(token)
    return parts


# -- built-in dispatch policies -----------------------------------------------

@register_policy
class SplitwiseDispatch(PrefillDispatchPolicy):
    name = "splitwise"
    description = ("shortest token queue, ties by NIC backlog then "
                   "assignment count (the paper's §7.1 policy)")

    def choose(self, now, req, replicas):
        def load(i: int):
            replica = replicas[i]
            return (replica.queued_tokens,
                    max(0.0, replica.nic_free_at - now),
                    replica.assigned)

        return min(range(len(replicas)), key=load)


@register_policy
class RoundRobinDispatch(PrefillDispatchPolicy):
    name = "round_robin"
    description = "cycle through prefill replicas in arrival order"

    def __init__(self, **params):
        super().__init__(**params)
        self._next = 0

    def choose(self, now, req, replicas):
        idx = self._next % len(replicas)
        self._next = idx + 1
        return idx


@register_policy
class RandomDispatch(PrefillDispatchPolicy):
    name = "random"
    description = "uniform random replica from a seeded stream"
    params = {"seed": PolicyParam(0.0, "RNG seed (deterministic per run)")}

    def __init__(self, **params):
        super().__init__(**params)
        self._rng = np.random.default_rng(int(self.p["seed"]))

    @classmethod
    def validate(cls, *, seed):
        if seed != int(seed) or seed < 0:
            raise ValueError(
                f"random seed must be a non-negative integer, got {seed}"
            )

    def choose(self, now, req, replicas):
        return int(self._rng.integers(len(replicas)))


@register_policy
class LeastWorkDispatch(PrefillDispatchPolicy):
    name = "least_work"
    description = ("least outstanding work in *seconds* — queued tokens "
                   "over the replica's prefill rate, so a fast fleet "
                   "absorbs more load than a slow one")

    def bind(self, sim):
        # Per-replica prefill throughput (tokens/s) at the batching
        # budget, computed once per distinct GPU type: on heterogeneous
        # fleets this is the asymmetry the policy exploits.
        from ..perfmodel.prefill import prefill_time

        budget = sim.config.prefill_token_budget
        speed: dict[str, float] = {}
        self._speed = []
        for replica in sim._prefill:
            if replica.gpu not in speed:
                t = prefill_time(sim.spec, replica.res, budget, sim.method,
                                 sim.calib)
                speed[replica.gpu] = budget / (t.linear_s + t.attention_s
                                               + t.quantize_s)
            self._speed.append(speed[replica.gpu])

    def choose(self, now, req, replicas):
        def work(i: int):
            replica = replicas[i]
            return (replica.queued_tokens / self._speed[i],
                    max(0.0, replica.nic_free_at - now),
                    replica.assigned)

        return min(range(len(replicas)), key=work)


@register_policy
class NicAwareDispatch(PrefillDispatchPolicy):
    name = "nic_aware"
    description = ("shortest NIC transfer backlog first, then shortest "
                   "token queue (KV-transfer-aware, FlowKV-style)")

    def choose(self, now, req, replicas):
        def backlog(i: int):
            replica = replicas[i]
            return (max(0.0, replica.nic_free_at - now),
                    replica.queued_tokens,
                    replica.assigned)

        return min(range(len(replicas)), key=backlog)


# -- built-in placement policies ----------------------------------------------

def _with_room(replicas, reserve):
    return [i for i, d in enumerate(replicas) if d.free_bytes() >= reserve]


@register_policy
class ShortestQueuePlacement(DecodePlacementPolicy):
    name = "shortest_queue"
    description = ("shortest token queue with room, DéjàVu CPU swap when "
                   "full (the paper's §7.1 policy)")

    def choose(self, now, req, replicas, reserve):
        candidates = _with_room(replicas, reserve)
        if not candidates:
            return None
        return min(candidates, key=lambda i: (replicas[i].queued_tokens,
                                              replicas[i].assigned))


@register_policy
class BestFitPlacement(DecodePlacementPolicy):
    name = "best_fit"
    description = ("tightest memory fit with room (leaves the largest "
                   "holes for future long requests)")

    def choose(self, now, req, replicas, reserve):
        candidates = _with_room(replicas, reserve)
        if not candidates:
            return None
        return min(candidates, key=lambda i: (replicas[i].free_bytes(),
                                              replicas[i].queued_tokens,
                                              replicas[i].assigned))


@register_policy
class LeastLoadedPlacement(DecodePlacementPolicy):
    name = "least_loaded"
    description = ("lowest memory utilisation with room (spreads KV "
                   "evenly across decode replicas)")

    def choose(self, now, req, replicas, reserve):
        candidates = _with_room(replicas, reserve)
        if not candidates:
            return None
        return min(candidates, key=lambda i: (
            replicas[i].used_bytes / replicas[i].capacity_bytes,
            replicas[i].queued_tokens,
            replicas[i].assigned))


@register_policy
class NoSwapPlacement(ShortestQueuePlacement):
    name = "no_swap"
    description = ("shortest queue with room, but *reject* when full "
                   "instead of swapping (admission control; rejected "
                   "counts surface in results)")
    swap_on_full = False
