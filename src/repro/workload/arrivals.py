"""Pluggable arrival processes for trace generation.

The paper evaluates under Poisson arrivals only (§7.1), but the serving
systems this repo grows toward are judged on tail metrics under
realistic load — bursty, diurnal, multi-tenant.  This module makes the
arrival process a first-class, declarative axis, mirroring the
:mod:`repro.methods.spec` design:

* an **open registry** of :class:`ArrivalProcess` families
  (:func:`register_arrival`), each turning ``(rng, rps, n)`` plus
  keyword parameters into ``n`` absolute arrival times;
* a frozen, JSON-friendly :class:`ArrivalSpec` (family + parameters)
  with a compact string grammar for CLIs, scenarios and sweep axes::

      poisson
      gamma?cv=3.0
      mmpp?burst=4.0,duty=0.1,dwell=20.0
      diurnal?amp=0.8,period=600.0

Built-in families:

``constant``
    Deterministic gaps of exactly ``1/rps`` — the zero-variance floor.
``poisson``
    Exponential inter-arrivals (the paper's / DistServe's default).
    Reproduces the historical ``generate_trace`` stream bit-for-bit:
    it draws the same single ``rng.exponential`` block first, so every
    pre-existing trace, artifact and golden render is unchanged.
``gamma``
    Gamma-distributed gaps with coefficient of variation ``cv``
    (``cv=1`` is Poisson-like, ``cv>1`` bursty, ``cv<1`` smoothed).
``mmpp``
    Two-state Markov-modulated Poisson process: a base state and a
    burst state whose rate is ``burst``× higher, occupied a ``duty``
    fraction of time with mean burst dwell ``dwell`` seconds.  The
    long-run rate is exactly ``rps``.
``diurnal``
    Inhomogeneous Poisson with a sinusoidal rate
    ``λ(t) = rps · (1 + amp · sin(2πt/period))`` (thinning sampler) —
    a compressed day/night cycle.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ArrivalParam",
    "ArrivalProcess",
    "ArrivalSpec",
    "register_arrival",
    "get_arrival_process",
    "arrival_processes",
    "has_arrival_process",
    "arrival_spec",
    "parse_arrival",
    "canonical_arrival",
    "split_arrival_list",
]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


@dataclass(frozen=True)
class ArrivalParam:
    """One family parameter: a float default plus a one-line doc."""

    default: float
    doc: str = ""


class ArrivalProcess:
    """Base class for arrival-process families.

    Subclass, set :attr:`params`, implement :meth:`sample_arrivals`
    (and optionally :meth:`validate`), then register with
    :func:`register_arrival` — the family becomes usable everywhere an
    arrival reference is accepted (``generate_trace``,
    ``Scenario(arrival=…)``, ``--arrival``, sweep axes).
    """

    #: Registry key; also the prefix of the string grammar.
    name: str = "abstract"
    #: One-line summary shown by ``cli list``.
    description: str = ""
    #: Parameter table: name -> :class:`ArrivalParam` (floats only).
    params: dict[str, ArrivalParam] = {}
    #: Trace-shaping families (``sessions``) set this and implement
    #: :meth:`build_trace` instead of :meth:`sample_arrivals`: their
    #: request *lengths* depend on prior requests (shared prefixes), so
    #: :func:`~repro.workload.traces.generate_trace` delegates the whole
    #: trace to the family rather than just the arrival times.
    builds_trace: bool = False

    def sample_arrivals(self, rng: np.random.Generator, rps: float,
                        n: int, **params) -> np.ndarray:
        """``n`` nondecreasing absolute arrival times (seconds > 0)."""
        raise NotImplementedError

    def build_trace(self, rng: np.random.Generator, rps: float, n: int,
                    dataset, max_context: int | None, slo_tier: int,
                    **params) -> tuple[list[dict], int, int]:
        """Whole-trace hook for ``builds_trace`` families: returns
        (records, n_input_clipped, n_output_clipped), where each record
        holds the :class:`~repro.workload.traces.TraceRequest` fields
        except ``request_id`` (assigned after the arrival-order sort)."""
        raise NotImplementedError

    def validate(self, **params) -> None:
        """Raise ``ValueError`` for out-of-range parameter values."""

    def signature(self) -> str:
        """Grammar template with defaults, e.g. ``gamma?cv=2.0``."""
        if not self.params:
            return self.name
        parts = [f"{name}={pd.default!r}" for name, pd in self.params.items()]
        return f"{self.name}?{','.join(parts)}"


_ARRIVALS: dict[str, ArrivalProcess] = {}


def register_arrival(name: str | None = None, *, replace: bool = False):
    """Class decorator registering an :class:`ArrivalProcess` family."""

    def decorator(obj):
        family = obj() if isinstance(obj, type) else obj
        if name is not None:
            family.name = name
        if not _NAME_RE.match(family.name or ""):
            raise ValueError(
                f"arrival family name {family.name!r} must match "
                f"{_NAME_RE.pattern}"
            )
        if family.name in _ARRIVALS and not replace:
            raise ValueError(
                f"arrival family {family.name!r} is already registered; "
                "pass register_arrival(..., replace=True) to override"
            )
        for pname, pd in family.params.items():
            if not isinstance(pd.default, (int, float)) \
                    or isinstance(pd.default, bool):
                raise ValueError(
                    f"parameter {pname!r} default must be a number, got "
                    f"{type(pd.default).__name__}"
                )
        _ARRIVALS[family.name] = family
        return obj

    return decorator


def get_arrival_process(name: str) -> ArrivalProcess:
    """Look up a registered family, with typo suggestions."""
    try:
        return _ARRIVALS[name]
    except KeyError:
        raise ValueError(
            f"unknown arrival process {name!r}{_suggest(name, _ARRIVALS)}"
        ) from None


def arrival_processes() -> dict[str, ArrivalProcess]:
    """All registered families (a copy; registration order preserved)."""
    return dict(_ARRIVALS)


def has_arrival_process(reference: str) -> bool:
    """True when a string arrival reference names a family registered in
    this process (parameters may still be invalid)."""
    return reference.strip().partition("?")[0].strip() in _ARRIVALS


def _suggest(name: str, candidates) -> str:
    matches = difflib.get_close_matches(name, list(candidates), n=3)
    if matches:
        return "; did you mean " + " or ".join(repr(m) for m in matches) + "?"
    return f"; choose from {', '.join(sorted(candidates))}"


# -- the spec -----------------------------------------------------------------

@dataclass(frozen=True)
class ArrivalSpec:
    """A declarative arrival-process definition: family + parameters.

    ``params`` holds only the parameters given explicitly (family
    defaults fill the rest at sample time), coerced to float and
    sorted, so different spellings compare and hash equal.  Like
    :class:`~repro.methods.spec.MethodSpec`, an explicitly-given
    default is kept: ``gamma?cv=2.0`` stays distinct from ``gamma``.
    """

    kind: str
    params: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        family = get_arrival_process(self.kind)
        items = self.params.items() if isinstance(self.params, dict) \
            else self.params
        normalized: dict[str, float] = {}
        for key, value in items:
            if key not in family.params:
                raise ValueError(
                    f"arrival process {self.kind!r} has no parameter "
                    f"{key!r}{_suggest(key, family.params)}"
                )
            if key in normalized:
                raise ValueError(
                    f"parameter {key!r} given twice for arrival process "
                    f"{self.kind!r}"
                )
            try:
                normalized[key] = float(value)
            except (TypeError, ValueError):
                raise ValueError(
                    f"parameter {key!r} of arrival process {self.kind!r} "
                    f"expects a number, got {value!r}"
                ) from None
        object.__setattr__(self, "params", tuple(sorted(normalized.items())))
        family.validate(**self.resolved_params())

    @classmethod
    def of(cls, kind: str, **params) -> "ArrivalSpec":
        return cls(kind, tuple(params.items()))

    def resolved_params(self) -> dict[str, float]:
        """Family defaults overlaid with this spec's parameters."""
        family = get_arrival_process(self.kind)
        out = {name: float(pd.default) for name, pd in family.params.items()}
        out.update(self.params)
        return out

    def sample(self, rng: np.random.Generator, rps: float,
               n: int) -> np.ndarray:
        """``n`` absolute arrival times at long-run rate ``rps``."""
        if rps <= 0:
            raise ValueError(f"rps must be positive, got {rps}")
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        family = get_arrival_process(self.kind)
        return family.sample_arrivals(rng, rps, n, **self.resolved_params())

    def canonical(self) -> str:
        """Compact string form, e.g. ``mmpp?burst=4.0,duty=0.1``."""
        if not self.params:
            return self.kind
        parts = [f"{k}={v!r}" for k, v in self.params]
        return f"{self.kind}?{','.join(parts)}"

    def __str__(self) -> str:
        return self.canonical()


# -- string grammar -----------------------------------------------------------

def parse_arrival(text: str) -> ArrivalSpec:
    """Parse ``family[?key=value,…]`` into an :class:`ArrivalSpec`."""
    text = text.strip()
    kind, sep, rest = text.partition("?")
    kind = kind.strip()
    if kind not in _ARRIVALS:
        raise ValueError(
            f"unknown arrival process {kind!r}{_suggest(kind, _ARRIVALS)}"
        )
    if not sep:
        return ArrivalSpec(kind)
    pairs = []
    for item in rest.split(","):
        key, eq, value = item.partition("=")
        key, value = key.strip(), value.strip()
        if not eq or not key or not value:
            raise ValueError(
                f"bad arrival parameter {item!r} in {text!r}; the grammar "
                "is family?key=value,key=value"
            )
        pairs.append((key, value))
    return ArrivalSpec(kind, tuple(pairs))


def arrival_spec(reference) -> ArrivalSpec:
    """The :class:`ArrivalSpec` behind any arrival reference: a spec or
    a grammar string."""
    if isinstance(reference, ArrivalSpec):
        return reference
    if isinstance(reference, str):
        return parse_arrival(reference)
    raise TypeError(
        f"expected an ArrivalSpec or string, got "
        f"{type(reference).__name__}"
    )


def canonical_arrival(reference) -> str:
    """The canonical string form of an arrival reference."""
    return arrival_spec(reference).canonical()


def split_arrival_list(text: str) -> list[str]:
    """Split a comma-separated arrival list, keeping spec parameters
    attached: ``"poisson,mmpp?burst=4,duty=0.2"`` →
    ``["poisson", "mmpp?burst=4,duty=0.2"]`` (a ``key=value`` token
    after a ``?`` spec continues that spec)."""
    parts: list[str] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if parts and "=" in token and "?" not in token and "?" in parts[-1]:
            parts[-1] += "," + token
        else:
            parts.append(token)
    return parts


# -- built-in families --------------------------------------------------------

@register_arrival("constant")
class ConstantArrivals(ArrivalProcess):
    description = "deterministic gaps of exactly 1/rps (zero variance)"
    params: dict[str, ArrivalParam] = {}

    def sample_arrivals(self, rng, rps, n, **params):
        return np.arange(1, n + 1, dtype=np.float64) / rps


@register_arrival("poisson")
class PoissonArrivals(ArrivalProcess):
    description = "exponential inter-arrivals (the paper's §7.1 default)"
    params: dict[str, ArrivalParam] = {}

    def sample_arrivals(self, rng, rps, n, **params):
        # One exponential block, drawn first: byte-compatible with the
        # historical generate_trace RNG stream (traces, artifacts and
        # golden renders of every pre-arrival-process run are unchanged).
        gaps = rng.exponential(scale=1.0 / rps, size=n)
        return np.cumsum(gaps)


@register_arrival("gamma")
class GammaArrivals(ArrivalProcess):
    description = "gamma gaps with coefficient of variation cv (bursty >1)"
    params = {
        "cv": ArrivalParam(2.0, "coefficient of variation of the gaps"),
    }

    def validate(self, *, cv):
        if cv <= 0:
            raise ValueError(f"gamma cv must be positive, got {cv}")

    def sample_arrivals(self, rng, rps, n, *, cv):
        shape = 1.0 / (cv * cv)
        scale = (cv * cv) / rps          # mean gap stays 1/rps
        gaps = rng.gamma(shape, scale, size=n)
        return np.cumsum(gaps)


@register_arrival("mmpp")
class MMPPArrivals(ArrivalProcess):
    description = "2-state Markov-modulated Poisson bursts (long-run rps)"
    params = {
        "burst": ArrivalParam(4.0, "burst-state rate multiplier (>= 1)"),
        "duty": ArrivalParam(0.1, "long-run fraction of time in burst"),
        "dwell": ArrivalParam(20.0, "mean burst-state dwell, seconds"),
    }

    def validate(self, *, burst, duty, dwell):
        if burst < 1:
            raise ValueError(f"mmpp burst must be >= 1, got {burst}")
        if not 0 < duty < 1:
            raise ValueError(f"mmpp duty must be in (0, 1), got {duty}")
        if dwell <= 0:
            raise ValueError(f"mmpp dwell must be positive, got {dwell}")

    def sample_arrivals(self, rng, rps, n, *, burst, duty, dwell):
        # Base rate chosen so the time-averaged rate is exactly rps.
        base = rps / (1.0 - duty + duty * burst)
        rates = (base, base * burst)
        dwells = (dwell * (1.0 - duty) / duty, dwell)
        times = np.empty(n, dtype=np.float64)
        t, state = 0.0, 0
        boundary = rng.exponential(dwells[state])
        i = 0
        while i < n:
            gap = rng.exponential(1.0 / rates[state])
            if t + gap < boundary:
                t += gap
                times[i] = t
                i += 1
            else:
                # Memorylessness: restarting the exponential at the
                # state switch leaves the process law unchanged.
                t = boundary
                state = 1 - state
                boundary = t + rng.exponential(dwells[state])
        return times


@register_arrival("diurnal")
class DiurnalArrivals(ArrivalProcess):
    description = "sinusoidal rate rps*(1 + amp*sin(2πt/period)), thinned"
    params = {
        "amp": ArrivalParam(0.5, "relative amplitude of the rate swing"),
        "period": ArrivalParam(600.0, "cycle length, seconds"),
    }

    def validate(self, *, amp, period):
        if not 0 <= amp <= 1:
            raise ValueError(f"diurnal amp must be in [0, 1], got {amp}")
        if period <= 0:
            raise ValueError(f"diurnal period must be positive, got {period}")

    def sample_arrivals(self, rng, rps, n, *, amp, period):
        lam_max = rps * (1.0 + amp)
        omega = 2.0 * np.pi / period
        times = np.empty(n, dtype=np.float64)
        t = 0.0
        i = 0
        while i < n:                      # Lewis–Shedler thinning
            t += rng.exponential(1.0 / lam_max)
            accept = (1.0 + amp * np.sin(omega * t)) / (1.0 + amp)
            if rng.random() < accept:
                times[i] = t
                i += 1
        return times


@register_arrival("sessions")
class SessionArrivals(ArrivalProcess):
    description = ("multi-turn sessions sharing growing prefixes "
                   "(arrivals Poisson per session, think-time gaps)")
    params = {
        "turns": ArrivalParam(4.0, "mean turns per session (>= 1)"),
        "think_time": ArrivalParam(
            30.0, "mean think time between turns, seconds"),
        "prefix_growth": ArrivalParam(
            0.3, "follow-up new tokens as a fraction of a sampled input"),
        "tiers": ArrivalParam(
            1.0, "SLO classes, assigned uniformly per session"),
    }
    builds_trace = True

    def validate(self, *, turns, think_time, prefix_growth, tiers):
        if turns < 1:
            raise ValueError(f"sessions turns must be >= 1, got {turns}")
        if think_time <= 0:
            raise ValueError(
                f"sessions think_time must be positive, got {think_time}"
            )
        if not 0 < prefix_growth <= 1:
            raise ValueError(
                f"sessions prefix_growth must be in (0, 1], got "
                f"{prefix_growth}"
            )
        if tiers < 1 or tiers != int(tiers):
            raise ValueError(
                f"sessions tiers must be a positive integer, got {tiers}"
            )

    def sample_arrivals(self, rng, rps, n, **params):
        raise ValueError(
            "the 'sessions' family shapes whole traces (each turn's "
            "input embeds the prior conversation), so bare arrival "
            "times are not defined; generate it via generate_trace or "
            "a Scenario"
        )

    def build_trace(self, rng, rps, n, dataset, max_context, slo_tier, *,
                    turns, think_time, prefix_growth, tiers):
        """Sessions start as a Poisson process at rate ``rps / turns``
        (so the long-run *request* rate stays ~``rps``); each runs
        ``1 + Poisson(turns - 1)`` turns separated by exponential think
        times.  Turn ``t+1``'s prompt is the full prior conversation
        (inputs + outputs — the shareable prefix) plus fresh tokens
        sized as ``prefix_growth`` of a freshly-sampled dataset input.
        ``max_context`` clips as in :func:`generate_trace` and trims
        ``prefix_len`` so at least one new token always prefills."""
        session_rate = rps / turns
        records: list[dict] = []
        n_in_clipped = n_out_clipped = 0
        t_start = 0.0
        sid = 0
        while len(records) < n:
            t_start += rng.exponential(1.0 / session_rate)
            n_turns = 1 + int(rng.poisson(turns - 1.0))
            tier = slo_tier + int(rng.integers(int(tiers)))
            t = t_start
            context = 0        # prior conversation tokens (in + out)
            for turn in range(n_turns):
                if len(records) >= n:
                    break
                in_sample, out_sample = dataset.sample_request_lengths(
                    1, rng)
                output_len = int(out_sample[0])
                if turn == 0:
                    prefix = 0
                    input_len = int(in_sample[0])
                else:
                    prefix = context
                    input_len = prefix + max(
                        1, int(round(int(in_sample[0]) * prefix_growth)))
                if max_context is not None:
                    if output_len > max_context - 1:
                        output_len = max_context - 1
                        n_out_clipped += 1
                    if input_len > max_context - output_len:
                        input_len = max_context - output_len
                        prefix = min(prefix, input_len - 1)
                        n_in_clipped += 1
                records.append({
                    "arrival_s": float(t),
                    "input_len": input_len,
                    "output_len": output_len,
                    "session_id": sid,
                    "prefix_len": prefix,
                    "slo_tier": tier,
                })
                context = input_len + output_len
                t += rng.exponential(think_time)
            sid += 1
        return records, n_in_clipped, n_out_clipped
