"""Dataset length models (paper Table 4).

The paper's time results are driven by the input/output length
distributions of four datasets; the text content itself never enters
the timing path.  Each dataset is modelled as a clipped lognormal
fitted so that the clipped mean matches the published average and the
support matches the published min/max.

======================  =======================  ======================
dataset                 input len (avg/min/max)  output len (avg/min/max)
======================  =======================  ======================
IMDb classification     315 / 106 / 821          37 / 16 / 87
arXiv summarization     6300 / 1600 / 14100      243 / 29 / 464
Cocktail (IR)           16200 / 9400 / 28800     159 / 44 / 246
HumanEval               204 / 75 / 697           139 / 11 / 552
======================  =======================  ======================

arXiv and Cocktail are the paper's "long-sequence" datasets; IMDb and
HumanEval the "short-sequence" ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = ["LengthModel", "DatasetSpec", "DATASETS", "get_dataset",
           "LONG_SEQUENCE_DATASETS", "SHORT_SEQUENCE_DATASETS"]


@dataclass(frozen=True)
class LengthModel:
    """Clipped lognormal over integer sequence lengths."""

    mean: float
    minimum: int
    maximum: int

    def __post_init__(self) -> None:
        if not self.minimum <= self.mean <= self.maximum:
            raise ValueError(
                f"mean {self.mean} outside [{self.minimum}, {self.maximum}]"
            )
        if self.minimum < 1:
            raise ValueError("minimum length must be >= 1")

    @property
    def sigma(self) -> float:
        """Lognormal shape: spreads the support over ~4 standard devs."""
        return float(np.log(self.maximum / self.minimum) / 4.0)

    def _mu(self) -> float:
        return _fit_mu(self.mean, self.minimum, self.maximum, self.sigma)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` integer lengths."""
        raw = rng.lognormal(mean=self._mu(), sigma=self.sigma, size=n)
        return np.clip(np.round(raw), self.minimum, self.maximum).astype(np.int64)


@lru_cache(maxsize=None)
def _fit_mu(target_mean: float, lo: int, hi: int, sigma: float) -> float:
    """Bisection on the lognormal location so the clipped mean matches.

    Deterministic: uses a fixed quasi-random sample for the estimate.
    """
    rng = np.random.default_rng(12345)
    normals = rng.standard_normal(20_000)

    def clipped_mean(mu: float) -> float:
        draws = np.exp(mu + sigma * normals)
        return float(np.clip(draws, lo, hi).mean())

    low, high = np.log(lo), np.log(hi)
    for _ in range(60):
        mid = 0.5 * (low + high)
        if clipped_mean(mid) < target_mean:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


@dataclass(frozen=True)
class DatasetSpec:
    """One evaluation dataset: paired input/output length models."""

    name: str
    input_len: LengthModel
    output_len: LengthModel
    long_sequence: bool
    accuracy_metric: str  # "classification", "rouge1", or "edit_sim"

    def sample_request_lengths(
        self, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` (input_len, output_len) pairs."""
        return self.input_len.sample(n, rng), self.output_len.sample(n, rng)

    def mean_total_len(self) -> float:
        """Average final sequence length (prompt + generation)."""
        return self.input_len.mean + self.output_len.mean


DATASETS: dict[str, DatasetSpec] = {
    "imdb": DatasetSpec(
        name="imdb",
        input_len=LengthModel(315, 106, 821),
        output_len=LengthModel(37, 16, 87),
        long_sequence=False,
        accuracy_metric="classification",
    ),
    "arxiv": DatasetSpec(
        name="arxiv",
        input_len=LengthModel(6300, 1600, 14100),
        output_len=LengthModel(243, 29, 464),
        long_sequence=True,
        accuracy_metric="rouge1",
    ),
    "cocktail": DatasetSpec(
        name="cocktail",
        input_len=LengthModel(16200, 9400, 28800),
        output_len=LengthModel(159, 44, 246),
        long_sequence=True,
        accuracy_metric="classification",
    ),
    "humaneval": DatasetSpec(
        name="humaneval",
        input_len=LengthModel(204, 75, 697),
        output_len=LengthModel(139, 11, 552),
        long_sequence=False,
        accuracy_metric="edit_sim",
    ),
}

LONG_SEQUENCE_DATASETS = ("arxiv", "cocktail")
SHORT_SEQUENCE_DATASETS = ("imdb", "humaneval")


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by name (case-insensitive)."""
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASETS)}")
    return DATASETS[key]
