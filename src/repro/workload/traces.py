"""Request trace generation (§7.1: arrivals at a target RPS).

A trace is a list of :class:`TraceRequest` — arrival time plus sampled
input/output lengths — that the simulator replays.  Arrivals follow a
pluggable :class:`~repro.workload.arrivals.ArrivalProcess` (default:
the paper's Poisson process, as in DistServe); traces from different
datasets/processes can be interleaved into one multi-tenant trace with
:func:`merge_traces`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from .arrivals import ArrivalSpec, arrival_spec, get_arrival_process
from .datasets import DatasetSpec, get_dataset

__all__ = ["TraceRequest", "Trace", "generate_trace", "capped_trace",
           "merge_traces"]


@dataclass(frozen=True)
class TraceRequest:
    """One request of a workload trace.

    ``session_id``/``prefix_len`` carry the multi-turn structure of
    session workloads: requests of one conversation share a session id,
    and ``prefix_len`` is how many leading prompt tokens repeat the
    prior conversation (the KV-store-shareable prefix; always <
    ``input_len`` — at least one token is new).  ``slo_tier`` is the
    request's service class (0 = strictest), what service-aware
    compression selection keys on.  The defaults are what every
    single-shot trace has always meant, so existing construction,
    serialization and golden runs are unchanged.
    """

    request_id: int
    arrival_s: float
    input_len: int
    output_len: int
    session_id: int = -1
    prefix_len: int = 0
    slo_tier: int = 0

    @property
    def total_len(self) -> int:
        return self.input_len + self.output_len


class Trace(list):
    """A list of :class:`TraceRequest` plus clipping metadata.

    Behaves exactly like the plain list :func:`generate_trace` used to
    return, with two extra counters recording how many requests the
    ``max_context`` cap reshaped — so experiments on context-limited
    models (Falcon-2K on arXiv) can report how far the replayed lengths
    drifted from the dataset's published distribution.
    """

    #: Requests whose sampled input length was shortened.
    n_input_clipped: int = 0
    #: Requests whose sampled output length was truncated.
    n_output_clipped: int = 0

    def __init__(self, requests=(), n_input_clipped: int = 0,
                 n_output_clipped: int = 0) -> None:
        super().__init__(requests)
        self.n_input_clipped = n_input_clipped
        self.n_output_clipped = n_output_clipped


def generate_trace(
    dataset: str | DatasetSpec,
    rps: float,
    n_requests: int,
    seed: int = 0,
    max_context: int | None = None,
    arrival: str | ArrivalSpec = "poisson",
    slo_tier: int = 0,
) -> Trace:
    """Sample a trace of ``n_requests`` from ``dataset``.

    Parameters
    ----------
    dataset:
        Dataset name or spec (Table 4).
    rps:
        Long-run mean arrival rate, requests per second.
    n_requests:
        Trace length.
    seed:
        Randomness seed; traces are fully deterministic given it.
    max_context:
        Optional model context cap (how the paper runs Falcon's 2K
        window on the arXiv dataset): output lengths are truncated to
        ``max_context - 1`` first — which silently reshapes the
        output-length distribution, not just the inputs — then input
        lengths are clipped so ``input + output <= max_context``.  The
        returned :class:`Trace` records both counts
        (``n_input_clipped`` / ``n_output_clipped``).  Must be >= 2 —
        one input and one output token are the smallest expressible
        request.
    arrival:
        Arrival process: a grammar string (``"poisson"``,
        ``"mmpp?burst=4,duty=0.1"``, …) or an
        :class:`~repro.workload.arrivals.ArrivalSpec`.  The default
        Poisson process reproduces the historical trace stream
        bit-for-bit.  Trace-*shaping* families (``"sessions?turns=…"``)
        build the whole trace — multi-turn requests whose prompts embed
        the prior conversation as a shared prefix.
    slo_tier:
        Service class stamped on every request (session workloads may
        add per-session classes on top; see the ``sessions`` family's
        ``tiers`` parameter).
    """
    if rps <= 0:
        raise ValueError(f"rps must be positive, got {rps}")
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    if max_context is not None and max_context < 2:
        raise ValueError(
            f"max_context must be >= 2 (one prompt token, one output "
            f"token), got {max_context}"
        )
    if slo_tier < 0:
        raise ValueError(f"slo_tier must be >= 0, got {slo_tier}")
    spec = dataset if isinstance(dataset, DatasetSpec) else get_dataset(dataset)
    process = arrival_spec(arrival)
    rng = np.random.default_rng(seed)
    family = get_arrival_process(process.kind)
    if family.builds_trace:
        records, n_in, n_out = family.build_trace(
            rng, rps, n_requests, spec, max_context, slo_tier,
            **process.resolved_params())
        records.sort(key=lambda r: r["arrival_s"])
        return Trace(
            (TraceRequest(request_id=i, **rec)
             for i, rec in enumerate(records)),
            n_input_clipped=n_in,
            n_output_clipped=n_out,
        )
    arrivals = process.sample(rng, rps, n_requests)
    in_lens, out_lens = spec.sample_request_lengths(n_requests, rng)
    n_in_clipped = n_out_clipped = 0
    if max_context is not None:
        raw_out = out_lens
        out_lens = np.minimum(out_lens, max_context - 1)
        n_out_clipped = int(np.count_nonzero(raw_out > out_lens))
        raw_in = in_lens
        in_lens = np.minimum(in_lens, max_context - out_lens)
        n_in_clipped = int(np.count_nonzero(raw_in > in_lens))
    return Trace(
        (TraceRequest(request_id=i, arrival_s=float(arrivals[i]),
                      input_len=int(in_lens[i]), output_len=int(out_lens[i]),
                      slo_tier=slo_tier)
         for i in range(n_requests)),
        n_input_clipped=n_in_clipped,
        n_output_clipped=n_out_clipped,
    )


def capped_trace(dataset: str | DatasetSpec, rps: float, n_requests: int,
                 model_max_context: int, seed: int = 0) -> Trace:
    """Convenience wrapper: trace clipped to a model's context window."""
    return generate_trace(dataset, rps, n_requests, seed=seed,
                          max_context=model_max_context)


def merge_traces(*traces: list[TraceRequest]) -> Trace:
    """Interleave several traces into one multi-tenant trace.

    Requests are merged by arrival time (ties keep the input order,
    tenant-by-tenant) and renumbered ``0..n-1`` so the result is a
    valid simulator trace; clip counts sum over the tenants that carry
    them, and session ids are remapped to stay unique across tenants
    (two session traces both starting at session 0 must not alias in a
    prefix cache).  Each tenant's trace is typically generated from a
    different dataset and/or arrival process::

        merge_traces(
            generate_trace("cocktail", 0.5, 60, seed=1),
            generate_trace("imdb", 4.0, 200, seed=2, arrival="mmpp"),
        )
    """
    if not traces:
        raise ValueError("merge_traces needs at least one trace")
    remapped: list[TraceRequest] = []
    next_sid = 0
    for trace in traces:
        sids = sorted({r.session_id for r in trace if r.session_id >= 0})
        mapping = {s: next_sid + i for i, s in enumerate(sids)}
        next_sid += len(sids)
        for r in trace:
            if r.session_id >= 0:
                r = dataclasses.replace(r,
                                        session_id=mapping[r.session_id])
            remapped.append(r)
    merged = sorted(remapped, key=lambda r: r.arrival_s)
    return Trace(
        (dataclasses.replace(r, request_id=i)
         for i, r in enumerate(merged)),
        n_input_clipped=sum(getattr(t, "n_input_clipped", 0)
                            for t in traces),
        n_output_clipped=sum(getattr(t, "n_output_clipped", 0)
                             for t in traces),
    )
