"""Request trace generation (§7.1: arrivals at a target RPS).

A trace is a list of :class:`TraceRequest` — arrival time plus sampled
input/output lengths — that the simulator replays.  Arrivals follow a
pluggable :class:`~repro.workload.arrivals.ArrivalProcess` (default:
the paper's Poisson process, as in DistServe); traces from different
datasets/processes can be interleaved into one multi-tenant trace with
:func:`merge_traces`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from .arrivals import ArrivalSpec, arrival_spec
from .datasets import DatasetSpec, get_dataset

__all__ = ["TraceRequest", "generate_trace", "capped_trace", "merge_traces"]


@dataclass(frozen=True)
class TraceRequest:
    """One request of a workload trace."""

    request_id: int
    arrival_s: float
    input_len: int
    output_len: int

    @property
    def total_len(self) -> int:
        return self.input_len + self.output_len


def generate_trace(
    dataset: str | DatasetSpec,
    rps: float,
    n_requests: int,
    seed: int = 0,
    max_context: int | None = None,
    arrival: str | ArrivalSpec = "poisson",
) -> list[TraceRequest]:
    """Sample a trace of ``n_requests`` from ``dataset``.

    Parameters
    ----------
    dataset:
        Dataset name or spec (Table 4).
    rps:
        Long-run mean arrival rate, requests per second.
    n_requests:
        Trace length.
    seed:
        Randomness seed; traces are fully deterministic given it.
    max_context:
        Optional model context cap: input lengths are clipped so
        ``input + output <= max_context`` (how the paper runs Falcon's
        2K window on the arXiv dataset).  Must be >= 2 — one input and
        one output token are the smallest expressible request.
    arrival:
        Arrival process: a grammar string (``"poisson"``,
        ``"mmpp?burst=4,duty=0.1"``, …) or an
        :class:`~repro.workload.arrivals.ArrivalSpec`.  The default
        Poisson process reproduces the historical trace stream
        bit-for-bit.
    """
    if rps <= 0:
        raise ValueError(f"rps must be positive, got {rps}")
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    if max_context is not None and max_context < 2:
        raise ValueError(
            f"max_context must be >= 2 (one prompt token, one output "
            f"token), got {max_context}"
        )
    spec = dataset if isinstance(dataset, DatasetSpec) else get_dataset(dataset)
    process = arrival_spec(arrival)
    rng = np.random.default_rng(seed)
    arrivals = process.sample(rng, rps, n_requests)
    in_lens, out_lens = spec.sample_request_lengths(n_requests, rng)
    if max_context is not None:
        out_lens = np.minimum(out_lens, max_context - 1)
        in_lens = np.minimum(in_lens, max_context - out_lens)
    return [
        TraceRequest(request_id=i, arrival_s=float(arrivals[i]),
                     input_len=int(in_lens[i]), output_len=int(out_lens[i]))
        for i in range(n_requests)
    ]


def capped_trace(dataset: str | DatasetSpec, rps: float, n_requests: int,
                 model_max_context: int, seed: int = 0) -> list[TraceRequest]:
    """Convenience wrapper: trace clipped to a model's context window."""
    return generate_trace(dataset, rps, n_requests, seed=seed,
                          max_context=model_max_context)


def merge_traces(*traces: list[TraceRequest]) -> list[TraceRequest]:
    """Interleave several traces into one multi-tenant trace.

    Requests are merged by arrival time (ties keep the input order,
    tenant-by-tenant) and renumbered ``0..n-1`` so the result is a
    valid simulator trace.  Each tenant's trace is typically generated
    from a different dataset and/or arrival process::

        merge_traces(
            generate_trace("cocktail", 0.5, 60, seed=1),
            generate_trace("imdb", 4.0, 200, seed=2, arrival="mmpp"),
        )
    """
    if not traces:
        raise ValueError("merge_traces needs at least one trace")
    merged = sorted((r for trace in traces for r in trace),
                    key=lambda r: r.arrival_s)
    return [dataclasses.replace(r, request_id=i)
            for i, r in enumerate(merged)]
