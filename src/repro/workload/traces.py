"""Request trace generation (§7.1: Poisson arrivals at a target RPS).

A trace is a list of :class:`TraceRequest` — arrival time plus sampled
input/output lengths — that the simulator replays.  Arrivals follow a
Poisson process (exponential inter-arrival times), as in DistServe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .datasets import DatasetSpec, get_dataset

__all__ = ["TraceRequest", "generate_trace", "capped_trace"]


@dataclass(frozen=True)
class TraceRequest:
    """One request of a workload trace."""

    request_id: int
    arrival_s: float
    input_len: int
    output_len: int

    @property
    def total_len(self) -> int:
        return self.input_len + self.output_len


def generate_trace(
    dataset: str | DatasetSpec,
    rps: float,
    n_requests: int,
    seed: int = 0,
    max_context: int | None = None,
) -> list[TraceRequest]:
    """Sample a Poisson trace of ``n_requests`` from ``dataset``.

    Parameters
    ----------
    dataset:
        Dataset name or spec (Table 4).
    rps:
        Mean arrival rate, requests per second.
    n_requests:
        Trace length.
    seed:
        Randomness seed; traces are fully deterministic given it.
    max_context:
        Optional model context cap: input lengths are clipped so
        ``input + output <= max_context`` (how the paper runs Falcon's
        2K window on the arXiv dataset).
    """
    if rps <= 0:
        raise ValueError(f"rps must be positive, got {rps}")
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    spec = dataset if isinstance(dataset, DatasetSpec) else get_dataset(dataset)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rps, size=n_requests)
    arrivals = np.cumsum(gaps)
    in_lens, out_lens = spec.sample_request_lengths(n_requests, rng)
    if max_context is not None:
        out_lens = np.minimum(out_lens, max_context - 1)
        in_lens = np.minimum(in_lens, max_context - out_lens)
    return [
        TraceRequest(request_id=i, arrival_s=float(arrivals[i]),
                     input_len=int(in_lens[i]), output_len=int(out_lens[i]))
        for i in range(n_requests)
    ]


def capped_trace(dataset: str | DatasetSpec, rps: float, n_requests: int,
                 model_max_context: int, seed: int = 0) -> list[TraceRequest]:
    """Convenience wrapper: trace clipped to a model's context window."""
    return generate_trace(dataset, rps, n_requests, seed=seed,
                          max_context=model_max_context)
