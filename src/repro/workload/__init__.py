"""Workload substrate: dataset length models (Table 4) and traces."""

from .datasets import (
    DATASETS,
    DatasetSpec,
    LengthModel,
    LONG_SEQUENCE_DATASETS,
    SHORT_SEQUENCE_DATASETS,
    get_dataset,
)
from .traces import TraceRequest, capped_trace, generate_trace

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "LengthModel",
    "LONG_SEQUENCE_DATASETS",
    "SHORT_SEQUENCE_DATASETS",
    "get_dataset",
    "TraceRequest",
    "generate_trace",
    "capped_trace",
]
