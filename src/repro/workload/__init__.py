"""Workload substrate: dataset length models (Table 4), pluggable
arrival processes, and trace generation/merging."""

from .arrivals import (
    ArrivalParam,
    ArrivalProcess,
    ArrivalSpec,
    arrival_processes,
    arrival_spec,
    canonical_arrival,
    get_arrival_process,
    has_arrival_process,
    parse_arrival,
    register_arrival,
    split_arrival_list,
)
from .datasets import (
    DATASETS,
    DatasetSpec,
    LengthModel,
    LONG_SEQUENCE_DATASETS,
    SHORT_SEQUENCE_DATASETS,
    get_dataset,
)
from .traces import Trace, TraceRequest, capped_trace, generate_trace, \
    merge_traces

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "LengthModel",
    "LONG_SEQUENCE_DATASETS",
    "SHORT_SEQUENCE_DATASETS",
    "get_dataset",
    "TraceRequest",
    "Trace",
    "generate_trace",
    "capped_trace",
    "merge_traces",
    "ArrivalParam",
    "ArrivalProcess",
    "ArrivalSpec",
    "arrival_processes",
    "arrival_spec",
    "canonical_arrival",
    "get_arrival_process",
    "has_arrival_process",
    "parse_arrival",
    "register_arrival",
    "split_arrival_list",
]
