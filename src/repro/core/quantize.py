"""Asymmetric partitioned quantization (paper §5.2, Fig. 6).

A matrix that participates in a matmul ``C = A @ B`` is quantized along
its *inner* dimension: rows of ``A`` and columns of ``B`` are split into
partitions of ``partition_size`` (Π) elements.  Each partition stores a
``min`` and a ``scale = (max - min) / (2**bits - 1)``, and every element
is mapped to the integer code ``round((x - min) / scale)``.

The quantized representation is *asymmetric* (a non-zero ``min`` per
partition) and uses *stochastic rounding* by default, both choices the
paper makes to reduce quantization error relative to symmetric /
nearest-rounding schemes (§9, TurboAttention comparison).

``QuantizedTensor`` keeps the codes unpacked (one uint8 per code) for
fast numpy matmuls — the packed byte representation used for storage
and transmission accounting lives in :mod:`repro.core.packing`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .packing import packed_nbytes
from .rounding import nearest_round, stochastic_round

__all__ = [
    "QuantizedTensor",
    "quantize",
    "dequantize",
    "partition_bounds",
    "sum_storage_bits",
]

_FP16_BYTES = 2


def partition_bounds(length: int, partition_size: int) -> list[tuple[int, int]]:
    """Split ``range(length)`` into contiguous partitions.

    All partitions have ``partition_size`` elements except possibly the
    last, which may be shorter (a "ragged" tail).  The paper requires Π
    to be a multiple of 16 for GPU efficiency; this software
    implementation accepts any positive Π and any tail length so that
    requantization of partially-filled partitions (the behaviour RQE
    eliminates) can be modelled faithfully.
    """
    if partition_size <= 0:
        raise ValueError(f"partition_size must be positive, got {partition_size}")
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    bounds = []
    start = 0
    while start < length:
        end = min(start + partition_size, length)
        bounds.append((start, end))
        start = end
    return bounds


def sum_storage_bits(bits: int, partition_size: int) -> int:
    """Bits needed to store a partition's integer code sum (§5.3, §6).

    A partition of Π codes of ``bits`` bits sums to at most
    ``(2**bits - 1) * Π``, which needs ``bits + ceil(log2 Π)`` bits.
    Widths that do not align with natural memory boundaries are rounded
    up to 16 bits, exactly as the paper's implementation stores INT16
    sums for 2-bit quantization with Π=128 (9 bits → INT16).
    """
    raw = bits + math.ceil(math.log2(partition_size)) if partition_size > 1 else bits
    if raw <= 8:
        return 8
    return 16 if raw <= 16 else 32


@dataclass
class QuantizedTensor:
    """A 2-D tensor quantized per-partition along one axis.

    Attributes
    ----------
    codes:
        Integer codes, same shape as the original matrix, dtype uint8.
    mins, scales:
        Per-partition minimum and scale.  For ``axis == 1`` (partitions
        along columns, i.e. the rows of the left matmul operand) the
        shape is ``(n_rows, n_partitions)``; for ``axis == 0`` it is
        ``(n_partitions, n_cols)``.  ``scales`` is 0 for constant
        partitions, in which case every code is 0 and dequantization
        returns ``min`` exactly.
    bits:
        Code width in bits.
    axis:
        The partitioned (inner) axis: 1 partitions each row, 0
        partitions each column.
    partition_size:
        Π, the maximum number of elements per partition.
    """

    codes: np.ndarray
    mins: np.ndarray
    scales: np.ndarray
    bits: int
    axis: int
    partition_size: int
    _sums: np.ndarray | None = field(default=None, repr=False)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.codes.shape

    @property
    def n_partitions(self) -> int:
        return len(self.bounds())

    def bounds(self) -> list[tuple[int, int]]:
        """Partition boundaries along the quantized axis."""
        return partition_bounds(self.codes.shape[self.axis], self.partition_size)

    def partition_sums(self, cached: bool = True) -> np.ndarray:
        """Per-partition sums of the integer codes (the Σ b' of Eq. 4).

        With ``cached=True`` (the SE optimization, §5.3) the sums are
        computed once and memoized; subsequent calls return the stored
        array.  With ``cached=False`` they are recomputed every call,
        which is the behaviour of the HACK/SE ablation.
        """
        if cached and self._sums is not None:
            return self._sums
        sums = _partition_reduce(self.codes.astype(np.int64), self.axis,
                                 self.bounds(), np.add.reduce)
        if cached:
            self._sums = sums
        return sums

    def invalidate_sums(self) -> None:
        """Drop memoized sums (used after in-place requantization)."""
        self._sums = None

    # -- memory accounting ------------------------------------------------

    def code_nbytes(self) -> int:
        """Bytes for the packed code storage."""
        return packed_nbytes(self.codes.size, self.bits)

    def metadata_nbytes(self) -> int:
        """Bytes for FP16 ``min`` and ``scale`` values (§6)."""
        return (self.mins.size + self.scales.size) * _FP16_BYTES

    def sums_nbytes(self) -> int:
        """Bytes for the stored partition sums under SE (§5.3, §6)."""
        return self.mins.size * sum_storage_bits(self.bits, self.partition_size) // 8

    def total_nbytes(self, with_sums: bool = True) -> int:
        """Total storage footprint of this quantized tensor."""
        total = self.code_nbytes() + self.metadata_nbytes()
        if with_sums:
            total += self.sums_nbytes()
        return total


def quantize(
    x: np.ndarray,
    bits: int,
    axis: int,
    partition_size: int,
    rng: np.random.Generator | None = None,
    rounding: str = "stochastic",
) -> QuantizedTensor:
    """Quantize a 2-D matrix with per-partition asymmetric quantization.

    Parameters
    ----------
    x:
        Matrix to quantize, shape ``(rows, cols)``.
    bits:
        Code width; the paper uses 2 for K/V and 8 for Q and P.
    axis:
        Inner (partitioned) axis — see :class:`QuantizedTensor`.
    partition_size:
        Π.  Smaller values quantize more finely (higher accuracy,
        more metadata and more correction-term work).
    rng:
        Randomness for stochastic rounding.  Ignored for
        ``rounding="nearest"``.
    rounding:
        ``"stochastic"`` (paper default) or ``"nearest"`` (ablation).

    Returns
    -------
    QuantizedTensor
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"quantize expects a 2-D matrix, got shape {x.shape}")
    if axis not in (0, 1):
        raise ValueError(f"axis must be 0 or 1, got {axis}")
    if not 1 <= bits <= 8:
        raise ValueError(f"bits must be in [1, 8], got {bits}")
    if rounding not in ("stochastic", "nearest"):
        raise ValueError(f"unknown rounding mode {rounding!r}")

    bounds = partition_bounds(x.shape[axis], partition_size)
    levels = (1 << bits) - 1

    mins = _partition_reduce(x, axis, bounds, np.minimum.reduce)
    maxs = _partition_reduce(x, axis, bounds, np.maximum.reduce)
    scales = (maxs - mins) / levels
    # Constant partitions quantize to code 0 and dequantize to `min`
    # exactly; dividing by 1 instead of 0 keeps the arithmetic finite.
    safe_scales = np.where(scales == 0.0, 1.0, scales)

    codes = np.empty(x.shape, dtype=np.uint8)
    for p, (lo, hi) in enumerate(bounds):
        if axis == 1:
            block = x[:, lo:hi]
            normalized = (block - mins[:, p, None]) / safe_scales[:, p, None]
        else:
            block = x[lo:hi, :]
            normalized = (block - mins[None, p, :]) / safe_scales[None, p, :]
        if rounding == "stochastic":
            rounded = stochastic_round(normalized, rng)
        else:
            rounded = nearest_round(normalized)
        rounded = np.clip(rounded, 0, levels)
        if axis == 1:
            codes[:, lo:hi] = rounded.astype(np.uint8)
        else:
            codes[lo:hi, :] = rounded.astype(np.uint8)

    return QuantizedTensor(
        codes=codes,
        mins=mins,
        scales=scales,
        bits=bits,
        axis=axis,
        partition_size=partition_size,
    )


def dequantize(qt: QuantizedTensor) -> np.ndarray:
    """Reconstruct the real-valued matrix: ``x ≈ scale * code + min``.

    This is the operation HACK *avoids* on the critical path; it exists
    here as the reference the homomorphic matmul is verified against,
    and as the per-iteration cost the comparator methods pay.
    """
    out = np.empty(qt.codes.shape, dtype=np.float64)
    codes = qt.codes.astype(np.float64)
    for p, (lo, hi) in enumerate(qt.bounds()):
        if qt.axis == 1:
            out[:, lo:hi] = (
                codes[:, lo:hi] * qt.scales[:, p, None] + qt.mins[:, p, None]
            )
        else:
            out[lo:hi, :] = (
                codes[lo:hi, :] * qt.scales[None, p, :] + qt.mins[None, p, :]
            )
    return out


def _partition_reduce(x, axis, bounds, reducer):
    """Apply ``reducer`` within each partition along ``axis``."""
    pieces = []
    for lo, hi in bounds:
        block = x[:, lo:hi] if axis == 1 else x[lo:hi, :]
        pieces.append(reducer(block, axis=axis))
    return np.stack(pieces, axis=axis)
