"""Blocked streaming-softmax attention (FlashAttention-2 style, §6).

The paper integrates HACK into FlashAttention-2: attention is evaluated
block-by-block over the key/value sequence with an *online softmax* —
a running row-max ``m``, normalizer ``l`` and output accumulator that
are rescaled as each block arrives, so the full score matrix is never
materialized.

Two kernels are provided:

* :func:`flash_attention` — exact FP evaluation, numerically identical
  to :func:`repro.core.attention.attention_reference` (property-tested).
* :func:`flash_attention_hack` — the fused HACK variant: each block's
  scores come from the homomorphic matmul of the quantized Q and K
  block, and each block's ``P·V`` contribution from the homomorphic
  matmul of the (8-bit) probability block and (2-bit) V block, mirroring
  the ``attn_prefill`` Triton kernel of §6.
"""

from __future__ import annotations

import numpy as np

from .attention import HackConfig, causal_mask
from .homomorphic import homomorphic_matmul, transpose
from .quantize import quantize

__all__ = ["flash_attention", "flash_attention_hack"]

_NEG_INF = np.float64(-1e30)


def flash_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    block_size: int = 128,
    causal: bool = True,
    scale: float | None = None,
) -> np.ndarray:
    """Exact blocked attention with online softmax.

    Shapes as in :func:`repro.core.attention.attention_reference`.
    ``block_size`` is the key/value block length; any positive value
    gives the same result.
    """
    q, k, v = (np.asarray(a, dtype=np.float64) for a in (q, k, v))
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")

    def score_block(q_mat, k_blk):
        return q_mat @ k_blk.T

    def pv_block(p_blk, v_blk):
        return p_blk @ v_blk

    return _online_softmax_loop(q, k, v, block_size, causal, scale,
                                score_block, pv_block)


def flash_attention_hack(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    config: HackConfig | None = None,
    rng: np.random.Generator | None = None,
    block_size: int | None = None,
    causal: bool = True,
    scale: float | None = None,
) -> np.ndarray:
    """Fused HACK kernel: blocked attention on quantized operands.

    ``block_size`` defaults to ``2 * config.partition_size`` and must be
    a multiple of the partition size so that V's sequence-dimension
    partitions align with block boundaries (Fig. 7).
    """
    config = config or HackConfig()
    pi = config.partition_size
    if block_size is None:
        block_size = 2 * pi
    if block_size % pi:
        raise ValueError(
            f"block_size ({block_size}) must be a multiple of the "
            f"partition size ({pi})"
        )
    q, k, v = (np.asarray(a, dtype=np.float64) for a in (q, k, v))

    q_q = quantize(q, config.q_bits, axis=1, partition_size=pi,
                   rng=rng, rounding=config.rounding)

    def score_block(_q_mat, k_blk):
        k_q = quantize(k_blk, config.kv_bits, axis=1, partition_size=pi,
                       rng=rng, rounding=config.rounding)
        return homomorphic_matmul(q_q, transpose(k_q), config.use_se)

    def pv_block(p_blk, v_blk):
        p_q = quantize(p_blk, config.p_bits, axis=1, partition_size=pi,
                       rng=rng, rounding=config.rounding)
        v_q = quantize(v_blk, config.kv_bits, axis=0, partition_size=pi,
                       rng=rng, rounding=config.rounding)
        return homomorphic_matmul(p_q, v_q, config.use_se)

    return _online_softmax_loop(q, k, v, block_size, causal, scale,
                                score_block, pv_block)


def _online_softmax_loop(q, k, v, block_size, causal, scale,
                         score_block, pv_block):
    """Shared online-softmax skeleton parameterized by the two matmuls."""
    l_q, d = q.shape
    l_kv = k.shape[0]
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    mask = causal_mask(l_q, l_kv) if causal else None

    m_run = np.full(l_q, -np.inf)
    l_run = np.zeros(l_q)
    acc = np.zeros((l_q, d))

    for start in range(0, l_kv, block_size):
        end = min(start + block_size, l_kv)
        scores = score_block(q, k[start:end]) * scale
        if mask is not None:
            scores = np.where(mask[:, start:end], scores, _NEG_INF)

        m_new = np.maximum(m_run, scores.max(axis=1))
        # Rows that have seen no valid key yet keep m == -inf; exp(-inf
        # - -inf) is NaN, so guard with a finite stand-in (their l stays
        # 0 and the accumulator stays 0 regardless).
        m_safe = np.where(np.isfinite(m_new), m_new, 0.0)
        alpha = np.exp(np.where(np.isfinite(m_run), m_run - m_safe, -np.inf))
        alpha = np.where(np.isfinite(alpha), alpha, 0.0)
        probs = np.exp(scores - m_safe[:, None])

        acc = acc * alpha[:, None] + pv_block(probs, v[start:end])
        l_run = l_run * alpha + probs.sum(axis=1)
        m_run = m_new

    if np.any(l_run == 0):
        raise ValueError("a query row attends to no keys; check the causal mask")
    return acc / l_run[:, None]
