"""Operation-count formulas from the paper (§5.2–§5.3).

The paper reasons about HACK's overheads through exact flop counts:

* integer matmul            — ``2·M·Z·N``
* Eq. 4 correction terms    — ``9·M·N + M·Z + N·Z``
* with SE (cached B sums)   — ``9·M·N + M·Z``     (the ``N·Z`` vanishes)
* per-element dequantize    — ``s·x' + m`` = 2 flops
* per-decode-iteration KV dequantization (comparators)
                            — ``4·d_h·L``  (K and V, 2 flops each)
* per-decode-iteration HACK approximation with SE
                            — ``10·(d_h + L)``

These same formulas drive the analytic performance model, so the
simulated timings inherit the paper's own cost accounting.  Every
function returns plain flop counts; conversion to seconds happens in
:mod:`repro.perfmodel`.
"""

from __future__ import annotations

__all__ = [
    "matmul_flops",
    "approximation_flops",
    "dequantize_flops",
    "quantize_flops",
    "kv_dequant_flops_per_iter",
    "hack_approx_flops_per_iter",
    "attention_flops",
]


def matmul_flops(m: int, z: int, n: int) -> int:
    """Flops of a dense ``(M,Z) @ (Z,N)`` matmul (multiply + add)."""
    return 2 * m * z * n


def approximation_flops(m: int, z: int, n: int, summation_eliminated: bool = True) -> int:
    """Flops of the Eq. 4 correction terms (§5.2).

    Breakdown from the paper: ``2MN`` for the scale product, ``MN + MZ``
    for the A-row-sum term, ``MN + NZ`` for the B-column-sum term,
    ``2MN`` for the constant term, and ``3MN`` for the final additions —
    ``9MN + MZ + NZ`` in total.  SE (§5.3) caches the B column sums and
    removes the ``NZ`` contribution.
    """
    cost = 9 * m * n + m * z
    if not summation_eliminated:
        cost += n * z
    return cost


def dequantize_flops(n_elements: int) -> int:
    """Flops to dequantize ``n_elements`` codes (``s·x' + m`` each)."""
    return 2 * n_elements


def quantize_flops(n_elements: int) -> int:
    """Flops to quantize ``n_elements`` values.

    Subtract-divide-round is 3 ops per element; the per-partition
    min/max scan adds ~2 comparisons per element, amortized.  The
    paper reports quantization at 1.25–2.91% of JCT; this constant
    reproduces that range under the calibrated rates.
    """
    return 5 * n_elements


def kv_dequant_flops_per_iter(head_dim: int, seq_len: int) -> int:
    """Per-head, per-iteration cost of dequantizing the whole KV (§5.3).

    ``2·d_h·L`` for K plus ``2·d_h·L`` for V: the price CacheGen/KVQuant
    pay on *every* decode iteration.
    """
    return 4 * head_dim * seq_len


def hack_approx_flops_per_iter(
    head_dim: int,
    seq_len: int,
    summation_eliminated: bool = True,
) -> int:
    """Per-head, per-iteration Eq. 4 correction cost during decode (§5.3).

    With SE the two attention products cost ``(9L + d_h) + (9·d_h + L)``
    = ``10·(d_h + L)``.  Without SE the B sums are recomputed, adding
    ``d_h·L`` for K and ``d_h·L`` for V.
    """
    qk = approximation_flops(1, head_dim, seq_len, summation_eliminated)
    pv = approximation_flops(1, seq_len, head_dim, summation_eliminated)
    return qk + pv


def attention_flops(l_q: int, l_kv: int, head_dim: int) -> int:
    """Flops of one attention head: ``Q·Kᵀ`` plus ``P·V``."""
    return matmul_flops(l_q, head_dim, l_kv) + matmul_flops(l_q, l_kv, head_dim)
