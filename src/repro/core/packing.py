"""Bit packing for low-precision integer codes.

HACK stores KV codes at 2 bits per element (§5.1) and the attention
probabilities and queries at 8 bits.  The GPU implementation packs the
2-bit codes four-to-a-byte in the KV cache and unpacks them to INT8 in
local memory right before the integer matmul (§6).  This module
implements the same packing in numpy; it is used both for realism (the
cache stores genuinely packed bytes) and for exact transfer/memory size
accounting in the performance model.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_codes", "unpack_codes", "packed_nbytes", "codes_per_byte"]

_SUPPORTED_BITS = (2, 4, 8)


def codes_per_byte(bits: int) -> int:
    """Number of ``bits``-wide codes stored in one byte."""
    _check_bits(bits)
    return 8 // bits


def packed_nbytes(n_codes: int, bits: int) -> int:
    """Bytes needed to store ``n_codes`` codes of width ``bits``."""
    per = codes_per_byte(bits)
    return (n_codes + per - 1) // per


def pack_codes(codes: np.ndarray, bits: int) -> np.ndarray:
    """Pack an array of small non-negative integers into a uint8 buffer.

    Codes are packed little-end-first within each byte: the first code
    occupies the least significant bits.  The flattened order of
    ``codes`` is preserved, so ``unpack_codes(pack_codes(c, b), c.size,
    b).reshape(c.shape)`` is the identity.

    Raises
    ------
    ValueError
        If ``bits`` is unsupported or any code is out of range.
    """
    _check_bits(bits)
    flat = np.asarray(codes).reshape(-1)
    if flat.size and (flat.min() < 0 or flat.max() > (1 << bits) - 1):
        raise ValueError(
            f"codes out of range for {bits}-bit packing: "
            f"[{flat.min()}, {flat.max()}]"
        )
    flat = flat.astype(np.uint8)
    if bits == 8:
        return flat.copy()
    per = codes_per_byte(bits)
    pad = (-flat.size) % per
    if pad:
        flat = np.concatenate([flat, np.zeros(pad, dtype=np.uint8)])
    flat = flat.reshape(-1, per)
    out = np.zeros(flat.shape[0], dtype=np.uint8)
    for slot in range(per):
        out |= flat[:, slot] << (slot * bits)
    return out


def unpack_codes(packed: np.ndarray, n_codes: int, bits: int) -> np.ndarray:
    """Inverse of :func:`pack_codes`.

    Parameters
    ----------
    packed:
        uint8 buffer produced by :func:`pack_codes`.
    n_codes:
        Number of codes originally packed (needed because packing may
        pad the final byte).
    bits:
        Code width in bits.

    Returns
    -------
    np.ndarray
        1-D uint8 array of length ``n_codes``.
    """
    _check_bits(bits)
    packed = np.asarray(packed, dtype=np.uint8)
    if bits == 8:
        return packed[:n_codes].copy()
    per = codes_per_byte(bits)
    mask = (1 << bits) - 1
    slots = [(packed >> (slot * bits)) & mask for slot in range(per)]
    codes = np.stack(slots, axis=1).reshape(-1)
    return codes[:n_codes]


def _check_bits(bits: int) -> None:
    if bits not in _SUPPORTED_BITS:
        raise ValueError(f"bits must be one of {_SUPPORTED_BITS}, got {bits}")
