"""Decode-time KV caches (§5.3, §6).

Three cache flavours, one per system family in the paper:

* :class:`Fp16KVCache` — the disaggregated baseline: FP16 K/V, exact
  attention, maximal memory and transfer size.
* :class:`DequantizingKVCache` — the CacheGen/KVQuant family: 2-bit
  codes in the cache, but every decode iteration dequantizes *all*
  tokens' K and V back to FP before attention (cost ``4·d_h·L`` per
  head per iteration, §5.3).
* :class:`HackKVCache` — HACK: 2-bit codes consumed directly by the
  homomorphic matmul.  Implements both systems optimizations and their
  ablations:

  - **SE** (summation elimination): the per-partition integer sums that
    Eq. 4 needs are stored (``b + ⌈log2 Π⌉`` bits each, padded to INT16
    when unaligned) instead of recomputed every iteration.
  - **RQE** (requantization elimination): the last, partially-filled
    sequence-dimension partition of V is kept in FP16 in a side buffer
    and multiplied in FP; it is quantized exactly once, when it fills.
    With RQE disabled the cache faithfully reproduces the behaviour the
    paper ablates: every append dequantizes the partial block,
    requantizes it with the widened ``[min, max]`` (Fig. 8), and the
    error of that round trip accumulates in the cache.

K is partitioned along the head dimension, so a new token's K always
forms whole partitions of its own and never disturbs existing metadata;
V is partitioned along the sequence dimension, which is what creates
the partial-block problem RQE solves (Fig. 7).

Every cache tallies a :class:`CacheLedger` of analytic operation counts
so integration tests and the performance model can charge exactly what
each design pays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import costs
from .attention import softmax
from .homomorphic import homomorphic_matmul
from .packing import packed_nbytes
from .quantize import (
    QuantizedTensor,
    dequantize,
    partition_bounds,
    quantize,
    sum_storage_bits,
)

__all__ = ["CacheLedger", "Fp16KVCache", "DequantizingKVCache", "HackKVCache"]

_FP16_BYTES = 2


@dataclass
class CacheLedger:
    """Cumulative operation counts for one cache instance."""

    int_matmul_flops: int = 0
    fp_matmul_flops: int = 0
    approx_flops: int = 0
    dequant_flops: int = 0
    quant_flops: int = 0
    requant_events: int = 0
    decode_iterations: int = 0

    def merge(self, other: "CacheLedger") -> None:
        """Accumulate another ledger into this one (used across heads)."""
        self.int_matmul_flops += other.int_matmul_flops
        self.fp_matmul_flops += other.fp_matmul_flops
        self.approx_flops += other.approx_flops
        self.dequant_flops += other.dequant_flops
        self.quant_flops += other.quant_flops
        self.requant_events += other.requant_events
        self.decode_iterations += other.decode_iterations


class _BaseKVCache:
    """Shared bookkeeping: length, ledger, append validation."""

    def __init__(self, head_dim: int) -> None:
        if head_dim <= 0:
            raise ValueError(f"head_dim must be positive, got {head_dim}")
        self.head_dim = head_dim
        self.ledger = CacheLedger()
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def _check_vec(self, vec: np.ndarray, name: str) -> np.ndarray:
        vec = np.asarray(vec, dtype=np.float64)
        if vec.shape != (self.head_dim,):
            raise ValueError(
                f"{name} must have shape ({self.head_dim},), got {vec.shape}"
            )
        return vec

    def _check_bulk(self, mat: np.ndarray, name: str) -> np.ndarray:
        mat = np.asarray(mat, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[1] != self.head_dim:
            raise ValueError(
                f"{name} must have shape (L, {self.head_dim}), got {mat.shape}"
            )
        return mat


class Fp16KVCache(_BaseKVCache):
    """Baseline cache: K/V stored at full FP16 precision."""

    def __init__(self, head_dim: int) -> None:
        super().__init__(head_dim)
        self._k: list[np.ndarray] = []
        self._v: list[np.ndarray] = []

    def append(self, k_vec: np.ndarray, v_vec: np.ndarray) -> None:
        """Add one token's K and V rows."""
        self._k.append(self._check_vec(k_vec, "k_vec"))
        self._v.append(self._check_vec(v_vec, "v_vec"))
        self._length += 1

    def append_bulk(self, k: np.ndarray, v: np.ndarray) -> None:
        """Add many tokens at once (prefill handoff)."""
        k = self._check_bulk(k, "k")
        v = self._check_bulk(v, "v")
        if k.shape[0] != v.shape[0]:
            raise ValueError("k and v must hold the same number of tokens")
        self._k.extend(k)
        self._v.extend(v)
        self._length += k.shape[0]

    def materialize(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the cache contents as (K, V) matrices."""
        return np.array(self._k), np.array(self._v)

    def attention(self, q_vec: np.ndarray) -> np.ndarray:
        """One exact decode step: attend ``q_vec`` over the whole cache."""
        q = self._check_vec(q_vec, "q_vec")[None, :]
        k, v = self.materialize()
        scores = (q @ k.T) / np.sqrt(self.head_dim)
        probs = softmax(scores, axis=-1)
        out = probs @ v
        self.ledger.fp_matmul_flops += costs.attention_flops(1, len(self), self.head_dim)
        self.ledger.decode_iterations += 1
        return out[0]

    def kv_nbytes(self) -> int:
        """FP16 bytes held by the cache."""
        return 2 * self._length * self.head_dim * _FP16_BYTES


class DequantizingKVCache(_BaseKVCache):
    """CacheGen/KVQuant-style cache: 2-bit codes, dequantize every use.

    K and V are quantized per token row (partitions along the head
    dimension), so appends never requantize anything — but every
    :meth:`attention` call reconstructs the full FP K and V first,
    paying ``4·d_h·L`` dequantization flops.
    """

    def __init__(
        self,
        head_dim: int,
        partition_size: int = 64,
        kv_bits: int = 2,
        rounding: str = "stochastic",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(head_dim)
        self.partition_size = partition_size
        self.kv_bits = kv_bits
        self.rounding = rounding
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._k_parts: list[QuantizedTensor] = []
        self._v_parts: list[QuantizedTensor] = []

    def append(self, k_vec: np.ndarray, v_vec: np.ndarray) -> None:
        """Quantize and store one token's K and V rows."""
        self.append_bulk(
            self._check_vec(k_vec, "k_vec")[None, :],
            self._check_vec(v_vec, "v_vec")[None, :],
        )

    def append_bulk(self, k: np.ndarray, v: np.ndarray) -> None:
        """Quantize and store many tokens at once."""
        k = self._check_bulk(k, "k")
        v = self._check_bulk(v, "v")
        if k.shape[0] != v.shape[0]:
            raise ValueError("k and v must hold the same number of tokens")
        if k.shape[0] == 0:
            return
        for mat, parts in ((k, self._k_parts), (v, self._v_parts)):
            parts.append(
                quantize(mat, self.kv_bits, axis=1,
                         partition_size=self.partition_size,
                         rng=self._rng, rounding=self.rounding)
            )
            self.ledger.quant_flops += costs.quantize_flops(mat.size)
        self._length += k.shape[0]

    def materialize(self) -> tuple[np.ndarray, np.ndarray]:
        """Dequantize the whole cache to (K̂, V̂)."""
        k = np.concatenate([dequantize(p) for p in self._k_parts], axis=0)
        v = np.concatenate([dequantize(p) for p in self._v_parts], axis=0)
        return k, v

    def attention(self, q_vec: np.ndarray) -> np.ndarray:
        """One decode step: dequantize everything, then FP attention."""
        if not self._length:
            raise ValueError("attention on an empty cache")
        q = self._check_vec(q_vec, "q_vec")[None, :]
        k_hat, v_hat = self.materialize()
        self.ledger.dequant_flops += costs.kv_dequant_flops_per_iter(
            self.head_dim, self._length
        )
        scores = (q @ k_hat.T) / np.sqrt(self.head_dim)
        probs = softmax(scores, axis=-1)
        out = probs @ v_hat
        self.ledger.fp_matmul_flops += costs.attention_flops(1, self._length, self.head_dim)
        self.ledger.decode_iterations += 1
        return out[0]

    def kv_nbytes(self) -> int:
        """Bytes for packed codes plus FP16 quantization metadata."""
        return sum(
            p.code_nbytes() + p.metadata_nbytes()
            for p in self._k_parts + self._v_parts
        )


class HackKVCache(_BaseKVCache):
    """HACK's quantized KV cache with SE and RQE (§5.3).

    Parameters
    ----------
    head_dim:
        Per-head embedding width ``d_h``.
    partition_size:
        Π, used for both the head-dimension partitions of K and the
        sequence-dimension partitions of V.
    kv_bits, q_bits, p_bits:
        Code widths (paper defaults 2 / 8 / 8).
    enable_se:
        Store Eq. 4's per-partition code sums instead of recomputing.
    enable_rqe:
        Keep the partial last V block in FP16 instead of requantizing.
    """

    def __init__(
        self,
        head_dim: int,
        partition_size: int = 64,
        kv_bits: int = 2,
        q_bits: int = 8,
        p_bits: int = 8,
        enable_se: bool = True,
        enable_rqe: bool = True,
        rounding: str = "stochastic",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(head_dim)
        if head_dim % partition_size and partition_size > head_dim:
            # A Π larger than d_h degenerates to one partition per row.
            partition_size = head_dim
        self.partition_size = partition_size
        self.kv_bits = kv_bits
        self.q_bits = q_bits
        self.p_bits = p_bits
        self.enable_se = enable_se
        self.enable_rqe = enable_rqe
        self.rounding = rounding
        self._rng = rng if rng is not None else np.random.default_rng(0)

        # K: one row per token, partitions along the head dimension.
        self._k_codes: list[np.ndarray] = []   # each (d,)
        self._k_mins: list[np.ndarray] = []    # each (P_k,)
        self._k_scales: list[np.ndarray] = []
        self._k_sums: list[np.ndarray] = []    # each (P_k,), only when SE

        # V: full sequence-dimension blocks of Π tokens.
        self._v_blocks: list[QuantizedTensor] = []   # each (Π, d), axis=0
        # Partial last block: FP16 rows under RQE, or a ragged
        # QuantizedTensor (requantized on every append) without RQE.
        self._v_tail_fp: list[np.ndarray] = []
        self._v_tail_q: QuantizedTensor | None = None

    # -- appends ----------------------------------------------------------

    def append(self, k_vec: np.ndarray, v_vec: np.ndarray) -> None:
        """Quantize and store one token's K row; extend V's last block."""
        k_vec = self._check_vec(k_vec, "k_vec")
        v_vec = self._check_vec(v_vec, "v_vec")
        self._append_k(k_vec[None, :])
        self._append_v_row(v_vec)
        self._length += 1

    def append_bulk(self, k: np.ndarray, v: np.ndarray) -> None:
        """Quantize and store many tokens (the prefill→decode handoff)."""
        k = self._check_bulk(k, "k")
        v = self._check_bulk(v, "v")
        if k.shape[0] != v.shape[0]:
            raise ValueError("k and v must hold the same number of tokens")
        if k.shape[0] == 0:
            return
        self._append_k(k)
        for row in v:
            self._append_v_row(row)
        self._length += k.shape[0]

    def _append_k(self, k: np.ndarray) -> None:
        qt = quantize(k, self.kv_bits, axis=1, partition_size=self.partition_size,
                      rng=self._rng, rounding=self.rounding)
        self.ledger.quant_flops += costs.quantize_flops(k.size)
        sums = qt.partition_sums() if self.enable_se else None
        for i in range(k.shape[0]):
            self._k_codes.append(qt.codes[i])
            self._k_mins.append(qt.mins[i])
            self._k_scales.append(qt.scales[i])
            if sums is not None:
                self._k_sums.append(sums[i])

    def _append_v_row(self, v_vec: np.ndarray) -> None:
        if self.enable_rqe:
            self._v_tail_fp.append(v_vec)
            if len(self._v_tail_fp) == self.partition_size:
                self._flush_v_tail()
        else:
            self._requantize_v_tail(v_vec)

    def _flush_v_tail(self) -> None:
        """Quantize a now-full FP16 tail into a permanent V block (RQE)."""
        block = np.array(self._v_tail_fp)
        qt = quantize(block, self.kv_bits, axis=0,
                      partition_size=self.partition_size,
                      rng=self._rng, rounding=self.rounding)
        self.ledger.quant_flops += costs.quantize_flops(block.size)
        if self.enable_se:
            qt.partition_sums()  # memoize now; reads are free afterwards
        self._v_blocks.append(qt)
        self._v_tail_fp = []

    def _requantize_v_tail(self, v_vec: np.ndarray) -> None:
        """Faithful no-RQE path: dequantize-extend-requantize (Fig. 8).

        The round trip through the old 2-bit grid is what accumulates
        extra error relative to RQE — the dequantized values, not the
        originals, are requantized under the widened ``[min, max]``.
        """
        if self._v_tail_q is None:
            rows = v_vec[None, :]
        else:
            old = dequantize(self._v_tail_q)
            self.ledger.dequant_flops += costs.dequantize_flops(old.size)
            rows = np.concatenate([old, v_vec[None, :]], axis=0)
            self.ledger.requant_events += 1
        qt = quantize(rows, self.kv_bits, axis=0,
                      partition_size=self.partition_size,
                      rng=self._rng, rounding=self.rounding)
        self.ledger.quant_flops += costs.quantize_flops(rows.size)
        if rows.shape[0] == self.partition_size:
            if self.enable_se:
                qt.partition_sums()
            self._v_blocks.append(qt)
            self._v_tail_q = None
        else:
            self._v_tail_q = qt

    # -- attention ---------------------------------------------------------

    def attention(self, q_vec: np.ndarray) -> np.ndarray:
        """One HACK decode step over the cache — no KV dequantization."""
        if not self._length:
            raise ValueError("attention on an empty cache")
        q = self._check_vec(q_vec, "q_vec")[None, :]
        d = self.head_dim
        length = self._length

        q_q = quantize(q, self.q_bits, axis=1, partition_size=self.partition_size,
                       rng=self._rng, rounding=self.rounding)
        self.ledger.quant_flops += costs.quantize_flops(q.size)

        scores = homomorphic_matmul(q_q, self._k_transposed(),
                                    use_cached_b_sums=self.enable_se)
        scores /= np.sqrt(d)
        probs = softmax(scores, axis=-1)

        out = np.zeros((1, d))
        n_quantized = len(self._v_blocks) * self.partition_size
        if self._v_tail_q is not None:
            n_quantized += self._v_tail_q.codes.shape[0]

        if n_quantized:
            p_part = probs[:, :n_quantized]
            p_q = quantize(p_part, self.p_bits, axis=1,
                           partition_size=self.partition_size,
                           rng=self._rng, rounding=self.rounding)
            self.ledger.quant_flops += costs.quantize_flops(p_part.size)
            out += homomorphic_matmul(p_q, self._v_quantized(),
                                      use_cached_b_sums=self.enable_se)
            self.ledger.int_matmul_flops += costs.matmul_flops(1, n_quantized, d)
            self.ledger.approx_flops += costs.approximation_flops(
                1, n_quantized, d, self.enable_se
            )

        n_tail = len(self._v_tail_fp)
        if n_tail:
            tail = np.array(self._v_tail_fp)
            out += probs[:, n_quantized:] @ tail
            self.ledger.fp_matmul_flops += costs.matmul_flops(1, n_tail, d)

        self.ledger.int_matmul_flops += costs.matmul_flops(1, d, length)
        self.ledger.approx_flops += costs.approximation_flops(
            1, d, length, self.enable_se
        )
        self.ledger.decode_iterations += 1
        return out[0]

    def _k_transposed(self) -> QuantizedTensor:
        """Assemble the ``Kᵀ`` operand for Eq. 4 from per-token storage."""
        codes = np.array(self._k_codes).T          # (d, L)
        mins = np.array(self._k_mins).T            # (P_k, L)
        scales = np.array(self._k_scales).T
        sums = np.array(self._k_sums).T if self.enable_se and self._k_sums else None
        return QuantizedTensor(codes=codes, mins=mins, scales=scales,
                               bits=self.kv_bits, axis=0,
                               partition_size=self.partition_size, _sums=sums)

    def _v_quantized(self) -> QuantizedTensor:
        """Assemble the quantized-V operand (full blocks + ragged tail)."""
        blocks = list(self._v_blocks)
        if self._v_tail_q is not None:
            blocks.append(self._v_tail_q)
        codes = np.concatenate([b.codes for b in blocks], axis=0)
        mins = np.stack([row for b in blocks for row in b.mins], axis=0)
        scales = np.stack([row for b in blocks for row in b.scales], axis=0)
        sums = None
        if self.enable_se and all(b._sums is not None for b in blocks):
            sums = np.concatenate([b._sums for b in blocks], axis=0)
        return QuantizedTensor(codes=codes, mins=mins, scales=scales,
                               bits=self.kv_bits, axis=0,
                               partition_size=self.partition_size, _sums=sums)

    # -- inspection & accounting -------------------------------------------

    def materialize(self) -> tuple[np.ndarray, np.ndarray]:
        """Reconstruct (K̂, V̂): dequantized codes plus the exact FP tail."""
        bounds = partition_bounds(self.head_dim, self.partition_size)
        k_hat = np.empty((len(self._k_codes), self.head_dim))
        for t, (codes, mins, scales) in enumerate(
            zip(self._k_codes, self._k_mins, self._k_scales)
        ):
            for p, (lo, hi) in enumerate(bounds):
                k_hat[t, lo:hi] = codes[lo:hi].astype(np.float64) * scales[p] + mins[p]
        parts = [dequantize(b) for b in self._v_blocks]
        if self._v_tail_q is not None:
            parts.append(dequantize(self._v_tail_q))
        if self._v_tail_fp:
            parts.append(np.array(self._v_tail_fp))
        v_hat = np.concatenate(parts, axis=0) if parts else np.zeros((0, self.head_dim))
        return k_hat, v_hat

    def kv_nbytes(self) -> int:
        """Bytes for packed codes plus FP16 min/scale metadata."""
        n_tokens_k = len(self._k_codes)
        n_parts_k = len(self._k_mins[0]) if self._k_mins else 0
        k_bytes = packed_nbytes(n_tokens_k * self.head_dim, self.kv_bits)
        k_bytes += 2 * n_tokens_k * n_parts_k * _FP16_BYTES
        v_bytes = sum(b.code_nbytes() + b.metadata_nbytes() for b in self._v_blocks)
        if self._v_tail_q is not None:
            v_bytes += self._v_tail_q.code_nbytes() + self._v_tail_q.metadata_nbytes()
        return k_bytes + v_bytes

    def sums_nbytes(self) -> int:
        """Bytes of SE sum storage (§7.4 reports 2.2–2.7% of GPU memory)."""
        if not self.enable_se:
            return 0
        width = sum_storage_bits(self.kv_bits, self.partition_size) // 8
        n_k = sum(s.size for s in self._k_sums)
        n_v = sum(b.mins.size for b in self._v_blocks)
        return (n_k + n_v) * width

    def fp16_tail_nbytes(self) -> int:
        """Bytes of the RQE FP16 buffer (§7.4 reports 0.24–0.51%)."""
        return len(self._v_tail_fp) * self.head_dim * _FP16_BYTES

    def total_nbytes(self) -> int:
        """Full cache footprint: codes, metadata, SE sums, RQE tail."""
        return self.kv_nbytes() + self.sums_nbytes() + self.fp16_tail_nbytes()
