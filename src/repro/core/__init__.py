"""HACK's core: homomorphic quantization for attention (paper §5).

Public surface:

* quantization — :func:`quantize`, :func:`dequantize`,
  :class:`QuantizedTensor`, :func:`partition_bounds`
* homomorphic matmul (Eq. 4) — :func:`homomorphic_matmul`,
  :func:`homomorphic_matmul_blocked`, :func:`integer_matmul`,
  :func:`transpose`
* attention — :class:`HackConfig`, :func:`attention_reference`,
  :func:`attention_hack`, :func:`attention_dequantize`,
  :func:`flash_attention`, :func:`flash_attention_hack`
* KV caches — :class:`Fp16KVCache`, :class:`DequantizingKVCache`,
  :class:`HackKVCache`, :class:`CacheLedger`
* cost formulas — :mod:`repro.core.costs`
"""

from .attention import (
    HackConfig,
    attention_dequantize,
    attention_hack,
    attention_reference,
    causal_mask,
    softmax,
)
from .flash import flash_attention, flash_attention_hack
from .homomorphic import (
    homomorphic_matmul,
    homomorphic_matmul_blocked,
    integer_matmul,
    transpose,
)
from .eviction import EvictingKVCache, HeavyHitterTracker
from .kv_cache import CacheLedger, DequantizingKVCache, Fp16KVCache, HackKVCache
from .packing import pack_codes, packed_nbytes, unpack_codes
from .quantize import (
    QuantizedTensor,
    dequantize,
    partition_bounds,
    quantize,
    sum_storage_bits,
)
from .rounding import make_rng, nearest_round, stochastic_round

__all__ = [
    "HackConfig",
    "QuantizedTensor",
    "CacheLedger",
    "Fp16KVCache",
    "DequantizingKVCache",
    "HackKVCache",
    "EvictingKVCache",
    "HeavyHitterTracker",
    "attention_reference",
    "attention_hack",
    "attention_dequantize",
    "causal_mask",
    "softmax",
    "flash_attention",
    "flash_attention_hack",
    "homomorphic_matmul",
    "homomorphic_matmul_blocked",
    "integer_matmul",
    "transpose",
    "quantize",
    "dequantize",
    "partition_bounds",
    "sum_storage_bits",
    "pack_codes",
    "unpack_codes",
    "packed_nbytes",
    "make_rng",
    "stochastic_round",
    "nearest_round",
]
