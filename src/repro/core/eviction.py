"""KV eviction composed with quantized caching (paper §9 future work).

The paper notes that eviction-based compression (H2O, Scissorhands,
Keyformer …) is *complementary* to quantization: eviction removes
unimportant tokens' KV entirely, quantization lowers the precision of
what remains, and the two can be combined.  This module implements that
combination:

* :class:`HeavyHitterTracker` — H2O-style cumulative-attention scoring
  with a protected window of recent tokens;
* :class:`EvictingKVCache` — wraps any decode cache *policy-side*: it
  keeps the full cache but masks evicted tokens out of attention, which
  preserves the wrapped cache's quantization behaviour exactly while
  modelling the accuracy effect of eviction.  A budget of ``None``
  disables eviction (pure pass-through).

The extra bench in ``benchmarks/bench_ablation_extra.py`` and the tests
in ``tests/core/test_eviction.py`` quantify the compounding: eviction
plus 2-bit quantization reaches compression neither achieves alone, at
a measurable but bounded accuracy cost.
"""

from __future__ import annotations

import numpy as np

from .attention import softmax

__all__ = ["HeavyHitterTracker", "EvictingKVCache"]


class HeavyHitterTracker:
    """Cumulative attention mass per cached token (the H2O criterion).

    Tokens that consistently receive attention are "heavy hitters" and
    are retained; the most recent ``protected_recent`` tokens are never
    eviction candidates (they have not had a chance to accumulate mass).
    """

    def __init__(self, protected_recent: int = 8) -> None:
        if protected_recent < 0:
            raise ValueError("protected_recent must be non-negative")
        self.protected_recent = protected_recent
        self._mass: list[float] = []

    def __len__(self) -> int:
        return len(self._mass)

    def extend(self, n_tokens: int) -> None:
        """Register ``n_tokens`` new cache entries."""
        if n_tokens < 0:
            raise ValueError("n_tokens must be non-negative")
        self._mass.extend([0.0] * n_tokens)

    def observe(self, probs: np.ndarray, live_idx: np.ndarray) -> None:
        """Accumulate one attention row over the live token indices."""
        probs = np.asarray(probs, dtype=np.float64).reshape(-1)
        if probs.size != live_idx.size:
            raise ValueError("probs and live_idx must align")
        for idx, p in zip(live_idx, probs):
            self._mass[int(idx)] += float(p)

    def select_evictions(self, live_idx: np.ndarray, budget: int) -> list[int]:
        """Indices to evict so that at most ``budget`` tokens stay live."""
        if budget < 1:
            raise ValueError("budget must be >= 1")
        n_live = live_idx.size
        excess = n_live - budget
        if excess <= 0:
            return []
        protected = set(live_idx[-self.protected_recent:].tolist()
                        if self.protected_recent else [])
        candidates = [int(i) for i in live_idx if int(i) not in protected]
        candidates.sort(key=lambda i: self._mass[i])
        return candidates[:excess]


class EvictingKVCache:
    """Budget-bounded attention over any wrapped KV cache.

    Parameters
    ----------
    inner:
        Any cache exposing ``append / append_bulk / attention-like
        materialize`` (the three families of :mod:`repro.core.kv_cache`
        plus :class:`repro.quant.roundtrip_cache.RoundtripKVCache`).
    budget:
        Maximum live tokens; ``None`` disables eviction.
    protected_recent:
        Recent-token window exempt from eviction.
    """

    def __init__(self, inner, budget: int | None = None,
                 protected_recent: int = 8) -> None:
        if budget is not None and budget < 1:
            raise ValueError("budget must be >= 1 (or None)")
        self.inner = inner
        self.budget = budget
        self.tracker = HeavyHitterTracker(protected_recent)
        self._evicted: set[int] = set()

    def __len__(self) -> int:
        return len(self.inner)

    @property
    def n_live(self) -> int:
        return len(self.inner) - len(self._evicted)

    @property
    def ledger(self):
        return self.inner.ledger

    # -- cache interface -------------------------------------------------------

    def append(self, k_vec: np.ndarray, v_vec: np.ndarray) -> None:
        self.inner.append(k_vec, v_vec)
        self.tracker.extend(1)
        self._enforce_budget()

    def append_bulk(self, k: np.ndarray, v: np.ndarray) -> None:
        before = len(self.inner)
        self.inner.append_bulk(k, v)
        self.tracker.extend(len(self.inner) - before)
        self._enforce_budget()

    def attention(self, q_vec: np.ndarray) -> np.ndarray:
        """Attention over the live (non-evicted) tokens only."""
        k_hat, v_hat = self.inner.materialize()
        live_idx = self._live_indices()
        k_live = k_hat[live_idx]
        v_live = v_hat[live_idx]
        q = np.asarray(q_vec, dtype=np.float64)[None, :]
        scores = (q @ k_live.T) / np.sqrt(k_live.shape[1])
        probs = softmax(scores, axis=-1)
        self.tracker.observe(probs[0], live_idx)
        self.inner.ledger.decode_iterations += 1
        return (probs @ v_live)[0]

    def materialize(self):
        """Live (K̂, V̂) after eviction."""
        k_hat, v_hat = self.inner.materialize()
        live_idx = self._live_indices()
        return k_hat[live_idx], v_hat[live_idx]

    # -- accounting ---------------------------------------------------------------

    def live_kv_nbytes(self) -> float:
        """Bytes attributable to live tokens (eviction's saving)."""
        total = len(self.inner)
        if total == 0:
            return 0.0
        return self.inner.kv_nbytes() * self.n_live / total

    # -- internals ----------------------------------------------------------------

    def _live_indices(self) -> np.ndarray:
        return np.array(
            [i for i in range(len(self.inner)) if i not in self._evicted],
            dtype=np.int64,
        )

    def _enforce_budget(self) -> None:
        if self.budget is None:
            return
        live_idx = self._live_indices()
        for idx in self.tracker.select_evictions(live_idx, self.budget):
            self._evicted.add(idx)
