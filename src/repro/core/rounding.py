"""Rounding primitives used by the quantizers.

The paper quantizes with *stochastic rounding* (§5.2): a real value ``x``
is rounded down to ``floor(x)`` with probability ``ceil(x) - x`` and up
to ``ceil(x)`` otherwise, so that ``E[round(x)] = x``.  Deterministic
round-to-nearest is also provided for ablations and for the comparator
quantizers that use it (KVQuant-style nearest rounding).
"""

from __future__ import annotations

import numpy as np

__all__ = ["stochastic_round", "nearest_round", "make_rng"]


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Return a seeded numpy random generator.

    A single helper keeps seeding conventions uniform across the
    code base so that every experiment is reproducible bit-for-bit.
    """
    return np.random.default_rng(seed)


def stochastic_round(
    x: np.ndarray, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Round ``x`` stochastically and unbiasedly to integers.

    Each element is rounded to ``floor(x)`` with probability
    ``ceil(x) - x`` and to ``ceil(x)`` with probability ``x - floor(x)``,
    which makes the rounding unbiased: ``E[stochastic_round(x)] == x``.
    Values that are already integral are returned unchanged.

    Parameters
    ----------
    x:
        Array of real values.
    rng:
        Source of randomness; a fresh default generator is used when
        omitted (mainly convenient in interactive use — experiments
        should always pass an explicit generator).

    Returns
    -------
    np.ndarray
        Float array of integral values with the same shape as ``x``.
    """
    if rng is None:
        rng = make_rng()
    x = np.asarray(x, dtype=np.float64)
    low = np.floor(x)
    frac = x - low
    draws = rng.random(size=x.shape)
    return low + (draws < frac)


def nearest_round(x: np.ndarray) -> np.ndarray:
    """Deterministic round-half-to-even (numpy's default rounding)."""
    return np.rint(np.asarray(x, dtype=np.float64))
