"""Homomorphic quantized matrix multiplication (paper §5.2, Eq. 4).

For ``C = A @ B`` with ``A`` quantized per row-partition and ``B`` per
column-partition, each entry of the product expands as

    Σ_z a_iz · b_zj  ≈  s_ai·s_bj·Σ_z a'_iz·b'_zj          (integer matmul)
                       + m_bj·s_ai·Σ_z a'_iz               (A row sums)
                       + m_ai·s_bj·Σ_z b'_zj               (B column sums)
                       + Z·m_ai·m_bj                       (constant term)

where primes denote integer codes and ``m``/``s`` the per-partition
minimum and scale.  The first term is the only O(M·Z·N) work and runs on
integer codes (INT8 tensor cores on the real hardware); the three
correction terms cost ``9MN + MZ + NZ`` flops (§5.2), and the ``NZ``
part — the B column sums — is cached by the SE optimization (§5.3).

Crucially Eq. 4 is an *identity* on the quantized lattice: the result
equals ``dequantize(A') @ dequantize(B')`` exactly (up to float
round-off).  The only approximation error in HACK is the quantization
error itself, never the homomorphic evaluation.  The test suite checks
this invariant with hypothesis.
"""

from __future__ import annotations

import numpy as np

from .quantize import QuantizedTensor

__all__ = [
    "homomorphic_matmul",
    "homomorphic_matmul_blocked",
    "integer_matmul",
    "transpose",
]


def transpose(qt: QuantizedTensor) -> QuantizedTensor:
    """Transpose a quantized tensor, flipping the partitioned axis.

    Quantizing ``K`` row-wise (one token per row, partitions along the
    head dimension) and transposing yields exactly the operand layout
    ``Kᵀ`` needs as the right-hand side of ``Q·Kᵀ``.  All arrays are
    numpy views — no copies.
    """
    return QuantizedTensor(
        codes=qt.codes.T,
        mins=qt.mins.T,
        scales=qt.scales.T,
        bits=qt.bits,
        axis=1 - qt.axis,
        partition_size=qt.partition_size,
        _sums=None if qt._sums is None else qt._sums.T,
    )


def integer_matmul(qa: QuantizedTensor, qb: QuantizedTensor) -> np.ndarray:
    """The raw integer-code product ``A' @ B'`` summed over all partitions.

    This is the portion of Eq. 4 that the GPU evaluates with INT8 tensor
    cores; exposed separately so benchmarks can time it in isolation.
    """
    _check_operands(qa, qb)
    return qa.codes.astype(np.int64) @ qb.codes.astype(np.int64)


def homomorphic_matmul(
    qa: QuantizedTensor,
    qb: QuantizedTensor,
    use_cached_b_sums: bool = True,
) -> np.ndarray:
    """Evaluate ``dequant(A') @ dequant(B')`` without dequantizing.

    Parameters
    ----------
    qa:
        Left operand, quantized with ``axis == 1`` (row partitions).
    qb:
        Right operand, quantized with ``axis == 0`` (column partitions)
        and the same partition boundaries as ``qa``.
    use_cached_b_sums:
        When True (SE optimization), reuse ``qb``'s memoized partition
        sums; when False, recompute them — functionally identical, but
        the performance model charges the recomputation cost.

    Returns
    -------
    np.ndarray
        Float matrix of shape ``(M, N)``.
    """
    _check_operands(qa, qb)
    bounds = qa.bounds()
    m, n = qa.codes.shape[0], qb.codes.shape[1]
    out = np.zeros((m, n), dtype=np.float64)

    b_sums = qb.partition_sums(cached=use_cached_b_sums)  # (P, N)
    a_codes = qa.codes.astype(np.int64)
    b_codes = qb.codes.astype(np.int64)

    for p, (lo, hi) in enumerate(bounds):
        width = hi - lo
        int_prod = a_codes[:, lo:hi] @ b_codes[lo:hi, :]
        a_sum = a_codes[:, lo:hi].sum(axis=1)  # (M,)

        s_a = qa.scales[:, p][:, None]  # (M, 1)
        m_a = qa.mins[:, p][:, None]
        s_b = qb.scales[p, :][None, :]  # (1, N)
        m_b = qb.mins[p, :][None, :]

        out += (
            s_a * s_b * int_prod
            + m_b * (s_a * a_sum[:, None])
            + m_a * (s_b * b_sums[p, :][None, :])
            + width * m_a * m_b
        )
    return out


def homomorphic_matmul_blocked(
    qa_blocks: list[QuantizedTensor],
    qb_blocks: list[QuantizedTensor],
    use_cached_b_sums: bool = True,
) -> np.ndarray:
    """Blocked evaluation (paper Fig. 6(b)): ``A·B = Σ_k A_k · B_k``.

    The inner dimension is split into blocks, each block quantized and
    multiplied independently via Eq. 4, and the partial products summed.
    This is how the FlashAttention-style kernel consumes the KV cache
    block by block.  Equals the unblocked product when the block
    boundaries align with partition boundaries.
    """
    if len(qa_blocks) != len(qb_blocks):
        raise ValueError(
            f"mismatched block counts: {len(qa_blocks)} vs {len(qb_blocks)}"
        )
    if not qa_blocks:
        raise ValueError("at least one block is required")
    out = homomorphic_matmul(qa_blocks[0], qb_blocks[0], use_cached_b_sums)
    for qa, qb in zip(qa_blocks[1:], qb_blocks[1:]):
        out += homomorphic_matmul(qa, qb, use_cached_b_sums)
    return out


def _check_operands(qa: QuantizedTensor, qb: QuantizedTensor) -> None:
    if qa.axis != 1:
        raise ValueError(f"left operand must be quantized along axis 1, got {qa.axis}")
    if qb.axis != 0:
        raise ValueError(f"right operand must be quantized along axis 0, got {qb.axis}")
    if qa.codes.shape[1] != qb.codes.shape[0]:
        raise ValueError(
            f"inner dimensions differ: {qa.codes.shape} @ {qb.codes.shape}"
        )
    if qa.partition_size != qb.partition_size:
        raise ValueError(
            "operands must share a partition size, got "
            f"{qa.partition_size} and {qb.partition_size}"
        )
