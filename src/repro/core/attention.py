"""Self-attention with and without homomorphic quantization (§5.1, §5.3).

The HACK dataflow for one attention head (Fig. 5):

1. quantize ``Q`` to INT8 (it is discarded after use, so precision is
   cheap) and ``K`` to INT2, both partitioned along the head dimension,
2. compute the attention scores ``S = Q·Kᵀ / sqrt(d_h)`` with the
   homomorphic matmul — no dequantization,
3. softmax ``S`` into the attention probabilities ``P`` in floating
   point,
4. quantize ``P`` to INT8 and ``V`` to INT2, both partitioned along the
   *sequence* dimension,
5. compute ``O = P·V`` homomorphically.

This module implements that path for a single head on 2-D matrices; the
multi-head / GQA wrapper lives in :mod:`repro.model.transformer`, and
the decode-time incremental path lives in :mod:`repro.core.kv_cache`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .homomorphic import homomorphic_matmul, transpose
from .quantize import quantize

__all__ = [
    "HackConfig",
    "softmax",
    "causal_mask",
    "attention_reference",
    "attention_hack",
    "attention_dequantize",
]

_NEG_INF = np.float64(-1e30)


@dataclass(frozen=True)
class HackConfig:
    """Quantization configuration for HACK attention.

    Defaults follow the paper's evaluation settings: Π=64 partitions,
    2-bit K/V, 8-bit Q and P, stochastic rounding (§7).
    """

    partition_size: int = 64
    kv_bits: int = 2
    q_bits: int = 8
    p_bits: int = 8
    rounding: str = "stochastic"
    use_se: bool = True

    def __post_init__(self) -> None:
        if self.partition_size <= 0:
            raise ValueError(f"partition_size must be positive, got {self.partition_size}")


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax (Eq. 3)."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def causal_mask(l_q: int, l_kv: int) -> np.ndarray:
    """Boolean mask, True where query ``i`` may attend to key ``j``.

    Queries are aligned to the *end* of the key sequence, the standard
    convention for incremental decoding: query ``i`` (0-based) attends
    to keys ``j <= i + (l_kv - l_q)``.
    """
    if l_kv < l_q:
        raise ValueError(f"l_kv ({l_kv}) must be >= l_q ({l_q}) for a causal mask")
    offset = l_kv - l_q
    rows = np.arange(l_q)[:, None]
    cols = np.arange(l_kv)[None, :]
    return cols <= rows + offset


def attention_reference(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    causal: bool = True,
    scale: float | None = None,
) -> np.ndarray:
    """Exact FP attention for one head: ``softmax(Q·Kᵀ/√d)·V``.

    Shapes: ``q`` is ``(L_q, d)``, ``k`` and ``v`` are ``(L_kv, d)``;
    the output is ``(L_q, d)``.
    """
    q, k, v = (np.asarray(a, dtype=np.float64) for a in (q, k, v))
    d = q.shape[1]
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    scores = (q @ k.T) * scale
    if causal:
        scores = np.where(causal_mask(q.shape[0], k.shape[0]), scores, _NEG_INF)
    probs = softmax(scores, axis=-1)
    return probs @ v


def attention_hack(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    config: HackConfig | None = None,
    rng: np.random.Generator | None = None,
    causal: bool = True,
    scale: float | None = None,
) -> np.ndarray:
    """HACK attention: both matmuls evaluated on quantized operands.

    Follows steps 1–5 of the module docstring.  The result approximates
    :func:`attention_reference` with error bounded by the quantization
    error of the four quantized operands — the homomorphic evaluation
    itself introduces none (see :mod:`repro.core.homomorphic`).
    """
    config = config or HackConfig()
    q, k, v = (np.asarray(a, dtype=np.float64) for a in (q, k, v))
    d = q.shape[1]
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    pi = config.partition_size

    # Step 1-2: S = Q'·K'ᵀ via Eq. 4, partitioned along the head dim.
    q_q = quantize(q, config.q_bits, axis=1, partition_size=pi,
                   rng=rng, rounding=config.rounding)
    k_q = quantize(k, config.kv_bits, axis=1, partition_size=pi,
                   rng=rng, rounding=config.rounding)
    scores = homomorphic_matmul(q_q, transpose(k_q), config.use_se) * scale

    # Step 3: softmax in floating point.
    if causal:
        scores = np.where(causal_mask(q.shape[0], k.shape[0]), scores, _NEG_INF)
    probs = softmax(scores, axis=-1)

    # Step 4-5: O = P'·V' via Eq. 4, partitioned along the sequence dim.
    p_q = quantize(probs, config.p_bits, axis=1, partition_size=pi,
                   rng=rng, rounding=config.rounding)
    v_q = quantize(v, config.kv_bits, axis=0, partition_size=pi,
                   rng=rng, rounding=config.rounding)
    return homomorphic_matmul(p_q, v_q, config.use_se)


def attention_dequantize(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    config: HackConfig | None = None,
    rng: np.random.Generator | None = None,
    causal: bool = True,
    scale: float | None = None,
) -> np.ndarray:
    """Comparator path: quantize K/V, then dequantize before attention.

    This is what CacheGen/KVQuant-style systems do — K and V suffer the
    same quantization error as HACK, but the matmuls run on the
    dequantized FP matrices (paying dequantization cost and gaining no
    integer speedup).  Q and P stay in full precision.  Used to isolate
    the extra error contributed by HACK's Q/P quantization.
    """
    config = config or HackConfig()
    from .quantize import dequantize  # local import avoids cycle at module load

    k_q = quantize(np.asarray(k, dtype=np.float64), config.kv_bits, axis=1,
                   partition_size=config.partition_size, rng=rng,
                   rounding=config.rounding)
    v_q = quantize(np.asarray(v, dtype=np.float64), config.kv_bits, axis=0,
                   partition_size=config.partition_size, rng=rng,
                   rounding=config.rounding)
    return attention_reference(q, dequantize(k_q), dequantize(v_q),
                               causal=causal, scale=scale)
