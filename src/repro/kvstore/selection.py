"""Service-aware compression selection: per-request MethodSpec choice.

KVServe's observation (PAPERS.md) is that the compression method is a
*runtime* decision, not a deployment constant: latency-tolerant SLO
tiers can absorb stronger compression, and a congested KV path should
shed bytes.  This module hosts that decision as an open registry of
:class:`CompressionSelectionPolicy` families, specced with the same
``family?k=v`` grammar as everything else::

    static                                    # the scenario's method
    slo_tier?tier1=hack,tier2=hack_int4       # SLO class -> method
    congestion?hi=0.75,lo=0.5,strong=hack_int4

A policy's :meth:`choose` returns the
:class:`~repro.methods.base.Method` for one request at admission time;
the engine then routes that request's quantize cost, wire bytes,
decode-memory reservation and KV-store byte accounting through it.
Method-valued parameters are word-safe method references (legacy names
like ``hack_int4`` or parameterless family names — the spec grammar's
metacharacters ``,=?+`` cannot nest), validated at spec-construction
time.

The decode batch cost model stays the *scenario's* method: the engine
simulates one decode kernel per cluster, a deliberate approximation —
selection governs the bytes-on-the-path side (quantize, wire, store,
memory), which is where HACK's bottleneck lives.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass

from ..methods.base import Method
from ..methods.spec import resolve_method

__all__ = [
    "SelectionParam",
    "CompressionSelectionPolicy",
    "SelectionSpec",
    "register_selection",
    "get_selection_policy",
    "selection_policies",
    "has_selection_policy",
    "selection_spec",
    "parse_selection",
    "canonical_selection",
    "split_selection_list",
]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


@dataclass(frozen=True)
class SelectionParam:
    """One policy parameter: the default fixes the type (float, or a
    word-safe string — typically a method reference)."""

    default: object
    doc: str = ""


class CompressionSelectionPolicy:
    """Picks the compression :class:`Method` for one arriving request.

    Subclasses set :attr:`name`, :attr:`description`, :attr:`params`
    and implement :meth:`choose`; they may hold per-run state (the
    congestion policy's hysteresis latch) and override :meth:`bind` to
    precompute from the simulator.
    """

    #: Registry key; also the prefix of the string grammar.
    name: str = "abstract"
    #: One-line summary shown by ``cli list``.
    description: str = ""
    #: Parameter table: name -> :class:`SelectionParam`.
    params: dict[str, SelectionParam] = {}

    def __init__(self, **params) -> None:
        self.p = params

    def bind(self, sim) -> None:
        """Called once before the simulation starts."""

    def choose(self, now: float, req, sim) -> Method:
        """The method for ``req`` (``req.trace`` carries ``slo_tier``;
        ``sim`` exposes ``method``, ``kvstore``, ``_prefill``…)."""
        raise NotImplementedError

    @classmethod
    def validate(cls, **params) -> None:
        """Raise ``ValueError`` for out-of-range parameter values."""

    @classmethod
    def signature(cls) -> str:
        """Grammar template with defaults."""
        if not cls.params:
            return cls.name
        parts = [f"{name}={pd.default}" for name, pd in cls.params.items()]
        return f"{cls.name}?{','.join(parts)}"


_SELECTIONS: dict[str, type] = {}


def register_selection(cls=None, *, replace: bool = False):
    """Class decorator registering a selection-policy family."""

    def decorator(obj):
        if not (isinstance(obj, type)
                and issubclass(obj, CompressionSelectionPolicy)):
            raise TypeError(
                f"{getattr(obj, '__name__', obj)!r} must subclass "
                "CompressionSelectionPolicy"
            )
        if not _NAME_RE.match(obj.name or ""):
            raise ValueError(
                f"selection policy name {obj.name!r} must match "
                f"{_NAME_RE.pattern}"
            )
        if obj.name in _SELECTIONS and not replace:
            raise ValueError(
                f"selection policy {obj.name!r} is already registered; "
                "pass register_selection(replace=True) to override"
            )
        for pname, pd in obj.params.items():
            ok_float = isinstance(pd.default, (int, float)) \
                and not isinstance(pd.default, bool)
            ok_str = isinstance(pd.default, str) and pd.default
            if not (ok_float or ok_str):
                raise ValueError(
                    f"parameter {pname!r} default must be a number or a "
                    f"non-empty string, got {pd.default!r}"
                )
        _SELECTIONS[obj.name] = obj
        return obj

    if cls is not None:
        return decorator(cls)
    return decorator


def get_selection_policy(name: str) -> type:
    """Look up a selection family, with typo suggestions."""
    try:
        return _SELECTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown selection policy {name!r}"
            f"{_suggest(name, _SELECTIONS)}"
        ) from None


def selection_policies() -> dict[str, type]:
    """All registered families (a copy, registration order)."""
    return dict(_SELECTIONS)


def has_selection_policy(reference: str) -> bool:
    """True when a string selection reference names a family registered
    in this process (parameters may still be invalid)."""
    return reference.strip().partition("?")[0].strip() in _SELECTIONS


def _suggest(name: str, candidates) -> str:
    matches = difflib.get_close_matches(name, list(candidates), n=3)
    if matches:
        return "; did you mean " + " or ".join(repr(m) for m in matches) + "?"
    return f"; choose from {', '.join(sorted(candidates))}"


def _coerce(kind: str, name: str, pd: SelectionParam, value):
    where = f"parameter {name!r} of selection policy {kind!r}"
    if isinstance(pd.default, str):
        if not isinstance(value, str):
            raise ValueError(f"{where} expects a string, got {value!r}")
        if not value or any(c in value for c in ",=?+ "):
            raise ValueError(
                f"{where} string values must be non-empty and free of "
                f"',', '=', '?', '+' and spaces; got {value!r}"
            )
        return value
    if isinstance(value, bool):
        raise ValueError(f"{where} expects a number, got {value!r}")
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"{where} expects a number, got {value!r}"
        ) from None


# -- the spec -----------------------------------------------------------------

@dataclass(frozen=True)
class SelectionSpec:
    """A declarative selection-policy reference: family + parameters.

    ``params`` holds only the parameters given explicitly, coerced to
    the family's declared types and sorted; an explicitly-given default
    is kept (``congestion?hi=0.75`` stays distinct from
    ``congestion``).
    """

    kind: str
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        family = get_selection_policy(self.kind)
        items = self.params.items() if isinstance(self.params, dict) \
            else self.params
        normalized: dict[str, object] = {}
        for key, value in items:
            if key not in family.params:
                raise ValueError(
                    f"selection policy {self.kind!r} has no parameter "
                    f"{key!r}{_suggest(key, family.params)}"
                )
            if key in normalized:
                raise ValueError(
                    f"parameter {key!r} given twice for selection policy "
                    f"{self.kind!r}"
                )
            normalized[key] = _coerce(self.kind, key, family.params[key],
                                      value)
        object.__setattr__(self, "params", tuple(sorted(normalized.items())))
        family.validate(**self.resolved_params())

    @classmethod
    def of(cls, kind: str, **params) -> "SelectionSpec":
        return cls(kind, tuple(params.items()))

    def resolved_params(self) -> dict:
        """Family defaults overlaid with this spec's parameters."""
        family = get_selection_policy(self.kind)
        out = {name: pd.default for name, pd in family.params.items()}
        out.update(self.params)
        return out

    def build(self) -> CompressionSelectionPolicy:
        """A fresh policy instance (policies may hold per-run state)."""
        return get_selection_policy(self.kind)(**self.resolved_params())

    def canonical(self) -> str:
        """Compact string form, e.g. ``congestion?hi=0.75,lo=0.5``."""
        if not self.params:
            return self.kind
        parts = []
        for k, v in self.params:
            parts.append(f"{k}={v!r}" if isinstance(v, float)
                         else f"{k}={v}")
        return f"{self.kind}?{','.join(parts)}"

    def __str__(self) -> str:
        return self.canonical()


# -- string grammar -----------------------------------------------------------

def parse_selection(text: str) -> SelectionSpec:
    """Parse ``family[?key=value,…]`` into a :class:`SelectionSpec`."""
    text = text.strip()
    kind, sep, rest = text.partition("?")
    kind = kind.strip()
    if kind not in _SELECTIONS:
        raise ValueError(
            f"unknown selection policy {kind!r}{_suggest(kind, _SELECTIONS)}"
        )
    if not sep:
        return SelectionSpec(kind)
    pairs = []
    for item in rest.split(","):
        key, eq, value = item.partition("=")
        key, value = key.strip(), value.strip()
        if not eq or not key or not value:
            raise ValueError(
                f"bad selection parameter {item!r} in {text!r}; the "
                "grammar is family?key=value,key=value"
            )
        pairs.append((key, value))
    return SelectionSpec(kind, tuple(pairs))


def selection_spec(reference) -> SelectionSpec:
    """The :class:`SelectionSpec` behind any selection reference: a
    spec or a grammar string."""
    if isinstance(reference, SelectionSpec):
        return reference
    if isinstance(reference, str):
        return parse_selection(reference)
    raise TypeError(
        f"expected a SelectionSpec or string, got "
        f"{type(reference).__name__}"
    )


def canonical_selection(reference) -> str:
    """The canonical string form of a selection reference."""
    return selection_spec(reference).canonical()


def split_selection_list(text: str) -> list[str]:
    """Split a comma-separated selection list, keeping spec parameters
    attached: ``"static,congestion?hi=0.8,lo=0.4"`` →
    ``["static", "congestion?hi=0.8,lo=0.4"]``."""
    parts: list[str] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if parts and "=" in token and "?" not in token and "?" in parts[-1]:
            parts[-1] += "," + token
        else:
            parts.append(token)
    return parts


def _check_method_ref(kind: str, name: str, value: str) -> None:
    try:
        resolve_method(value)
    except ValueError as exc:
        raise ValueError(
            f"parameter {name!r} of selection policy {kind!r} must name "
            f"a resolvable method: {exc}"
        ) from None


# -- built-in families --------------------------------------------------------

@register_selection
class StaticSelection(CompressionSelectionPolicy):
    name = "static"
    description = "always the scenario's configured method (the default)"

    def choose(self, now, req, sim):
        return sim.method


@register_selection
class SLOTierSelection(CompressionSelectionPolicy):
    name = "slo_tier"
    description = ("map the request's SLO class to a method (KVServe-"
                   "style: looser tiers absorb stronger compression)")
    params = {
        "tier0": SelectionParam(
            "baseline", "method for SLO class 0 (strictest)"),
        "tier1": SelectionParam("hack", "method for SLO class 1"),
        "tier2": SelectionParam(
            "hack_int4", "method for SLO class >= 2 (loosest)"),
    }

    @classmethod
    def validate(cls, *, tier0, tier1, tier2):
        for name, value in (("tier0", tier0), ("tier1", tier1),
                            ("tier2", tier2)):
            _check_method_ref(cls.name, name, value)

    def __init__(self, **params):
        super().__init__(**params)
        self._methods = [resolve_method(self.p[k])
                         for k in ("tier0", "tier1", "tier2")]

    def choose(self, now, req, sim):
        tier = min(max(req.trace.slo_tier, 0), len(self._methods) - 1)
        return self._methods[tier]


@register_selection
class CongestionSelection(CompressionSelectionPolicy):
    name = "congestion"
    description = ("switch to the strong method while pooled-store "
                   "occupancy or NIC backlog is high (hysteresis)")
    params = {
        "hi": SelectionParam(0.75, "signal level that arms strong mode"),
        "lo": SelectionParam(0.5, "signal level that disarms it"),
        "strong": SelectionParam(
            "hack_int4", "method used while congested"),
        "nic_s": SelectionParam(
            1.0, "NIC backlog (seconds) that saturates the signal"),
    }

    @classmethod
    def validate(cls, *, hi, lo, strong, nic_s):
        if not 0 < hi <= 1:
            raise ValueError(f"congestion hi must be in (0, 1], got {hi}")
        if not 0 <= lo < hi:
            raise ValueError(
                f"congestion lo must be in [0, hi), got lo={lo} hi={hi}"
            )
        if nic_s <= 0:
            raise ValueError(
                f"congestion nic_s must be positive, got {nic_s}"
            )
        _check_method_ref(cls.name, "strong", strong)

    def __init__(self, **params):
        super().__init__(**params)
        self._strong = resolve_method(self.p["strong"])
        self._congested = False

    def signal(self, now: float, sim) -> float:
        """max(pooled-store occupancy, normalized worst NIC backlog,
        fault-driven capacity loss)."""
        pool = sim.kvstore.pool_occupancy() if sim.kvstore else 0.0
        backlog = max((r.nic_free_at - now for r in sim._prefill),
                      default=0.0)
        signal = max(pool, min(1.0, max(0.0, backlog) / self.p["nic_s"]))
        # Graceful degradation under fault injection: the fraction of
        # decode replicas down counts as congestion, so a crash trips
        # selection to the cheaper strong method exactly like store/NIC
        # pressure does.  0.0 on unfaulted runs (and absent on foreign
        # simulator objects), so historical behavior is unchanged.
        capacity_loss = getattr(sim, "fault_capacity_signal", None)
        if capacity_loss is not None:
            signal = max(signal, capacity_loss())
        return signal

    def choose(self, now, req, sim):
        signal = self.signal(now, sim)
        if self._congested:
            if signal <= self.p["lo"]:
                self._congested = False
        elif signal >= self.p["hi"]:
            self._congested = True
        return self._strong if self._congested else sim.method
