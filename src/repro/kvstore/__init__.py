"""Tiered KV-store subsystem: prefix caching + compression selection.

Models the storage tier production disaggregated-serving systems
interpose on the prefill → decode KV path (Mooncake/DADI-style pooled
put/get): a three-tier cache hierarchy (GPU HBM → host DRAM → pooled
store) with per-tier bandwidths, open eviction policies, and a
service-aware per-request compression-selection layer.

* :mod:`repro.kvstore.spec` — the ``KVStoreSpec`` grammar
  (``tiered?dram_gb=8.0+ttl?seconds=120.0``) and the open
  :func:`~repro.kvstore.spec.register_eviction` /
  :func:`~repro.kvstore.spec.register_kvstore_family` registries;
* :mod:`repro.kvstore.store` — the runtime
  :class:`~repro.kvstore.store.TieredKVStore` (token-granular prefix
  lookup, promotion, capacity-driven demotion/eviction, per-tier
  counters);
* :mod:`repro.kvstore.selection` — the
  :class:`~repro.kvstore.selection.CompressionSelectionPolicy` registry
  (``static``, ``slo_tier``, ``congestion``) making the per-request
  :class:`~repro.methods.spec.MethodSpec` a runtime decision.
"""

from .selection import (
    CompressionSelectionPolicy,
    SelectionParam,
    SelectionSpec,
    canonical_selection,
    get_selection_policy,
    has_selection_policy,
    parse_selection,
    register_selection,
    selection_policies,
    selection_spec,
    split_selection_list,
)
from .spec import (
    DEFAULT_EVICTION,
    DEFAULT_STORE,
    EvictionParam,
    EvictionPolicy,
    EvictionSpec,
    KVStoreFamily,
    KVStoreSpec,
    TierParam,
    canonical_kvstore,
    eviction_policies,
    get_eviction_policy,
    get_kvstore_family,
    has_kvstore_families,
    kvstore_families,
    kvstore_spec,
    parse_kvstore,
    register_eviction,
    register_kvstore_family,
    split_kvstore_list,
)
from .store import CacheEntry, CacheHit, TierDef, TieredKVStore, TierState

__all__ = [
    # spec
    "TierParam",
    "EvictionParam",
    "EvictionPolicy",
    "EvictionSpec",
    "KVStoreFamily",
    "KVStoreSpec",
    "register_eviction",
    "register_kvstore_family",
    "get_eviction_policy",
    "get_kvstore_family",
    "eviction_policies",
    "kvstore_families",
    "has_kvstore_families",
    "kvstore_spec",
    "parse_kvstore",
    "canonical_kvstore",
    "split_kvstore_list",
    "DEFAULT_STORE",
    "DEFAULT_EVICTION",
    # store
    "TierDef",
    "TierState",
    "CacheEntry",
    "CacheHit",
    "TieredKVStore",
    # selection
    "SelectionParam",
    "CompressionSelectionPolicy",
    "SelectionSpec",
    "register_selection",
    "get_selection_policy",
    "selection_policies",
    "has_selection_policy",
    "selection_spec",
    "parse_selection",
    "canonical_selection",
    "split_selection_list",
]
