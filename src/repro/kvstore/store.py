"""Runtime tiered KV prefix cache (Mooncake/DADI-style put/get).

A :class:`TieredKVStore` holds compressed KV blocks keyed by
conversation (session), ordered fastest tier first.  The engine drives
it with three calls:

* :meth:`lookup` on request admission — the longest cached prefix of
  the prompt, token-granular: the hit's bytes are charged at the owning
  tier's read bandwidth (plus its fixed latency) and the entry is
  promoted to the top tier;
* :meth:`put` on prefill completion (and again, extended, on request
  completion) — the new bytes are written at the entry's tier's write
  bandwidth, then capacity is enforced top-down: the eviction policy
  picks victims, which *demote* one tier down (paying that tier's
  write) until the bottom tier drops them entirely;
* :meth:`occupancy` — per-tier fill fraction, what congestion-aware
  compression selection keys on.

Entries store bytes under the **selected method's wire format**
(bytes-per-token is method-dependent), so hit accounting, eviction
pressure and read time all flow through the per-request
:class:`~repro.methods.base.Method` the selection policy chose.

Everything is deterministic: entries carry a monotone insertion ``seq``
and the built-in policies break ties on it, so victim choice never
depends on hash order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..perfmodel.tiers import TIER_LATENCY_S, tier_access_time
from .spec import EvictionPolicy

__all__ = ["TierDef", "TierState", "CacheEntry", "CacheHit", "TieredKVStore"]


@dataclass(frozen=True)
class TierDef:
    """Static shape of one tier: capacity (bytes), read/write GB/s."""

    name: str
    capacity_bytes: float
    read_gb_s: float
    write_gb_s: float


@dataclass
class CacheEntry:
    """One cached conversation prefix (compressed KV)."""

    key: object
    tokens: int
    bytes_per_token: float
    method_name: str
    tier: int                     # index into the store's tier list
    seq: int                      # monotone insertion order (tie-breaks)
    created_s: float
    last_access_s: float
    n_hits: int = 0

    @property
    def nbytes(self) -> float:
        return self.tokens * self.bytes_per_token


@dataclass
class TierState:
    """One tier's live contents and counters."""

    spec: TierDef
    used_bytes: float = 0.0
    entries: dict = field(default_factory=dict)   # key -> CacheEntry
    # Counters (surface on stats()).
    hits: int = 0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    read_s: float = 0.0
    write_s: float = 0.0
    evictions: int = 0            # entries pushed out (demoted or dropped)

    @property
    def latency_s(self) -> float:
        return TIER_LATENCY_S.get(self.spec.name, 0.0)

    def occupancy(self) -> float:
        if self.spec.capacity_bytes <= 0:
            return 0.0
        return self.used_bytes / self.spec.capacity_bytes


@dataclass(frozen=True)
class CacheHit:
    """Outcome of one prefix lookup."""

    tokens: int                   # cached prefix tokens matched (0 = miss)
    read_s: float                 # time to read them from the owning tier
    tier: str | None              # tier name the hit was served from

    @property
    def hit(self) -> bool:
        return self.tokens > 0


_MISS = CacheHit(0, 0.0, None)


class TieredKVStore:
    """The runtime hierarchy: ordered tiers + one eviction policy."""

    def __init__(self, tiers: list[TierDef],
                 eviction: EvictionPolicy) -> None:
        if not tiers:
            raise ValueError("a KV store needs at least one tier")
        self.tiers = [TierState(spec=t) for t in tiers]
        self.eviction = eviction
        self._index: dict = {}        # key -> CacheEntry (its tier too)
        self._seq = itertools.count()
        self.n_lookups = 0
        self.n_hits = 0
        self.tokens_hit = 0
        self.n_dropped = 0            # entries evicted out of the hierarchy
        self.n_expired = 0            # entries dropped by policy expiry
        # Fault injection: dark (unreachable) tiers.  Counts, not
        # flags, so overlapping outage specs compose; a tier is dark
        # while its count is positive.
        self._dark_counts: dict[str, int] = {}
        self.n_dark_misses = 0        # hits lost to a dark tier
        self.n_dark_drops = 0         # writes lost (target tier dark)

    # -- the engine-facing API -------------------------------------------------

    def lookup(self, key, prefix_tokens: int, now: float) -> CacheHit:
        """Longest cached prefix for ``key``, up to ``prefix_tokens``.

        A hit charges the owning tier's read path and promotes the
        entry to the top tier (it is hot).  ``prefix_tokens`` is the
        shareable prefix length the *request* brings — the hit is the
        token-granular minimum of that and what the cache holds.
        """
        self.n_lookups += 1
        entry = self._index.get(key)
        if entry is not None and self.eviction.expired(entry, now):
            self._remove(entry)
            self.n_expired += 1
            entry = None
        if entry is None or prefix_tokens <= 0:
            return _MISS
        if self._is_dark(entry.tier):
            # The owning tier is out: the entry survives the outage but
            # cannot be read — the request prefills from scratch.
            self.n_dark_misses += 1
            return _MISS
        hit_tokens = min(entry.tokens, prefix_tokens)
        tier = self.tiers[entry.tier]
        nbytes = hit_tokens * entry.bytes_per_token
        read_s = tier_access_time(nbytes, tier.spec.read_gb_s,
                                  tier.latency_s)
        tier.hits += 1
        tier.bytes_read += nbytes
        tier.read_s += read_s
        entry.last_access_s = now
        entry.n_hits += 1
        self.n_hits += 1
        self.tokens_hit += hit_tokens
        self._promote(entry, now)
        return CacheHit(hit_tokens, read_s, tier.spec.name)

    def put(self, key, tokens: int, bytes_per_token: float,
            method_name: str, now: float) -> None:
        """Insert or extend ``key``'s cached prefix to ``tokens``.

        New entries land in the top tier; an existing entry is extended
        in place (its tier pays the write for the added bytes).  A
        *shrinking* put (a re-put under a more compressed method) keeps
        the longer cached prefix.  Writeback is asynchronous in the
        modelled system — write time accrues to tier counters, not to
        any request's completion.
        """
        if tokens < 1 or bytes_per_token <= 0:
            return
        entry = self._index.get(key)
        if entry is None:
            top = self._top_live()
            if top is None:
                # Every tier is dark: the write has nowhere to land.
                self.n_dark_drops += 1
                return
            entry = CacheEntry(key=key, tokens=tokens,
                               bytes_per_token=bytes_per_token,
                               method_name=method_name, tier=top,
                               seq=next(self._seq), created_s=now,
                               last_access_s=now)
            self._index[key] = entry
            self.tiers[top].entries[key] = entry
            self._charge_write(self.tiers[top], entry.nbytes)
        else:
            if tokens <= entry.tokens:
                entry.last_access_s = now
                return
            if self._is_dark(entry.tier):
                # Cannot extend an entry stranded in a dark tier; the
                # longer prefix is simply not cached.
                self.n_dark_drops += 1
                return
            tier = self.tiers[entry.tier]
            old_bytes = entry.nbytes
            entry.tokens = tokens
            entry.bytes_per_token = bytes_per_token
            entry.method_name = method_name
            entry.last_access_s = now
            tier.used_bytes -= old_bytes
            self._charge_write(tier, entry.nbytes)
        self._enforce_capacity(now)

    def occupancy(self, tier_name: str) -> float:
        """Fill fraction of the named tier (0 when the tier is absent)."""
        for tier in self.tiers:
            if tier.spec.name == tier_name:
                return tier.occupancy()
        return 0.0

    def pool_occupancy(self) -> float:
        """Fill fraction of the *bottom* tier (the pooled store in the
        built-in hierarchy) — the congestion-selection signal."""
        return self.tiers[-1].occupancy()

    def set_dark(self, tier_name: str, dark: bool) -> None:
        """Mark a tier unreachable (``dark=True``) or repaired.

        Dark tiers serve no reads (lookups landing there miss), accept
        no writes (new entries target the top *live* tier; extensions
        of stranded entries drop) and are skipped as demotion targets.
        Their contents survive and serve again once the outage lifts.
        Calls stack: overlapping outage specs each add one level.
        """
        names = [t.spec.name for t in self.tiers]
        if tier_name not in names:
            raise ValueError(
                f"unknown tier {tier_name!r}; store tiers are "
                f"{', '.join(names)}"
            )
        count = self._dark_counts.get(tier_name, 0) + (1 if dark else -1)
        if count < 0:
            raise ValueError(
                f"tier {tier_name!r} is not dark (unbalanced set_dark)"
            )
        self._dark_counts[tier_name] = count

    # -- internals -------------------------------------------------------------

    def _is_dark(self, tier_index: int) -> bool:
        return self._dark_counts.get(
            self.tiers[tier_index].spec.name, 0) > 0

    def _top_live(self) -> int | None:
        """Index of the fastest non-dark tier (None if all are dark)."""
        for i in range(len(self.tiers)):
            if not self._is_dark(i):
                return i
        return None

    def _charge_write(self, tier: TierState, nbytes: float) -> None:
        tier.used_bytes += nbytes
        tier.bytes_written += nbytes
        tier.write_s += tier_access_time(nbytes, tier.spec.write_gb_s,
                                         tier.latency_s)

    def _remove(self, entry: CacheEntry) -> None:
        tier = self.tiers[entry.tier]
        del tier.entries[entry.key]
        tier.used_bytes -= entry.nbytes
        del self._index[entry.key]

    def _promote(self, entry: CacheEntry, now: float) -> None:
        """Move a hit entry to the top *live* tier (if it fits)."""
        top = self._top_live()
        if top is None or entry.tier <= top \
                or entry.nbytes > self.tiers[top].spec.capacity_bytes:
            return
        old = self.tiers[entry.tier]
        del old.entries[entry.key]
        old.used_bytes -= entry.nbytes
        entry.tier = top
        self.tiers[top].entries[entry.key] = entry
        self._charge_write(self.tiers[top], entry.nbytes)
        self._enforce_capacity(now)

    def _enforce_capacity(self, now: float) -> None:
        """Expire, then demote/drop top-down until every tier fits."""
        for tier in self.tiers:
            expired = [e for e in tier.entries.values()
                       if self.eviction.expired(e, now)]
            for entry in expired:
                self._remove(entry)
                self.n_expired += 1
        for ti, tier in enumerate(self.tiers):
            while tier.used_bytes > tier.spec.capacity_bytes \
                    and tier.entries:
                victim = self.eviction.victim(
                    list(tier.entries.values()), now)
                tier.evictions += 1
                del tier.entries[victim.key]
                tier.used_bytes -= victim.nbytes
                # Demote to the first lower tier the entry fits in at
                # all — an entry larger than the DRAM tier can still
                # land in the pool (the too-small tier is bypassed, and
                # so is a dark tier: it accepts no writes).
                nxt = ti + 1
                while nxt < len(self.tiers) and (
                    victim.nbytes > self.tiers[nxt].spec.capacity_bytes
                    or self._is_dark(nxt)
                ):
                    nxt += 1
                if nxt < len(self.tiers):
                    victim.tier = nxt
                    self.tiers[nxt].entries[victim.key] = victim
                    self._charge_write(self.tiers[nxt], victim.nbytes)
                else:
                    del self._index[victim.key]
                    self.n_dropped += 1

    # -- reporting -------------------------------------------------------------

    def hit_rate(self) -> float:
        """Fraction of lookups that found a cached prefix."""
        if self.n_lookups == 0:
            return 0.0
        return self.n_hits / self.n_lookups

    def stats(self) -> dict:
        """JSON-ready counters (the ``kvstore`` summary section)."""
        return {
            "lookups": self.n_lookups,
            "hits": self.n_hits,
            "hit_rate": self.hit_rate(),
            "prefill_tokens_skipped": self.tokens_hit,
            "entries": len(self._index),
            "dropped": self.n_dropped,
            "expired": self.n_expired,
            "dark_misses": self.n_dark_misses,
            "dark_drops": self.n_dark_drops,
            "tiers": {
                tier.spec.name: {
                    "capacity_gb": tier.spec.capacity_bytes / 1e9,
                    "used_gb": tier.used_bytes / 1e9,
                    "occupancy": tier.occupancy(),
                    "entries": len(tier.entries),
                    "hits": tier.hits,
                    "hit_rate": (tier.hits / self.n_lookups
                                 if self.n_lookups else 0.0),
                    "bytes_read": tier.bytes_read,
                    "bytes_written": tier.bytes_written,
                    "read_s": tier.read_s,
                    "write_s": tier.write_s,
                    "evictions": tier.evictions,
                }
                for tier in self.tiers
            },
        }
