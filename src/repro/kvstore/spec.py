"""Declarative KV-store definitions: tiers, eviction, and the grammar.

A :class:`KVStoreSpec` describes one KV cache hierarchy — a **store
family** (capacities and per-tier bandwidths) paired with an **eviction
family** (which entry leaves a full tier) — in the same open-registry,
``family?k=v`` style as methods, arrivals and schedulers::

    tiered                                   # all defaults, lru eviction
    tiered?dram_gb=8.0,pool_gb=64.0          # smaller DRAM/pool tiers
    lfu                                      # default tiers, lfu eviction
    tiered?pool_gb=64.0+ttl?seconds=120.0    # both, ?k=v attaches to each

Like the scheduler grammar, each ``+``-part's role is inferred from its
family name (store vs. eviction; names are unique across both
registries), so either part may stand alone.  Specs are frozen,
JSON-friendly, and canonicalize params-only-explicit + sorted — what
you write is what serializes, keys and slugs.

Eviction is an *open* registry: subclass :class:`EvictionPolicy`,
decorate with :func:`register_eviction`, and the family is usable from
``--kvstore``, scenarios and sweep axes (see
``examples/kvstore_tiers.py``).  Store families are open the same way
(:func:`register_kvstore_family`); the built-in ``tiered`` family is
the three-tier GPU HBM → host DRAM → pooled-store hierarchy.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass

__all__ = [
    "TierParam",
    "EvictionParam",
    "EvictionPolicy",
    "EvictionSpec",
    "KVStoreFamily",
    "KVStoreSpec",
    "register_eviction",
    "register_kvstore_family",
    "get_eviction_policy",
    "get_kvstore_family",
    "eviction_policies",
    "kvstore_families",
    "has_kvstore_families",
    "kvstore_spec",
    "parse_kvstore",
    "canonical_kvstore",
    "split_kvstore_list",
    "DEFAULT_STORE",
    "DEFAULT_EVICTION",
]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Defaults when a part is omitted from the grammar.
DEFAULT_STORE = "tiered"
DEFAULT_EVICTION = "lru"


@dataclass(frozen=True)
class EvictionParam:
    """One eviction-family parameter: a float default plus a doc line."""

    default: float
    doc: str = ""


#: Store-family parameters share the same float-only shape.
TierParam = EvictionParam


class EvictionPolicy:
    """Decides which cache entry leaves a full tier.

    Subclasses set :attr:`name`, :attr:`description` and :attr:`params`
    and are registered with :func:`register_eviction`.  Instances are
    created per store (they receive resolved parameters as ``p``) and
    see :class:`~repro.kvstore.store.CacheEntry` objects: each carries
    ``last_access_s``, ``n_hits``, ``created_s``, ``nbytes`` and a
    monotone insertion ``seq`` for deterministic tie-breaking.
    """

    #: Registry key; also the prefix of the string grammar.
    name: str = "abstract"
    #: One-line summary shown by ``cli list``.
    description: str = ""
    #: Parameter table: name -> :class:`EvictionParam` (floats only).
    params: dict[str, EvictionParam] = {}

    def __init__(self, **params: float) -> None:
        self.p = params

    def victim(self, entries, now: float):
        """The entry to push out of a full tier (``entries`` is a
        non-empty sequence of that tier's :class:`CacheEntry`)."""
        raise NotImplementedError

    def expired(self, entry, now: float) -> bool:
        """Whether ``entry`` should be dropped regardless of capacity
        (TTL-style policies override; default: never)."""
        return False

    @classmethod
    def validate(cls, **params: float) -> None:
        """Raise ``ValueError`` for out-of-range parameter values."""

    @classmethod
    def signature(cls) -> str:
        """Grammar template with defaults, e.g. ``ttl?seconds=300.0``."""
        if not cls.params:
            return cls.name
        parts = [f"{name}={pd.default!r}" for name, pd in cls.params.items()]
        return f"{cls.name}?{','.join(parts)}"


class KVStoreFamily:
    """One cache-hierarchy shape: parameters plus a store constructor.

    Subclasses set :attr:`params` (capacities in GB, bandwidths in
    GB/s — floats only, so every parameter is sweepable via
    ``kvstore.<param>`` axes) and implement :meth:`build`, returning a
    runtime store exposing the :class:`~repro.kvstore.store
    .TieredKVStore` interface (``lookup``/``put``/``occupancy``/
    ``stats``).
    """

    name: str = "abstract"
    description: str = ""
    params: dict[str, TierParam] = {}

    def build(self, eviction: EvictionPolicy, **params: float):
        """A fresh store instance (stores hold per-run state)."""
        raise NotImplementedError

    def validate(self, **params: float) -> None:
        """Raise ``ValueError`` for out-of-range parameter values."""

    def signature(self) -> str:
        """Grammar template with defaults."""
        if not self.params:
            return self.name
        parts = [f"{name}={pd.default!r}" for name, pd in self.params.items()]
        return f"{self.name}?{','.join(parts)}"


_STORES: dict[str, KVStoreFamily] = {}
_EVICTIONS: dict[str, type] = {}


def _check_float_params(params: dict, what: str) -> None:
    for pname, pd in params.items():
        if not isinstance(pd.default, (int, float)) \
                or isinstance(pd.default, bool):
            raise ValueError(
                f"parameter {pname!r} default of {what} must be a "
                f"number, got {type(pd.default).__name__}"
            )


def _check_name(name: str, what: str) -> None:
    if not _NAME_RE.match(name or ""):
        raise ValueError(
            f"{what} name {name!r} must match {_NAME_RE.pattern}"
        )
    # Names resolve a bare grammar part to its role, so they must be
    # unique across *both* registries.
    if name in _STORES or name in _EVICTIONS:
        raise ValueError(
            f"kvstore family {name!r} is already registered (store and "
            "eviction names share one namespace)"
        )


def register_eviction(cls=None, *, replace: bool = False):
    """Class decorator registering an :class:`EvictionPolicy` family."""

    def decorator(obj):
        if not (isinstance(obj, type) and issubclass(obj, EvictionPolicy)):
            raise TypeError(
                f"{getattr(obj, '__name__', obj)!r} must subclass "
                "EvictionPolicy"
            )
        if obj.name in _EVICTIONS and replace:
            del _EVICTIONS[obj.name]
        _check_name(obj.name, "eviction policy")
        _check_float_params(obj.params, f"eviction policy {obj.name!r}")
        _EVICTIONS[obj.name] = obj
        return obj

    if cls is not None:
        return decorator(cls)
    return decorator


def register_kvstore_family(cls=None, *, replace: bool = False):
    """Class decorator registering a :class:`KVStoreFamily`."""

    def decorator(obj):
        family = obj() if isinstance(obj, type) else obj
        if not isinstance(family, KVStoreFamily):
            raise TypeError(
                f"{getattr(obj, '__name__', obj)!r} must subclass "
                "KVStoreFamily"
            )
        if family.name in _STORES and replace:
            del _STORES[family.name]
        _check_name(family.name, "kvstore family")
        _check_float_params(family.params, f"kvstore family {family.name!r}")
        _STORES[family.name] = family
        return obj

    if cls is not None:
        return decorator(cls)
    return decorator


def get_eviction_policy(name: str) -> type:
    """Look up an eviction family, with typo suggestions."""
    try:
        return _EVICTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown eviction policy {name!r}"
            f"{_suggest(name, [*_EVICTIONS, *_STORES])}"
        ) from None


def get_kvstore_family(name: str) -> KVStoreFamily:
    """Look up a store family, with typo suggestions."""
    try:
        return _STORES[name]
    except KeyError:
        raise ValueError(
            f"unknown kvstore family {name!r}"
            f"{_suggest(name, [*_STORES, *_EVICTIONS])}"
        ) from None


def eviction_policies() -> dict[str, type]:
    """All registered eviction families (a copy, registration order)."""
    return dict(_EVICTIONS)


def kvstore_families() -> dict[str, KVStoreFamily]:
    """All registered store families (a copy, registration order)."""
    return dict(_STORES)


def has_kvstore_families(reference: str) -> bool:
    """True when every ``+``-part of a string kvstore reference names a
    store or eviction family registered in this process (parameters may
    still be invalid)."""
    parts = [p.strip() for p in reference.strip().split("+")]
    return all(
        part.partition("?")[0].strip() in _STORES
        or part.partition("?")[0].strip() in _EVICTIONS
        for part in parts
    ) and bool(parts)


def _suggest(name: str, candidates) -> str:
    candidates = list(dict.fromkeys(candidates))
    matches = difflib.get_close_matches(name, candidates, n=3)
    if matches:
        return "; did you mean " + " or ".join(repr(m) for m in matches) + "?"
    return f"; choose from {', '.join(sorted(candidates))}"


# -- the specs ----------------------------------------------------------------

def _normalize_float_params(items, family_params: dict, kind: str,
                            what: str) -> tuple:
    normalized: dict[str, float] = {}
    for key, value in items:
        if key not in family_params:
            raise ValueError(
                f"{what} {kind!r} has no parameter {key!r}"
                f"{_suggest(key, family_params)}"
            )
        if key in normalized:
            raise ValueError(
                f"parameter {key!r} given twice for {what} {kind!r}"
            )
        try:
            normalized[key] = float(value)
        except (TypeError, ValueError):
            raise ValueError(
                f"parameter {key!r} of {what} {kind!r} expects a "
                f"number, got {value!r}"
            ) from None
    return tuple(sorted(normalized.items()))


@dataclass(frozen=True)
class EvictionSpec:
    """One declarative eviction reference: family + parameters.

    ``params`` holds only the parameters given explicitly (family
    defaults fill the rest at build time), coerced to float and sorted;
    an explicitly-given default is kept (``ttl?seconds=300.0`` stays
    distinct from ``ttl``).
    """

    kind: str
    params: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        family = get_eviction_policy(self.kind)
        items = self.params.items() if isinstance(self.params, dict) \
            else self.params
        object.__setattr__(
            self, "params",
            _normalize_float_params(items, family.params, self.kind,
                                    "eviction policy"))
        family.validate(**self.resolved_params())

    @classmethod
    def of(cls, kind: str, **params) -> "EvictionSpec":
        return cls(kind, tuple(params.items()))

    def resolved_params(self) -> dict[str, float]:
        """Family defaults overlaid with this spec's parameters."""
        family = get_eviction_policy(self.kind)
        out = {name: float(pd.default) for name, pd in family.params.items()}
        out.update(self.params)
        return out

    def build(self) -> EvictionPolicy:
        """A fresh policy instance."""
        return get_eviction_policy(self.kind)(**self.resolved_params())

    def canonical(self) -> str:
        """Compact string form, e.g. ``ttl?seconds=120.0``."""
        if not self.params:
            return self.kind
        parts = [f"{k}={v!r}" for k, v in self.params]
        return f"{self.kind}?{','.join(parts)}"

    def __str__(self) -> str:
        return self.canonical()


@dataclass(frozen=True)
class KVStoreSpec:
    """A store family + parameters, paired with an eviction spec.

    ``eviction=None`` keeps the default (``lru``) and canonicalizes /
    serializes without it, so what you write is what you get.
    """

    kind: str = DEFAULT_STORE
    params: tuple[tuple[str, float], ...] = ()
    eviction: EvictionSpec | None = None

    def __post_init__(self) -> None:
        family = get_kvstore_family(self.kind)
        items = self.params.items() if isinstance(self.params, dict) \
            else self.params
        object.__setattr__(
            self, "params",
            _normalize_float_params(items, family.params, self.kind,
                                    "kvstore family"))
        family.validate(**self.resolved_params())
        if self.eviction is not None \
                and not isinstance(self.eviction, EvictionSpec):
            raise ValueError(
                f"eviction must be an EvictionSpec or None, got "
                f"{type(self.eviction).__name__}"
            )

    @classmethod
    def of(cls, kind: str = DEFAULT_STORE, eviction=None,
           **params) -> "KVStoreSpec":
        if isinstance(eviction, str):
            eviction = EvictionSpec(*_parse_part(eviction))
        return cls(kind, tuple(params.items()), eviction)

    def resolved_params(self) -> dict[str, float]:
        """Family defaults overlaid with this spec's parameters."""
        family = get_kvstore_family(self.kind)
        out = {name: float(pd.default) for name, pd in family.params.items()}
        out.update(self.params)
        return out

    def with_params(self, **changes) -> "KVStoreSpec":
        """A copy with store parameters changed (the ``kvstore.<param>``
        sweep-axis hook; a value of ``None`` drops the parameter back to
        its family default)."""
        merged = dict(self.params)
        for key, value in changes.items():
            if value is None:
                merged.pop(key, None)
            else:
                merged[key] = value
        return KVStoreSpec(self.kind, tuple(merged.items()), self.eviction)

    def build(self):
        """A fresh runtime store (with a fresh eviction policy)."""
        eviction = (self.eviction or EvictionSpec(DEFAULT_EVICTION)).build()
        family = get_kvstore_family(self.kind)
        return family.build(eviction, **self.resolved_params())

    def canonical(self) -> str:
        """Compact string form, e.g. ``tiered?dram_gb=8.0+lfu``."""
        if not self.params:
            head = self.kind
        else:
            parts = [f"{k}={v!r}" for k, v in self.params]
            head = f"{self.kind}?{','.join(parts)}"
        if self.eviction is None:
            return head
        return f"{head}+{self.eviction.canonical()}"

    def __str__(self) -> str:
        return self.canonical()


# -- string grammar -----------------------------------------------------------

def _parse_part(part: str) -> tuple[str, tuple]:
    kind, sep, rest = part.partition("?")
    kind = kind.strip()
    pairs = []
    if sep:
        for item in rest.split(","):
            key, eq, value = item.partition("=")
            key, value = key.strip(), value.strip()
            if not eq or not key or not value:
                raise ValueError(
                    f"bad kvstore parameter {item!r} in {part!r}; the "
                    "grammar is family?key=value,key=value"
                )
            pairs.append((key, value))
    return kind, tuple(pairs)


def parse_kvstore(text: str) -> KVStoreSpec:
    """Parse ``store[?k=v,…][+eviction[?k=v,…]]`` into a
    :class:`KVStoreSpec`.  Each part's role is inferred from its family
    name; either part may stand alone."""
    parts = [p.strip() for p in text.strip().split("+")]
    if not all(parts) or not parts:
        raise ValueError(
            f"bad kvstore {text!r}; the grammar is "
            "store[?k=v,…][+eviction[?k=v,…]] (either part may stand "
            "alone)"
        )
    store = eviction = None
    for part in parts:
        kind, pairs = _parse_part(part)
        if kind in _STORES:
            if store is not None:
                raise ValueError(
                    f"kvstore {text!r} names two store families "
                    f"({store[0]!r} and {kind!r})"
                )
            store = (kind, pairs)
        elif kind in _EVICTIONS:
            if eviction is not None:
                raise ValueError(
                    f"kvstore {text!r} names two eviction policies "
                    f"({eviction.kind!r} and {kind!r})"
                )
            eviction = EvictionSpec(kind, pairs)
        else:
            raise ValueError(
                f"unknown kvstore family {kind!r}"
                f"{_suggest(kind, [*_STORES, *_EVICTIONS])}"
            )
    kind, pairs = store if store is not None else (DEFAULT_STORE, ())
    return KVStoreSpec(kind, pairs, eviction)


def kvstore_spec(reference) -> KVStoreSpec:
    """The :class:`KVStoreSpec` behind any kvstore reference: a spec or
    a grammar string."""
    if isinstance(reference, KVStoreSpec):
        return reference
    if isinstance(reference, str):
        return parse_kvstore(reference)
    raise TypeError(
        f"expected a KVStoreSpec or string, got "
        f"{type(reference).__name__}"
    )


def canonical_kvstore(reference) -> str:
    """The canonical string form of a kvstore reference."""
    return kvstore_spec(reference).canonical()


def split_kvstore_list(text: str) -> list[str]:
    """Split a comma-separated kvstore list, keeping ``?k=v`` parameters
    attached to their part: ``"lru,tiered?dram_gb=8,pool_gb=64+lfu"``
    splits after ``lru`` only (a ``key=value`` token following an open
    ``?`` clause continues that clause)."""
    parts: list[str] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if parts and "=" in token and "?" not in token \
                and "?" in parts[-1].rsplit("+", 1)[-1]:
            parts[-1] += "," + token
        else:
            parts.append(token)
    return parts


# -- built-in eviction policies -----------------------------------------------

@register_eviction
class LRUEviction(EvictionPolicy):
    name = "lru"
    description = "evict the least-recently-used entry (ties: oldest)"

    def victim(self, entries, now):
        return min(entries, key=lambda e: (e.last_access_s, e.seq))


@register_eviction
class LFUEviction(EvictionPolicy):
    name = "lfu"
    description = "evict the least-frequently-hit entry (ties: LRU)"

    def victim(self, entries, now):
        return min(entries, key=lambda e: (e.n_hits, e.last_access_s, e.seq))


@register_eviction
class TTLEviction(EvictionPolicy):
    name = "ttl"
    description = ("drop entries idle longer than ``seconds`` (session "
                   "lifetime); capacity pressure falls back to LRU")
    params = {
        "seconds": EvictionParam(300.0, "idle time before an entry expires"),
    }

    @classmethod
    def validate(cls, *, seconds):
        if seconds <= 0:
            raise ValueError(f"ttl seconds must be positive, got {seconds}")

    def expired(self, entry, now):
        return now - entry.last_access_s > self.p["seconds"]

    def victim(self, entries, now):
        return min(entries, key=lambda e: (e.last_access_s, e.seq))


# -- built-in store family ----------------------------------------------------

@register_kvstore_family
class TieredStoreFamily(KVStoreFamily):
    """GPU HBM → host DRAM → pooled store, Mooncake/DADI-style.

    Capacities are gigabytes (a tier with capacity 0 is absent);
    bandwidths are gigabytes per second.  The defaults sketch a slice
    of HBM set aside for prefix KV, PCIe-limited host DRAM staging, and
    a 100-GbE pooled store.
    """

    name = "tiered"
    description = ("three-tier prefix cache: GPU HBM, host DRAM, pooled "
                   "store (capacities GB, bandwidths GB/s)")
    params = {
        "hbm_gb": TierParam(4.0, "GPU HBM set aside for cached KV, GB"),
        "dram_gb": TierParam(32.0, "host DRAM tier capacity, GB"),
        "pool_gb": TierParam(256.0, "pooled-store tier capacity, GB"),
        "hbm_read": TierParam(1500.0, "HBM tier read bandwidth, GB/s"),
        "hbm_write": TierParam(1500.0, "HBM tier write bandwidth, GB/s"),
        "dram_read": TierParam(20.0, "DRAM tier read bandwidth, GB/s"),
        "dram_write": TierParam(20.0, "DRAM tier write bandwidth, GB/s"),
        "pool_read": TierParam(8.0, "pooled-store read bandwidth, GB/s"),
        "pool_write": TierParam(8.0, "pooled-store write bandwidth, GB/s"),
    }

    def validate(self, **p) -> None:
        for name in ("hbm_gb", "dram_gb", "pool_gb"):
            if p[name] < 0:
                raise ValueError(
                    f"tier capacity {name} must be >= 0, got {p[name]}"
                )
        if p["hbm_gb"] + p["dram_gb"] + p["pool_gb"] <= 0:
            raise ValueError("at least one tier needs capacity > 0")
        for name in ("hbm_read", "hbm_write", "dram_read", "dram_write",
                     "pool_read", "pool_write"):
            if p[name] <= 0:
                raise ValueError(
                    f"tier bandwidth {name} must be positive, got {p[name]}"
                )

    def build(self, eviction, **p):
        from .store import TierDef, TieredKVStore

        tiers = [
            TierDef("hbm", p["hbm_gb"] * 1e9, p["hbm_read"], p["hbm_write"]),
            TierDef("dram", p["dram_gb"] * 1e9, p["dram_read"],
                    p["dram_write"]),
            TierDef("pool", p["pool_gb"] * 1e9, p["pool_read"],
                    p["pool_write"]),
        ]
        return TieredKVStore([t for t in tiers if t.capacity_bytes > 0],
                             eviction)
